// Image-collection clustering: the scenario that motivates multi-view
// methods in the paper's introduction. An image corpus is described by
// several heterogeneous descriptors (HOG, GIST, LBP, color moments, …) of
// very different reliability; the task is to group images by object class
// without labels.
//
// This example runs on the MSRC-v1 simulator (210 images, 7 classes,
// 5 descriptor views — see DESIGN.md for the substitution rationale) and
// contrasts the unified method against per-view spectral clustering, making
// visible how much the weighted fusion buys over the best single descriptor.
//
//   ./image_collections [seed]

#include <cstdio>
#include <cstdlib>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/baselines.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace {

double Accuracy(const std::vector<std::size_t>& pred,
                const std::vector<std::size_t>& truth) {
  auto acc = umvsc::eval::ClusteringAccuracy(pred, truth);
  return acc.ok() ? *acc : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  StatusOr<data::MultiViewDataset> dataset =
      data::SimulateBenchmark("MSRC-v1", seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::size_t c = dataset->NumClusters();
  std::printf("MSRC-v1 simulator: %zu images, %zu descriptor views, %zu classes\n",
              dataset->NumSamples(), dataset->NumViews(), c);

  StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
  if (!graphs.ok()) {
    std::fprintf(stderr, "graphs: %s\n", graphs.status().ToString().c_str());
    return 1;
  }

  // Per-view spectral clustering: how far does each descriptor get alone?
  mvsc::BaselineOptions base;
  base.num_clusters = c;
  base.seed = seed;
  StatusOr<std::vector<std::vector<std::size_t>>> per_view =
      mvsc::PerViewSpectral(*graphs, base);
  if (!per_view.ok()) {
    std::fprintf(stderr, "per-view: %s\n", per_view.status().ToString().c_str());
    return 1;
  }
  const char* view_names[] = {"ColorMoments", "HOG", "GIST", "LBP", "CENTRIST"};
  std::printf("\nper-descriptor spectral clustering:\n");
  double best_single = 0.0;
  for (std::size_t v = 0; v < per_view->size(); ++v) {
    const double acc = Accuracy((*per_view)[v], dataset->labels);
    best_single = std::max(best_single, acc);
    std::printf("  %-12s ACC=%.4f\n", view_names[v], acc);
  }

  // The unified one-stage method on all descriptors jointly.
  mvsc::UnifiedOptions options;
  options.num_clusters = c;
  options.seed = seed;
  StatusOr<mvsc::UnifiedResult> unified =
      mvsc::UnifiedMVSC(options).Run(*graphs);
  if (!unified.ok()) {
    std::fprintf(stderr, "unified: %s\n", unified.status().ToString().c_str());
    return 1;
  }
  const double unified_acc = Accuracy(unified->labels, dataset->labels);
  std::printf("\nunified multi-view (one stage, no K-means): ACC=%.4f\n",
              unified_acc);
  std::printf("gain over best single descriptor: %+.4f\n",
              unified_acc - best_single);
  std::printf("learned descriptor weights:\n");
  for (std::size_t v = 0; v < unified->view_weights.size(); ++v) {
    std::printf("  %-12s %.3f\n", view_names[v], unified->view_weights[v]);
  }
  return 0;
}
