// Quickstart: generate a 3-view dataset, run the unified one-stage
// multi-view spectral clustering, and print quality metrics.
//
//   ./quickstart
//
// This is the 20-line tour of the public API: dataset → UnifiedMVSC → labels.

#include <cstdio>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/unified.h"

int main() {
  using namespace umvsc;

  // 1. A synthetic multi-view dataset: 300 points, 3 clusters, three views
  //    of very different quality (the realistic multi-view regime).
  data::MultiViewConfig config;
  config.name = "quickstart";
  config.num_samples = 300;
  config.num_clusters = 3;
  config.views = {{16, data::ViewQuality::kInformative, 0.5},
                  {8, data::ViewQuality::kWeak, 1.0},
                  {12, data::ViewQuality::kNoisy, 1.0}};
  config.seed = 42;
  StatusOr<data::MultiViewDataset> dataset = data::MakeGaussianMultiView(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Configure and run the unified solver. Labels come straight from the
  //    learned discrete indicator matrix — no K-means step anywhere.
  mvsc::UnifiedOptions options;
  options.num_clusters = 3;
  options.beta = 1.0;   // strength of the discretization coupling
  options.gamma = 2.0;  // view-weight smoothness
  options.seed = 7;
  StatusOr<mvsc::UnifiedResult> result =
      mvsc::UnifiedMVSC(options).Run(*dataset);
  if (!result.ok()) {
    std::fprintf(stderr, "solver: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Score against the ground truth.
  StatusOr<eval::ClusteringScores> scores =
      eval::ScoreClustering(result->labels, dataset->labels);
  if (!scores.ok()) {
    std::fprintf(stderr, "metrics: %s\n", scores.status().ToString().c_str());
    return 1;
  }

  std::printf("unified multi-view spectral clustering on '%s'\n",
              dataset->name.c_str());
  std::printf("  samples=%zu views=%zu clusters=%zu\n", dataset->NumSamples(),
              dataset->NumViews(), dataset->NumClusters());
  std::printf("  converged=%s after %zu iterations\n",
              result->converged ? "yes" : "no", result->iterations);
  std::printf("  ACC=%.4f NMI=%.4f Purity=%.4f ARI=%.4f F=%.4f\n",
              scores->accuracy, scores->nmi, scores->purity, scores->ari,
              scores->f_score);
  std::printf("  learned view weights:");
  for (double w : result->view_weights) std::printf(" %.3f", w);
  std::printf("   (informative > weak > noisy is the expected order)\n");
  return 0;
}
