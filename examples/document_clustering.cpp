// Multi-source document clustering: news stories covered by several outlets
// (the 3-Sources benchmark: BBC / Guardian / Reuters). Each outlet's
// bag-of-words features form one view; stories must be grouped by topic.
//
// The example compares the whole method zoo the benchmark tables use —
// unified (ours), two-stage ablation, AMGL, co-regularized, and the naive
// fusions — on one simulated corpus, and prints a compact leaderboard.
//
//   ./document_clustering [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/amgl.h"
#include "mvsc/baselines.h"
#include "mvsc/coreg.h"
#include "mvsc/graphs.h"
#include "mvsc/two_stage.h"
#include "mvsc/unified.h"

namespace {

struct Row {
  std::string method;
  umvsc::eval::ClusteringScores scores;
  double seconds;
};

void AddRow(std::vector<Row>& rows, const std::string& method,
            const std::vector<std::size_t>& labels,
            const std::vector<std::size_t>& truth, double seconds) {
  auto scores = umvsc::eval::ScoreClustering(labels, truth);
  if (scores.ok()) rows.push_back({method, *scores, seconds});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  StatusOr<data::MultiViewDataset> dataset =
      data::SimulateBenchmark("3-Sources", seed, /*scale=*/1.0);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::size_t c = dataset->NumClusters();
  std::printf("3-Sources simulator: %zu stories, %zu outlets, %zu topics\n\n",
              dataset->NumSamples(), dataset->NumViews(), c);

  StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
  if (!graphs.ok()) {
    std::fprintf(stderr, "graphs: %s\n", graphs.status().ToString().c_str());
    return 1;
  }

  std::vector<Row> rows;
  Stopwatch watch;

  {
    watch.Reset();
    mvsc::UnifiedOptions options;
    options.num_clusters = c;
    options.seed = seed;
    auto r = mvsc::UnifiedMVSC(options).Run(*graphs);
    if (r.ok()) {
      AddRow(rows, "UMVSC (ours)", r->labels, dataset->labels,
             watch.ElapsedSeconds());
    }
  }
  {
    watch.Reset();
    mvsc::TwoStageOptions options;
    options.num_clusters = c;
    options.seed = seed;
    auto r = mvsc::TwoStageMVSC(*graphs, options);
    if (r.ok()) {
      AddRow(rows, "Two-stage", r->labels, dataset->labels,
             watch.ElapsedSeconds());
    }
  }
  {
    watch.Reset();
    mvsc::AmglOptions options;
    options.num_clusters = c;
    options.seed = seed;
    auto r = mvsc::Amgl(*graphs, options);
    if (r.ok()) {
      AddRow(rows, "AMGL", r->labels, dataset->labels, watch.ElapsedSeconds());
    }
  }
  {
    watch.Reset();
    mvsc::CoRegOptions options;
    options.num_clusters = c;
    options.seed = seed;
    auto r = mvsc::CoRegSpectral(*graphs, options);
    if (r.ok()) {
      AddRow(rows, "Co-Reg", r->labels, dataset->labels,
             watch.ElapsedSeconds());
    }
  }
  {
    watch.Reset();
    mvsc::BaselineOptions options;
    options.num_clusters = c;
    options.seed = seed;
    auto per_view = mvsc::PerViewSpectral(*graphs, options);
    if (per_view.ok()) {
      // Report the best single outlet (selected post hoc, as the tables do).
      double best_acc = -1.0;
      std::size_t best_v = 0;
      for (std::size_t v = 0; v < per_view->size(); ++v) {
        auto acc = eval::ClusteringAccuracy((*per_view)[v], dataset->labels);
        if (acc.ok() && *acc > best_acc) {
          best_acc = *acc;
          best_v = v;
        }
      }
      AddRow(rows, "SC-best view", (*per_view)[best_v], dataset->labels,
             watch.ElapsedSeconds());
    }
    watch.Reset();
    auto kernel_add = mvsc::KernelAdditionSC(*graphs, options);
    if (kernel_add.ok()) {
      AddRow(rows, "Graph average", *kernel_add, dataset->labels,
             watch.ElapsedSeconds());
    }
    watch.Reset();
    auto concat = mvsc::ConcatFeatureSC(*dataset, options);
    if (concat.ok()) {
      AddRow(rows, "SC-concat", *concat, dataset->labels,
             watch.ElapsedSeconds());
    }
    watch.Reset();
    auto km = mvsc::ConcatKMeans(*dataset, options);
    if (km.ok()) {
      AddRow(rows, "K-means concat", *km, dataset->labels,
             watch.ElapsedSeconds());
    }
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.scores.accuracy > b.scores.accuracy;
  });
  std::printf("%-16s %7s %7s %7s %7s %9s\n", "method", "ACC", "NMI", "Purity",
              "ARI", "time[s]");
  for (const Row& row : rows) {
    std::printf("%-16s %7.4f %7.4f %7.4f %7.4f %9.3f\n", row.method.c_str(),
                row.scores.accuracy, row.scores.nmi, row.scores.purity,
                row.scores.ari, row.seconds);
  }
  return 0;
}
