// Advanced usage: assembling the pipeline by hand instead of going through
// the one-call API. Demonstrates
//   * non-convex cluster shapes (multi-view two-moons) where K-means fails,
//   * custom graph construction per view (adaptive neighbors vs self-tuning),
//   * inspecting the solver's convergence trace,
//   * saving the dataset to CSV and loading it back (the interchange format
//     for plugging in real benchmark exports).
//
//   ./custom_pipeline

#include <cstdio>
#include <filesystem>

#include "data/io.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"
#include "graph/laplacian.h"
#include "mvsc/baselines.h"
#include "mvsc/unified.h"

int main() {
  using namespace umvsc;

  // Non-convex clusters: two interleaved moons observed through two real
  // views plus one pure-noise view.
  StatusOr<data::MultiViewDataset> dataset =
      data::MakeTwoMoonsMultiView(240, 0.04, /*add_noise_view=*/true, 11);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("two-moons multi-view: %zu points, %zu views\n",
              dataset->NumSamples(), dataset->NumViews());

  // Hand-built graphs: adaptive neighbors for the coordinate view, a
  // self-tuning kNN kernel for the others.
  data::MultiViewDataset standardized = *dataset;
  standardized.StandardizeViews();
  mvsc::MultiViewGraphs graphs;
  for (std::size_t v = 0; v < standardized.views.size(); ++v) {
    la::Matrix sq = graph::PairwiseSquaredDistances(standardized.views[v]);
    StatusOr<la::CsrMatrix> affinity =
        v == 0 ? graph::AdaptiveNeighborGraph(sq, 8) : [&] {
          auto kernel = graph::SelfTuningKernel(sq, 8);
          UMVSC_CHECK(kernel.ok(), "kernel failed");
          return graph::BuildKnnGraph(*kernel, 8);
        }();
    if (!affinity.ok()) {
      std::fprintf(stderr, "graph %zu: %s\n", v,
                   affinity.status().ToString().c_str());
      return 1;
    }
    StatusOr<la::CsrMatrix> lap =
        graph::Laplacian(*affinity, graph::LaplacianKind::kSymmetric);
    if (!lap.ok()) {
      std::fprintf(stderr, "laplacian %zu: %s\n", v,
                   lap.status().ToString().c_str());
      return 1;
    }
    graphs.affinities.push_back(std::move(*affinity));
    graphs.laplacians.push_back(std::move(*lap));
  }

  // K-means on concatenated features fails on moons; the unified spectral
  // method does not.
  mvsc::BaselineOptions base;
  base.num_clusters = 2;
  base.seed = 2;
  auto km = mvsc::ConcatKMeans(*dataset, base);
  if (km.ok()) {
    auto acc = eval::ClusteringAccuracy(*km, dataset->labels);
    std::printf("K-means on concatenated features: ACC=%.4f  (fails: convex "
                "partitions cannot split moons)\n",
                acc.ok() ? *acc : -1.0);
  }

  mvsc::UnifiedOptions options;
  options.num_clusters = 2;
  options.seed = 13;
  options.max_iterations = 40;
  StatusOr<mvsc::UnifiedResult> result =
      mvsc::UnifiedMVSC(options).Run(graphs);
  if (!result.ok()) {
    std::fprintf(stderr, "unified: %s\n", result.status().ToString().c_str());
    return 1;
  }
  auto acc = eval::ClusteringAccuracy(result->labels, dataset->labels);
  std::printf("unified multi-view spectral:      ACC=%.4f\n",
              acc.ok() ? *acc : -1.0);

  std::printf("\nconvergence trace (objective per outer iteration):\n  ");
  for (double obj : result->objective_trace) std::printf("%.5f ", obj);
  std::printf("\nview weights (noise view last):   ");
  for (double w : result->view_weights) std::printf("%.3f ", w);
  std::printf("\n");

  // Round-trip through the CSV interchange format.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "umvsc_custom_pipeline";
  std::filesystem::create_directories(dir);
  Status saved = data::SaveDataset(*dataset, dir.string());
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  StatusOr<data::MultiViewDataset> reloaded =
      data::LoadDataset(dir.string(), "reloaded-moons");
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCSV round-trip under %s: %zu views, %zu samples — OK\n",
              dir.c_str(), reloaded->NumViews(), reloaded->NumSamples());
  std::filesystem::remove_all(dir);
  return 0;
}
