// umvsc_cli: command-line driver for clustering a multi-view dataset from
// disk. The dataset directory holds view_0.csv, view_1.csv, … (one row per
// sample, comma-separated features) and optionally labels.txt (one integer
// per line) — the format written by data::SaveDataset.
//
//   umvsc_cli --data=DIR --clusters=K [--method=unified] [--seed=S]
//             [--knn=10] [--beta=1.0] [--gamma=2.0] [--out=labels.txt]
//   umvsc_cli --demo           # runs on a generated dataset instead
//
// Methods: unified (default), two-stage, amgl, coreg, mlan, mvkkm,
//          multinmf, graph-avg, sc-concat, km-concat, ensemble.
// When --clusters is omitted AND the dataset is unlabeled, the cluster
// count is selected by the silhouette criterion over k in [2, 10].

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/spectral.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/internal_metrics.h"
#include "eval/metrics.h"
#include "la/ops.h"
#include "mvsc/amgl.h"
#include "mvsc/baselines.h"
#include "mvsc/coreg.h"
#include "mvsc/graphs.h"
#include "mvsc/mlan.h"
#include "mvsc/multi_nmf.h"
#include "mvsc/mvkkm.h"
#include "mvsc/two_stage.h"
#include "mvsc/unified.h"

namespace {

using namespace umvsc;

struct CliOptions {
  std::string data_dir;
  std::string method = "unified";
  std::string out_path;
  std::size_t clusters = 0;  // 0 = take from labels or select by silhouette
  std::size_t knn = 10;
  double beta = 1.0;
  double gamma = 2.0;
  std::uint64_t seed = 1;
  bool demo = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data=DIR [--clusters=K] [--method=M] [--seed=S]\n"
      "          [--knn=10] [--beta=1.0] [--gamma=2.0] [--out=FILE]\n"
      "       %s --demo\n"
      "methods: unified two-stage amgl coreg mlan mvkkm multinmf\n"
      "         graph-avg sc-concat km-concat ensemble\n",
      argv0, argv0);
  std::exit(2);
}

CliOptions Parse(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--data=")) {
      options.data_dir = v;
    } else if (const char* v = value("--method=")) {
      options.method = v;
    } else if (const char* v = value("--out=")) {
      options.out_path = v;
    } else if (const char* v = value("--clusters=")) {
      options.clusters = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--knn=")) {
      options.knn = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--beta=")) {
      options.beta = std::strtod(v, nullptr);
    } else if (const char* v = value("--gamma=")) {
      options.gamma = std::strtod(v, nullptr);
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--demo") == 0) {
      options.demo = true;
    } else {
      Usage(argv[0]);
    }
  }
  if (!options.demo && options.data_dir.empty()) Usage(argv[0]);
  return options;
}

StatusOr<std::vector<std::size_t>> RunMethod(
    const CliOptions& options, const data::MultiViewDataset& dataset,
    const mvsc::MultiViewGraphs& graphs, std::size_t c) {
  if (options.method == "unified") {
    mvsc::UnifiedOptions o;
    o.num_clusters = c;
    o.beta = options.beta;
    o.gamma = options.gamma;
    o.seed = options.seed;
    auto r = mvsc::UnifiedMVSC(o).Run(graphs);
    if (!r.ok()) return r.status();
    std::printf("view weights:");
    for (double w : r->view_weights) std::printf(" %.3f", w);
    std::printf("\n");
    return std::move(r->labels);
  }
  if (options.method == "two-stage") {
    mvsc::TwoStageOptions o;
    o.num_clusters = c;
    o.gamma = options.gamma;
    o.seed = options.seed;
    auto r = mvsc::TwoStageMVSC(graphs, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  if (options.method == "amgl") {
    mvsc::AmglOptions o;
    o.num_clusters = c;
    o.seed = options.seed;
    auto r = mvsc::Amgl(graphs, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  if (options.method == "coreg") {
    mvsc::CoRegOptions o;
    o.num_clusters = c;
    o.seed = options.seed;
    auto r = mvsc::CoRegSpectral(graphs, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  if (options.method == "mlan") {
    mvsc::MlanOptions o;
    o.num_clusters = c;
    o.knn = options.knn;
    o.seed = options.seed;
    auto r = mvsc::Mlan(dataset, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  if (options.method == "mvkkm") {
    mvsc::MvkkmOptions o;
    o.num_clusters = c;
    o.seed = options.seed;
    auto r = mvsc::MultiViewKernelKMeans(dataset, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  if (options.method == "multinmf") {
    mvsc::MultiNmfOptions o;
    o.num_clusters = c;
    o.seed = options.seed;
    auto r = mvsc::MultiViewNmf(dataset, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  mvsc::BaselineOptions base;
  base.num_clusters = c;
  base.seed = options.seed;
  base.graph.knn = options.knn;
  if (options.method == "graph-avg") {
    return mvsc::KernelAdditionSC(graphs, base);
  }
  if (options.method == "sc-concat") {
    return mvsc::ConcatFeatureSC(dataset, base);
  }
  if (options.method == "km-concat") {
    return mvsc::ConcatKMeans(dataset, base);
  }
  if (options.method == "ensemble") {
    return mvsc::EnsembleSC(graphs, base);
  }
  return Status::InvalidArgument("unknown method '" + options.method + "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options = Parse(argc, argv);

  // Load (or generate) the dataset.
  StatusOr<data::MultiViewDataset> dataset = [&]() {
    if (!options.demo) return data::LoadDataset(options.data_dir);
    data::MultiViewConfig config;
    config.name = "demo";
    config.num_samples = 240;
    config.num_clusters = 4;
    config.views = {{12, data::ViewQuality::kInformative, 0.5},
                    {8, data::ViewQuality::kWeak, 1.0},
                    {10, data::ViewQuality::kNoisy, 1.0}};
    config.seed = options.seed;
    return data::MakeGaussianMultiView(config);
  }();
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset '%s': %zu samples, %zu views\n", dataset->name.c_str(),
              dataset->NumSamples(), dataset->NumViews());

  mvsc::GraphOptions graph_options;
  graph_options.knn = options.knn;
  StatusOr<mvsc::MultiViewGraphs> graphs =
      mvsc::BuildGraphs(*dataset, graph_options);
  if (!graphs.ok()) {
    std::fprintf(stderr, "graphs: %s\n", graphs.status().ToString().c_str());
    return 1;
  }

  // Resolve the cluster count: flag > labels > silhouette selection on the
  // average-graph spectral embedding.
  std::size_t c = options.clusters;
  if (c == 0) c = dataset->NumClusters();
  if (c == 0) {
    std::printf("no --clusters and no labels: selecting k by silhouette\n");
    // Score candidate clusterings on the standardized concatenated
    // features (the conventional silhouette space).
    data::MultiViewDataset standardized = *dataset;
    standardized.StandardizeViews();
    la::Matrix stacked = la::HConcat(standardized.views);
    auto cluster_at_k =
        [&](std::size_t k) -> StatusOr<std::vector<std::size_t>> {
      mvsc::UnifiedOptions o;
      o.num_clusters = k;
      o.seed = options.seed;
      auto r = mvsc::UnifiedMVSC(o).Run(*graphs);
      if (!r.ok()) return r.status();
      return std::move(r->labels);
    };
    StatusOr<eval::ClusterCountSelection> selection =
        eval::SelectClusterCount(stacked, 2, 10, cluster_at_k);
    if (!selection.ok()) {
      std::fprintf(stderr, "selection: %s\n",
                   selection.status().ToString().c_str());
      return 1;
    }
    for (std::size_t i = 0; i < selection->candidate_ks.size(); ++i) {
      std::printf("  k=%zu silhouette=%.4f\n", selection->candidate_ks[i],
                  selection->silhouettes[i]);
    }
    c = selection->best_k;
    std::printf("selected k=%zu\n", c);
  }

  StatusOr<std::vector<std::size_t>> labels =
      RunMethod(options, *dataset, *graphs, c);
  if (!labels.ok()) {
    std::fprintf(stderr, "%s: %s\n", options.method.c_str(),
                 labels.status().ToString().c_str());
    return 1;
  }

  // Report cluster sizes, quality versus ground truth if available, and
  // write the labels when requested.
  std::vector<std::size_t> sizes(c, 0);
  for (std::size_t l : *labels) sizes[l]++;
  std::printf("%s produced %zu clusters, sizes:", options.method.c_str(), c);
  for (std::size_t s : sizes) std::printf(" %zu", s);
  std::printf("\n");
  if (!dataset->labels.empty()) {
    auto scores = eval::ScoreClustering(*labels, dataset->labels);
    if (scores.ok()) {
      std::printf("ACC=%.4f NMI=%.4f Purity=%.4f ARI=%.4f F=%.4f\n",
                  scores->accuracy, scores->nmi, scores->purity, scores->ari,
                  scores->f_score);
    }
  }
  if (!options.out_path.empty()) {
    Status saved = data::SaveLabels(*labels, options.out_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("labels written to %s\n", options.out_path.c_str());
  }
  return 0;
}
