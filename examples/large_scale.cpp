// Large-scale single-view clustering with the Nyström approximation:
// exact spectral clustering needs the eigenvectors of an n × n matrix
// (O(n³) dense, O(n·nnz·m) sparse); the Nyström path approximates them
// from an n × m slice, clustering tens of thousands of points in seconds
// on one core. This example compares exact sparse spectral clustering and
// Nyström on growing problem sizes.
//
//   ./large_scale [max_n]

#include <cstdio>
#include <cstdlib>

#include "cluster/kmeans.h"
#include "cluster/nystrom.h"
#include "cluster/spectral.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "eval/metrics.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"

namespace {

using namespace umvsc;

struct Blobs {
  la::Matrix data;
  std::vector<std::size_t> labels;
};

Blobs MakeBlobs(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.data = la::Matrix(n, 4);
  blobs.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % k;
    blobs.labels[i] = c;
    for (std::size_t j = 0; j < 4; ++j) {
      const double center = (j == c % 4) ? 6.0 * (1.0 + c / 4) : 0.0;
      blobs.data(i, j) = rng.Gaussian(center, 0.6);
    }
  }
  return blobs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::size_t k = 5;

  std::printf("%-8s %16s %10s %16s %10s\n", "n", "exact SC [s]", "ACC",
              "Nystrom [s]", "ACC");
  for (std::size_t n = 1000; n <= max_n; n *= 4) {
    Blobs blobs = MakeBlobs(n, k, 7);

    // Exact path (kNN graph + sparse Lanczos + K-means) — only attempted
    // while the O(n²·d) graph construction stays affordable.
    double exact_seconds = -1.0, exact_acc = -1.0;
    if (n <= 8000) {
      Stopwatch watch;
      la::Matrix sq = graph::PairwiseSquaredDistances(blobs.data);
      auto kernel = graph::SelfTuningKernel(sq, 10);
      if (kernel.ok()) {
        auto w = graph::BuildKnnGraph(*kernel, 10);
        if (w.ok()) {
          auto f = cluster::SpectralEmbeddingSparse(*w, k, true);
          if (f.ok()) {
            cluster::KMeansOptions km;
            km.num_clusters = k;
            km.seed = 1;
            auto clustered = cluster::KMeans(*f, km);
            if (clustered.ok()) {
              exact_seconds = watch.ElapsedSeconds();
              auto acc =
                  eval::ClusteringAccuracy(clustered->labels, blobs.labels);
              exact_acc = acc.ok() ? *acc : -1.0;
            }
          }
        }
      }
    }

    // Nyström path: m = 200 landmarks regardless of n.
    Stopwatch watch;
    cluster::NystromOptions options;
    options.num_clusters = k;
    options.landmarks = 200;
    options.seed = 2;
    auto nystrom = cluster::NystromSpectralClustering(blobs.data, options);
    if (!nystrom.ok()) {
      std::fprintf(stderr, "n=%zu nystrom: %s\n", n,
                   nystrom.status().ToString().c_str());
      return 1;
    }
    const double nystrom_seconds = watch.ElapsedSeconds();
    auto nystrom_acc = eval::ClusteringAccuracy(nystrom->labels, blobs.labels);

    if (exact_seconds >= 0.0) {
      std::printf("%-8zu %16.2f %10.3f %16.2f %10.3f\n", n, exact_seconds,
                  exact_acc, nystrom_seconds,
                  nystrom_acc.ok() ? *nystrom_acc : -1.0);
    } else {
      std::printf("%-8zu %16s %10s %16.2f %10.3f\n", n, "(skipped)", "-",
                  nystrom_seconds, nystrom_acc.ok() ? *nystrom_acc : -1.0);
    }
  }
  std::printf("\nNyström keeps per-point cost flat (O(n·m²)) while the exact\n"
              "pipeline's graph construction grows quadratically.\n");
  return 0;
}
