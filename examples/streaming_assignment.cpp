// Out-of-sample assignment: cluster a training corpus once with the unified
// method, then assign newly arriving points to the learned clusters without
// re-running the solver — the deployment pattern for periodically refreshed
// clusterings (e.g. nightly re-cluster, online assignment during the day).
//
//   ./streaming_assignment

#include <cstdio>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/out_of_sample.h"
#include "mvsc/unified.h"

int main() {
  using namespace umvsc;

  // One generator draw, split into "yesterday's corpus" and "today's
  // arrivals" — both i.i.d. from the same latent clusters.
  data::MultiViewConfig config;
  config.num_samples = 500;
  config.num_clusters = 4;
  config.views = {{14, data::ViewQuality::kInformative, 0.5},
                  {9, data::ViewQuality::kWeak, 1.0},
                  {11, data::ViewQuality::kNoisy, 1.0}};
  config.seed = 21;
  StatusOr<data::MultiViewDataset> full = data::MakeGaussianMultiView(config);
  if (!full.ok()) {
    std::fprintf(stderr, "dataset: %s\n", full.status().ToString().c_str());
    return 1;
  }
  const std::size_t n_train = 400;
  data::MultiViewDataset train, arrivals;
  train.name = "corpus";
  arrivals.name = "arrivals";
  for (const la::Matrix& view : full->views) {
    train.views.push_back(view.Block(0, 0, n_train, view.cols()));
    arrivals.views.push_back(
        view.Block(n_train, 0, view.rows() - n_train, view.cols()));
  }
  train.labels.assign(full->labels.begin(), full->labels.begin() + n_train);
  arrivals.labels.assign(full->labels.begin() + n_train, full->labels.end());

  // Nightly job: cluster the corpus.
  mvsc::UnifiedOptions options;
  options.num_clusters = 4;
  options.seed = 3;
  StatusOr<mvsc::UnifiedResult> fitted = mvsc::UnifiedMVSC(options).Run(train);
  if (!fitted.ok()) {
    std::fprintf(stderr, "solver: %s\n", fitted.status().ToString().c_str());
    return 1;
  }
  auto train_acc = eval::ClusteringAccuracy(fitted->labels, train.labels);
  std::printf("corpus of %zu points clustered: ACC=%.4f (%zu clusters)\n",
              train.NumSamples(), train_acc.ok() ? *train_acc : -1.0,
              options.num_clusters);

  // Freeze the model: training features + labels + learned view weights.
  StatusOr<mvsc::OutOfSampleModel> model =
      mvsc::OutOfSampleModel::Fit(train, fitted->labels, fitted->view_weights);
  if (!model.ok()) {
    std::fprintf(stderr, "fit: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Daytime: assign arrivals in small batches, collecting all assignments
  // and scoring once at the end (the Hungarian matching inside the ACC
  // metric aligns the solver's cluster ids with the hidden ground truth).
  std::printf("\nassigning %zu arrivals in batches of 20:\n",
              arrivals.NumSamples());
  std::vector<std::size_t> all_assigned;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < arrivals.NumSamples(); start += 20) {
    const std::size_t count =
        std::min<std::size_t>(20, arrivals.NumSamples() - start);
    data::MultiViewDataset batch;
    for (const la::Matrix& view : arrivals.views) {
      batch.views.push_back(view.Block(start, 0, count, view.cols()));
    }
    StatusOr<std::vector<std::size_t>> assigned = model->Predict(batch);
    if (!assigned.ok()) {
      std::fprintf(stderr, "predict: %s\n",
                   assigned.status().ToString().c_str());
      return 1;
    }
    all_assigned.insert(all_assigned.end(), assigned->begin(), assigned->end());
    ++batches;
  }
  auto acc = eval::ClusteringAccuracy(all_assigned, arrivals.labels);
  std::printf("  %zu batches assigned; overall out-of-sample ACC=%.4f\n",
              batches, acc.ok() ? *acc : -1.0);
  return 0;
}
