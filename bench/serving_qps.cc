// Closed-loop serving benchmark of the high-QPS path: an ORL-shaped anchor
// model is fitted once, persisted through serve::ModelSerializer, loaded
// into a warm serve::ModelRegistry, and then hammered with out-of-sample
// queries — a per-point Predict leg (the pre-batching baseline), batched
// Assign legs across batch sizes, and a mixed single/batch closed loop.
// Every leg reports throughput (points/s) and per-call latency quantiles
// (p50/p99), and the run cross-checks the determinism contract: batched
// labels must be bitwise identical to per-point labels at 1, 2, and max
// threads before any number is written.
//
// The headline number is speedup_batch256: batched Assign throughput at
// batch 256 over the per-point Predict loop. `--smoke` shrinks the model
// and the query counts and turns the gates (label parity AND speedup ≥ 2×)
// into the exit code — the CI mode. The full run writes the committed
// artifact (gate: ≥ 5× on the ORL-shaped model).
//
//   ./serving_qps [--smoke] [--json=PATH]     (default BENCH_serving.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "mvsc/anchor_unified.h"
#include "mvsc/out_of_sample.h"
#include "serve/batch_assign.h"
#include "serve/model_io.h"
#include "serve/registry.h"

namespace {

using umvsc::ParallelFor;
using umvsc::ScopedNumThreads;
using umvsc::Status;
using umvsc::StatusOr;
using umvsc::Stopwatch;
using umvsc::bench::PeakRssKb;

struct LegStats {
  std::size_t batch_size = 0;
  std::size_t calls = 0;
  std::size_t points = 0;
  double seconds = 0.0;
  double qps = 0.0;      // points per second
  double p50_ms = 0.0;   // per-call latency quantiles
  double p99_ms = 0.0;
};

double QuantileMs(std::vector<double>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size() - 1));
  return latencies[idx] * 1e3;
}

LegStats FinishLeg(std::size_t batch_size, std::size_t points,
                   double seconds, std::vector<double> latencies) {
  LegStats leg;
  leg.batch_size = batch_size;
  leg.calls = latencies.size();
  leg.points = points;
  leg.seconds = seconds;
  leg.qps = seconds > 0.0 ? static_cast<double>(points) / seconds : 0.0;
  leg.p50_ms = QuantileMs(latencies, 0.50);
  leg.p99_ms = QuantileMs(latencies, 0.99);
  return leg;
}

/// Rows [begin, begin + count) of `src` as a standalone dataset. Labels are
/// dropped: serve batches are unlabeled by definition (and a slice may not
/// cover every cluster, which Validate would reject).
umvsc::data::MultiViewDataset Slice(const umvsc::data::MultiViewDataset& src,
                                    std::size_t begin, std::size_t count) {
  umvsc::data::MultiViewDataset out;
  out.name = src.name;
  for (const umvsc::la::Matrix& view : src.views) {
    umvsc::la::Matrix m(count, view.cols());
    for (std::size_t i = 0; i < count; ++i) {
      std::copy(view.RowPtr(begin + i), view.RowPtr(begin + i) + view.cols(),
                m.RowPtr(i));
    }
    out.views.push_back(std::move(m));
  }
  return out;
}

int Fail(const char* what) {
  std::fprintf(stderr, "serving_qps: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  using namespace umvsc;

  // ORL-shaped anchor model (three views of 1024/944/1350 features, 40
  // clusters — the face-image benchmark's silhouette); smoke shrinks every
  // axis but keeps the multi-view, many-cluster structure.
  data::MultiViewConfig config;
  config.name = smoke ? "orl-smoke" : "orl-shaped";
  config.num_samples = smoke ? 200 : 400;
  config.num_clusters = smoke ? 10 : 40;
  if (smoke) {
    config.views = {{96, data::ViewQuality::kInformative, 3.6, 0.7},
                    {88, data::ViewQuality::kInformative, 4.0, 0.7},
                    {128, data::ViewQuality::kNoisy, 1.0}};
  } else {
    config.views = {{1024, data::ViewQuality::kInformative, 3.6, 0.7},
                    {944, data::ViewQuality::kInformative, 4.0, 0.7},
                    {1350, data::ViewQuality::kNoisy, 1.0}};
  }
  config.cluster_separation = 2.6;
  config.seed = 7;

  const std::size_t pool = smoke ? 512 : 4096;
  config.num_samples += pool;
  StatusOr<data::MultiViewDataset> generated =
      data::MakeGaussianMultiView(config);
  if (!generated.ok()) return Fail(generated.status().ToString().c_str());
  const std::size_t n_train = config.num_samples - pool;
  data::MultiViewDataset train = Slice(*generated, 0, n_train);
  train.labels.assign(generated->labels.begin(),
                      generated->labels.begin() +
                          static_cast<std::ptrdiff_t>(n_train));
  const data::MultiViewDataset serve_pool = Slice(*generated, n_train, pool);

  mvsc::UnifiedOptions options;
  options.num_clusters = config.num_clusters;
  options.seed = 7;
  options.anchors.enabled = true;
  options.anchors.num_anchors = smoke ? 64 : 256;
  options.anchors.anchor_neighbors = 5;

  Stopwatch watch;
  StatusOr<mvsc::AnchorUnifiedResult> solved =
      mvsc::SolveUnifiedAnchors(train, options);
  if (!solved.ok()) return Fail(solved.status().ToString().c_str());
  const double fit_seconds = watch.ElapsedSeconds();

  StatusOr<mvsc::OutOfSampleModel> fitted =
      mvsc::OutOfSampleModel::FitAnchor(std::move(solved->model));
  if (!fitted.ok()) return Fail(fitted.status().ToString().c_str());

  // Persist → warm registry → assigner: the full serving wiring, so the
  // benchmark exercises exactly what a server would run.
  const std::string model_path = json_path + ".model";
  Status saved = serve::ModelSerializer::Save(*fitted, model_path);
  if (!saved.ok()) return Fail(saved.ToString().c_str());
  const std::string model_bytes = serve::ModelSerializer::Serialize(*fitted);

  serve::ModelRegistry registry;
  watch.Reset();
  Status loaded = registry.LoadFromFile("orl", model_path);
  const double load_seconds = watch.ElapsedSeconds();
  std::remove(model_path.c_str());
  if (!loaded.ok()) return Fail(loaded.ToString().c_str());
  StatusOr<serve::ModelHandle> handle = registry.Get("orl");
  if (!handle.ok()) return Fail(handle.status().ToString().c_str());
  const serve::BatchAssigner assigner(*handle);
  const mvsc::OutOfSampleModel& model = **handle;

  // --- Parity gate first: batched labels must equal per-point labels
  // bitwise at every thread count before any throughput is reported.
  const std::size_t parity_points = smoke ? 256 : 512;
  const data::MultiViewDataset parity_batch = Slice(serve_pool, 0,
                                                    parity_points);
  StatusOr<std::vector<std::size_t>> serial_labels =
      model.Predict(parity_batch);
  if (!serial_labels.ok()) return Fail(serial_labels.status().ToString().c_str());
  const std::size_t max_threads = std::max<std::size_t>(8, DefaultNumThreads());
  const std::size_t thread_counts[] = {1, 2, max_threads};
  bool parity = true;
  for (std::size_t t : thread_counts) {
    ScopedNumThreads scope(t);
    // Odd tile heights shift every tile boundary — parity must hold there
    // too, not just at the default tiling.
    serve::AssignOptions tiling;
    tiling.tile_rows = (t == 2) ? 37 : 64;
    StatusOr<std::vector<std::size_t>> batched =
        serve::BatchAssigner(*handle, tiling).Assign(parity_batch);
    if (!batched.ok()) return Fail(batched.status().ToString().c_str());
    parity = parity && (*batched == *serial_labels);
  }

  // --- Per-point leg: the pre-batching baseline, one Predict per point on
  // pre-sliced single-point datasets (slicing outside the timed loop).
  const std::size_t per_point_count = smoke ? 256 : 1024;
  std::vector<data::MultiViewDataset> singles;
  singles.reserve(per_point_count);
  for (std::size_t i = 0; i < per_point_count; ++i) {
    singles.push_back(Slice(serve_pool, i % pool, 1));
  }
  std::vector<double> latencies;
  latencies.reserve(per_point_count);
  watch.Reset();
  for (const data::MultiViewDataset& one : singles) {
    Stopwatch call;
    StatusOr<std::vector<std::size_t>> r = model.Predict(one);
    if (!r.ok()) return Fail(r.status().ToString().c_str());
    latencies.push_back(call.ElapsedSeconds());
  }
  const LegStats per_point = FinishLeg(1, per_point_count,
                                       watch.ElapsedSeconds(),
                                       std::move(latencies));

  // --- Batched legs: same query stream, batched through Assign.
  const std::size_t batch_sizes[] = {1, 16, 64, 256, 1024};
  const std::size_t leg_points = smoke ? 512 : 8192;
  std::vector<LegStats> batched_legs;
  for (std::size_t b : batch_sizes) {
    if (b > pool) continue;
    const std::size_t calls = std::max<std::size_t>(1, leg_points / b);
    std::vector<data::MultiViewDataset> batches;
    batches.reserve(calls);
    for (std::size_t i = 0; i < calls; ++i) {
      batches.push_back(Slice(serve_pool, (i * b) % (pool - b + 1), b));
    }
    latencies.clear();
    latencies.reserve(calls);
    watch.Reset();
    for (const data::MultiViewDataset& batch : batches) {
      Stopwatch call;
      StatusOr<std::vector<std::size_t>> r = assigner.Assign(batch);
      if (!r.ok()) return Fail(r.status().ToString().c_str());
      latencies.push_back(call.ElapsedSeconds());
    }
    batched_legs.push_back(
        FinishLeg(b, calls * b, watch.ElapsedSeconds(), std::move(latencies)));
  }

  // --- Mixed closed loop: the realistic arrival pattern — a few singles
  // between bulk batches, all against the registry-held model.
  const std::size_t mixed_batch = smoke ? 64 : 256;
  const std::size_t mixed_target = smoke ? 1024 : 32768;
  std::size_t mixed_points = 0, mixed_singles = 0, mixed_batches = 0;
  watch.Reset();
  std::size_t cursor = 0;
  while (mixed_points < mixed_target) {
    for (int k = 0; k < 3; ++k) {
      StatusOr<std::vector<std::size_t>> r =
          assigner.Assign(singles[cursor % singles.size()]);
      if (!r.ok()) return Fail(r.status().ToString().c_str());
      ++cursor;
      ++mixed_singles;
      ++mixed_points;
    }
    const data::MultiViewDataset batch =
        Slice(serve_pool, (mixed_batches * mixed_batch) %
                              (pool - mixed_batch + 1),
              mixed_batch);
    StatusOr<std::vector<std::size_t>> r = assigner.Assign(batch);
    if (!r.ok()) return Fail(r.status().ToString().c_str());
    ++mixed_batches;
    mixed_points += mixed_batch;
  }
  const double mixed_seconds = watch.ElapsedSeconds();
  const double mixed_qps =
      mixed_seconds > 0.0 ? static_cast<double>(mixed_points) / mixed_seconds
                          : 0.0;

  double speedup256 = 0.0;
  for (const LegStats& leg : batched_legs) {
    if (leg.batch_size == 256) {
      speedup256 = per_point.qps > 0.0 ? leg.qps / per_point.qps : 0.0;
    }
  }

  // --- Report.
  std::printf("serving_qps (%s): model %zu train pts, %zu anchors, %zu "
              "clusters; fit %.2fs, load %.4fs, %zu model bytes\n",
              smoke ? "smoke" : "full", n_train, options.anchors.num_anchors,
              options.num_clusters, fit_seconds, load_seconds,
              model_bytes.size());
  std::printf("  per-point : %8.0f pts/s   p50 %7.3f ms   p99 %7.3f ms\n",
              per_point.qps, per_point.p50_ms, per_point.p99_ms);
  for (const LegStats& leg : batched_legs) {
    std::printf("  batch %-4zu: %8.0f pts/s   p50 %7.3f ms   p99 %7.3f ms\n",
                leg.batch_size, leg.qps, leg.p50_ms, leg.p99_ms);
  }
  std::printf("  mixed     : %8.0f pts/s over %zu pts (%zu singles, %zu "
              "batches of %zu)\n",
              mixed_qps, mixed_points, mixed_singles, mixed_batches,
              mixed_batch);
  std::printf("  speedup at batch 256: %.2fx   parity(1/2/%zu threads): %s\n",
              speedup256, max_threads, parity ? "identical" : "MISMATCH");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open json output");
    std::fprintf(f, "{\n  \"bench\": \"serving_qps\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"model\": {\"dataset\": \"%s\", \"train_points\": %zu, "
                 "\"view_dims\": [%zu, %zu, %zu], \"num_clusters\": %zu, "
                 "\"num_anchors\": %zu, \"anchor_neighbors\": %zu, "
                 "\"file_bytes\": %zu, \"fit_seconds\": %.3f, "
                 "\"load_seconds\": %.6f},\n",
                 umvsc::bench::JsonEscape(config.name).c_str(), n_train,
                 config.views[0].dim, config.views[1].dim, config.views[2].dim,
                 options.num_clusters, options.anchors.num_anchors,
                 options.anchors.anchor_neighbors, model_bytes.size(),
                 fit_seconds, load_seconds);
    auto put_leg = [&](const char* name, const LegStats& leg, bool comma) {
      std::fprintf(f,
                   "    {\"leg\": \"%s\", \"batch_size\": %zu, \"calls\": %zu, "
                   "\"points\": %zu, \"seconds\": %.6f, \"qps\": %.1f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                   name, leg.batch_size, leg.calls, leg.points, leg.seconds,
                   leg.qps, leg.p50_ms, leg.p99_ms, comma ? "," : "");
    };
    std::fprintf(f, "  \"legs\": [\n");
    put_leg("per_point_predict", per_point, true);
    for (std::size_t i = 0; i < batched_legs.size(); ++i) {
      put_leg("batched_assign", batched_legs[i], i + 1 < batched_legs.size());
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"mixed\": {\"points\": %zu, \"singles\": %zu, "
                 "\"batches\": %zu, \"batch_size\": %zu, \"seconds\": %.6f, "
                 "\"qps\": %.1f},\n",
                 mixed_points, mixed_singles, mixed_batches, mixed_batch,
                 mixed_seconds, mixed_qps);
    std::fprintf(f, "  \"speedup_batch256\": %.3f,\n", speedup256);
    std::fprintf(f,
                 "  \"parity\": {\"points\": %zu, \"thread_counts\": "
                 "[1, 2, %zu], \"identical\": %s},\n",
                 parity_points, max_threads, parity ? "true" : "false");
    std::fprintf(f, "  \"peak_rss_kb\": %zu\n}\n", PeakRssKb());
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (!parity) return Fail("batched labels diverge from per-point labels");
  if (smoke && speedup256 < 2.0) {
    return Fail("smoke gate: batched speedup at batch 256 fell below 2x");
  }
  return 0;
}
