// Ablation B: the view-weighting scheme inside the unified model —
// gamma-power (the model's) vs parameter-free AMGL self-weighting vs fixed
// uniform weights. The shape to reproduce: adaptive weighting wins whenever
// the benchmark mixes strong and weak views; uniform suffers most on the
// noisiest mixtures.
//
//   ./ablation_weights [--scale=0.4] [--seeds=5]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);

  const struct {
    const char* label;
    mvsc::ViewWeighting mode;
  } kModes[] = {
      {"gamma-power", mvsc::ViewWeighting::kGammaPower},
      {"AMGL", mvsc::ViewWeighting::kAmgl},
      {"uniform", mvsc::ViewWeighting::kUniform},
  };

  std::printf(
      "Ablation B: view-weighting scheme inside UMVSC; ACC mean±std %% over "
      "%zu seeds (scale=%.2f)\n\n",
      config.seeds, config.scale);
  std::printf("%-14s", "dataset");
  for (const auto& mode : kModes) std::printf(" %14s", mode.label);
  std::printf("\n");

  for (const std::string& name : data::BenchmarkNames()) {
    std::printf("%-14s", name.c_str());
    for (const auto& mode : kModes) {
      std::vector<double> accs;
      for (std::size_t s = 0; s < config.seeds; ++s) {
        const std::uint64_t seed = config.base_seed + 1000 * s;
        auto dataset = data::SimulateBenchmark(name, seed, config.scale);
        if (!dataset.ok()) continue;
        auto graphs = mvsc::BuildGraphs(*dataset);
        if (!graphs.ok()) continue;
        mvsc::UnifiedOptions options;
        options.num_clusters = dataset->NumClusters();
        options.weighting = mode.mode;
        options.seed = seed;
        auto result = mvsc::UnifiedMVSC(options).Run(*graphs);
        if (!result.ok()) continue;
        auto acc = eval::ClusteringAccuracy(result->labels, dataset->labels);
        if (acc.ok()) accs.push_back(*acc);
      }
      std::printf(" %14s", bench::FormatPct(bench::Aggregate(accs)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
