// Figure 3: the view weights α_v learned by the unified method on each
// simulated benchmark, against each view's standalone spectral-clustering
// accuracy. The shape to reproduce: weight tracks view informativeness —
// noisy/weak views receive visibly smaller α.
//
//   ./fig3_view_weights [--scale=0.4]

#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/baselines.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);

  std::printf(
      "Figure 3: learned view weights vs per-view standalone ACC (scale=%.2f)\n",
      config.scale);
  for (const std::string& name : data::BenchmarkNames()) {
    StatusOr<data::MultiViewDataset> dataset =
        data::SimulateBenchmark(name, config.base_seed, config.scale);
    if (!dataset.ok()) return 1;
    StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
    if (!graphs.ok()) return 1;

    mvsc::UnifiedOptions options;
    options.num_clusters = dataset->NumClusters();
    options.seed = config.base_seed;
    StatusOr<mvsc::UnifiedResult> result =
        mvsc::UnifiedMVSC(options).Run(*graphs);
    if (!result.ok()) return 1;

    mvsc::BaselineOptions base;
    base.num_clusters = dataset->NumClusters();
    base.seed = config.base_seed;
    StatusOr<std::vector<std::vector<std::size_t>>> per_view =
        mvsc::PerViewSpectral(*graphs, base);
    if (!per_view.ok()) return 1;

    std::printf("\n%s\n  %6s %10s %14s\n", name.c_str(), "view", "alpha",
                "solo ACC");
    for (std::size_t v = 0; v < dataset->NumViews(); ++v) {
      auto acc = eval::ClusteringAccuracy((*per_view)[v], dataset->labels);
      std::printf("  %6zu %10.4f %14.4f\n", v, result->view_weights[v],
                  acc.ok() ? *acc : -1.0);
    }
  }
  return 0;
}
