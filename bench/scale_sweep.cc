// Scale sweep of the anchor-graph large-scale path: the unified solver in
// anchor mode on synthetic multi-view Gaussians across an n-sweep up to
// 10⁶ points, recording wall time, peak RSS, and ARI against ground truth.
// At the overlapping sizes (n ≤ 20,000 full, ≤ 10,000 smoke) the exact
// O(n²) path runs too and the sweep records label parity (ARI between the
// two paths' labels) — the evidence that the reduced-space solver clusters
// like the exact solver at a fraction of the cost.
//
// The headline numbers: the time-vs-n log-log slope over the top decade
// (near-linear means ≤ 1.25) and the parity floor (≥ 0.95 everywhere the
// exact path runs). `--smoke` shrinks the sweep to n ≤ 50,000 and turns
// those two thresholds into the exit code — the CI gate.
//
//   ./scale_sweep [--smoke] [--json=PATH]     (default BENCH_scale.json)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/unified.h"

namespace {

constexpr double kParityFloor = 0.95;
constexpr double kSlopeCeiling = 1.25;

using umvsc::bench::PeakRssKb;

struct SweepRow {
  std::size_t n = 0;
  double anchor_seconds = 0.0;
  double ari_truth_anchor = 0.0;
  std::size_t peak_rss_kb = 0;  // process peak AFTER the anchor leg
  bool exact_ran = false;
  double exact_seconds = 0.0;
  double ari_truth_exact = 0.0;
  double ari_parity = 0.0;
};

// Shared generator: 2 views (dims 8 and 6), 5 clusters, well separated —
// the regime where both paths should recover the truth, so parity is a
// solver property rather than a coin flip on a hard problem.
umvsc::data::MultiViewDataset MakeDataset(std::size_t n) {
  umvsc::data::MultiViewConfig config;
  config.name = "scale_sweep";
  config.num_samples = n;
  config.num_clusters = 5;
  config.cluster_separation = 6.0;
  config.views = {{8, umvsc::data::ViewQuality::kInformative, 1.0, 0.0},
                  {6, umvsc::data::ViewQuality::kInformative, 1.0, 0.0}};
  config.seed = 71 + n;
  auto dataset = umvsc::data::MakeGaussianMultiView(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "scale_sweep: dataset generation failed: %s\n",
                 dataset.status().message().c_str());
    std::exit(1);
  }
  return *std::move(dataset);
}

umvsc::mvsc::UnifiedOptions BaseOptions(bool anchors) {
  umvsc::mvsc::UnifiedOptions options;
  options.num_clusters = 5;
  options.seed = 3;
  options.anchors.enabled = anchors;
  options.anchors.num_anchors = 256;
  options.anchors.anchor_neighbors = 5;
  return options;
}

double Ari(const std::vector<std::size_t>& a,
           const std::vector<std::size_t>& b) {
  auto ari = umvsc::eval::AdjustedRandIndex(a, b);
  return ari.ok() ? *ari : 0.0;
}

// Least-squares slope of log(seconds) vs log(n) over rows with n >= floor.
double FitSlope(const std::vector<SweepRow>& rows, std::size_t n_floor,
                std::size_t* points) {
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t count = 0;
  for (const SweepRow& row : rows) {
    if (row.n < n_floor || row.anchor_seconds <= 0.0) continue;
    const double x = std::log(static_cast<double>(row.n));
    const double y = std::log(row.anchor_seconds);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  *points = count;
  if (count < 2) return 0.0;
  const double denom =
      static_cast<double>(count) * sxx - sx * sx;
  return denom > 0.0 ? (static_cast<double>(count) * sxy - sx * sy) / denom
                     : 0.0;
}

void WriteJson(const std::string& path, bool smoke,
               const std::vector<SweepRow>& rows, double slope,
               std::size_t slope_points, std::size_t slope_floor,
               bool parity_ok, bool slope_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "scale_sweep: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"scale_sweep\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"views\": 2, \"dims\": [8, 6], \"clusters\": "
               "5, \"separation\": 6.0, \"anchors\": 256, "
               "\"anchor_neighbors\": 5},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"anchor_seconds\": %.6f, "
                 "\"ari_truth_anchor\": %.6f, \"peak_rss_kb\": %zu",
                 row.n, row.anchor_seconds, row.ari_truth_anchor,
                 row.peak_rss_kb);
    if (row.exact_ran) {
      std::fprintf(f,
                   ",\n     \"exact_seconds\": %.6f, \"ari_truth_exact\": "
                   "%.6f, \"ari_parity\": %.6f",
                   row.exact_seconds, row.ari_truth_exact, row.ari_parity);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"slope_loglog\": %.4f,\n  \"slope_points\": %zu,\n"
               "  \"slope_n_floor\": %zu,\n",
               slope, slope_points, slope_floor);
  std::fprintf(f, "  \"parity_floor\": %.2f,\n  \"slope_ceiling\": %.2f,\n",
               kParityFloor, kSlopeCeiling);
  std::fprintf(f, "  \"parity_ok\": %s,\n  \"slope_ok\": %s\n}\n",
               parity_ok ? "true" : "false", slope_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bool smoke = false;
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<std::size_t> sizes;
  std::size_t exact_cap, slope_floor;
  if (smoke) {
    sizes = {2000, 5000, 10000, 20000, 50000};
    exact_cap = 10000;
    slope_floor = 5000;
  } else {
    sizes = {2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000, 1000000};
    exact_cap = 20000;
    slope_floor = 100000;  // the top decade: 10⁵ … 10⁶
  }

  // Untimed warmup so the measured EigensolvePolicy calibrates outside any
  // timed leg (the calibration probe runs once per process).
  {
    data::MultiViewDataset warm = MakeDataset(2000);
    auto result = mvsc::UnifiedMVSC(BaseOptions(true)).Run(warm);
    if (!result.ok()) {
      std::fprintf(stderr, "scale_sweep: warmup failed: %s\n",
                   result.status().message().c_str());
      return 1;
    }
  }

  std::printf("Anchor-path scale sweep%s (m=256, s=5, c=5, V=2)\n",
              smoke ? " [smoke]" : "");
  std::printf("%9s %12s %10s %12s %12s %10s\n", "n", "anchor sec",
              "ARI(truth)", "peak RSS MB", "exact sec", "parity");

  std::vector<SweepRow> rows;
  bool parity_ok = true;
  // Ascending n so ru_maxrss (monotone per process) tracks each leg's peak:
  // the n-th reading is an upper bound set by the largest problem so far,
  // which IS the current one.
  for (std::size_t n : sizes) {
    SweepRow row;
    row.n = n;
    data::MultiViewDataset dataset = MakeDataset(n);

    Stopwatch watch;
    auto anchored = mvsc::UnifiedMVSC(BaseOptions(true)).Run(dataset);
    row.anchor_seconds = watch.ElapsedSeconds();
    if (!anchored.ok()) {
      std::fprintf(stderr, "scale_sweep: anchor solve failed at n=%zu: %s\n",
                   n, anchored.status().message().c_str());
      return 1;
    }
    row.peak_rss_kb = PeakRssKb();
    row.ari_truth_anchor = Ari(anchored->labels, dataset.labels);

    if (n <= exact_cap) {
      watch.Reset();
      auto exact = mvsc::UnifiedMVSC(BaseOptions(false)).Run(dataset);
      row.exact_seconds = watch.ElapsedSeconds();
      if (!exact.ok()) {
        std::fprintf(stderr, "scale_sweep: exact solve failed at n=%zu: %s\n",
                     n, exact.status().message().c_str());
        return 1;
      }
      row.exact_ran = true;
      row.ari_truth_exact = Ari(exact->labels, dataset.labels);
      row.ari_parity = Ari(anchored->labels, exact->labels);
      if (row.ari_parity < kParityFloor) parity_ok = false;
    }

    std::printf("%9zu %12.3f %10.4f %12.1f", row.n, row.anchor_seconds,
                row.ari_truth_anchor,
                static_cast<double>(row.peak_rss_kb) / 1024.0);
    if (row.exact_ran) {
      std::printf(" %12.3f %10.4f\n", row.exact_seconds, row.ari_parity);
    } else {
      std::printf(" %12s %10s\n", "-", "-");
    }
    rows.push_back(row);
  }

  std::size_t slope_points = 0;
  const double slope = FitSlope(rows, slope_floor, &slope_points);
  const bool slope_ok = slope_points < 2 || slope <= kSlopeCeiling;
  std::printf("log-log slope over n >= %zu: %.3f (%zu points, ceiling %.2f)\n",
              slope_floor, slope, slope_points, kSlopeCeiling);

  WriteJson(json_path, smoke, rows, slope, slope_points, slope_floor,
            parity_ok, slope_ok);

  if (smoke && (!parity_ok || !slope_ok)) {
    std::fprintf(stderr,
                 "scale_sweep: FAILED gate (parity_ok=%d slope_ok=%d)\n",
                 parity_ok, slope_ok);
    return 1;
  }
  return 0;
}
