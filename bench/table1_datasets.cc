// Table 1: statistics of the simulated benchmark datasets (n, views, per-
// view dimensionality, clusters). At --scale=1.0 these match the published
// statistics of the real benchmarks; see DESIGN.md for the substitution.

#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);

  std::printf("Table 1: simulated benchmark statistics (scale=%.2f)\n\n",
              config.scale);
  std::printf("%-14s %8s %7s %9s  %s\n", "dataset", "samples", "views",
              "clusters", "view dims");
  for (const std::string& name : data::BenchmarkNames()) {
    StatusOr<data::MultiViewDataset> d =
        data::SimulateBenchmark(name, config.base_seed, config.scale);
    if (!d.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   d.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %8zu %7zu %9zu  [", name.c_str(), d->NumSamples(),
                d->NumViews(), d->NumClusters());
    for (std::size_t v = 0; v < d->NumViews(); ++v) {
      std::printf("%s%zu", v == 0 ? "" : ", ", d->views[v].cols());
    }
    std::printf("]\n");
  }
  return 0;
}
