// Micro-benchmarks of the linear-algebra substrate: GEMM, symmetric
// eigendecomposition, SVD, sparse matvec, Lanczos.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/sparse.h"
#include "la/svd.h"
#include "la/sym_eigen.h"

namespace {

using namespace umvsc;

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  la::Matrix a = la::Matrix::RandomGaussian(n, n, rng);
  la::Matrix b = la::Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::MatMul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_TallGram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  la::Matrix a = la::Matrix::RandomGaussian(n, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Gram(a));
  }
}
BENCHMARK(BM_TallGram)->Arg(512)->Arg(2048);

void BM_SymmetricEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  la::Matrix a = la::Matrix::RandomGaussian(n, n, rng);
  a.Symmetrize();
  for (auto _ : state) {
    auto r = la::SymmetricEigen(a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ThinSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  la::Matrix a = la::Matrix::RandomGaussian(n, 10, rng);
  for (auto _ : state) {
    auto r = la::Svd(a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ThinSvd)->Arg(256)->Arg(1024)->Arg(4096);

la::CsrMatrix RandomKnnLikeGraph(std::size_t n, std::size_t degree,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < degree; ++d) {
      std::size_t j = static_cast<std::size_t>(rng.UniformInt(n));
      if (j == i) continue;
      const double w = rng.Uniform(0.1, 1.0);
      t.push_back({i, j, w});
      t.push_back({j, i, w});
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(t));
}

void BM_SparseMatVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::CsrMatrix a = RandomKnnLikeGraph(n, 10, 5);
  la::Vector x(n, 1.0);
  la::Vector y(n);
  for (auto _ : state) {
    y.Fill(0.0);
    a.MultiplyInto(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.NumNonZeros()));
}
BENCHMARK(BM_SparseMatVec)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LanczosTop8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::CsrMatrix a = RandomKnnLikeGraph(n, 10, 6);
  for (auto _ : state) {
    auto r = la::LanczosLargest(a, 8);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LanczosTop8)->Arg(1000)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
