// Micro-benchmarks of the linear-algebra substrate: GEMM, symmetric
// eigendecomposition, SVD, sparse matvec, Lanczos — plus a single-vs-block
// eigensolver comparison harness at the paper's (n, c) points that emits
// BENCH_eigensolver.json.
//
// Usage:
//   micro_la                  eigensolver + GEMM harness, all google-benchmarks
//   micro_la --smoke          harness only, reduced sizes, asserts that the
//                             block solver needs fewer operator sweeps AND
//                             that the measured auto-policy's choice never
//                             costs more than 1.15x the single-vector wall
//                             time (CI gate)
//   micro_la --json=FILE      write the eigensolver harness results (policy
//                             probes, skinny-SpMM sweep, per-shape legs and
//                             policy decisions) as JSON
//   micro_la --gemm-json=FILE write the GEMM sweep (scalar-forced vs SIMD)
//                             + the Lanczos wall-time ratios as JSON
//   micro_la --harness-only   skip the google-benchmark suite

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "graph/laplacian.h"
#include "la/gemm_kernel.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/sparse.h"
#include "la/svd.h"
#include "la/sym_eigen.h"

namespace {

using namespace umvsc;

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  la::Matrix a = la::Matrix::RandomGaussian(n, n, rng);
  la::Matrix b = la::Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::MatMul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_TallGram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  la::Matrix a = la::Matrix::RandomGaussian(n, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Gram(a));
  }
}
BENCHMARK(BM_TallGram)->Arg(512)->Arg(2048);

void BM_SymmetricEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  la::Matrix a = la::Matrix::RandomGaussian(n, n, rng);
  a.Symmetrize();
  for (auto _ : state) {
    auto r = la::SymmetricEigen(a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ThinSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  la::Matrix a = la::Matrix::RandomGaussian(n, 10, rng);
  for (auto _ : state) {
    auto r = la::Svd(a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ThinSvd)->Arg(256)->Arg(1024)->Arg(4096);

la::CsrMatrix RandomKnnLikeGraph(std::size_t n, std::size_t degree,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < degree; ++d) {
      std::size_t j = static_cast<std::size_t>(rng.UniformInt(n));
      if (j == i) continue;
      const double w = rng.Uniform(0.1, 1.0);
      t.push_back({i, j, w});
      t.push_back({j, i, w});
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(t));
}

void BM_SparseMatVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::CsrMatrix a = RandomKnnLikeGraph(n, 10, 5);
  la::Vector x(n, 1.0);
  la::Vector y(n);
  for (auto _ : state) {
    y.Fill(0.0);
    a.MultiplyInto(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.NumNonZeros()));
}
BENCHMARK(BM_SparseMatVec)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LanczosTop8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::CsrMatrix a = RandomKnnLikeGraph(n, 10, 6);
  for (auto _ : state) {
    auto r = la::LanczosLargest(a, 8);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LanczosTop8)->Arg(1000)->Arg(5000);

// --- Single-vs-block eigensolver comparison at the paper's (n, c) points ---

struct EigBenchPoint {
  const char* dataset;  // which paper dataset this (n, c) mirrors
  std::size_t n;
  std::size_t c;
};

// kNN-like graph with planted c-cluster structure: ~90% of each node's edges
// stay inside its cluster, so the bottom c Laplacian eigenvalues sit below an
// eigengap — the spectral shape the paper's benchmark graphs actually have,
// and the case the spectral-embedding eigensolves run on. (A structureless
// random expander puts eigenvalues 2..c inside the spectral bulk, which no
// extremal eigensolver resolves quickly and no clustering input looks like.)
la::CsrMatrix PlantedClusterGraph(std::size_t n, std::size_t c,
                                  std::size_t degree, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cluster = i % c;
    for (std::size_t d = 0; d < degree; ++d) {
      std::size_t j;
      if (rng.Uniform() < 0.9) {
        j = cluster + c * static_cast<std::size_t>(rng.UniformInt(n / c));
      } else {
        j = static_cast<std::size_t>(rng.UniformInt(n));
      }
      if (j == i || j >= n) continue;
      const double w = rng.Uniform(0.1, 1.0);
      t.push_back({i, j, w});
      t.push_back({j, i, w});
    }
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(t));
}

struct SolverLeg {
  double seconds = 0.0;
  std::size_t sweeps = 0;   // operator applications (vector or panel)
  std::size_t matvecs = 0;  // Krylov directions advanced (panels × width)
};

struct EigBenchRow {
  EigBenchPoint point;
  double spmv_col_seconds = 0.0;  // c column SpMVs
  double spmm_seconds = 0.0;      // one width-c SpMM
  SolverLeg single_leg;
  SolverLeg block_leg;
  bool auto_block = false;  // the measured policy's choice at this shape
  // Wall-time cost of the auto-policy's choice relative to the best
  // single-vector leg: block/single when the policy picks block, 1.0 when
  // it picks (i.e. yields to) single. ≤ 1 means auto never loses.
  double AutoTimeRatio() const {
    return auto_block ? block_leg.seconds / single_leg.seconds : 1.0;
  }
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

EigBenchRow RunEigBenchPoint(const EigBenchPoint& point, std::size_t repeats) {
  la::CsrMatrix affinity = PlantedClusterGraph(point.n, point.c, 10, 7);
  auto lap = graph::Laplacian(affinity, graph::LaplacianKind::kSymmetric);
  if (!lap.ok()) {
    std::fprintf(stderr, "laplacian failed: %s\n",
                 lap.status().ToString().c_str());
    std::exit(1);
  }

  EigBenchRow row;
  row.point = point;

  // SpMV-vs-SpMM throughput: c column matvecs against one width-c panel.
  {
    la::Matrix x(point.n, point.c);
    Rng rng(11);
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
    la::Vector xv(point.n), yv(point.n);
    for (std::size_t i = 0; i < point.n; ++i) xv[i] = x(i, 0);
    la::Matrix y(point.n, point.c);
    const std::size_t inner = std::max<std::size_t>(1, 200000 / point.n);
    double best_spmv = 1e30, best_spmm = 1e30;
    for (std::size_t r = 0; r < repeats; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < inner; ++it) {
        for (std::size_t j = 0; j < point.c; ++j) {
          yv.Fill(0.0);
          lap->MultiplyInto(xv, yv);
        }
      }
      best_spmv = std::min(best_spmv, Seconds(t0) / static_cast<double>(inner));
      t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < inner; ++it) {
        y.Fill(0.0);
        lap->MultiplyInto(x, y);
      }
      best_spmm = std::min(best_spmm, Seconds(t0) / static_cast<double>(inner));
    }
    row.spmv_col_seconds = best_spmv;
    row.spmm_seconds = best_spmm;
  }

  // Solver legs at the production tolerance (cluster::SpectralEmbeddingSparse
  // settings). Sweeps count operator applications through wrapper lambdas, so
  // single = matvecs while block = panel applications.
  la::LanczosOptions options;
  options.seed = 29;
  options.max_subspace = std::min(
      point.n, std::max<std::size_t>(12 * point.c + 100, 250));
  options.tolerance = 3e-6;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::size_t sweeps = 0;
    la::SymmetricOperator op = [&lap, &sweeps](const la::Vector& x,
                                               la::Vector& y) {
      ++sweeps;
      lap->MultiplyInto(x, y);
    };
    la::LanczosOptions local = options;
    std::size_t matvecs = 0;
    local.matvec_count = &matvecs;
    auto t0 = std::chrono::steady_clock::now();
    auto eig = la::LanczosSmallest(op, point.n, point.c, 2.0 + 1e-9, local);
    const double sec = Seconds(t0);
    if (!eig.ok()) {
      std::fprintf(stderr, "single-vector solve failed: %s\n",
                   eig.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0 || sec < row.single_leg.seconds) {
      row.single_leg = {sec, sweeps, matvecs};
    }
  }
  for (std::size_t r = 0; r < repeats; ++r) {
    std::size_t sweeps = 0;
    la::SymmetricBlockOperator op = [&lap, &sweeps](const la::Matrix& x,
                                                    la::Matrix& y) {
      ++sweeps;
      lap->MultiplyInto(x, y);
    };
    la::LanczosOptions local = options;
    std::size_t matvecs = 0;
    local.matvec_count = &matvecs;
    auto t0 = std::chrono::steady_clock::now();
    auto eig =
        la::BlockLanczosSmallest(op, point.n, point.c, 2.0 + 1e-9, local);
    const double sec = Seconds(t0);
    if (!eig.ok()) {
      std::fprintf(stderr, "block solve failed: %s\n",
                   eig.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0 || sec < row.block_leg.seconds) {
      row.block_leg = {sec, sweeps, matvecs};
    }
  }
  row.auto_block = la::EigensolvePolicy::Get().PreferBlock(point.n, point.c);
  return row;
}

// --- Skinny-SpMM specialization vs the generic cache-blocked kernel ---

struct SkinnyRow {
  std::size_t width = 0;
  double generic_seconds = 0.0;
  double skinny_seconds = 0.0;
};

// Times the register-resident skinny kernel (the b ≤ 12 MultiplyInto
// dispatch) against internal::SpmmGeneric on the same graph/panel, at the
// widths the acceptance gate watches. Both paths are bitwise identical
// (la_block_lanczos_test pins that); this measures only the wall time.
std::vector<SkinnyRow> RunSkinnySweep(std::size_t repeats) {
  const std::size_t n = 2000;  // the Handwritten-scale reference graph
  la::CsrMatrix affinity = PlantedClusterGraph(n, 10, 10, 7);
  auto lap = graph::Laplacian(affinity, graph::LaplacianKind::kSymmetric);
  if (!lap.ok()) {
    std::fprintf(stderr, "laplacian failed: %s\n",
                 lap.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<SkinnyRow> rows;
  std::printf("\nskinny spmm: width-specialized vs generic kernel (n=%zu)\n"
              "%5s | %12s %12s %8s\n",
              n, "b", "generic[s]", "skinny[s]", "speedup");
  for (const std::size_t b : {2, 4, 8}) {
    Rng rng(13);
    la::Matrix x = la::Matrix::RandomGaussian(n, b, rng);
    la::Matrix y(n, b);
    const std::size_t inner = std::max<std::size_t>(1, 400000 / n);
    SkinnyRow row;
    row.width = b;
    double best_gen = 1e30, best_skinny = 1e30;
    for (std::size_t r = 0; r < repeats + 1; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < inner; ++it) {
        y.Fill(0.0);
        la::internal::SpmmGeneric(*lap, x, y);
      }
      best_gen = std::min(best_gen, Seconds(t0) / static_cast<double>(inner));
      t0 = std::chrono::steady_clock::now();
      for (std::size_t it = 0; it < inner; ++it) {
        y.Fill(0.0);
        lap->MultiplyInto(x, y);
      }
      best_skinny =
          std::min(best_skinny, Seconds(t0) / static_cast<double>(inner));
    }
    row.generic_seconds = best_gen;
    row.skinny_seconds = best_skinny;
    std::printf("%5zu | %12.3e %12.3e %7.2fx\n", b, best_gen, best_skinny,
                best_gen / best_skinny);
    rows.push_back(row);
  }
  return rows;
}

void WriteEigBenchJson(const std::vector<EigBenchRow>& rows,
                       const std::vector<SkinnyRow>& skinny,
                       const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"eigensolver\",\n  \"tolerance\": 3e-06,\n"
      << "  \"policy_probes\": [\n";
  const auto& probes = la::EigensolvePolicy::Get().probes();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const la::EigensolvePolicy::Probe& p = probes[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"n\": %zu, \"c\": %zu, \"block_seconds\": %.6e,"
                  " \"single_seconds\": %.6e}%s\n",
                  p.n, p.c, p.block_seconds, p.single_seconds,
                  i + 1 < probes.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"skinny_spmm\": [\n";
  for (std::size_t i = 0; i < skinny.size(); ++i) {
    const SkinnyRow& s = skinny[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"width\": %zu, \"generic_seconds\": %.6e,"
                  " \"skinny_seconds\": %.6e, \"spmm_speedup\": %.3f}%s\n",
                  s.width, s.generic_seconds, s.skinny_seconds,
                  s.generic_seconds / s.skinny_seconds,
                  i + 1 < skinny.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EigBenchRow& r = rows[i];
    char buf[1152];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"dataset\": \"%s\", \"n\": %zu, \"c\": %zu,\n"
        "     \"spmv_col_seconds\": %.6e, \"spmm_seconds\": %.6e,"
        " \"spmm_speedup\": %.3f,\n"
        "     \"single\": {\"seconds\": %.6e, \"sweeps\": %zu,"
        " \"matvecs\": %zu},\n"
        "     \"block\": {\"seconds\": %.6e, \"sweeps\": %zu,"
        " \"matvecs\": %zu, \"block_size\": %zu},\n"
        "     \"sweep_ratio\": %.3f, \"policy\": \"%s\","
        " \"block_over_single\": %.3f, \"time_ratio\": %.3f}%s\n",
        r.point.dataset, r.point.n, r.point.c, r.spmv_col_seconds,
        r.spmm_seconds, r.spmv_col_seconds / r.spmm_seconds,
        r.single_leg.seconds, r.single_leg.sweeps, r.single_leg.matvecs,
        r.block_leg.seconds, r.block_leg.sweeps, r.block_leg.matvecs,
        r.point.c,
        static_cast<double>(r.single_leg.sweeps) /
            static_cast<double>(r.block_leg.sweeps),
        r.auto_block ? "block" : "single",
        r.block_leg.seconds / r.single_leg.seconds, r.AutoTimeRatio(),
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

// Returns the number of gate violations (0 = the perf claims hold): the
// block solver must need fewer operator sweeps than the single-vector
// solver at every shape, and the auto-policy's choice must not cost more
// than 1.15× the single-vector wall time anywhere (time_ratio is 1.0 by
// definition where the policy yields to single — the gate catches the
// policy picking block where block loses). Appends the measured rows to
// *out_rows.
int RunEigensolverComparison(bool smoke, std::vector<EigBenchRow>* out_rows) {
  // The paper's benchmark (n, c) shapes (Table 1); smoke keeps the small
  // ones plus ORL — the c = 40 shape where block wall time historically
  // regressed, so CI watches the auto-policy time ratio there too.
  std::vector<EigBenchPoint> points = {
      {"3-Sources", 169, 6}, {"MSRC-v1", 210, 7},  {"ORL", 400, 40},
      {"BBCSport", 544, 5},  {"Handwritten", 2000, 10},
  };
  if (smoke) points.resize(3);
  const std::size_t repeats = smoke ? 1 : 3;

  // Calibrate the policy before the timed legs so its probe solves don't
  // land inside them.
  const auto& probes = la::EigensolvePolicy::Get().probes();
  std::printf("eigensolve policy probes (block[s] / single[s]):\n");
  for (const la::EigensolvePolicy::Probe& p : probes) {
    std::printf("  n=%-4zu c=%-3zu %.3e / %.3e = %.2f\n", p.n, p.c,
                p.block_seconds, p.single_seconds,
                p.block_seconds / p.single_seconds);
  }

  std::printf(
      "\neigensolver: single-vector vs block Lanczos (tolerance 3e-06)\n"
      "%-12s %6s %4s | %10s %10s %7s | %8s %8s %8s %8s | %6s %7s\n",
      "dataset", "n", "c", "spmv-c[s]", "spmm[s]", "speedup", "sv-sweep",
      "blk-sweep", "ratio", "blk/sv", "policy", "t-ratio");
  std::vector<EigBenchRow> rows;
  int violations = 0;
  for (const EigBenchPoint& p : points) {
    EigBenchRow row = RunEigBenchPoint(p, repeats);
    std::printf(
        "%-12s %6zu %4zu | %10.3e %10.3e %6.2fx | %8zu %8zu %7.2fx %7.2fx "
        "| %6s %6.2fx\n",
        row.point.dataset, row.point.n, row.point.c, row.spmv_col_seconds,
        row.spmm_seconds, row.spmv_col_seconds / row.spmm_seconds,
        row.single_leg.sweeps, row.block_leg.sweeps,
        static_cast<double>(row.single_leg.sweeps) /
            static_cast<double>(row.block_leg.sweeps),
        row.block_leg.seconds / row.single_leg.seconds,
        row.auto_block ? "block" : "single", row.AutoTimeRatio());
    if (row.block_leg.sweeps >= row.single_leg.sweeps) {
      ++violations;
      std::fprintf(stderr,
                   "FAIL: block solver needed >= sweeps at %s (n=%zu, c=%zu)\n",
                   row.point.dataset, row.point.n, row.point.c);
    }
    if (row.AutoTimeRatio() > 1.15) {
      ++violations;
      std::fprintf(stderr,
                   "FAIL: auto-policy picked block at %s (n=%zu, c=%zu) where "
                   "it costs %.2fx single-vector (gate: 1.15x)\n",
                   row.point.dataset, row.point.n, row.point.c,
                   row.AutoTimeRatio());
    }
    rows.push_back(row);
  }
  if (out_rows != nullptr) {
    out_rows->insert(out_rows->end(), rows.begin(), rows.end());
  }
  return violations;
}

// --- GEMM sweep: scalar-forced vs SIMD dispatch at the panel shapes ---

struct GemmSweepRow {
  const char* label;  // which solver panel product this shape mirrors
  const char* op;     // "MatTMul" (projection) or "MatMul" (update)
  std::size_t m, n, k;
  double simd_seconds = 0.0;
  double scalar_seconds = 0.0;
};

double GemmGflops(const GemmSweepRow& r, double seconds) {
  return 2.0 * static_cast<double>(r.m) * static_cast<double>(r.n) *
         static_cast<double>(r.k) / seconds / 1e9;
}

// Best-of-repeats wall time of one panel product under the CURRENT dispatch
// state. `tall` is the n×c panel, `small` the c×c square factor.
double TimePanelProduct(const la::Matrix& tall, const la::Matrix& small,
                        bool projection, double flops, std::size_t repeats) {
  const std::size_t inner =
      std::max<std::size_t>(1, static_cast<std::size_t>(4e7 / flops));
  double best = 1e30;
  double sink = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t it = 0; it < inner; ++it) {
      la::Matrix c = projection ? la::MatTMul(tall, tall)
                                : la::MatMul(tall, small);
      sink += c.data()[0];
    }
    best = std::min(best, Seconds(t0) / static_cast<double>(inner));
  }
  benchmark::DoNotOptimize(sink);
  return best;
}

std::vector<GemmSweepRow> RunGemmSweep(bool smoke) {
  // Block-Lanczos panel shapes at the paper's (n, c) points: the projection
  // Hᵢ = Pᵀ·W (MatTMul, k = n) and the panel update W -= P·Hᵢ (MatMul,
  // k = c) — both GEMM flavors the solver's inner loop spends its time in.
  const EigBenchPoint shapes[] = {
      {"ORL", 400, 40},         {"BBCSport", 544, 5},
      {"reference-1000", 1000, 20}, {"Handwritten", 2000, 10},
      {"reference-2000", 2000, 40},
  };
  const std::size_t repeats = smoke ? 1 : 3;

  std::printf(
      "\ngemm: scalar-forced vs %s dispatch (packed register-blocked kernel)\n"
      "%-16s %-8s %6s %6s %6s | %9s %9s %8s\n",
      la::kernel::ActiveBackendName(), "shape", "op", "m", "n", "k",
      "scal GF/s", "simd GF/s", "speedup");
  std::vector<GemmSweepRow> rows;
  for (const EigBenchPoint& s : shapes) {
    Rng rng(17);
    const la::Matrix tall =
        la::Matrix::RandomGaussian(s.n, s.c, rng);  // Krylov panel
    const la::Matrix small = la::Matrix::RandomGaussian(s.c, s.c, rng);
    for (const bool projection : {true, false}) {
      GemmSweepRow row;
      row.label = s.dataset;
      row.op = projection ? "MatTMul" : "MatMul";
      row.m = projection ? s.c : s.n;
      row.n = s.c;
      row.k = projection ? s.n : s.c;
      const double flops = 2.0 * static_cast<double>(row.m) *
                           static_cast<double>(row.n) *
                           static_cast<double>(row.k);
      row.simd_seconds =
          TimePanelProduct(tall, small, projection, flops, repeats);
      {
        la::kernel::ScopedForceScalar force_scalar;
        row.scalar_seconds =
            TimePanelProduct(tall, small, projection, flops, repeats);
      }
      std::printf("%-16s %-8s %6zu %6zu %6zu | %9.2f %9.2f %7.2fx\n",
                  row.label, row.op, row.m, row.n, row.k,
                  GemmGflops(row, row.scalar_seconds),
                  GemmGflops(row, row.simd_seconds),
                  row.scalar_seconds / row.simd_seconds);
      rows.push_back(row);
    }
  }
  return rows;
}

void WriteGemmJson(const std::vector<GemmSweepRow>& rows,
                   const std::vector<EigBenchRow>& eig_rows,
                   const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"gemm\",\n  \"backend\": \""
      << la::kernel::ActiveBackendName() << "\",\n  \"shapes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GemmSweepRow& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"shape\": \"%s\", \"op\": \"%s\","
        " \"m\": %zu, \"n\": %zu, \"k\": %zu,\n"
        "     \"scalar_seconds\": %.6e, \"simd_seconds\": %.6e,\n"
        "     \"scalar_gflops\": %.3f, \"simd_gflops\": %.3f,"
        " \"speedup\": %.3f}%s\n",
        r.label, r.op, r.m, r.n, r.k, r.scalar_seconds, r.simd_seconds,
        GemmGflops(r, r.scalar_seconds), GemmGflops(r, r.simd_seconds),
        r.scalar_seconds / r.simd_seconds, i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"lanczos_time_ratios\": [\n";
  for (std::size_t i = 0; i < eig_rows.size(); ++i) {
    const EigBenchRow& r = eig_rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"dataset\": \"%s\", \"n\": %zu, \"c\": %zu,"
                  " \"block_over_single\": %.3f}%s\n",
                  r.point.dataset, r.point.n, r.point.c,
                  r.block_leg.seconds / r.single_leg.seconds,
                  i + 1 < eig_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool harness_only = false;
  std::string json;
  std::string gemm_json;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--harness-only") {
      harness_only = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else if (arg.rfind("--gemm-json=", 0) == 0) {
      gemm_json = arg.substr(12);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  std::vector<EigBenchRow> eig_rows;
  const int violations = RunEigensolverComparison(smoke, &eig_rows);
  const std::vector<SkinnyRow> skinny_rows = RunSkinnySweep(smoke ? 1 : 3);
  if (!json.empty()) {
    WriteEigBenchJson(eig_rows, skinny_rows, json);
    std::printf("wrote %s\n", json.c_str());
  }
  const std::vector<GemmSweepRow> gemm_rows = RunGemmSweep(smoke);
  if (!gemm_json.empty()) {
    WriteGemmJson(gemm_rows, eig_rows, gemm_json);
    std::printf("wrote %s\n", gemm_json.c_str());
  }
  if (smoke) return violations == 0 ? 0 : 1;
  if (harness_only) return 0;
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
