// Figure 5 (extension experiment): sensitivity to the graph construction —
// ACC of the unified method as a function of the kNN parameter, and
// self-tuning-kernel vs adaptive-neighbor graphs. The shape to reproduce: a
// broad plateau over k (graph-based methods are robust once k exceeds the
// minimum needed for within-cluster connectivity).
//
//   ./fig5_graph_sensitivity [--scale=0.4] [--seeds=3]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace {

using namespace umvsc;

double MeanAccuracy(const std::string& dataset_name,
                    const bench::BenchConfig& config,
                    const mvsc::GraphOptions& graph_options) {
  std::vector<double> accs;
  for (std::size_t s = 0; s < config.seeds; ++s) {
    const std::uint64_t seed = config.base_seed + 1000 * s;
    auto dataset = data::SimulateBenchmark(dataset_name, seed, config.scale);
    if (!dataset.ok()) continue;
    auto graphs = mvsc::BuildGraphs(*dataset, graph_options);
    if (!graphs.ok()) continue;
    mvsc::UnifiedOptions options;
    options.num_clusters = dataset->NumClusters();
    options.seed = seed;
    auto result = mvsc::UnifiedMVSC(options).Run(*graphs);
    if (!result.ok()) continue;
    auto acc = eval::ClusteringAccuracy(result->labels, dataset->labels);
    if (acc.ok()) accs.push_back(*acc);
  }
  return bench::Aggregate(accs).mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;

  const std::vector<std::size_t> ks = {3, 5, 8, 10, 15, 20, 30};
  const std::vector<std::string> datasets = {"MSRC-v1", "Handwritten",
                                             "3-Sources"};

  std::printf(
      "Figure 5a: UMVSC ACC vs kNN parameter (self-tuning graphs, "
      "scale=%.2f, %zu seeds)\n\n",
      config.scale, config.seeds);
  std::printf("%-8s", "k");
  for (const auto& name : datasets) std::printf(" %12s", name.c_str());
  std::printf("\n");
  for (std::size_t k : ks) {
    std::printf("%-8zu", k);
    for (const auto& name : datasets) {
      mvsc::GraphOptions graph_options;
      graph_options.knn = k;
      std::printf(" %12.3f", MeanAccuracy(name, config, graph_options));
    }
    std::printf("\n");
  }

  std::printf(
      "\nFigure 5b: graph construction — self-tuning kernel vs adaptive "
      "neighbors (k=10)\n\n");
  std::printf("%-14s %14s %14s\n", "dataset", "self-tuning", "adaptive");
  for (const auto& name : datasets) {
    mvsc::GraphOptions self_tuning;
    mvsc::GraphOptions adaptive;
    adaptive.adaptive_neighbors = true;
    std::printf("%-14s %14.3f %14.3f\n", name.c_str(),
                MeanAccuracy(name, config, self_tuning),
                MeanAccuracy(name, config, adaptive));
  }
  return 0;
}
