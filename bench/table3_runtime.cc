// Table 3: wall-clock runtime (seconds, mean over seeds) of every method on
// every simulated benchmark, plus the shared graph-construction time. The
// shape to reproduce: the unified method costs the same order as the
// two-stage pipelines (its per-iteration work is sparse), while Co-Reg pays
// V eigensolves per iteration.
//
// Also measures thread scaling: the full UMVSC pipeline (graph build +
// solve) on the largest simulated benchmark at 1 thread vs N threads, with
// the speedup recorded in the benchmark JSON (--json=PATH, default
// table3_runtime.json) so the perf trajectory is tracked across PRs.
//
// Finally, an n-scaling sweep of graph construction compares the tiled
// O(n·k)-memory builder against the dense pipeline (capped at moderate n):
// wall time, peak RSS, cumulative bytes allocated, and the largest single
// allocation per leg, written to BENCH_graph_memory.json. The dense leg's
// n × n buffers are projected analytically at sizes where running it would
// be wasteful.
//
//   ./table3_runtime [--scale=0.4] [--seeds=3] [--threads=8] [--json=PATH]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"
#include "mvsc/graphs.h"

namespace {

// --- Allocation instrumentation (this binary only): cumulative bytes and
// the largest single block requested while tracking is on.
std::atomic<bool> g_track_allocs{false};
std::atomic<std::size_t> g_bytes_allocated{0};
std::atomic<std::size_t> g_max_alloc{0};

void RecordAlloc(std::size_t size) {
  if (!g_track_allocs.load(std::memory_order_relaxed)) return;
  g_bytes_allocated.fetch_add(size, std::memory_order_relaxed);
  std::size_t prev = g_max_alloc.load(std::memory_order_relaxed);
  while (size > prev &&
         !g_max_alloc.compare_exchange_weak(prev, size,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

void* operator new(std::size_t size) {
  RecordAlloc(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using umvsc::bench::PeakRssKb;

struct MemoryLeg {
  double seconds = 0.0;
  std::size_t bytes_allocated = 0;
  std::size_t max_alloc_bytes = 0;
  std::size_t rss_after_kb = 0;
  bool ran = false;
};

struct MemoryRow {
  std::size_t n = 0;
  std::size_t k = 0;
  MemoryLeg tiled;
  MemoryLeg dense;
  std::size_t dense_projected_bytes = 0;  // one n × n double buffer
};

template <typename Fn>
MemoryLeg MeasureLeg(const Fn& fn) {
  MemoryLeg leg;
  g_bytes_allocated.store(0, std::memory_order_relaxed);
  g_max_alloc.store(0, std::memory_order_relaxed);
  g_track_allocs.store(true, std::memory_order_relaxed);
  umvsc::Stopwatch watch;
  fn();
  leg.seconds = watch.ElapsedSeconds();
  g_track_allocs.store(false, std::memory_order_relaxed);
  leg.bytes_allocated = g_bytes_allocated.load(std::memory_order_relaxed);
  leg.max_alloc_bytes = g_max_alloc.load(std::memory_order_relaxed);
  leg.rss_after_kb = PeakRssKb();
  leg.ran = true;
  return leg;
}

// The n-scaling sweep: tiled feature-direct construction at every size,
// the dense pipeline only while its n × n buffers stay modest.
std::vector<MemoryRow> RunGraphMemorySweep(double scale) {
  constexpr std::size_t kNeighbors = 10;
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kDenseCap = 4096;  // dense leg: n² ≤ 128 MB
  std::vector<MemoryRow> rows;
  for (std::size_t base : {std::size_t{2000}, std::size_t{5000},
                           std::size_t{10000}, std::size_t{20000}}) {
    const std::size_t n =
        std::max<std::size_t>(200, static_cast<std::size_t>(base * scale));
    MemoryRow row;
    row.n = n;
    row.k = kNeighbors;
    row.dense_projected_bytes = n * n * sizeof(double);

    umvsc::Rng rng(29 + n);
    umvsc::la::Matrix x(n, kDim);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < kDim; ++j) {
        x(i, j) = rng.Gaussian((i % 5) * 2.0, 1.0);
      }
    }

    row.tiled = MeasureLeg([&] {
      auto w = umvsc::graph::BuildKnnGraphFromFeatures(x, kNeighbors);
      if (!w.ok()) std::abort();
    });
    if (n <= kDenseCap) {
      row.dense = MeasureLeg([&] {
        umvsc::la::Matrix sq = umvsc::graph::PairwiseSquaredDistances(x);
        auto kernel = umvsc::graph::SelfTuningKernel(sq, kNeighbors);
        if (!kernel.ok()) std::abort();
        auto w = umvsc::graph::BuildKnnGraph(*kernel, kNeighbors);
        if (!w.ok()) std::abort();
      });
    }
    rows.push_back(row);
  }
  return rows;
}

void PrintAndWriteMemorySweep(const std::vector<MemoryRow>& rows) {
  std::printf(
      "\nGraph construction memory sweep (k=%zu): tiled vs dense pipeline\n",
      rows.empty() ? std::size_t{10} : rows.front().k);
  std::printf("%8s %12s %16s %16s %14s %16s\n", "n", "tiled sec",
              "tiled max alloc", "tiled cum bytes", "dense sec",
              "dense max alloc");
  for (const MemoryRow& row : rows) {
    std::printf("%8zu %12.3f %16zu %16zu", row.n, row.tiled.seconds,
                row.tiled.max_alloc_bytes, row.tiled.bytes_allocated);
    if (row.dense.ran) {
      std::printf(" %14.3f %16zu\n", row.dense.seconds,
                  row.dense.max_alloc_bytes);
    } else {
      std::printf(" %14s %13zu (projected)\n", "-",
                  row.dense_projected_bytes);
    }
  }
  if (!rows.empty()) {
    const MemoryRow& last = rows.back();
    if (last.tiled.max_alloc_bytes > 0) {
      std::printf(
          "largest n=%zu: dense n*n buffer %zu bytes vs tiled peak block %zu "
          "bytes (%.1fx smaller)\n",
          last.n, last.dense_projected_bytes, last.tiled.max_alloc_bytes,
          static_cast<double>(last.dense_projected_bytes) /
              static_cast<double>(last.tiled.max_alloc_bytes));
    }
  }

  std::FILE* f = std::fopen("BENCH_graph_memory.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table3_runtime: cannot write BENCH_graph_memory.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"graph_memory\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MemoryRow& row = rows[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"k\": %zu,\n"
                 "     \"tiled_seconds\": %.6f, \"tiled_bytes_allocated\": %zu,"
                 " \"tiled_max_alloc_bytes\": %zu, \"rss_peak_kb\": %zu,\n",
                 row.n, row.k, row.tiled.seconds, row.tiled.bytes_allocated,
                 row.tiled.max_alloc_bytes, row.tiled.rss_after_kb);
    if (row.dense.ran) {
      std::fprintf(f,
                   "     \"dense_seconds\": %.6f, \"dense_bytes_allocated\": "
                   "%zu, \"dense_max_alloc_bytes\": %zu,\n",
                   row.dense.seconds, row.dense.bytes_allocated,
                   row.dense.max_alloc_bytes);
    }
    std::fprintf(f, "     \"dense_projected_bytes\": %zu}%s\n",
                 row.dense_projected_bytes,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_graph_memory.json\n");
}

// Emits the per-method runtime table plus the thread-scaling block as a
// single JSON document.
void WriteJson(
    const std::string& path, const umvsc::bench::BenchConfig& config,
    const std::vector<std::string>& method_order,
    std::map<std::string, std::map<std::string, std::vector<double>>>& times,
    std::map<std::string, std::vector<double>>& graph_times,
    const umvsc::bench::ThreadScaling& scaling) {
  using umvsc::bench::Aggregate;
  using umvsc::bench::JsonEscape;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table3_runtime: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"table3_runtime\",\n");
  std::fprintf(f, "  \"scale\": %g,\n  \"seeds\": %zu,\n", config.scale,
               config.seeds);
  std::fprintf(f, "  \"runtimes_seconds\": {\n");
  const std::vector<std::string> names = umvsc::data::BenchmarkNames();
  for (std::size_t d = 0; d < names.size(); ++d) {
    std::fprintf(f, "    \"%s\": {\n", JsonEscape(names[d]).c_str());
    for (const std::string& method : method_order) {
      std::fprintf(f, "      \"%s\": %.6f,\n", JsonEscape(method).c_str(),
                   Aggregate(times[names[d]][method]).mean);
    }
    std::fprintf(f, "      \"(graph build)\": %.6f\n    }%s\n",
                 Aggregate(graph_times[names[d]]).mean,
                 d + 1 < names.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"thread_scaling\": {\n"
               "    \"dataset\": \"%s\",\n"
               "    \"num_samples\": %zu,\n"
               "    \"num_views\": %zu,\n"
               "    \"baseline_threads\": %zu,\n"
               "    \"parallel_threads\": %zu,\n"
               "    \"baseline_seconds\": %.6f,\n"
               "    \"parallel_seconds\": %.6f,\n"
               "    \"speedup\": %.3f\n"
               "  }\n}\n",
               JsonEscape(scaling.dataset).c_str(), scaling.num_samples,
               scaling.num_views, scaling.baseline_threads,
               scaling.parallel_threads, scaling.baseline_seconds,
               scaling.parallel_seconds, scaling.speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;  // runtime table needs fewer seeds
  if (config.json.empty()) config.json = "table3_runtime.json";

  std::printf("Table 3: runtime in seconds, mean over %zu seeds (scale=%.2f)\n",
              config.seeds, config.scale);

  std::vector<std::string> method_order;
  std::map<std::string, std::map<std::string, std::vector<double>>> times;
  std::map<std::string, std::vector<double>> graph_times;

  for (const std::string& name : data::BenchmarkNames()) {
    for (std::size_t s = 0; s < config.seeds; ++s) {
      const std::uint64_t seed = config.base_seed + 1000 * s;
      StatusOr<data::MultiViewDataset> dataset =
          data::SimulateBenchmark(name, seed, config.scale);
      if (!dataset.ok()) return 1;
      Stopwatch watch;
      StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
      if (!graphs.ok()) return 1;
      graph_times[name].push_back(watch.ElapsedSeconds());
      for (bench::MethodRun& run : bench::RunAllMethods(
               *dataset, *graphs, dataset->NumClusters(), seed)) {
        if (times[name].find(run.method) == times[name].end() &&
            name == data::BenchmarkNames().front() && s == 0) {
          method_order.push_back(run.method);
        }
        if (run.ok) times[name][run.method].push_back(run.seconds);
      }
    }
  }

  std::printf("\n%-14s", "method");
  for (const std::string& name : data::BenchmarkNames()) {
    std::printf(" %12s", name.substr(0, 12).c_str());
  }
  std::printf("\n");
  for (const std::string& method : method_order) {
    std::printf("%-14s", method.c_str());
    for (const std::string& name : data::BenchmarkNames()) {
      bench::MetricStats stats = bench::Aggregate(times[name][method]);
      std::printf(" %12.3f", stats.mean);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "(graph build)");
  for (const std::string& name : data::BenchmarkNames()) {
    std::printf(" %12.3f", bench::Aggregate(graph_times[name]).mean);
  }
  std::printf("\n");

  // --- Thread scaling on the largest simulated benchmark: the unified
  // pipeline at 1 thread vs N threads, bitwise-identical output by the
  // determinism contract, so only the clock differs.
  std::string largest_name;
  std::size_t largest_n = 0;
  StatusOr<data::MultiViewDataset> largest =
      Status::NotFound("no benchmark datasets");
  for (const std::string& name : data::BenchmarkNames()) {
    StatusOr<data::MultiViewDataset> dataset =
        data::SimulateBenchmark(name, config.base_seed, config.scale);
    if (dataset.ok() && dataset->NumSamples() > largest_n) {
      largest_n = dataset->NumSamples();
      largest_name = name;
      largest = std::move(dataset);
    }
  }
  if (largest.ok()) {
    bench::ThreadScaling scaling = bench::MeasureThreadScaling(
        *largest, largest->NumClusters(), config.base_seed, config.threads);
    std::printf(
        "\nThread scaling (%s, n=%zu, V=%zu): %zu thread(s) %.3fs -> "
        "%zu threads %.3fs, speedup %.2fx\n",
        scaling.dataset.c_str(), scaling.num_samples, scaling.num_views,
        scaling.baseline_threads, scaling.baseline_seconds,
        scaling.parallel_threads, scaling.parallel_seconds, scaling.speedup);
    WriteJson(config.json, config, method_order, times, graph_times, scaling);
  }

  PrintAndWriteMemorySweep(RunGraphMemorySweep(config.scale));
  return 0;
}
