// Table 3: wall-clock runtime (seconds, mean over seeds) of every method on
// every simulated benchmark, plus the shared graph-construction time. The
// shape to reproduce: the unified method costs the same order as the
// two-stage pipelines (its per-iteration work is sparse), while Co-Reg pays
// V eigensolves per iteration.
//
// Also measures thread scaling: the full UMVSC pipeline (graph build +
// solve) on the largest simulated benchmark at 1 thread vs N threads, with
// the speedup recorded in the benchmark JSON (--json=PATH, default
// table3_runtime.json) so the perf trajectory is tracked across PRs.
//
//   ./table3_runtime [--scale=0.4] [--seeds=3] [--threads=8] [--json=PATH]

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "mvsc/graphs.h"

namespace {

// Emits the per-method runtime table plus the thread-scaling block as a
// single JSON document.
void WriteJson(
    const std::string& path, const umvsc::bench::BenchConfig& config,
    const std::vector<std::string>& method_order,
    std::map<std::string, std::map<std::string, std::vector<double>>>& times,
    std::map<std::string, std::vector<double>>& graph_times,
    const umvsc::bench::ThreadScaling& scaling) {
  using umvsc::bench::Aggregate;
  using umvsc::bench::JsonEscape;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table3_runtime: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"table3_runtime\",\n");
  std::fprintf(f, "  \"scale\": %g,\n  \"seeds\": %zu,\n", config.scale,
               config.seeds);
  std::fprintf(f, "  \"runtimes_seconds\": {\n");
  const std::vector<std::string> names = umvsc::data::BenchmarkNames();
  for (std::size_t d = 0; d < names.size(); ++d) {
    std::fprintf(f, "    \"%s\": {\n", JsonEscape(names[d]).c_str());
    for (const std::string& method : method_order) {
      std::fprintf(f, "      \"%s\": %.6f,\n", JsonEscape(method).c_str(),
                   Aggregate(times[names[d]][method]).mean);
    }
    std::fprintf(f, "      \"(graph build)\": %.6f\n    }%s\n",
                 Aggregate(graph_times[names[d]]).mean,
                 d + 1 < names.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"thread_scaling\": {\n"
               "    \"dataset\": \"%s\",\n"
               "    \"num_samples\": %zu,\n"
               "    \"num_views\": %zu,\n"
               "    \"baseline_threads\": %zu,\n"
               "    \"parallel_threads\": %zu,\n"
               "    \"baseline_seconds\": %.6f,\n"
               "    \"parallel_seconds\": %.6f,\n"
               "    \"speedup\": %.3f\n"
               "  }\n}\n",
               JsonEscape(scaling.dataset).c_str(), scaling.num_samples,
               scaling.num_views, scaling.baseline_threads,
               scaling.parallel_threads, scaling.baseline_seconds,
               scaling.parallel_seconds, scaling.speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;  // runtime table needs fewer seeds
  if (config.json.empty()) config.json = "table3_runtime.json";

  std::printf("Table 3: runtime in seconds, mean over %zu seeds (scale=%.2f)\n",
              config.seeds, config.scale);

  std::vector<std::string> method_order;
  std::map<std::string, std::map<std::string, std::vector<double>>> times;
  std::map<std::string, std::vector<double>> graph_times;

  for (const std::string& name : data::BenchmarkNames()) {
    for (std::size_t s = 0; s < config.seeds; ++s) {
      const std::uint64_t seed = config.base_seed + 1000 * s;
      StatusOr<data::MultiViewDataset> dataset =
          data::SimulateBenchmark(name, seed, config.scale);
      if (!dataset.ok()) return 1;
      Stopwatch watch;
      StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
      if (!graphs.ok()) return 1;
      graph_times[name].push_back(watch.ElapsedSeconds());
      for (bench::MethodRun& run : bench::RunAllMethods(
               *dataset, *graphs, dataset->NumClusters(), seed)) {
        if (times[name].find(run.method) == times[name].end() &&
            name == data::BenchmarkNames().front() && s == 0) {
          method_order.push_back(run.method);
        }
        if (run.ok) times[name][run.method].push_back(run.seconds);
      }
    }
  }

  std::printf("\n%-14s", "method");
  for (const std::string& name : data::BenchmarkNames()) {
    std::printf(" %12s", name.substr(0, 12).c_str());
  }
  std::printf("\n");
  for (const std::string& method : method_order) {
    std::printf("%-14s", method.c_str());
    for (const std::string& name : data::BenchmarkNames()) {
      bench::MetricStats stats = bench::Aggregate(times[name][method]);
      std::printf(" %12.3f", stats.mean);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "(graph build)");
  for (const std::string& name : data::BenchmarkNames()) {
    std::printf(" %12.3f", bench::Aggregate(graph_times[name]).mean);
  }
  std::printf("\n");

  // --- Thread scaling on the largest simulated benchmark: the unified
  // pipeline at 1 thread vs N threads, bitwise-identical output by the
  // determinism contract, so only the clock differs.
  std::string largest_name;
  std::size_t largest_n = 0;
  StatusOr<data::MultiViewDataset> largest =
      Status::NotFound("no benchmark datasets");
  for (const std::string& name : data::BenchmarkNames()) {
    StatusOr<data::MultiViewDataset> dataset =
        data::SimulateBenchmark(name, config.base_seed, config.scale);
    if (dataset.ok() && dataset->NumSamples() > largest_n) {
      largest_n = dataset->NumSamples();
      largest_name = name;
      largest = std::move(dataset);
    }
  }
  if (largest.ok()) {
    bench::ThreadScaling scaling = bench::MeasureThreadScaling(
        *largest, largest->NumClusters(), config.base_seed, config.threads);
    std::printf(
        "\nThread scaling (%s, n=%zu, V=%zu): %zu thread(s) %.3fs -> "
        "%zu threads %.3fs, speedup %.2fx\n",
        scaling.dataset.c_str(), scaling.num_samples, scaling.num_views,
        scaling.baseline_threads, scaling.baseline_seconds,
        scaling.parallel_threads, scaling.parallel_seconds, scaling.speedup);
    WriteJson(config.json, config, method_order, times, graph_times, scaling);
  }
  return 0;
}
