// Table 3: wall-clock runtime (seconds, mean over seeds) of every method on
// every simulated benchmark, plus the shared graph-construction time. The
// shape to reproduce: the unified method costs the same order as the
// two-stage pipelines (its per-iteration work is sparse), while Co-Reg pays
// V eigensolves per iteration.
//
//   ./table3_runtime [--scale=0.4] [--seeds=3]

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "mvsc/graphs.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;  // runtime table needs fewer seeds

  std::printf("Table 3: runtime in seconds, mean over %zu seeds (scale=%.2f)\n",
              config.seeds, config.scale);

  std::vector<std::string> method_order;
  std::map<std::string, std::map<std::string, std::vector<double>>> times;
  std::map<std::string, std::vector<double>> graph_times;

  for (const std::string& name : data::BenchmarkNames()) {
    for (std::size_t s = 0; s < config.seeds; ++s) {
      const std::uint64_t seed = config.base_seed + 1000 * s;
      StatusOr<data::MultiViewDataset> dataset =
          data::SimulateBenchmark(name, seed, config.scale);
      if (!dataset.ok()) return 1;
      Stopwatch watch;
      StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
      if (!graphs.ok()) return 1;
      graph_times[name].push_back(watch.ElapsedSeconds());
      for (bench::MethodRun& run : bench::RunAllMethods(
               *dataset, *graphs, dataset->NumClusters(), seed)) {
        if (times[name].find(run.method) == times[name].end() &&
            name == data::BenchmarkNames().front() && s == 0) {
          method_order.push_back(run.method);
        }
        if (run.ok) times[name][run.method].push_back(run.seconds);
      }
    }
  }

  std::printf("\n%-14s", "method");
  for (const std::string& name : data::BenchmarkNames()) {
    std::printf(" %12s", name.substr(0, 12).c_str());
  }
  std::printf("\n");
  for (const std::string& method : method_order) {
    std::printf("%-14s", method.c_str());
    for (const std::string& name : data::BenchmarkNames()) {
      bench::MetricStats stats = bench::Aggregate(times[name][method]);
      std::printf(" %12.3f", stats.mean);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "(graph build)");
  for (const std::string& name : data::BenchmarkNames()) {
    std::printf(" %12.3f", bench::Aggregate(graph_times[name]).mean);
  }
  std::printf("\n");
  return 0;
}
