// Figure 2: parameter sensitivity of the unified method — ACC as a function
// of β (discretization weight) and γ (view-weight smoothness) on three
// benchmarks. The shape to reproduce: a wide stable plateau over β with
// degradation only at the extremes, and mild sensitivity to γ.
//
//   ./fig2_sensitivity [--scale=0.4] [--seeds=3]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace {

// ACC of UMVSC under the given options, averaged over seeds.
double MeanAccuracy(const std::string& dataset_name,
                    const umvsc::bench::BenchConfig& config, double beta,
                    double gamma) {
  using namespace umvsc;
  std::vector<double> accs;
  for (std::size_t s = 0; s < config.seeds; ++s) {
    const std::uint64_t seed = config.base_seed + 1000 * s;
    auto dataset = data::SimulateBenchmark(dataset_name, seed, config.scale);
    if (!dataset.ok()) continue;
    auto graphs = mvsc::BuildGraphs(*dataset);
    if (!graphs.ok()) continue;
    mvsc::UnifiedOptions options;
    options.num_clusters = dataset->NumClusters();
    options.beta = beta;
    options.gamma = gamma;
    options.seed = seed;
    auto result = mvsc::UnifiedMVSC(options).Run(*graphs);
    if (!result.ok()) continue;
    auto acc = eval::ClusteringAccuracy(result->labels, dataset->labels);
    if (acc.ok()) accs.push_back(*acc);
  }
  return umvsc::bench::Aggregate(accs).mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;

  const std::vector<std::string> datasets = {"MSRC-v1", "Handwritten",
                                             "3-Sources"};
  const std::vector<double> betas = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3};
  const std::vector<double> gammas = {1.2, 1.5, 2.0, 3.0, 5.0, 8.0};

  std::printf("Figure 2a: ACC vs beta (gamma=2, scale=%.2f, %zu seeds)\n\n",
              config.scale, config.seeds);
  std::printf("%-12s", "beta");
  for (const auto& name : datasets) std::printf(" %12s", name.c_str());
  std::printf("\n");
  for (double beta : betas) {
    std::printf("%-12g", beta);
    for (const auto& name : datasets) {
      std::printf(" %12.3f", MeanAccuracy(name, config, beta, 2.0));
    }
    std::printf("\n");
  }

  std::printf("\nFigure 2b: ACC vs gamma (beta=1, scale=%.2f, %zu seeds)\n\n",
              config.scale, config.seeds);
  std::printf("%-12s", "gamma");
  for (const auto& name : datasets) std::printf(" %12s", name.c_str());
  std::printf("\n");
  for (double gamma : gammas) {
    std::printf("%-12g", gamma);
    for (const auto& name : datasets) {
      std::printf(" %12.3f", MeanAccuracy(name, config, 1.0, gamma));
    }
    std::printf("\n");
  }
  return 0;
}
