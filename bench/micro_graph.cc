// Micro-benchmarks of the graph substrate: pairwise distances, self-tuning
// kernel, kNN sparsification, Laplacian assembly.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"
#include "graph/laplacian.h"

namespace {

using namespace umvsc;

la::Matrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  return la::Matrix::RandomGaussian(n, d, rng);
}

void BM_PairwiseDistances(benchmark::State& state) {
  la::Matrix x = RandomData(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::PairwiseSquaredDistances(x));
  }
}
BENCHMARK(BM_PairwiseDistances)
    ->Args({200, 64})
    ->Args({1000, 64})
    ->Args({1000, 512})
    ->Args({2000, 256});

void BM_SelfTuningKernel(benchmark::State& state) {
  la::Matrix x = RandomData(static_cast<std::size_t>(state.range(0)), 32, 2);
  la::Matrix d2 = graph::PairwiseSquaredDistances(x);
  for (auto _ : state) {
    auto w = graph::SelfTuningKernel(d2, 10);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_SelfTuningKernel)->Arg(200)->Arg(1000)->Arg(2000);

void BM_BuildKnnGraph(benchmark::State& state) {
  la::Matrix x = RandomData(static_cast<std::size_t>(state.range(0)), 32, 3);
  la::Matrix d2 = graph::PairwiseSquaredDistances(x);
  auto kernel = graph::SelfTuningKernel(d2, 10);
  for (auto _ : state) {
    auto w = graph::BuildKnnGraph(*kernel, 10);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_BuildKnnGraph)->Arg(200)->Arg(1000)->Arg(2000);

void BM_SparseLaplacian(benchmark::State& state) {
  la::Matrix x = RandomData(static_cast<std::size_t>(state.range(0)), 32, 4);
  la::Matrix d2 = graph::PairwiseSquaredDistances(x);
  auto kernel = graph::SelfTuningKernel(d2, 10);
  auto w = graph::BuildKnnGraph(*kernel, 10);
  for (auto _ : state) {
    auto l = graph::Laplacian(*w, graph::LaplacianKind::kSymmetric);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_SparseLaplacian)->Arg(1000)->Arg(2000);

void BM_AdaptiveNeighborGraph(benchmark::State& state) {
  la::Matrix x = RandomData(static_cast<std::size_t>(state.range(0)), 32, 5);
  la::Matrix d2 = graph::PairwiseSquaredDistances(x);
  for (auto _ : state) {
    auto w = graph::AdaptiveNeighborGraph(d2, 10);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_AdaptiveNeighborGraph)->Arg(200)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
