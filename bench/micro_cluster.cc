// Micro-benchmarks of the clustering substrate: K-means, spectral
// embedding, Yu–Shi discretization, GPI, and the full unified solver.

#include <benchmark/benchmark.h>

#include "cluster/gpi.h"
#include "cluster/kmeans.h"
#include "cluster/rotation.h"
#include "cluster/spectral.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "la/qr.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace {

using namespace umvsc;

data::MultiViewDataset Dataset(std::size_t n, std::size_t c,
                               std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = n;
  config.num_clusters = c;
  config.views = {{24, data::ViewQuality::kInformative, 0.6},
                  {12, data::ViewQuality::kWeak, 1.0},
                  {16, data::ViewQuality::kNoisy, 1.0}};
  config.seed = seed;
  auto d = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(d.ok(), "bench dataset generation failed");
  return std::move(*d);
}

void BM_KMeans(benchmark::State& state) {
  data::MultiViewDataset d = Dataset(static_cast<std::size_t>(state.range(0)),
                                     8, 1);
  cluster::KMeansOptions options;
  options.num_clusters = 8;
  options.restarts = 10;
  for (auto _ : state) {
    auto r = cluster::KMeans(d.views[0], options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KMeans)->Arg(500)->Arg(2000);

void BM_SpectralEmbeddingSparse(benchmark::State& state) {
  data::MultiViewDataset d = Dataset(static_cast<std::size_t>(state.range(0)),
                                     8, 2);
  auto graphs = mvsc::BuildGraphs(d);
  UMVSC_CHECK(graphs.ok(), "graph build failed");
  for (auto _ : state) {
    auto f = cluster::SpectralEmbeddingSparse(graphs->affinities[0], 8, true);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_SpectralEmbeddingSparse)->Arg(500)->Arg(2000);

void BM_Discretize(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix f = la::Orthonormalize(la::Matrix::RandomGaussian(n, 10, rng));
  cluster::RotationOptions options;
  for (auto _ : state) {
    auto r = cluster::DiscretizeEmbedding(f, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Discretize)->Arg(500)->Arg(2000);

void BM_GpiSparse(benchmark::State& state) {
  data::MultiViewDataset d = Dataset(static_cast<std::size_t>(state.range(0)),
                                     8, 4);
  auto graphs = mvsc::BuildGraphs(d);
  UMVSC_CHECK(graphs.ok(), "graph build failed");
  Rng rng(5);
  const std::size_t n = graphs->NumSamples();
  la::Matrix b = la::Matrix::RandomGaussian(n, 8, rng);
  la::Matrix f0 = la::Orthonormalize(la::Matrix::RandomGaussian(n, 8, rng));
  cluster::GpiOptions options;
  options.max_iterations = 30;
  for (auto _ : state) {
    auto r = cluster::GeneralizedPowerIteration(graphs->laplacians[0], b, f0,
                                                options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GpiSparse)->Arg(500)->Arg(2000);

void BM_UnifiedSolver(benchmark::State& state) {
  data::MultiViewDataset d = Dataset(static_cast<std::size_t>(state.range(0)),
                                     8, 6);
  auto graphs = mvsc::BuildGraphs(d);
  UMVSC_CHECK(graphs.ok(), "graph build failed");
  mvsc::UnifiedOptions options;
  options.num_clusters = 8;
  for (auto _ : state) {
    auto r = mvsc::UnifiedMVSC(options).Run(*graphs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_UnifiedSolver)->Arg(500)->Arg(1500);

}  // namespace

BENCHMARK_MAIN();
