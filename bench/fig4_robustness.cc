// Figure 4 (extension experiment): robustness to view corruption — ACC of
// the unified method vs the uniform-weight ablation and the graph-average
// baseline as one view of each benchmark is progressively replaced by
// noise. The shape to reproduce: adaptive view weighting degrades slowly
// (it learns to ignore the corrupted view) while unweighted fusion tracks
// the corruption level.
//
//   ./fig4_robustness [--scale=0.4] [--seeds=3]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/corruption.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/baselines.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace {

using namespace umvsc;

struct Point {
  double unified = 0.0;   // γ-power weighting, absolute smoothness
  double robust = 0.0;    // γ-power weighting, excess-smoothness variant
  double uniform = 0.0;   // fixed uniform weights
  double graph_avg = 0.0; // plain graph averaging baseline
};

Point MeasureAt(const std::string& dataset_name, double corruption,
                const bench::BenchConfig& config) {
  std::vector<double> unified_acc, robust_acc, uniform_acc, avg_acc;
  for (std::size_t s = 0; s < config.seeds; ++s) {
    const std::uint64_t seed = config.base_seed + 1000 * s;
    auto dataset = data::SimulateBenchmark(dataset_name, seed, config.scale);
    if (!dataset.ok()) continue;
    // Corrupt the MOST TRUSTED view: the one the unified method weights
    // highest on clean data ("your best descriptor breaks" — the hardest
    // corruption for fixed fusion schemes, the one adaptive weighting is
    // supposed to survive).
    std::size_t victim = 0;
    {
      auto clean_graphs = mvsc::BuildGraphs(*dataset);
      if (!clean_graphs.ok()) continue;
      mvsc::UnifiedOptions probe;
      probe.num_clusters = dataset->NumClusters();
      probe.seed = seed;
      auto clean = mvsc::UnifiedMVSC(probe).Run(*clean_graphs);
      if (!clean.ok()) continue;
      for (std::size_t v = 1; v < clean->view_weights.size(); ++v) {
        if (clean->view_weights[v] > clean->view_weights[victim]) victim = v;
      }
    }
    if (corruption > 0.0) {
      Status st = data::CorruptSampleRows(*dataset, victim, corruption,
                                          seed + 555);
      if (!st.ok()) continue;
    }
    auto graphs = mvsc::BuildGraphs(*dataset);
    if (!graphs.ok()) continue;
    const std::size_t c = dataset->NumClusters();

    mvsc::UnifiedOptions uo;
    uo.num_clusters = c;
    uo.seed = seed;
    auto unified = mvsc::UnifiedMVSC(uo).Run(*graphs);
    if (unified.ok()) {
      auto acc = eval::ClusteringAccuracy(unified->labels, dataset->labels);
      if (acc.ok()) unified_acc.push_back(*acc);
    }
    mvsc::UnifiedOptions ur = uo;
    ur.smoothness = mvsc::SmoothnessNormalization::kExcess;
    auto robust = mvsc::UnifiedMVSC(ur).Run(*graphs);
    if (robust.ok()) {
      auto acc = eval::ClusteringAccuracy(robust->labels, dataset->labels);
      if (acc.ok()) robust_acc.push_back(*acc);
    }
    mvsc::UnifiedOptions un = uo;
    un.weighting = mvsc::ViewWeighting::kUniform;
    auto uniform = mvsc::UnifiedMVSC(un).Run(*graphs);
    if (uniform.ok()) {
      auto acc = eval::ClusteringAccuracy(uniform->labels, dataset->labels);
      if (acc.ok()) uniform_acc.push_back(*acc);
    }
    mvsc::BaselineOptions base;
    base.num_clusters = c;
    base.seed = seed;
    auto avg = mvsc::KernelAdditionSC(*graphs, base);
    if (avg.ok()) {
      auto acc = eval::ClusteringAccuracy(*avg, dataset->labels);
      if (acc.ok()) avg_acc.push_back(*acc);
    }
  }
  Point p;
  p.unified = bench::Aggregate(unified_acc).mean;
  p.robust = bench::Aggregate(robust_acc).mean;
  p.uniform = bench::Aggregate(uniform_acc).mean;
  p.graph_avg = bench::Aggregate(avg_acc).mean;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;

  const std::vector<double> corruption_levels = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<std::string> datasets = {"MSRC-v1", "Handwritten"};

  std::printf(
      "Figure 4: ACC vs fraction of corrupted rows in the most-trusted view\n"
      "(UMVSC = absolute smoothness weighting; UMVSC-r = excess-smoothness\n"
      " robust variant; uniform weights; plain graph averaging.\n"
      " scale=%.2f, %zu seeds)\n",
      config.scale, config.seeds);
  for (const std::string& name : datasets) {
    std::printf("\n%s\n%-12s %10s %10s %10s %10s\n", name.c_str(),
                "corruption", "UMVSC", "UMVSC-r", "uniform-w", "graph-avg");
    for (double level : corruption_levels) {
      Point p = MeasureAt(name, level, config);
      std::printf("%-12.1f %10.3f %10.3f %10.3f %10.3f\n", level, p.unified,
                  p.robust, p.uniform, p.graph_avg);
    }
  }
  return 0;
}
