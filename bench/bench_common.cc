#include "bench_common.h"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "mvsc/amgl.h"
#include "mvsc/baselines.h"
#include "mvsc/coreg.h"
#include "mvsc/mlan.h"
#include "mvsc/multi_nmf.h"
#include "mvsc/mvkkm.h"
#include "mvsc/two_stage.h"
#include "mvsc/unified.h"

namespace umvsc::bench {

namespace {

template <typename Result>
MethodRun Wrap(const std::string& name, double seconds,
               StatusOr<Result> result,
               std::vector<std::size_t> Result::* labels_member) {
  MethodRun run;
  run.method = name;
  run.seconds = seconds;
  if (result.ok()) {
    run.ok = true;
    run.labels = std::move((*result).*labels_member);
  } else {
    run.error = result.status().ToString();
  }
  return run;
}

MethodRun WrapLabels(const std::string& name, double seconds,
                     StatusOr<std::vector<std::size_t>> result) {
  MethodRun run;
  run.method = name;
  run.seconds = seconds;
  if (result.ok()) {
    run.ok = true;
    run.labels = std::move(*result);
  } else {
    run.error = result.status().ToString();
  }
  return run;
}

}  // namespace

std::vector<MethodRun> RunAllMethods(const data::MultiViewDataset& dataset,
                                     const mvsc::MultiViewGraphs& graphs,
                                     std::size_t num_clusters,
                                     std::uint64_t seed) {
  std::vector<MethodRun> runs;
  Stopwatch watch;

  {
    watch.Reset();
    mvsc::UnifiedOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::UnifiedMVSC(options).Run(graphs);
    runs.push_back(Wrap("UMVSC (ours)", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::UnifiedResult::labels));
  }
  {
    watch.Reset();
    mvsc::TwoStageOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::TwoStageMVSC(graphs, options);
    runs.push_back(Wrap("Two-stage", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::TwoStageResult::labels));
  }
  {
    watch.Reset();
    mvsc::AmglOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::Amgl(graphs, options);
    runs.push_back(Wrap("AMGL", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::AmglResult::labels));
  }
  {
    watch.Reset();
    mvsc::CoRegOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::CoRegSpectral(graphs, options);
    runs.push_back(Wrap("Co-Reg-c", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::CoRegResult::labels));
  }
  {
    watch.Reset();
    mvsc::CoRegOptions options;
    options.num_clusters = num_clusters;
    options.mode = mvsc::CoRegMode::kPairwise;
    options.seed = seed;
    auto r = mvsc::CoRegSpectral(graphs, options);
    runs.push_back(Wrap("Co-Reg-p", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::CoRegResult::labels));
  }
  {
    watch.Reset();
    mvsc::MlanOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::Mlan(dataset, options);
    runs.push_back(Wrap("MLAN", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::MlanResult::labels));
  }
  {
    watch.Reset();
    mvsc::MvkkmOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::MultiViewKernelKMeans(dataset, options);
    runs.push_back(Wrap("MVKKM", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::MvkkmResult::labels));
  }
  {
    watch.Reset();
    mvsc::MultiNmfOptions options;
    options.num_clusters = num_clusters;
    options.seed = seed;
    auto r = mvsc::MultiViewNmf(dataset, options);
    runs.push_back(Wrap("MultiNMF", watch.ElapsedSeconds(), std::move(r),
                        &mvsc::MultiNmfResult::labels));
  }

  mvsc::BaselineOptions base;
  base.num_clusters = num_clusters;
  base.seed = seed;
  {
    watch.Reset();
    auto per_view = mvsc::PerViewSpectral(graphs, base);
    MethodRun run;
    run.method = "SC-best";
    run.seconds = watch.ElapsedSeconds();
    if (per_view.ok() && !dataset.labels.empty()) {
      double best_acc = -1.0;
      for (auto& labels : *per_view) {
        auto acc = eval::ClusteringAccuracy(labels, dataset.labels);
        if (acc.ok() && *acc > best_acc) {
          best_acc = *acc;
          run.labels = labels;
        }
      }
      run.ok = best_acc >= 0.0;
    } else if (!per_view.ok()) {
      run.error = per_view.status().ToString();
    }
    runs.push_back(std::move(run));
  }
  {
    watch.Reset();
    runs.push_back(WrapLabels("Graph-avg SC", watch.ElapsedSeconds(),
                              mvsc::KernelAdditionSC(graphs, base)));
  }
  {
    watch.Reset();
    runs.push_back(WrapLabels("SC-concat", watch.ElapsedSeconds(),
                              mvsc::ConcatFeatureSC(dataset, base)));
  }
  {
    watch.Reset();
    runs.push_back(WrapLabels("Ensemble-SC", watch.ElapsedSeconds(),
                              mvsc::EnsembleSC(graphs, base)));
  }
  {
    watch.Reset();
    runs.push_back(WrapLabels("KM-concat", watch.ElapsedSeconds(),
                              mvsc::ConcatKMeans(dataset, base)));
  }
  return runs;
}

MetricStats Aggregate(const std::vector<double>& values) {
  MetricStats stats;
  if (values.empty()) return stats;
  for (double v : values) stats.mean += v;
  stats.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return stats;
}

MethodSummary Summarize(const std::string& method,
                        const std::vector<std::vector<std::size_t>>& predictions,
                        const std::vector<std::vector<std::size_t>>& truths,
                        const std::vector<double>& seconds) {
  std::vector<double> acc, nmi, purity, ari, fscore;
  for (std::size_t s = 0; s < predictions.size(); ++s) {
    auto scores = eval::ScoreClustering(predictions[s], truths[s]);
    if (!scores.ok()) continue;
    acc.push_back(scores->accuracy);
    nmi.push_back(scores->nmi);
    purity.push_back(scores->purity);
    ari.push_back(scores->ari);
    fscore.push_back(scores->f_score);
  }
  MethodSummary summary;
  summary.method = method;
  summary.acc = Aggregate(acc);
  summary.nmi = Aggregate(nmi);
  summary.purity = Aggregate(purity);
  summary.ari = Aggregate(ari);
  summary.fscore = Aggregate(fscore);
  summary.seconds = Aggregate(seconds);
  return summary;
}

BenchConfig ParseBenchArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      config.scale = std::strtod(arg + 8, nullptr);
    } else if (std::strncmp(arg, "--seeds=", 8) == 0) {
      config.seeds = static_cast<std::size_t>(std::strtoull(arg + 8, nullptr, 10));
    } else if (std::strncmp(arg, "--base-seed=", 12) == 0) {
      config.base_seed = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.threads =
          static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      config.json = arg + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=S] [--seeds=N] [--base-seed=B]"
                   " [--threads=T] [--json=PATH]\n"
                   "  scale in (0,1] shrinks the simulated benchmarks;\n"
                   "  1.0 reproduces the published dataset statistics.\n"
                   "  threads sets the N-thread leg of scaling runs\n"
                   "  (default: UMVSC_NUM_THREADS or hardware concurrency);\n"
                   "  json writes machine-readable results to PATH.\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return config;
}

ThreadScaling MeasureThreadScaling(const data::MultiViewDataset& dataset,
                                   std::size_t num_clusters,
                                   std::uint64_t seed,
                                   std::size_t parallel_threads,
                                   std::size_t repeats) {
  ThreadScaling scaling;
  scaling.dataset = dataset.name;
  scaling.num_samples = dataset.NumSamples();
  scaling.num_views = dataset.NumViews();
  scaling.baseline_threads = 1;
  scaling.parallel_threads =
      parallel_threads == 0 ? DefaultNumThreads() : parallel_threads;
  if (repeats == 0) repeats = 1;

  auto time_pipeline = [&](std::size_t threads) {
    ScopedNumThreads scope(threads);
    double best = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
      Stopwatch watch;
      StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(dataset);
      if (!graphs.ok()) return -1.0;
      mvsc::UnifiedOptions options;
      options.num_clusters = num_clusters;
      options.seed = seed;
      StatusOr<mvsc::UnifiedResult> result =
          mvsc::UnifiedMVSC(options).Run(*graphs);
      if (!result.ok()) return -1.0;
      const double seconds = watch.ElapsedSeconds();
      if (r == 0 || seconds < best) best = seconds;
    }
    return best;
  };

  scaling.baseline_seconds = time_pipeline(1);
  scaling.parallel_seconds = time_pipeline(scaling.parallel_threads);
  scaling.speedup = (scaling.baseline_seconds > 0.0 &&
                     scaling.parallel_seconds > 0.0)
                        ? scaling.baseline_seconds / scaling.parallel_seconds
                        : 1.0;
  return scaling;
}

std::size_t PeakRssKb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024;  // bytes → KB
#else
  return static_cast<std::size_t>(usage.ru_maxrss);  // already KB on Linux
#endif
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatPct(const MetricStats& stats) {
  return StrFormat("%5.1f±%.1f", 100.0 * stats.mean, 100.0 * stats.stddev);
}

}  // namespace umvsc::bench
