// Table 2: clustering quality (ACC / NMI / Purity, mean ± std in % over
// seeds) of every method on every simulated benchmark. The headline
// comparison of the paper: the unified one-stage method should lead on
// most datasets.
//
//   ./table2_quality [--scale=0.4] [--seeds=5] [--base-seed=1]

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "mvsc/graphs.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);

  std::printf(
      "Table 2: clustering quality, mean±std %% over %zu seeds (scale=%.2f)\n",
      config.seeds, config.scale);

  for (const std::string& name : data::BenchmarkNames()) {
    // method → per-seed predictions paired with their ground truths.
    std::map<std::string, std::vector<std::vector<std::size_t>>> predictions;
    std::map<std::string, std::vector<std::vector<std::size_t>>> truths;
    std::map<std::string, std::vector<double>> seconds;
    std::vector<std::string> method_order;

    for (std::size_t s = 0; s < config.seeds; ++s) {
      const std::uint64_t seed = config.base_seed + 1000 * s;
      StatusOr<data::MultiViewDataset> dataset =
          data::SimulateBenchmark(name, seed, config.scale);
      if (!dataset.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     dataset.status().ToString().c_str());
        return 1;
      }
      StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
      if (!graphs.ok()) {
        std::fprintf(stderr, "%s graphs: %s\n", name.c_str(),
                     graphs.status().ToString().c_str());
        return 1;
      }
      std::vector<bench::MethodRun> runs = bench::RunAllMethods(
          *dataset, *graphs, dataset->NumClusters(), seed);
      if (method_order.empty()) {
        for (const bench::MethodRun& run : runs) {
          method_order.push_back(run.method);
        }
      }
      for (bench::MethodRun& run : runs) {
        if (!run.ok) {
          std::fprintf(stderr, "  %s on %s seed %llu: %s\n",
                       run.method.c_str(), name.c_str(),
                       static_cast<unsigned long long>(seed),
                       run.error.c_str());
          continue;
        }
        predictions[run.method].push_back(std::move(run.labels));
        truths[run.method].push_back(dataset->labels);
        seconds[run.method].push_back(run.seconds);
      }
    }

    std::printf("\n--- %s ---\n", name.c_str());
    std::printf("%-14s %12s %12s %12s\n", "method", "ACC", "NMI", "Purity");
    for (const std::string& method : method_order) {
      bench::MethodSummary summary = bench::Summarize(
          method, predictions[method], truths[method], seconds[method]);
      std::printf("%-14s %12s %12s %12s\n", method.c_str(),
                  bench::FormatPct(summary.acc).c_str(),
                  bench::FormatPct(summary.nmi).c_str(),
                  bench::FormatPct(summary.purity).c_str());
    }
  }
  return 0;
}
