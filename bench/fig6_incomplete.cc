// Figure 6 (extension experiment): the incomplete (partial) multi-view
// setting — ACC as a function of the fraction of missing (sample, view)
// observations. Absent samples are isolated in their view's graph (zero
// Laplacian rows); the remaining views carry them. The shape to reproduce:
// graceful degradation for graph-fusion methods, while the zero-fill
// concatenation baseline (which cannot represent missingness) falls faster.
//
//   ./fig6_incomplete [--scale=0.4] [--seeds=3]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/incomplete.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/baselines.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;

  const std::vector<double> missing = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<std::string> datasets = {"MSRC-v1", "Handwritten"};

  std::printf(
      "Figure 6: ACC vs fraction of missing (sample, view) observations\n"
      "(UMVSC and graph-average on presence-aware graphs; zero-fill concat\n"
      " K-means as the missingness-blind baseline; scale=%.2f, %zu seeds)\n",
      config.scale, config.seeds);
  for (const std::string& name : datasets) {
    std::printf("\n%s\n%-10s %10s %12s %14s\n", name.c_str(), "missing",
                "UMVSC", "graph-avg", "KM zero-fill");
    for (double fraction : missing) {
      std::vector<double> unified_acc, avg_acc, km_acc;
      for (std::size_t s = 0; s < config.seeds; ++s) {
        const std::uint64_t seed = config.base_seed + 1000 * s;
        auto dataset = data::SimulateBenchmark(name, seed, config.scale);
        if (!dataset.ok()) continue;
        const std::vector<std::size_t> truth = dataset->labels;
        const std::size_t c = dataset->NumClusters();
        auto presence = data::MakeIncomplete(*dataset, fraction, seed + 333);
        if (!presence.ok()) continue;
        auto graphs = mvsc::BuildGraphsIncomplete(*dataset, *presence);
        if (!graphs.ok()) continue;

        mvsc::UnifiedOptions uo;
        uo.num_clusters = c;
        uo.seed = seed;
        auto unified = mvsc::UnifiedMVSC(uo).Run(*graphs);
        if (unified.ok()) {
          auto acc = eval::ClusteringAccuracy(unified->labels, truth);
          if (acc.ok()) unified_acc.push_back(*acc);
        }
        mvsc::BaselineOptions base;
        base.num_clusters = c;
        base.seed = seed;
        auto avg = mvsc::KernelAdditionSC(*graphs, base);
        if (avg.ok()) {
          auto acc = eval::ClusteringAccuracy(*avg, truth);
          if (acc.ok()) avg_acc.push_back(*acc);
        }
        // Missingness-blind baseline: the absent rows hold scale-matched
        // noise ("zero-fill"-style imputation); concat K-means uses them
        // as if observed.
        auto km = mvsc::ConcatKMeans(*dataset, base);
        if (km.ok()) {
          auto acc = eval::ClusteringAccuracy(*km, truth);
          if (acc.ok()) km_acc.push_back(*acc);
        }
      }
      std::printf("%-10.1f %10.3f %12.3f %14.3f\n", fraction,
                  bench::Aggregate(unified_acc).mean,
                  bench::Aggregate(avg_acc).mean,
                  bench::Aggregate(km_acc).mean);
    }
  }
  return 0;
}
