// Multi-tenant job-packing benchmark of exec::JobExecutor: a 100-job
// fig2-shaped sweep (three benchmark datasets × seeds × a (β, γ) grid)
// run as independent solve jobs on the executor, against the plain
// serial loop the sweeps ran before (simulate + build graphs + solve per
// grid cell, nothing shared).
//
// What the executor legs exercise:
//   - StageCache: the ~11 jobs sharing a (dataset, seed) compute the
//     simulation and graph construction ONCE — 66–87% of per-job cost on
//     these shapes — instead of once per cell;
//   - per-worker arenas/scratch (reuse_worker_state): iteration
//     temporaries are allocated once per worker, not once per job (the
//     no-arena leg releases everything between jobs for the A/B);
//   - CrossJobBatcher: R-step Procrustes solves rendezvous across jobs;
//   - two-level scheduling: each job declares a thread budget and its
//     nested ParallelFor calls partition over that budget.
//
// The determinism gate runs before any number is reported: per-job labels
// and final objectives must be bitwise identical to the serial loop at
// worker counts {1, 2, 8} AND under reversed submission order. Peak RSS
// is sampled after each leg (the getrusage watermark only grows, so legs
// are ordered arena → no-arena → baseline and attributed by deltas).
//
//   ./multi_job [--smoke] [--json=PATH]        (default BENCH_jobs.json)
//
// --smoke shrinks the sweep and turns the gates (parity AND ≥ 2× jobs/sec
// over the serial loop) into the exit code — the CI mode.

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "exec/executor.h"
#include "la/lanczos.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace {

using umvsc::Status;
using umvsc::StatusOr;
using umvsc::Stopwatch;
using umvsc::bench::PeakRssKb;

struct SweepJob {
  std::string dataset;
  std::uint64_t seed = 0;
  double beta = 1.0;
  double gamma = 2.0;
};

struct JobOutput {
  std::vector<std::size_t> labels;
  double objective = 0.0;
  bool ok = false;
};

/// The shared per-(dataset, seed) prefix both paths need: simulation +
/// per-view graphs. The executor legs key this in the StageCache; the
/// serial baseline recomputes it per job, as fig2_sensitivity does today.
struct SweepStage {
  umvsc::data::MultiViewDataset dataset;
  umvsc::mvsc::MultiViewGraphs graphs;
};

std::shared_ptr<const SweepStage> BuildStage(const std::string& name,
                                             std::uint64_t seed,
                                             double scale) {
  auto stage = std::make_shared<SweepStage>();
  StatusOr<umvsc::data::MultiViewDataset> dataset =
      umvsc::data::SimulateBenchmark(name, seed, scale);
  if (!dataset.ok()) {
    throw std::runtime_error(dataset.status().ToString());
  }
  stage->dataset = std::move(*dataset);
  StatusOr<umvsc::mvsc::MultiViewGraphs> graphs =
      umvsc::mvsc::BuildGraphs(stage->dataset);
  if (!graphs.ok()) {
    throw std::runtime_error(graphs.status().ToString());
  }
  stage->graphs = std::move(*graphs);
  return stage;
}

JobOutput SolveOne(const SweepJob& job, const SweepStage& stage,
                   const umvsc::mvsc::SolveHooks& hooks) {
  umvsc::mvsc::UnifiedOptions options;
  options.num_clusters = stage.dataset.NumClusters();
  options.beta = job.beta;
  options.gamma = job.gamma;
  options.seed = job.seed;
  options.hooks = hooks;
  JobOutput out;
  StatusOr<umvsc::mvsc::UnifiedResult> result =
      umvsc::mvsc::UnifiedMVSC(options).Run(stage.graphs);
  if (!result.ok()) return out;
  out.labels = std::move(result->labels);
  out.objective = result->objective_trace.empty()
                      ? 0.0
                      : result->objective_trace.back();
  out.ok = true;
  return out;
}

struct LegStats {
  std::string name;
  std::size_t workers = 0;  ///< 0 = serial loop (no executor)
  bool arena = true;
  bool reversed = false;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  bool parity = true;  ///< vs the serial baseline (filled after it runs)
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t batch_requests = 0;
  std::size_t batch_dispatches = 0;
  std::size_t batch_max = 0;
  std::size_t rss_after_kb = 0;
  std::vector<JobOutput> outputs;
};

LegStats RunExecutorLeg(const std::string& name,
                        const std::vector<SweepJob>& jobs, double scale,
                        std::size_t workers, bool reuse_state,
                        bool reversed, std::size_t thread_budget) {
  LegStats leg;
  leg.name = name;
  leg.workers = workers;
  leg.arena = reuse_state;
  leg.reversed = reversed;
  leg.outputs.resize(jobs.size());

  umvsc::exec::JobExecutor::Options eopts;
  eopts.num_workers = workers;
  eopts.reuse_worker_state = reuse_state;
  umvsc::exec::JobExecutor executor(eopts);

  Stopwatch watch;
  std::vector<umvsc::exec::JobHandle> handles;
  handles.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const std::size_t idx = reversed ? jobs.size() - 1 - k : k;
    umvsc::exec::JobSpec spec;
    spec.name = jobs[idx].dataset;
    spec.thread_budget = thread_budget;
    spec.work = [&jobs, &leg, idx, scale](
                    umvsc::exec::JobContext& context) -> Status {
      const SweepJob& job = jobs[idx];
      char key[160];
      std::snprintf(key, sizeof(key), "%s|%llu|%.4f", job.dataset.c_str(),
                    static_cast<unsigned long long>(job.seed), scale);
      std::shared_ptr<const SweepStage> stage =
          context.stages().Get<SweepStage>(key, [&] {
            return BuildStage(job.dataset, job.seed, scale);
          });
      leg.outputs[idx] = SolveOne(job, *stage, context.hooks());
      return leg.outputs[idx].ok ? Status::OK()
                                 : Status::Internal("solve failed");
    };
    handles.push_back(executor.Submit(std::move(spec)));
  }
  for (const umvsc::exec::JobHandle& handle : handles) handle.Wait();
  leg.seconds = watch.ElapsedSeconds();
  leg.jobs_per_sec = leg.seconds > 0.0
                         ? static_cast<double>(jobs.size()) / leg.seconds
                         : 0.0;
  leg.cache_hits = executor.stages().hits();
  leg.cache_misses = executor.stages().misses();
  const umvsc::exec::CrossJobBatcher::Stats batch = executor.batcher_stats();
  leg.batch_requests = batch.requests;
  leg.batch_dispatches = batch.dispatches;
  leg.batch_max = batch.max_batch;
  leg.rss_after_kb = PeakRssKb();
  return leg;
}

LegStats RunSerialBaseline(const std::vector<SweepJob>& jobs, double scale) {
  LegStats leg;
  leg.name = "serial_loop";
  leg.workers = 0;
  leg.arena = false;
  leg.outputs.resize(jobs.size());
  Stopwatch watch;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // The pre-executor sweep shape: every grid cell pays its own
    // simulation + graph construction, nothing shared, no hooks.
    std::shared_ptr<const SweepStage> stage;
    try {
      stage = BuildStage(jobs[i].dataset, jobs[i].seed, scale);
    } catch (const std::exception&) {
      continue;
    }
    leg.outputs[i] = SolveOne(jobs[i], *stage, umvsc::mvsc::SolveHooks());
  }
  leg.seconds = watch.ElapsedSeconds();
  leg.jobs_per_sec = leg.seconds > 0.0
                         ? static_cast<double>(jobs.size()) / leg.seconds
                         : 0.0;
  leg.rss_after_kb = PeakRssKb();
  return leg;
}

bool OutputsMatch(const std::vector<JobOutput>& a,
                  const std::vector<JobOutput>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].ok || !b[i].ok) return false;
    if (a[i].labels != b[i].labels) return false;
    if (a[i].objective != b[i].objective) return false;  // bitwise
  }
  return true;
}

int Fail(const char* what) {
  std::fprintf(stderr, "multi_job: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_jobs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  using namespace umvsc;

  // The fig2 grid: β sweep at γ=2 plus γ sweep at β=1 (the duplicate
  // (β=1, γ=2) cell kept once) — 12 configs per (dataset, seed).
  const std::vector<double> betas = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3};
  const std::vector<double> gammas = {1.2, 1.5, 3.0, 5.0, 8.0};
  const std::vector<std::string> datasets = {"MSRC-v1", "Handwritten",
                                             "3-Sources"};
  const double scale = smoke ? 0.3 : 0.5;
  const std::size_t seeds = smoke ? 1 : 3;
  const std::size_t job_cap = smoke ? 36 : 100;

  std::vector<SweepJob> jobs;
  for (std::size_t s = 0; s < seeds; ++s) {
    for (const std::string& name : datasets) {
      const std::uint64_t seed = 1 + 1000 * s;
      for (double beta : betas) {
        jobs.push_back({name, seed, beta, 2.0});
      }
      for (double gamma : gammas) {
        jobs.push_back({name, seed, 1.0, gamma});
      }
    }
  }
  if (jobs.size() > job_cap) jobs.resize(job_cap);

  // The eigensolver auto-policy calibrates on first use (timed probes,
  // ~0.2s); trigger it before anything is on the clock so the first leg
  // isn't charged for it.
  la::EigensolvePolicy::Get();

  const std::size_t budget = 1;  // per-job nested-parallelism budget
  std::printf("multi_job (%s): %zu jobs, scale %.2f, %zu seeds\n",
              smoke ? "smoke" : "full", jobs.size(), scale, seeds);

  // Arena legs first, no-arena next, serial last: the RSS watermark only
  // grows, so each leg's figure is uncontaminated by later legs.
  std::vector<LegStats> legs;
  if (smoke) {
    legs.push_back(RunExecutorLeg("exec_w2", jobs, scale, 2, true, false,
                                  budget));
    legs.push_back(RunExecutorLeg("exec_w2_reversed", jobs, scale, 2, true,
                                  true, budget));
  } else {
    legs.push_back(RunExecutorLeg("exec_w1", jobs, scale, 1, true, false,
                                  budget));
    legs.push_back(RunExecutorLeg("exec_w2", jobs, scale, 2, true, false,
                                  budget));
    legs.push_back(RunExecutorLeg("exec_w8", jobs, scale, 8, true, false,
                                  budget));
    legs.push_back(RunExecutorLeg("exec_w2_reversed", jobs, scale, 2, true,
                                  true, budget));
    legs.push_back(RunExecutorLeg("exec_w2_noarena", jobs, scale, 2, false,
                                  false, budget));
  }
  LegStats baseline = RunSerialBaseline(jobs, scale);

  bool parity_all = true;
  for (LegStats& leg : legs) {
    leg.parity = OutputsMatch(leg.outputs, baseline.outputs);
    parity_all = parity_all && leg.parity;
  }
  const LegStats* headline = nullptr;
  for (const LegStats& leg : legs) {
    if (leg.name == "exec_w2") headline = &leg;
  }
  const double speedup =
      headline != nullptr && baseline.jobs_per_sec > 0.0
          ? headline->jobs_per_sec / baseline.jobs_per_sec
          : 0.0;

  for (const LegStats& leg : legs) {
    std::printf(
        "  %-18s: %6.2fs  %6.2f jobs/s  parity %s  cache %zu/%zu  "
        "batch %zu req %zu disp (max %zu)  rss %zu KB\n",
        leg.name.c_str(), leg.seconds, leg.jobs_per_sec,
        leg.parity ? "ok" : "MISMATCH", leg.cache_hits, leg.cache_misses,
        leg.batch_requests, leg.batch_dispatches, leg.batch_max,
        leg.rss_after_kb);
  }
  std::printf("  %-18s: %6.2fs  %6.2f jobs/s  rss %zu KB\n",
              baseline.name.c_str(), baseline.seconds,
              baseline.jobs_per_sec, baseline.rss_after_kb);
  std::printf("  speedup vs serial loop (exec_w2): %.2fx   parity: %s\n",
              speedup, parity_all ? "identical" : "MISMATCH");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open json output");
    std::fprintf(f, "{\n  \"bench\": \"multi_job\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"sweep\": {\"jobs\": %zu, \"scale\": %.2f, \"seeds\": "
                 "%zu, \"datasets\": [\"MSRC-v1\", \"Handwritten\", "
                 "\"3-Sources\"], \"thread_budget\": %zu},\n",
                 jobs.size(), scale, seeds, budget);
    std::fprintf(f, "  \"legs\": [\n");
    for (const LegStats& leg : legs) {
      std::fprintf(
          f,
          "    {\"leg\": \"%s\", \"workers\": %zu, \"arena\": %s, "
          "\"order\": \"%s\", \"seconds\": %.4f, \"jobs_per_sec\": %.3f, "
          "\"parity\": %s, \"stage_cache\": {\"hits\": %zu, \"misses\": "
          "%zu}, \"batcher\": {\"requests\": %zu, \"dispatches\": %zu, "
          "\"max_batch\": %zu}, \"rss_after_kb\": %zu},\n",
          leg.name.c_str(), leg.workers, leg.arena ? "true" : "false",
          leg.reversed ? "reversed" : "forward", leg.seconds,
          leg.jobs_per_sec, leg.parity ? "true" : "false", leg.cache_hits,
          leg.cache_misses, leg.batch_requests, leg.batch_dispatches,
          leg.batch_max, leg.rss_after_kb);
    }
    std::fprintf(f,
                 "    {\"leg\": \"serial_loop\", \"workers\": 0, \"arena\": "
                 "false, \"order\": \"forward\", \"seconds\": %.4f, "
                 "\"jobs_per_sec\": %.3f, \"parity\": true, \"rss_after_kb\""
                 ": %zu}\n  ],\n",
                 baseline.seconds, baseline.jobs_per_sec,
                 baseline.rss_after_kb);
    std::fprintf(f, "  \"speedup_vs_serial\": %.3f,\n", speedup);
    std::fprintf(f, "  \"parity_all\": %s,\n",
                 parity_all ? "true" : "false");
    std::fprintf(f, "  \"peak_rss_kb\": %zu\n}\n", PeakRssKb());
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (!parity_all) {
    return Fail("executor outputs diverge from the serial loop");
  }
  if (smoke && speedup < 2.0) {
    return Fail("smoke gate: executor jobs/sec fell below 2x serial");
  }
  return 0;
}
