// Figure 1: convergence of the unified solver — objective value per outer
// iteration on each simulated benchmark. The shape to reproduce: a
// monotone-ish decrease that plateaus within a few tens of iterations.
//
//   ./fig1_convergence [--scale=0.4]

#include <cstdio>

#include "bench_common.h"
#include "data/synthetic.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);

  std::printf("Figure 1: UMVSC objective per outer iteration (scale=%.2f)\n",
              config.scale);
  for (const std::string& name : data::BenchmarkNames()) {
    StatusOr<data::MultiViewDataset> dataset =
        data::SimulateBenchmark(name, config.base_seed, config.scale);
    if (!dataset.ok()) return 1;
    StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
    if (!graphs.ok()) return 1;

    mvsc::UnifiedOptions options;
    options.num_clusters = dataset->NumClusters();
    options.seed = config.base_seed;
    options.max_iterations = 50;
    options.tolerance = 0.0;  // run the full horizon to show the plateau
    StatusOr<mvsc::UnifiedResult> result =
        mvsc::UnifiedMVSC(options).Run(*graphs);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s (warm-up %zu + joint %zu iterations)\n", name.c_str(),
                result->warmup_trace.size(), result->iterations);
    std::printf("  warm-up (weighted smoothness):");
    for (double v : result->warmup_trace) std::printf(" %.6f", v);
    std::printf("\n  joint objective per iteration:\n");
    for (std::size_t i = 0; i < result->objective_trace.size(); ++i) {
      // Print the head densely, then every 5th point of the plateau.
      if (i < 10 || i % 5 == 0 || i + 1 == result->objective_trace.size()) {
        std::printf("  %4zu:  %.6f\n", i + 1, result->objective_trace[i]);
      }
    }
  }
  return 0;
}
