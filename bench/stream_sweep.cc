// Streaming drift sweep: StreamingUnifiedMVSC on a seeded drift/skew
// mini-batch stream (heavy-tailed cluster draws, temporal mean-shift drift)
// against the ORACLE that runs a full cold re-solve over the window at
// every batch. Per batch the sweep records wall time, Lanczos matvecs,
// re-solve triggers, ARI against ground truth for both tracks, and the
// partition agreement between them; a third pass re-runs the incremental
// track at 1 thread and checks the labels are bitwise identical — the
// streaming determinism contract.
//
// The headline numbers: steady-state incremental updates at least
// `kSpeedupFloor`× faster than the oracle's full re-solves at the same
// window, and the cumulative (mean over batches) truth-ARI within
// `kAriGapCeiling` of the oracle's. `--smoke` shrinks the stream and turns
// the thresholds into the exit code — the CI gate.
//
//   ./stream_sweep [--smoke] [--json=PATH]     (default BENCH_stream.json)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stream/streaming_unified.h"

namespace {

constexpr double kAriGapCeiling = 0.03;

using umvsc::bench::PeakRssKb;

struct SweepConfig {
  std::size_t batch_size = 2500;
  std::size_t num_batches = 40;
  std::size_t window = 50000;
  std::size_t drift_start = 24;
  double drift_rate = 0.08;
  double speedup_floor = 5.0;
};

struct BatchRow {
  std::size_t batch = 0;
  std::size_t window_size = 0;
  double inc_seconds = 0.0;
  double oracle_seconds = 0.0;
  bool inc_full_resolve = false;
  std::string resolve_reason;
  std::size_t inc_matvecs = 0;
  std::size_t oracle_matvecs = 0;
  double ari_inc_truth = 0.0;
  double ari_oracle_truth = 0.0;
  double ari_inc_oracle = 0.0;
  bool thread_invariant = true;
};

umvsc::data::DriftStreamConfig MakeStream(const SweepConfig& cfg) {
  umvsc::data::DriftStreamConfig config;
  config.name = "stream_sweep";
  config.batch_size = cfg.batch_size;
  config.num_clusters = 5;
  config.views = {{10, umvsc::data::ViewQuality::kInformative, 0.5},
                  {8, umvsc::data::ViewQuality::kInformative, 0.8},
                  {6, umvsc::data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 6.0;
  config.heavy_tail = 0.5;
  config.drift_rate = cfg.drift_rate;
  config.drift_start_batch = cfg.drift_start;
  config.seed = 29;
  return config;
}

umvsc::stream::StreamingOptions MakeOptions(const SweepConfig& cfg,
                                            bool oracle) {
  umvsc::stream::StreamingOptions options;
  options.unified.num_clusters = 5;
  options.unified.seed = 3;
  options.unified.anchors.num_anchors = 256;
  options.unified.anchors.anchor_neighbors = 5;
  options.window_capacity = cfg.window;
  options.always_full_resolve = oracle;
  return options;
}

double Ari(const std::vector<std::size_t>& a,
           const std::vector<std::size_t>& b) {
  auto ari = umvsc::eval::AdjustedRandIndex(a, b);
  return ari.ok() ? *ari : 0.0;
}

// One pass over the whole stream; per-batch labels + timings out.
struct PassResult {
  std::vector<std::vector<std::size_t>> labels;
  std::vector<std::vector<std::size_t>> truth;
  std::vector<double> seconds;
  std::vector<std::size_t> matvecs;
  std::vector<bool> full_resolve;
  std::vector<std::string> reasons;
  std::vector<std::size_t> window_sizes;
};

PassResult RunPass(const SweepConfig& cfg, bool oracle) {
  auto gen = umvsc::data::DriftStreamGenerator::Create(MakeStream(cfg));
  if (!gen.ok()) {
    std::fprintf(stderr, "stream_sweep: generator: %s\n",
                 gen.status().message().c_str());
    std::exit(1);
  }
  auto stream = umvsc::stream::StreamingUnifiedMVSC::Create(
      MakeOptions(cfg, oracle));
  if (!stream.ok()) {
    std::fprintf(stderr, "stream_sweep: stream: %s\n",
                 stream.status().message().c_str());
    std::exit(1);
  }
  PassResult pass;
  std::vector<std::size_t> truth_window;
  for (std::size_t t = 0; t < cfg.num_batches; ++t) {
    auto batch = gen->NextBatch();
    if (!batch.ok()) {
      std::fprintf(stderr, "stream_sweep: batch %zu: %s\n", t,
                   batch.status().message().c_str());
      std::exit(1);
    }
    truth_window.insert(truth_window.end(), batch->labels.begin(),
                        batch->labels.end());
    if (truth_window.size() > cfg.window) {
      truth_window.erase(
          truth_window.begin(),
          truth_window.end() - static_cast<std::ptrdiff_t>(cfg.window));
    }
    umvsc::Stopwatch watch;
    auto update = stream->Ingest(*batch);
    const double seconds = watch.ElapsedSeconds();
    if (!update.ok()) {
      std::fprintf(stderr, "stream_sweep: ingest %zu: %s\n", t,
                   update.status().message().c_str());
      std::exit(1);
    }
    pass.labels.push_back(update->labels);
    pass.truth.push_back(truth_window);
    pass.seconds.push_back(seconds);
    pass.matvecs.push_back(update->lanczos_matvecs);
    pass.full_resolve.push_back(update->full_resolve);
    pass.reasons.push_back(update->resolve_reason);
    pass.window_sizes.push_back(update->window_size);
  }
  return pass;
}

void WriteJson(const std::string& path, bool smoke, const SweepConfig& cfg,
               const std::vector<BatchRow>& rows, double mean_inc_seconds,
               double mean_oracle_seconds, double speedup, double cum_inc,
               double cum_oracle, double ari_gap, std::size_t resolves,
               bool determinism_ok, bool speedup_ok, bool ari_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "stream_sweep: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"stream_sweep\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"batch_size\": %zu, \"num_batches\": %zu, "
               "\"window\": %zu, \"views\": 3, \"clusters\": 5, "
               "\"heavy_tail\": 0.5, \"drift_rate\": %.3f, "
               "\"drift_start_batch\": %zu, \"anchors\": 256, "
               "\"anchor_neighbors\": 5},\n",
               cfg.batch_size, cfg.num_batches, cfg.window, cfg.drift_rate,
               cfg.drift_start);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BatchRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"batch\": %zu, \"window\": %zu, \"inc_seconds\": %.6f, "
        "\"oracle_seconds\": %.6f, \"inc_full_resolve\": %s, "
        "\"resolve_reason\": \"%s\", \"inc_matvecs\": %zu, "
        "\"oracle_matvecs\": %zu, \"ari_inc_truth\": %.6f, "
        "\"ari_oracle_truth\": %.6f, \"ari_inc_oracle\": %.6f, "
        "\"thread_invariant\": %s}%s\n",
        row.batch, row.window_size, row.inc_seconds, row.oracle_seconds,
        row.inc_full_resolve ? "true" : "false",
        umvsc::bench::JsonEscape(row.resolve_reason).c_str(), row.inc_matvecs,
        row.oracle_matvecs, row.ari_inc_truth, row.ari_oracle_truth,
        row.ari_inc_oracle, row.thread_invariant ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"mean_incremental_seconds\": %.6f,\n"
               "  \"mean_oracle_seconds\": %.6f,\n"
               "  \"incremental_speedup\": %.3f,\n"
               "  \"cumulative_ari_incremental\": %.6f,\n"
               "  \"cumulative_ari_oracle\": %.6f,\n"
               "  \"ari_gap\": %.6f,\n"
               "  \"full_resolves_triggered\": %zu,\n",
               mean_inc_seconds, mean_oracle_seconds, speedup, cum_inc,
               cum_oracle, ari_gap, resolves);
  std::fprintf(f, "  \"peak_rss_kb\": %zu,\n", PeakRssKb());
  std::fprintf(f,
               "  \"speedup_floor\": %.2f,\n  \"ari_gap_ceiling\": %.2f,\n",
               cfg.speedup_floor, kAriGapCeiling);
  std::fprintf(f,
               "  \"determinism_ok\": %s,\n  \"speedup_ok\": %s,\n"
               "  \"ari_gap_ok\": %s\n}\n",
               determinism_ok ? "true" : "false", speedup_ok ? "true" : "false",
               ari_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umvsc;
  bool smoke = false;
  std::string json_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  SweepConfig cfg;
  if (smoke) {
    cfg.batch_size = 500;
    cfg.num_batches = 16;
    cfg.window = 6000;
    cfg.drift_start = 12;
    cfg.drift_rate = 0.20;
    cfg.speedup_floor = 2.0;  // small windows blunt the asymptotic gap
  }

  // Untimed warmup: calibrate the measured EigensolvePolicy outside the
  // timed legs (the probe runs once per process).
  {
    SweepConfig warm_cfg = cfg;
    warm_cfg.batch_size = 1000;
    warm_cfg.num_batches = 1;
    warm_cfg.window = 1000;
    RunPass(warm_cfg, /*oracle=*/false);
  }

  std::printf("Streaming drift sweep%s (window=%zu, batch=%zu, %zu batches, "
              "drift %.2f from batch %zu)\n",
              smoke ? " [smoke]" : "", cfg.window, cfg.batch_size,
              cfg.num_batches, cfg.drift_rate, cfg.drift_start);

  PassResult inc = RunPass(cfg, /*oracle=*/false);
  PassResult oracle = RunPass(cfg, /*oracle=*/true);
  // Determinism leg: the incremental track again, single-threaded. The
  // contract says every batch's labels (and trigger pattern) are bitwise
  // identical at any thread count.
  PassResult inc_t1;
  {
    ScopedNumThreads single(1);
    inc_t1 = RunPass(cfg, /*oracle=*/false);
  }

  std::printf("%6s %9s %11s %11s %9s %9s %9s  %s\n", "batch", "window",
              "inc sec", "oracle sec", "ARI inc", "ARI orac", "agree",
              "resolve");
  std::vector<BatchRow> rows;
  double cum_inc = 0.0, cum_oracle = 0.0;
  double inc_steady = 0.0, oracle_steady = 0.0;
  std::size_t steady = 0, resolves = 0;
  bool determinism_ok = true;
  for (std::size_t t = 0; t < cfg.num_batches; ++t) {
    BatchRow row;
    row.batch = t;
    row.window_size = inc.window_sizes[t];
    row.inc_seconds = inc.seconds[t];
    row.oracle_seconds = oracle.seconds[t];
    row.inc_full_resolve = inc.full_resolve[t];
    row.resolve_reason = inc.reasons[t];
    row.inc_matvecs = inc.matvecs[t];
    row.oracle_matvecs = oracle.matvecs[t];
    row.ari_inc_truth = Ari(inc.labels[t], inc.truth[t]);
    row.ari_oracle_truth = Ari(oracle.labels[t], oracle.truth[t]);
    row.ari_inc_oracle = Ari(inc.labels[t], oracle.labels[t]);
    row.thread_invariant = inc.labels[t] == inc_t1.labels[t] &&
                           inc.reasons[t] == inc_t1.reasons[t];
    determinism_ok = determinism_ok && row.thread_invariant;
    cum_inc += row.ari_inc_truth;
    cum_oracle += row.ari_oracle_truth;
    if (t > 0 && !row.inc_full_resolve) {
      // Steady state: incremental updates vs the oracle's re-solves on the
      // SAME batches (first batch excluded — both tracks solve cold there).
      inc_steady += row.inc_seconds;
      oracle_steady += row.oracle_seconds;
      ++steady;
    }
    if (t > 0 && row.inc_full_resolve) ++resolves;
    std::printf("%6zu %9zu %11.4f %11.4f %9.4f %9.4f %9.4f  %s%s\n", t,
                row.window_size, row.inc_seconds, row.oracle_seconds,
                row.ari_inc_truth, row.ari_oracle_truth, row.ari_inc_oracle,
                row.resolve_reason.c_str(),
                row.thread_invariant ? "" : "  THREAD-DIVERGED");
    rows.push_back(std::move(row));
  }
  cum_inc /= static_cast<double>(cfg.num_batches);
  cum_oracle /= static_cast<double>(cfg.num_batches);
  const double mean_inc = steady > 0 ? inc_steady / static_cast<double>(steady)
                                     : 0.0;
  const double mean_oracle =
      steady > 0 ? oracle_steady / static_cast<double>(steady) : 0.0;
  const double speedup = mean_inc > 0.0 ? mean_oracle / mean_inc : 0.0;
  const double ari_gap = cum_oracle - cum_inc;
  const bool speedup_ok = speedup >= cfg.speedup_floor;
  const bool ari_ok = ari_gap <= kAriGapCeiling;

  std::printf(
      "\nsteady-state: incremental %.4fs vs oracle %.4fs per batch — "
      "%.1fx (floor %.1fx)\ncumulative ARI: incremental %.4f vs oracle "
      "%.4f — gap %.4f (ceiling %.2f)\nre-solves triggered: %zu; "
      "thread-bitwise labels: %s\n",
      mean_inc, mean_oracle, speedup, cfg.speedup_floor, cum_inc, cum_oracle,
      ari_gap, kAriGapCeiling, resolves, determinism_ok ? "yes" : "NO");

  if (!json_path.empty()) {
    WriteJson(json_path, smoke, cfg, rows, mean_inc, mean_oracle, speedup,
              cum_inc, cum_oracle, ari_gap, resolves, determinism_ok,
              speedup_ok, ari_ok);
  }

  if (smoke && !(speedup_ok && ari_ok && determinism_ok)) {
    std::fprintf(stderr, "stream_sweep: smoke gate FAILED\n");
    return 1;
  }
  return 0;
}
