// Ablation C: the warm-start initialization of the unified solver — DESIGN
// calls out that a single uniform-average embedding is fragile (an
// adversarial view can wreck it and the Y↔F alternation locks the bad
// partition in). This bench quantifies that: ACC vs the number of
// weight↔embedding warm-start alternations.
//
//   ./ablation_init [--scale=0.4] [--seeds=3]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);
  if (config.seeds > 3) config.seeds = 3;

  const std::vector<std::size_t> warmups = {1, 2, 4, 8};
  std::printf(
      "Ablation C: UMVSC ACC vs warm-start alternations (1 = single\n"
      "uniform-average embedding, the naive init; scale=%.2f, %zu seeds)\n\n",
      config.scale, config.seeds);
  std::printf("%-14s", "dataset");
  for (std::size_t w : warmups) std::printf("   init=%zu", w);
  std::printf("\n");

  for (const std::string& name : data::BenchmarkNames()) {
    std::printf("%-14s", name.c_str());
    for (std::size_t warm : warmups) {
      std::vector<double> accs;
      for (std::size_t s = 0; s < config.seeds; ++s) {
        const std::uint64_t seed = config.base_seed + 1000 * s;
        auto dataset = data::SimulateBenchmark(name, seed, config.scale);
        if (!dataset.ok()) continue;
        auto graphs = mvsc::BuildGraphs(*dataset);
        if (!graphs.ok()) continue;
        mvsc::UnifiedOptions options;
        options.num_clusters = dataset->NumClusters();
        options.init_alternations = warm;
        options.seed = seed;
        auto result = mvsc::UnifiedMVSC(options).Run(*graphs);
        if (!result.ok()) continue;
        auto acc = eval::ClusteringAccuracy(result->labels, dataset->labels);
        if (acc.ok()) accs.push_back(*acc);
      }
      std::printf("   %6.3f", bench::Aggregate(accs).mean);
    }
    std::printf("\n");
  }
  return 0;
}
