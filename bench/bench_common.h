#ifndef UMVSC_BENCH_BENCH_COMMON_H_
#define UMVSC_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "mvsc/graphs.h"

namespace umvsc::bench {

/// One method's labels + wall time on one (dataset, seed) run.
struct MethodRun {
  std::string method;
  std::vector<std::size_t> labels;
  double seconds = 0.0;
  bool ok = false;
  std::string error;
};

/// The method zoo of the comparison tables, run on shared graphs so no
/// method gets a private graph construction. Order is the tables' row
/// order. "SC-best" picks the best single view post hoc using the ground
/// truth, as the published tables do.
std::vector<MethodRun> RunAllMethods(const data::MultiViewDataset& dataset,
                                     const mvsc::MultiViewGraphs& graphs,
                                     std::size_t num_clusters,
                                     std::uint64_t seed);

/// Aggregated metric statistics over seeds.
struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;
};
MetricStats Aggregate(const std::vector<double>& values);

/// Per-method aggregation across seeds.
struct MethodSummary {
  std::string method;
  MetricStats acc, nmi, purity, ari, fscore, seconds;
};

/// Scores a set of per-seed runs (all for the same method) against truths.
MethodSummary Summarize(const std::string& method,
                        const std::vector<std::vector<std::size_t>>& predictions,
                        const std::vector<std::vector<std::size_t>>& truths,
                        const std::vector<double>& seconds);

/// Parses "--scale=0.4 --seeds=5" style flags with defaults; unknown flags
/// abort with a usage message.
struct BenchConfig {
  double scale = 0.5;
  std::size_t seeds = 5;
  std::uint64_t base_seed = 1;
  /// Thread count for the N-thread leg of scaling measurements; 0 means
  /// the process default (UMVSC_NUM_THREADS or hardware concurrency).
  std::size_t threads = 0;
  /// Path for machine-readable benchmark output; empty disables emission.
  std::string json;
};
BenchConfig ParseBenchArgs(int argc, char** argv);

/// Prints "value ± std" as percentages, e.g. "87.3±2.1".
std::string FormatPct(const MetricStats& stats);

/// One thread-scaling measurement of the full UMVSC pipeline (per-view
/// graph construction + unified solve) on one dataset: wall time at 1
/// thread vs `parallel_threads` threads, and the resulting speedup. The
/// perf trajectory the benchmark JSON records across PRs.
struct ThreadScaling {
  std::string dataset;
  std::size_t num_samples = 0;
  std::size_t num_views = 0;
  std::size_t baseline_threads = 1;
  std::size_t parallel_threads = 1;
  double baseline_seconds = 0.0;
  double parallel_seconds = 0.0;
  double speedup = 1.0;
};

/// Measures ThreadScaling for `dataset`: best-of-`repeats` wall time of
/// BuildGraphs + UnifiedMVSC::Run at 1 thread and at `parallel_threads`
/// (0 → DefaultNumThreads()). Output labels are identical in both legs by
/// the determinism contract — only the clock moves.
ThreadScaling MeasureThreadScaling(const data::MultiViewDataset& dataset,
                                   std::size_t num_clusters,
                                   std::uint64_t seed,
                                   std::size_t parallel_threads,
                                   std::size_t repeats = 2);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s);

/// Process peak resident set size in KB, normalized across platforms:
/// getrusage reports ru_maxrss in kilobytes on Linux but in BYTES on
/// macOS — every benchmark must report through this one helper so the
/// committed JSON artifacts carry one unit.
std::size_t PeakRssKb();

}  // namespace umvsc::bench

#endif  // UMVSC_BENCH_BENCH_COMMON_H_
