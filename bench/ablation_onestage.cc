// Ablation A: one-stage discrete optimization vs the two-stage pipeline on
// IDENTICAL graphs and identical view weighting — isolating exactly the
// contribution the paper's abstract claims (learning the discrete indicator
// in one stage instead of K-means on a fixed embedding).
//
//   ./ablation_onestage [--scale=0.4] [--seeds=5]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/graphs.h"
#include "mvsc/two_stage.h"
#include "mvsc/unified.h"

int main(int argc, char** argv) {
  using namespace umvsc;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv);

  std::printf(
      "Ablation A: one-stage (discrete Y) vs two-stage (embedding + K-means),\n"
      "same graphs, same gamma-power weighting; ACC mean±std %% over %zu "
      "seeds (scale=%.2f)\n\n",
      config.seeds, config.scale);
  std::printf("%-14s %14s %14s %10s\n", "dataset", "one-stage", "two-stage",
              "delta");

  for (const std::string& name : data::BenchmarkNames()) {
    std::vector<double> one_stage, two_stage;
    for (std::size_t s = 0; s < config.seeds; ++s) {
      const std::uint64_t seed = config.base_seed + 1000 * s;
      auto dataset = data::SimulateBenchmark(name, seed, config.scale);
      if (!dataset.ok()) return 1;
      auto graphs = mvsc::BuildGraphs(*dataset);
      if (!graphs.ok()) return 1;
      const std::size_t c = dataset->NumClusters();

      mvsc::UnifiedOptions uo;
      uo.num_clusters = c;
      uo.seed = seed;
      auto unified = mvsc::UnifiedMVSC(uo).Run(*graphs);
      mvsc::TwoStageOptions to;
      to.num_clusters = c;
      to.seed = seed;
      auto staged = mvsc::TwoStageMVSC(*graphs, to);
      if (!unified.ok() || !staged.ok()) continue;
      auto acc1 = eval::ClusteringAccuracy(unified->labels, dataset->labels);
      auto acc2 = eval::ClusteringAccuracy(staged->labels, dataset->labels);
      if (acc1.ok() && acc2.ok()) {
        one_stage.push_back(*acc1);
        two_stage.push_back(*acc2);
      }
    }
    bench::MetricStats s1 = bench::Aggregate(one_stage);
    bench::MetricStats s2 = bench::Aggregate(two_stage);
    std::printf("%-14s %14s %14s %+9.1f%%\n", name.c_str(),
                bench::FormatPct(s1).c_str(), bench::FormatPct(s2).c_str(),
                100.0 * (s1.mean - s2.mean));
  }
  return 0;
}
