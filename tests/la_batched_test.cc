// Tests of the team-per-problem batched small-solve kernels: every slot
// must equal the serial kernel bitwise — independent of batch composition,
// ragged shapes, or thread count — because that equivalence is what lets
// the executor gather solves across jobs without touching the determinism
// contract.

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "la/batched.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "la/svd.h"
#include "la/sym_eigen.h"

namespace umvsc::la {
namespace {

Matrix TestMatrix(std::size_t rows, std::size_t cols, std::uint64_t salt) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = std::cos(static_cast<double>(salt + i * cols + j + 1));
    }
  }
  return m;
}

Matrix SymmetricTestMatrix(std::size_t n, std::uint64_t salt) {
  Matrix m = TestMatrix(n, n, salt);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m(i, j) = m(j, i);
    }
    m(i, i) += 2.0;
  }
  return m;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(BatchedProcrustesTest, RaggedBatchMatchesSerialBitwise) {
  // Ragged shapes in one batch: c ∈ {2, 3, 4, 5}.
  std::vector<Matrix> inputs;
  for (std::size_t k = 0; k < 8; ++k) {
    inputs.push_back(TestMatrix(2 + k % 4, 2 + k % 4, 101 * (k + 1)));
  }
  std::vector<StatusOr<Matrix>> outputs(
      inputs.size(), StatusOr<Matrix>(Status::Internal("unfilled")));
  std::vector<ProcrustesProblem> problems(inputs.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    problems[k].input = &inputs[k];
    problems[k].output = &outputs[k];
  }
  BatchedProcrustes(problems.data(), problems.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    StatusOr<Matrix> serial = ProcrustesRotation(inputs[k]);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(outputs[k].ok()) << outputs[k].status().ToString();
    ExpectBitwiseEqual(*outputs[k], *serial);
  }
}

TEST(BatchedProcrustesTest, ResultIndependentOfBatchCompositionAndThreads) {
  const Matrix probe = TestMatrix(4, 4, 999);
  StatusOr<Matrix> alone = Status::Internal("unfilled");
  ProcrustesProblem solo{&probe, &alone};
  BatchedProcrustes(&solo, 1);
  ASSERT_TRUE(alone.ok());

  // Same problem embedded in a larger batch, at several thread counts.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScopedNumThreads scoped(threads);
    std::vector<Matrix> inputs{TestMatrix(3, 3, 1), probe,
                               TestMatrix(5, 5, 2), TestMatrix(2, 2, 3)};
    std::vector<StatusOr<Matrix>> outputs(
        inputs.size(), StatusOr<Matrix>(Status::Internal("unfilled")));
    std::vector<ProcrustesProblem> problems(inputs.size());
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      problems[k] = {&inputs[k], &outputs[k]};
    }
    BatchedProcrustes(problems.data(), problems.size());
    ASSERT_TRUE(outputs[1].ok());
    ExpectBitwiseEqual(*outputs[1], *alone);
  }
}

TEST(BatchedProcrustesTest, NullSlotsAreSkipped) {
  const Matrix input = TestMatrix(3, 3, 5);
  StatusOr<Matrix> output = Status::Internal("unfilled");
  std::vector<ProcrustesProblem> problems(3);
  problems[0] = {nullptr, &output};   // null input: skipped
  problems[1] = {&input, nullptr};    // null output: skipped
  problems[2] = {&input, &output};
  BatchedProcrustes(problems.data(), problems.size());
  ASSERT_TRUE(output.ok());
  BatchedProcrustes(nullptr, 0);  // empty batch is a no-op
}

TEST(BatchedSymmetricEigenTest, MatchesSerialBitwise) {
  std::vector<Matrix> inputs;
  for (std::size_t k = 0; k < 6; ++k) {
    inputs.push_back(SymmetricTestMatrix(3 + k % 3, 7 * (k + 1)));
  }
  std::vector<StatusOr<SymEigenResult>> outputs(
      inputs.size(),
      StatusOr<SymEigenResult>(Status::Internal("unfilled")));
  std::vector<SymEigenProblem> problems(inputs.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    problems[k].input = &inputs[k];
    problems[k].output = &outputs[k];
  }
  BatchedSymmetricEigen(problems.data(), problems.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    StatusOr<SymEigenResult> serial = SymmetricEigen(inputs[k]);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(outputs[k].ok()) << outputs[k].status().ToString();
    for (std::size_t i = 0; i < serial->eigenvalues.size(); ++i) {
      ASSERT_EQ(outputs[k]->eigenvalues[i], serial->eigenvalues[i]);
    }
    ExpectBitwiseEqual(outputs[k]->eigenvectors, serial->eigenvectors);
  }
}

TEST(BatchedGemmTest, BothTransposeFlavorsMatchSerialBitwise) {
  const Matrix a = TestMatrix(6, 4, 11);
  const Matrix b = TestMatrix(4, 3, 13);
  const Matrix at = TestMatrix(4, 6, 17);  // for the aᵀ·b flavor
  Matrix plain_out;
  Matrix transposed_out;
  std::vector<GemmProblem> problems(2);
  problems[0] = {&a, &b, &plain_out, /*transpose_a=*/false};
  problems[1] = {&at, &b, &transposed_out, /*transpose_a=*/true};
  BatchedGemm(problems.data(), problems.size());
  ExpectBitwiseEqual(plain_out, MatMul(a, b));
  ExpectBitwiseEqual(transposed_out, MatTMul(at, b));
}

}  // namespace
}  // namespace umvsc::la
