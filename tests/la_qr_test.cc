#include "la/qr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

class QrShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapeTest, ReconstructsAndIsOrthonormal) {
  auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131 + n));
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  QrResult qr = QrDecompose(a);

  EXPECT_EQ(qr.q.rows(), static_cast<std::size_t>(m));
  EXPECT_EQ(qr.q.cols(), static_cast<std::size_t>(n));
  EXPECT_EQ(qr.r.rows(), static_cast<std::size_t>(n));

  EXPECT_LT(OrthonormalityError(qr.q), 1e-12);
  EXPECT_TRUE(AlmostEqual(MatMul(qr.q, qr.r), a, 1e-11));
  // R upper triangular.
  for (std::size_t i = 1; i < qr.r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr.r(i, j), 0.0, 1e-14);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapeTest,
    ::testing::Values(std::pair{1, 1}, std::pair{4, 4}, std::pair{10, 3},
                      std::pair{25, 25}, std::pair{60, 12},
                      std::pair{100, 40}, std::pair{7, 7}));

TEST(QrTest, OrthonormalizeFullRank) {
  Rng rng(9);
  Matrix a = Matrix::RandomGaussian(30, 10, rng);
  Matrix q = Orthonormalize(a);
  EXPECT_LT(OrthonormalityError(q), 1e-12);
  // Column space preserved: projecting A onto Q recovers A.
  Matrix proj = MatMul(q, MatTMul(q, a));
  EXPECT_TRUE(AlmostEqual(proj, a, 1e-10));
}

TEST(QrTest, OrthonormalizeRankDeficientStillOrthonormal) {
  // Two identical columns: rank 1 out of 2.
  Matrix a(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  Matrix q = Orthonormalize(a);
  EXPECT_EQ(q.cols(), 2u);
  EXPECT_LT(OrthonormalityError(q), 1e-10);
}

TEST(QrTest, OrthonormalizeZeroMatrixProducesBasis) {
  Matrix a(5, 3);
  Matrix q = Orthonormalize(a);
  EXPECT_LT(OrthonormalityError(q), 1e-10);
}

TEST(QrTest, LeastSquaresExactSystem) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  Vector b{4.0, 9.0};
  Vector x = LeastSquares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(QrTest, LeastSquaresOverdeterminedMatchesNormalEquations) {
  Rng rng(10);
  Matrix a = Matrix::RandomGaussian(40, 5, rng);
  Vector b(40);
  for (std::size_t i = 0; i < 40; ++i) b[i] = rng.Gaussian();
  Vector x = LeastSquares(a, b);
  // Optimality: residual is orthogonal to the column space (Aᵀr = 0).
  Vector r = MatVec(a, x) - b;
  Vector atr = MatTVec(a, r);
  EXPECT_LT(atr.MaxAbs(), 1e-10);
}

TEST(QrTest, QrOfOrthonormalInputGivesIdentityLikeR) {
  Matrix q0 = test::RandomOrthonormal(20, 6, 11);
  QrResult qr = QrDecompose(q0);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(std::abs(qr.r(i, i)), 1.0, 1e-12);
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_NEAR(qr.r(i, j), 0.0, 1e-12);
    }
  }
}

}  // namespace
}  // namespace umvsc::la
