#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/connectivity.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"

namespace umvsc::graph {
namespace {

la::Matrix TwoBlobs(std::size_t per_cluster, double gap, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix x(2 * per_cluster, 2);
  for (std::size_t i = 0; i < per_cluster; ++i) {
    x(i, 0) = rng.Gaussian(0.0, 0.3);
    x(i, 1) = rng.Gaussian(0.0, 0.3);
    x(per_cluster + i, 0) = rng.Gaussian(gap, 0.3);
    x(per_cluster + i, 1) = rng.Gaussian(0.0, 0.3);
  }
  return x;
}

TEST(KnnGraphTest, BasicPropertiesHold) {
  la::Matrix x = TwoBlobs(15, 8.0, 4);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> kernel = SelfTuningKernel(d2, 5);
  ASSERT_TRUE(kernel.ok());
  StatusOr<la::CsrMatrix> w = BuildKnnGraph(*kernel, 5);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->IsSymmetric(1e-12));
  // No self loops.
  for (std::size_t i = 0; i < w->rows(); ++i) EXPECT_DOUBLE_EQ(w->At(i, i), 0.0);
  // Union symmetrization: each vertex keeps at least its own k edges.
  for (std::size_t i = 0; i < w->rows(); ++i) {
    std::size_t deg = w->row_offsets()[i + 1] - w->row_offsets()[i];
    EXPECT_GE(deg, 5u);
  }
}

TEST(KnnGraphTest, MutualIsSubsetOfUnion) {
  la::Matrix x = TwoBlobs(12, 6.0, 5);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> kernel = SelfTuningKernel(d2, 4);
  ASSERT_TRUE(kernel.ok());
  StatusOr<la::CsrMatrix> u = BuildKnnGraph(*kernel, 4, KnnSymmetrization::kUnion);
  StatusOr<la::CsrMatrix> m =
      BuildKnnGraph(*kernel, 4, KnnSymmetrization::kMutual);
  ASSERT_TRUE(u.ok() && m.ok());
  EXPECT_LE(m->NumNonZeros(), u->NumNonZeros());
  // Every mutual edge exists in the union graph.
  for (std::size_t i = 0; i < m->rows(); ++i) {
    for (std::size_t k = m->row_offsets()[i]; k < m->row_offsets()[i + 1]; ++k) {
      EXPECT_GT(u->At(i, m->col_indices()[k]), 0.0);
    }
  }
}

TEST(KnnGraphTest, WellSeparatedBlobsDisconnect) {
  la::Matrix x = TwoBlobs(15, 50.0, 6);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> kernel = SelfTuningKernel(d2, 4);
  ASSERT_TRUE(kernel.ok());
  StatusOr<la::CsrMatrix> w = BuildKnnGraph(*kernel, 4);
  ASSERT_TRUE(w.ok());
  // kNN selection keeps in-cluster edges only: exactly two components that
  // match the blob split.
  auto comp = ConnectedComponents(*w);
  EXPECT_EQ(CountComponents(*w), 2u);
  for (std::size_t i = 1; i < 15; ++i) {
    EXPECT_EQ(comp[i], comp[0]);
    EXPECT_EQ(comp[15 + i], comp[15]);
  }
  EXPECT_NE(comp[0], comp[15]);
  EXPECT_FALSE(IsConnected(*w));
}

TEST(KnnGraphTest, RejectsBadInputs) {
  la::Matrix rect(3, 4);
  EXPECT_FALSE(BuildKnnGraph(rect, 1).ok());
  la::Matrix neg(4, 4);
  neg(0, 1) = -1.0;
  EXPECT_FALSE(BuildKnnGraph(neg, 1).ok());
  la::Matrix ok(4, 4, 0.5);
  EXPECT_FALSE(BuildKnnGraph(ok, 0).ok());
  EXPECT_FALSE(BuildKnnGraph(ok, 4).ok());
}

TEST(AdaptiveNeighborTest, RowsFormProbabilities) {
  la::Matrix x = TwoBlobs(10, 5.0, 7);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::CsrMatrix> w = AdaptiveNeighborGraph(d2, 4);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->IsSymmetric(1e-12));
  // Each row of the directed construction sums to 1; after (W + Wᵀ)/2 the
  // TOTAL mass is n (each directed simplex contributes 1/2 twice).
  la::Vector sums = w->RowSums();
  EXPECT_NEAR(sums.Sum(), static_cast<double>(w->rows()), 1e-9);
  for (double v : w->values()) EXPECT_GE(v, 0.0);
}

TEST(AdaptiveNeighborTest, CloserNeighborsGetMoreWeight) {
  // Four collinear points; for point 0 with k=2 neighbors {1, 2}, the
  // closed form weights the nearer one strictly higher.
  la::Matrix x{{0.0}, {1.0}, {2.0}, {10.0}};
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::CsrMatrix> w = AdaptiveNeighborGraph(d2, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w->At(0, 1), w->At(0, 2));
}

TEST(AdaptiveNeighborTest, TiedDistancesFallBackToUniform) {
  // Equilateral configuration: all pairwise distances equal. Each directed
  // simplex falls back to uniform 1/k weights; after (W + Wᵀ)/2 the total
  // mass is still n and every edge weight is a multiple of 1/(2k).
  la::Matrix d2(4, 4, 1.0);
  for (std::size_t i = 0; i < 4; ++i) d2(i, i) = 0.0;
  StatusOr<la::CsrMatrix> w = AdaptiveNeighborGraph(d2, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w->RowSums().Sum(), 4.0, 1e-9);
  for (double v : w->values()) {
    EXPECT_NEAR(std::round(v * 4.0), v * 4.0, 1e-9);
    EXPECT_GT(v, 0.0);
  }
}

TEST(AdaptiveNeighborTest, RejectsBadK) {
  la::Matrix d2(5, 5);
  EXPECT_FALSE(AdaptiveNeighborGraph(d2, 0).ok());
  EXPECT_FALSE(AdaptiveNeighborGraph(d2, 4).ok());
}

TEST(ConnectivityTest, SingletonAndEmptyGraph) {
  la::CsrMatrix empty = la::CsrMatrix::FromTriplets(3, 3, {});
  EXPECT_EQ(CountComponents(empty), 3u);
  la::CsrMatrix one = la::CsrMatrix::FromTriplets(1, 1, {});
  EXPECT_TRUE(IsConnected(one));
}

TEST(ConnectivityTest, ChainIsConnected) {
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i + 1 < 6; ++i) {
    t.push_back({i, i + 1, 1.0});
    t.push_back({i + 1, i, 1.0});
  }
  la::CsrMatrix chain = la::CsrMatrix::FromTriplets(6, 6, std::move(t));
  EXPECT_TRUE(IsConnected(chain));
  EXPECT_EQ(CountComponents(chain), 1u);
}

}  // namespace
}  // namespace umvsc::graph
