#include "la/nmf.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"

namespace umvsc::la {
namespace {

// Exactly factorizable nonnegative matrix of known rank.
Matrix LowRankNonnegative(std::size_t n, std::size_t d, std::size_t r,
                          std::uint64_t seed) {
  Rng rng(seed);
  Matrix w = Matrix::RandomUniform(n, r, rng, 0.0, 1.0);
  Matrix h = Matrix::RandomUniform(r, d, rng, 0.0, 1.0);
  return MatMul(w, h);
}

TEST(NmfTest, ReconstructsLowRankMatrix) {
  Matrix a = LowRankNonnegative(30, 20, 3, 1);
  NmfOptions options;
  options.rank = 3;
  options.max_iterations = 2000;
  options.tolerance = 1e-10;
  options.seed = 2;
  StatusOr<NmfResult> r = Nmf(a, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(r->relative_error, 0.02);
  EXPECT_EQ(r->w.rows(), 30u);
  EXPECT_EQ(r->w.cols(), 3u);
  EXPECT_EQ(r->h.rows(), 3u);
  EXPECT_EQ(r->h.cols(), 20u);
}

TEST(NmfTest, FactorsAreNonnegative) {
  Matrix a = LowRankNonnegative(15, 12, 4, 3);
  NmfOptions options;
  options.rank = 4;
  options.seed = 4;
  StatusOr<NmfResult> r = Nmf(a, options);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < r->w.size(); ++i) EXPECT_GE(r->w.data()[i], 0.0);
  for (std::size_t i = 0; i < r->h.size(); ++i) EXPECT_GE(r->h.data()[i], 0.0);
}

TEST(NmfTest, ErrorDecreasesWithRank) {
  Rng rng(5);
  Matrix a = Matrix::RandomUniform(25, 18, rng, 0.0, 1.0);
  double prev = 1.0;
  for (std::size_t rank : {1, 4, 12}) {
    NmfOptions options;
    options.rank = rank;
    options.max_iterations = 500;
    options.seed = 6;
    StatusOr<NmfResult> r = Nmf(a, options);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->relative_error, prev + 1e-6) << "rank " << rank;
    prev = r->relative_error;
  }
}

TEST(NmfTest, DeterministicForSeed) {
  Matrix a = LowRankNonnegative(12, 10, 2, 7);
  NmfOptions options;
  options.rank = 2;
  options.seed = 8;
  StatusOr<NmfResult> r1 = Nmf(a, options);
  StatusOr<NmfResult> r2 = Nmf(a, options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(AlmostEqual(r1->w, r2->w, 0.0));
  EXPECT_DOUBLE_EQ(r1->relative_error, r2->relative_error);
}

TEST(NmfTest, ClusterStructureShowsInFactor) {
  // Block-diagonal-ish matrix: rows of W should separate the two blocks.
  Matrix a(20, 10);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const bool same_block = (i < 10) == (j < 5);
      a(i, j) = same_block ? 1.0 : 0.01;
    }
  }
  NmfOptions options;
  options.rank = 2;
  options.max_iterations = 500;
  options.seed = 9;
  StatusOr<NmfResult> r = Nmf(a, options);
  ASSERT_TRUE(r.ok());
  // Rows in the same block should pick the same dominant column of W.
  auto dominant = [&](std::size_t i) {
    return r->w(i, 0) > r->w(i, 1) ? 0 : 1;
  };
  for (std::size_t i = 1; i < 10; ++i) EXPECT_EQ(dominant(i), dominant(0));
  for (std::size_t i = 11; i < 20; ++i) EXPECT_EQ(dominant(i), dominant(10));
  EXPECT_NE(dominant(0), dominant(10));
}

TEST(NmfTest, RejectsInvalidInputs) {
  NmfOptions options;
  options.rank = 2;
  EXPECT_FALSE(Nmf(Matrix(), options).ok());
  Matrix neg(3, 3);
  neg(0, 0) = -1.0;
  EXPECT_FALSE(Nmf(neg, options).ok());
  Matrix ok(3, 3, 1.0);
  options.rank = 0;
  EXPECT_FALSE(Nmf(ok, options).ok());
  options.rank = 4;
  EXPECT_FALSE(Nmf(ok, options).ok());
}

}  // namespace
}  // namespace umvsc::la
