#include <cmath>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/gemm_kernel.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/sym_eigen.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

// Unnormalized Laplacian of a disjoint union of `c` cliques of size `s` —
// the bottom eigenvalue 0 has multiplicity exactly c, the classic
// multiplicity trap for single-vector Krylov solvers.
CsrMatrix BlockCliqueLaplacian(std::size_t c, std::size_t s) {
  std::vector<Triplet> t;
  for (std::size_t b = 0; b < c; ++b) {
    const std::size_t base = b * s;
    for (std::size_t i = 0; i < s; ++i) {
      t.push_back({base + i, base + i, static_cast<double>(s - 1)});
      for (std::size_t j = 0; j < s; ++j) {
        if (i != j) t.push_back({base + i, base + j, -1.0});
      }
    }
  }
  return CsrMatrix::FromTriplets(c * s, c * s, std::move(t));
}

TEST(BlockLanczosTest, LargestMatchesDenseReference) {
  Matrix dense = test::RandomSymmetric(40, 190);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> full = SymmetricEigen(dense);
  StatusOr<SymEigenResult> blk = BlockLanczosLargest(sparse, 4);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j], full->eigenvalues[39 - j], 1e-7);
  }
  EXPECT_LT(OrthonormalityError(blk->eigenvectors), 1e-8);
  for (int j = 0; j < 4; ++j) {
    Vector v = blk->eigenvectors.Col(j);
    Vector av = sparse.Multiply(v);
    av.Axpy(-blk->eigenvalues[j], v);
    EXPECT_LT(av.Norm2(), 1e-6 * std::max(1.0, std::fabs(blk->eigenvalues[j])));
  }
}

TEST(BlockLanczosTest, SmallestMatchesDenseReference) {
  Matrix dense = test::RandomSpd(35, 192);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> full = SymmetricEigen(dense);
  ASSERT_TRUE(full.ok());
  const double bound = full->eigenvalues[34] * 1.01;
  StatusOr<SymEigenResult> blk = BlockLanczosSmallest(sparse, 3, bound);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j], full->eigenvalues[j], 1e-6);
  }
}

TEST(BlockLanczosTest, AgreesWithSingleVectorSolver) {
  Matrix dense = test::RandomSymmetric(50, 193);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> single = LanczosLargest(sparse, 5);
  StatusOr<SymEigenResult> blk = BlockLanczosLargest(sparse, 5);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j], single->eigenvalues[j], 1e-7);
  }
}

TEST(BlockLanczosTest, BlockSizeOneIsTheSingleVectorSpecialization) {
  // b = 1 degenerates to one Krylov direction per iteration — the same
  // iteration the single-vector solver runs. Values must agree to solver
  // tolerance (the reorthogonalization arithmetic differs in rounding).
  Matrix dense = test::RandomSymmetric(45, 194);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  LanczosOptions options;
  options.block_size = 1;
  StatusOr<SymEigenResult> blk = BlockLanczosLargest(sparse, 3, options);
  StatusOr<SymEigenResult> single = LanczosLargest(sparse, 3);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  ASSERT_TRUE(single.ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j], single->eigenvalues[j], 1e-7);
  }
}

TEST(BlockLanczosTest, RepeatedEigenvaluesCapturedInOnePanel) {
  // 5-fold degenerate bottom eigenvalue; a b = 5 panel sees every copy at
  // once where a single Krylov sequence needs one breakdown restart per
  // missed copy.
  const std::size_t c = 5, s = 8;
  CsrMatrix lap = BlockCliqueLaplacian(c, s);
  StatusOr<SymEigenResult> blk =
      BlockLanczosSmallest(lap, c, static_cast<double>(s) + 1.0);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  for (std::size_t j = 0; j < c; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j], 0.0, 1e-7) << "j=" << j;
  }
  // The full c-dimensional null space must be captured: Lap·V ≈ 0.
  Matrix lv = lap.Multiply(blk->eigenvectors);
  EXPECT_LT(lv.MaxAbs(), 1e-7);
  EXPECT_LT(OrthonormalityError(blk->eigenvectors), 1e-8);
}

TEST(BlockLanczosTest, ClusteredEigenvaluesResolved) {
  // Tight cluster at the top: 10 ± 1e-4 spread over 4 eigenvalues, with the
  // rest well below. The block width covers the whole cluster.
  const std::size_t n = 80, k = 4;
  Vector evals(n);
  for (std::size_t i = 0; i < n; ++i) {
    evals[i] = i < n - k ? 0.05 * static_cast<double>(i)
                         : 10.0 + 1e-4 * static_cast<double>(i - (n - k));
  }
  Matrix dense = test::SymmetricWithSpectrum(evals, 195);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> blk = BlockLanczosLargest(sparse, k);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j],
                10.0 + 1e-4 * static_cast<double>(k - 1 - j), 1e-7);
  }
}

TEST(BlockLanczosTest, WarmStartedPanelUsesFewerPanelMatvecs) {
  const std::size_t n = 150;
  const std::size_t k = 5;
  Vector evals(n);
  for (std::size_t i = 0; i < n; ++i) {
    evals[i] = i < n - k ? 0.01 * static_cast<double>(i)
                         : 10.0 + static_cast<double>(i - (n - k));
  }
  Matrix dense = test::SymmetricWithSpectrum(evals, 196);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);

  LanczosOptions cold;
  std::size_t cold_matvecs = 0;
  cold.matvec_count = &cold_matvecs;
  StatusOr<SymEigenResult> first = BlockLanczosLargest(sparse, k, cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  LanczosOptions warm;
  std::size_t warm_matvecs = 0;
  warm.matvec_count = &warm_matvecs;
  warm.warm_start = &first->eigenvectors;
  StatusOr<SymEigenResult> second = BlockLanczosLargest(sparse, k, warm);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_LT(warm_matvecs, cold_matvecs);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(second->eigenvalues[j], first->eigenvalues[j], 1e-7);
  }
}

TEST(BlockLanczosTest, MatvecCountIsPanelApplicationsTimesWidth) {
  CsrMatrix lap = BlockCliqueLaplacian(3, 10);
  LanczosOptions options;
  std::size_t matvecs = 0;
  options.matvec_count = &matvecs;
  StatusOr<SymEigenResult> res =
      BlockLanczosSmallest(lap, 3, 11.0, options);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // Every panel has width b = k = 3 here (n = 30 leaves room), so the
  // counter must be a positive multiple of 3.
  EXPECT_GT(matvecs, 0u);
  EXPECT_EQ(matvecs % 3, 0u);
}

TEST(BlockLanczosTest, MatrixFreeBlockOperatorWorks) {
  const std::size_t n = 25;
  SymmetricBlockOperator op = [n](const Matrix& x, Matrix& y) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        y(i, j) += static_cast<double>(i + 1) * x(i, j);
      }
    }
  };
  StatusOr<SymEigenResult> blk = BlockLanczosLargest(op, n, 2);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  EXPECT_NEAR(blk->eigenvalues[0], static_cast<double>(n), 1e-8);
  EXPECT_NEAR(blk->eigenvalues[1], static_cast<double>(n - 1), 1e-8);
}

TEST(BlockLanczosTest, MismatchedWarmStartIsIgnored) {
  CsrMatrix lap = BlockCliqueLaplacian(4, 8);
  Matrix wrong_rows(7, 2);  // not 32 rows: must be ignored, not crash
  LanczosOptions options;
  options.warm_start = &wrong_rows;
  StatusOr<SymEigenResult> res = BlockLanczosSmallest(lap, 4, 9.0, options);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  StatusOr<SymEigenResult> plain = BlockLanczosSmallest(lap, 4, 9.0);
  ASSERT_TRUE(plain.ok());
  // Identical to the cold solve bit for bit — same seed, same random panel.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(res->eigenvalues[j], plain->eigenvalues[j]);
  }
}

TEST(BlockLanczosTest, KEqualsNReturnsFullSpectrum) {
  Matrix dense = test::RandomSymmetric(12, 197);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> full = SymmetricEigen(dense);
  StatusOr<SymEigenResult> blk = BlockLanczosLargest(sparse, 12);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  for (int j = 0; j < 12; ++j) {
    EXPECT_NEAR(blk->eigenvalues[j], full->eigenvalues[11 - j], 1e-7);
  }
}

TEST(BlockLanczosTest, InvalidArguments) {
  CsrMatrix lap = BlockCliqueLaplacian(2, 5);
  EXPECT_FALSE(BlockLanczosLargest(lap, 0).ok());
  EXPECT_FALSE(BlockLanczosLargest(lap, 11).ok());
  EXPECT_FALSE(BlockLanczosSmallest(lap, 2, -1.0).ok());
  CsrMatrix rect = CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}});
  EXPECT_FALSE(BlockLanczosLargest(rect, 1).ok());
  LanczosOptions tiny;
  tiny.max_subspace = 2;
  EXPECT_FALSE(BlockLanczosLargest(lap, 3, tiny).ok());
}

// A sparse matrix with irregular row lengths (some rows empty) so the
// skinny-SpMM kernels see the row shapes the cache-blocked generic kernel
// sees, not just a uniform-degree graph.
CsrMatrix IrregularSparse(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) continue;  // leave some rows empty
    const std::size_t deg = 1 + rng.UniformInt(12);
    for (std::size_t e = 0; e < deg; ++e) {
      t.push_back({i, rng.UniformInt(n), rng.Uniform(-1.0, 1.0)});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t));
}

// The width-specialized skinny SpMM must be bitwise identical to the
// generic cache-blocked kernel it replaces at b <= 12, at every thread
// count, under both SIMD and scalar dispatch — the eigensolver's
// determinism contract leans on all of it.
TEST(SkinnySpmmTest, BitwiseMatchesGenericKernelAcrossThreadCounts) {
  const std::size_t n = 257;  // not a multiple of the row grain
  CsrMatrix a = IrregularSparse(n, 91);
  for (const std::size_t b : {2, 4, 8}) {
    Rng rng(100 + b);
    Matrix x = Matrix::RandomGaussian(n, b, rng);
    Matrix reference(n, b);
    {
      ScopedNumThreads single_thread(1);
      reference.Fill(0.5);
      internal::SpmmGeneric(a, x, reference, 1.25);
    }
    for (const std::size_t threads : {1, 2, 8}) {
      ScopedNumThreads scope(threads);
      Matrix generic(n, b);
      generic.Fill(0.5);
      internal::SpmmGeneric(a, x, generic, 1.25);
      Matrix skinny(n, b);
      skinny.Fill(0.5);
      a.MultiplyInto(x, skinny, 1.25);
      Matrix scalar_skinny(n, b);
      {
        kernel::ScopedForceScalar force_scalar;
        scalar_skinny.Fill(0.5);
        a.MultiplyInto(x, scalar_skinny, 1.25);
      }
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference.data()[i], generic.data()[i])
            << "generic kernel drifted at b=" << b << " threads=" << threads;
        ASSERT_EQ(reference.data()[i], skinny.data()[i])
            << "skinny kernel differs at b=" << b << " threads=" << threads;
        ASSERT_EQ(reference.data()[i], scalar_skinny.data()[i])
            << "scalar skinny differs at b=" << b << " threads=" << threads;
      }
    }
  }
}

// The SpMM panel contract: equal to b independent per-column SpMVs, bit
// for bit, at every skinny width (including the scalar remainder widths).
TEST(SkinnySpmmTest, BitwiseMatchesPerColumnSpmv) {
  const std::size_t n = 123;
  CsrMatrix a = IrregularSparse(n, 17);
  for (std::size_t b = 1; b <= 13; ++b) {  // 13 exercises the generic path
    Rng rng(200 + b);
    Matrix x = Matrix::RandomGaussian(n, b, rng);
    Matrix y(n, b);
    a.MultiplyInto(x, y, 0.75);
    for (std::size_t j = 0; j < b; ++j) {
      Vector xcol(n), ycol(n);
      for (std::size_t i = 0; i < n; ++i) xcol[i] = x(i, j);
      a.MultiplyInto(xcol, ycol, 0.75);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ycol[i], y(i, j)) << "column " << j << " width " << b;
      }
    }
  }
}

}  // namespace
}  // namespace umvsc::la
