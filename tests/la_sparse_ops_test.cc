#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"
#include "la/sparse.h"

namespace umvsc::la {
namespace {

CsrMatrix RandomSparse(std::size_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.Uniform() < density) t.push_back({i, j, rng.Gaussian()});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t));
}

TEST(WeightedSumTest, MatchesDenseCombination) {
  std::vector<CsrMatrix> mats;
  std::vector<double> weights{0.5, -2.0, 3.25};
  for (std::uint64_t s = 0; s < 3; ++s) mats.push_back(RandomSparse(12, 0.3, s));
  CsrMatrix sum = WeightedSum(mats, weights);
  Matrix dense(12, 12);
  for (std::size_t m = 0; m < 3; ++m) {
    dense.Add(mats[m].ToDense(), weights[m]);
  }
  EXPECT_TRUE(AlmostEqual(sum.ToDense(), dense, 1e-12));
}

TEST(WeightedSumTest, ZeroWeightSkipsMatrix) {
  std::vector<CsrMatrix> mats{RandomSparse(6, 0.5, 10), RandomSparse(6, 0.5, 11)};
  CsrMatrix sum = WeightedSum(mats, {1.0, 0.0});
  EXPECT_TRUE(AlmostEqual(sum.ToDense(), mats[0].ToDense(), 0.0));
}

TEST(WeightedSumTest, SingleMatrixScales) {
  std::vector<CsrMatrix> mats{RandomSparse(5, 0.4, 12)};
  CsrMatrix sum = WeightedSum(mats, {2.5});
  Matrix expected = mats[0].ToDense();
  expected.Scale(2.5);
  EXPECT_TRUE(AlmostEqual(sum.ToDense(), expected, 1e-13));
}

TEST(WeightedSumDeathTest, MismatchedInputsAbort) {
  std::vector<CsrMatrix> mats{RandomSparse(4, 0.5, 13)};
  EXPECT_DEATH(WeightedSum(mats, {1.0, 2.0}), "weight count");
  EXPECT_DEATH(WeightedSum({}, {}), "at least one");
  std::vector<CsrMatrix> shapes{RandomSparse(4, 0.5, 14),
                                RandomSparse(5, 0.5, 15)};
  EXPECT_DEATH(WeightedSum(shapes, {1.0, 1.0}), "shape mismatch");
}

TEST(SparseQuadraticTraceTest, MatchesDense) {
  CsrMatrix l = RandomSparse(10, 0.4, 20);
  // Symmetrize so QuadraticTrace semantics match the dense overload.
  Matrix dense = l.ToDense();
  dense.Symmetrize();
  CsrMatrix sym = CsrMatrix::FromDense(dense);
  Rng rng(21);
  Matrix f = Matrix::RandomGaussian(10, 3, rng);
  EXPECT_NEAR(QuadraticTrace(sym, f), QuadraticTrace(dense, f), 1e-10);
}

TEST(SparseQuadraticTraceTest, ZeroRowsContributeNothing) {
  // A Laplacian-like matrix with row 3 entirely absent.
  CsrMatrix l = CsrMatrix::FromTriplets(
      4, 4, {{0, 0, 1.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 1.0}});
  Rng rng(22);
  Matrix f = Matrix::RandomGaussian(4, 2, rng);
  Matrix f2 = f;
  f2(3, 0) = 99.0;  // changing an absent sample's row must not matter
  f2(3, 1) = -99.0;
  EXPECT_NEAR(QuadraticTrace(l, f), QuadraticTrace(l, f2), 1e-12);
}

}  // namespace
}  // namespace umvsc::la
