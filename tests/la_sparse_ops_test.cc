#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"
#include "la/sparse.h"

namespace umvsc::la {
namespace {

CsrMatrix RandomSparse(std::size_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.Uniform() < density) t.push_back({i, j, rng.Gaussian()});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t));
}

TEST(WeightedSumTest, MatchesDenseCombination) {
  std::vector<CsrMatrix> mats;
  std::vector<double> weights{0.5, -2.0, 3.25};
  for (std::uint64_t s = 0; s < 3; ++s) mats.push_back(RandomSparse(12, 0.3, s));
  CsrMatrix sum = WeightedSum(mats, weights);
  Matrix dense(12, 12);
  for (std::size_t m = 0; m < 3; ++m) {
    dense.Add(mats[m].ToDense(), weights[m]);
  }
  EXPECT_TRUE(AlmostEqual(sum.ToDense(), dense, 1e-12));
}

TEST(WeightedSumTest, ZeroWeightSkipsMatrix) {
  std::vector<CsrMatrix> mats{RandomSparse(6, 0.5, 10), RandomSparse(6, 0.5, 11)};
  CsrMatrix sum = WeightedSum(mats, {1.0, 0.0});
  EXPECT_TRUE(AlmostEqual(sum.ToDense(), mats[0].ToDense(), 0.0));
}

TEST(WeightedSumTest, SingleMatrixScales) {
  std::vector<CsrMatrix> mats{RandomSparse(5, 0.4, 12)};
  CsrMatrix sum = WeightedSum(mats, {2.5});
  Matrix expected = mats[0].ToDense();
  expected.Scale(2.5);
  EXPECT_TRUE(AlmostEqual(sum.ToDense(), expected, 1e-13));
}

TEST(WeightedSumDeathTest, MismatchedInputsAbort) {
  std::vector<CsrMatrix> mats{RandomSparse(4, 0.5, 13)};
  EXPECT_DEATH(WeightedSum(mats, {1.0, 2.0}), "weight count");
  EXPECT_DEATH(WeightedSum({}, {}), "at least one");
  std::vector<CsrMatrix> shapes{RandomSparse(4, 0.5, 14),
                                RandomSparse(5, 0.5, 15)};
  EXPECT_DEATH(WeightedSum(shapes, {1.0, 1.0}), "shape mismatch");
}

TEST(SparseQuadraticTraceTest, MatchesDense) {
  CsrMatrix l = RandomSparse(10, 0.4, 20);
  // Symmetrize so QuadraticTrace semantics match the dense overload.
  Matrix dense = l.ToDense();
  dense.Symmetrize();
  CsrMatrix sym = CsrMatrix::FromDense(dense);
  Rng rng(21);
  Matrix f = Matrix::RandomGaussian(10, 3, rng);
  EXPECT_NEAR(QuadraticTrace(sym, f), QuadraticTrace(dense, f), 1e-10);
}

TEST(SparseQuadraticTraceTest, ZeroRowsContributeNothing) {
  // A Laplacian-like matrix with row 3 entirely absent.
  CsrMatrix l = CsrMatrix::FromTriplets(
      4, 4, {{0, 0, 1.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 1.0}});
  Rng rng(22);
  Matrix f = Matrix::RandomGaussian(4, 2, rng);
  Matrix f2 = f;
  f2(3, 0) = 99.0;  // changing an absent sample's row must not matter
  f2(3, 1) = -99.0;
  EXPECT_NEAR(QuadraticTrace(l, f), QuadraticTrace(l, f2), 1e-12);
}

TEST(CsrCombinerTest, MatchesWeightedSum) {
  std::vector<CsrMatrix> mats;
  for (std::uint64_t s = 10; s < 13; ++s) mats.push_back(RandomSparse(15, 0.25, s));
  const std::vector<double> weights{0.7, 1.9, -0.4};
  CsrCombiner combiner = CsrCombiner::Plan(mats);
  CsrMatrix fast = combiner.Combine(mats, weights);
  CsrMatrix reference = WeightedSum(mats, weights);
  // Same union pattern (WeightedSum drops nothing either — cancellation
  // keeps explicit zeros in both), values equal to summation-order
  // reordering.
  ASSERT_EQ(fast.row_offsets(), reference.row_offsets());
  ASSERT_EQ(fast.col_indices(), reference.col_indices());
  for (std::size_t k = 0; k < fast.values().size(); ++k) {
    EXPECT_NEAR(fast.values()[k], reference.values()[k], 1e-12);
  }
}

TEST(CsrCombinerTest, ReusablePlanTracksValueChanges) {
  std::vector<CsrMatrix> mats;
  for (std::uint64_t s = 20; s < 22; ++s) mats.push_back(RandomSparse(10, 0.3, s));
  CsrCombiner combiner = CsrCombiner::Plan(mats);
  // Same plan, several weight vectors — the per-iteration pattern of the
  // alternating solver. With two views the accumulation order matches
  // WeightedSum's duplicate summation exactly, so results are identical.
  // (Weights stay nonzero: WeightedSum drops a zero-weighted matrix's
  // pattern entirely, whereas the planned union keeps it as explicit zeros
  // — see ZeroWeightLeavesExplicitZeroSlots.)
  for (const std::vector<double>& w :
       {std::vector<double>{1.0, 1.0}, std::vector<double>{0.25, 0.75},
        std::vector<double>{-3.0, 2.0}}) {
    CsrMatrix fast = combiner.Combine(mats, w);
    CsrMatrix reference = WeightedSum(mats, w);
    ASSERT_EQ(fast.col_indices(), reference.col_indices());
    for (std::size_t k = 0; k < fast.values().size(); ++k) {
      EXPECT_EQ(fast.values()[k], reference.values()[k]);
    }
  }
}

TEST(CsrCombinerTest, ZeroWeightLeavesExplicitZeroSlots) {
  std::vector<CsrMatrix> mats;
  mats.push_back(CsrMatrix::FromTriplets(3, 3, {{0, 0, 2.0}}));
  mats.push_back(CsrMatrix::FromTriplets(3, 3, {{1, 2, 5.0}}));
  CsrCombiner combiner = CsrCombiner::Plan(mats);
  CsrMatrix out = combiner.Combine(mats, {1.0, 0.0});
  // The union pattern is fixed: the skipped matrix's slot stays as an
  // explicit zero rather than vanishing.
  EXPECT_EQ(out.NumNonZeros(), 2u);
  EXPECT_EQ(out.At(0, 0), 2.0);
  EXPECT_EQ(out.At(1, 2), 0.0);
}

TEST(FromPartsTest, RoundTripsCsrArrays) {
  CsrMatrix original = RandomSparse(12, 0.3, 77);
  CsrMatrix rebuilt = CsrMatrix::FromParts(
      original.rows(), original.cols(), original.row_offsets(),
      original.col_indices(), original.values());
  EXPECT_EQ(rebuilt.row_offsets(), original.row_offsets());
  EXPECT_EQ(rebuilt.col_indices(), original.col_indices());
  EXPECT_EQ(rebuilt.values(), original.values());
}

TEST(FromPartsDeathTest, RejectsMalformedArrays) {
  // Unsorted columns within a row.
  EXPECT_DEATH(CsrMatrix::FromParts(1, 3, {0, 2}, {2, 1}, {1.0, 1.0}),
               "ascending");
  // Offsets inconsistent with array lengths.
  EXPECT_DEATH(CsrMatrix::FromParts(1, 3, {0, 1}, {0, 1}, {1.0, 1.0}),
               "inconsistent");
}

}  // namespace
}  // namespace umvsc::la
