#include "cluster/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace umvsc::cluster {
namespace {

// Well-separated Gaussian blobs with ground-truth labels.
struct Blobs {
  la::Matrix data;
  std::vector<std::size_t> labels;
};

Blobs MakeBlobs(std::size_t per_cluster, std::size_t k, double separation,
                std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.data = la::Matrix(per_cluster * k, 2);
  for (std::size_t c = 0; c < k; ++c) {
    const double cx = separation * static_cast<double>(c);
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      blobs.data(row, 0) = rng.Gaussian(cx, 0.3);
      blobs.data(row, 1) = rng.Gaussian(0.0, 0.3);
      blobs.labels.push_back(c);
    }
  }
  return blobs;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Blobs blobs = MakeBlobs(30, 3, 10.0, 20);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 1;
  StatusOr<KMeansResult> result = KMeans(blobs.data, options);
  ASSERT_TRUE(result.ok());
  StatusOr<double> acc = eval::ClusteringAccuracy(result->labels, blobs.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

TEST(KMeansTest, InertiaIsSumOfSquaredResiduals) {
  Blobs blobs = MakeBlobs(10, 2, 8.0, 21);
  KMeansOptions options;
  options.num_clusters = 2;
  options.seed = 2;
  StatusOr<KMeansResult> result = KMeans(blobs.data, options);
  ASSERT_TRUE(result.ok());
  double recomputed = 0.0;
  for (std::size_t i = 0; i < blobs.data.rows(); ++i) {
    const std::size_t c = result->labels[i];
    for (std::size_t j = 0; j < 2; ++j) {
      const double diff = blobs.data(i, j) - result->centroids(c, j);
      recomputed += diff * diff;
    }
  }
  EXPECT_NEAR(result->inertia, recomputed, 1e-9);
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  Blobs blobs = MakeBlobs(20, 3, 4.0, 22);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 77;
  StatusOr<KMeansResult> a = KMeans(blobs.data, options);
  StatusOr<KMeansResult> b = KMeans(blobs.data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  Blobs blobs = MakeBlobs(15, 4, 2.0, 23);  // mildly overlapping: harder
  KMeansOptions one;
  one.num_clusters = 4;
  one.restarts = 1;
  one.seed = 5;
  KMeansOptions many = one;
  many.restarts = 20;
  StatusOr<KMeansResult> r1 = KMeans(blobs.data, one);
  StatusOr<KMeansResult> r2 = KMeans(blobs.data, many);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(r2->inertia, r1->inertia + 1e-9);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Blobs blobs = MakeBlobs(2, 2, 5.0, 24);
  KMeansOptions options;
  options.num_clusters = 4;  // = n
  options.seed = 3;
  StatusOr<KMeansResult> result = KMeans(blobs.data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
  std::set<std::size_t> distinct(result->labels.begin(), result->labels.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Blobs blobs = MakeBlobs(25, 1, 0.0, 25);
  KMeansOptions options;
  options.num_clusters = 1;
  StatusOr<KMeansResult> result = KMeans(blobs.data, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 25; ++i) mean += blobs.data(i, j);
    mean /= 25.0;
    EXPECT_NEAR(result->centroids(0, j), mean, 1e-9);
  }
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  la::Matrix data(10, 2, 1.0);  // all identical
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 9;
  StatusOr<KMeansResult> result = KMeans(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, EmptyClusterRepairKeepsAllClustersPopulated) {
  // Far outlier pulls a centroid; k=3 on 2 tight groups forces repair paths.
  Blobs blobs = MakeBlobs(20, 2, 50.0, 26);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 11;
  StatusOr<KMeansResult> result = KMeans(blobs.data, options);
  ASSERT_TRUE(result.ok());
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t l : result->labels) counts[l]++;
  for (std::size_t c = 0; c < 3; ++c) EXPECT_GT(counts[c], 0u);
}

TEST(KMeansTest, InvalidArgumentsRejected) {
  la::Matrix data(5, 2, 1.0);
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(KMeans(data, options).ok());
  options.num_clusters = 6;
  EXPECT_FALSE(KMeans(data, options).ok());
  options.num_clusters = 2;
  options.restarts = 0;
  EXPECT_FALSE(KMeans(data, options).ok());
  EXPECT_FALSE(KMeans(la::Matrix(), options).ok());
}

}  // namespace
}  // namespace umvsc::cluster
