#include "serve/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "data/synthetic.h"
#include "mvsc/anchor_unified.h"
#include "mvsc/out_of_sample.h"
#include "mvsc/unified.h"

namespace umvsc::serve {
namespace {

struct Fixture {
  data::MultiViewDataset train;
  data::MultiViewDataset test;
};

Fixture MakeFixture(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 160;
  config.num_clusters = 3;
  config.views = {{12, data::ViewQuality::kInformative, 0.4},
                  {7, data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto full = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(full.ok(), "dataset generation failed");
  Fixture fx;
  const std::size_t n_train = 120;
  const std::size_t n = full->NumSamples();
  for (std::size_t v = 0; v < full->NumViews(); ++v) {
    fx.train.views.push_back(
        full->views[v].Block(0, 0, n_train, full->views[v].cols()));
    fx.test.views.push_back(full->views[v].Block(
        n_train, 0, n - n_train, full->views[v].cols()));
  }
  fx.train.labels.assign(full->labels.begin(),
                         full->labels.begin() + n_train);
  fx.train.name = "train";
  fx.test.name = "test";
  return fx;
}

mvsc::OutOfSampleModel MakeAnchorModel(const Fixture& fx) {
  mvsc::UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  options.anchors.enabled = true;
  options.anchors.num_anchors = 24;
  options.anchors.anchor_neighbors = 4;
  auto solved = mvsc::SolveUnifiedAnchors(fx.train, options);
  UMVSC_CHECK(solved.ok(), "anchor solve failed");
  auto model = mvsc::OutOfSampleModel::FitAnchor(std::move(solved->model));
  UMVSC_CHECK(model.ok(), "FitAnchor failed");
  return *std::move(model);
}

mvsc::OutOfSampleModel MakeExactModel(const Fixture& fx) {
  auto model = mvsc::OutOfSampleModel::Fit(fx.train, fx.train.labels,
                                           {0.7, 0.3});
  UMVSC_CHECK(model.ok(), "exact fit failed");
  return *std::move(model);
}

std::vector<std::size_t> PredictOrDie(const mvsc::OutOfSampleModel& model,
                                      const data::MultiViewDataset& batch) {
  auto labels = model.Predict(batch);
  UMVSC_CHECK(labels.ok(), "predict failed");
  return *std::move(labels);
}

TEST(ModelIoTest, AnchorModelRoundTripsWithIdenticalPredictions) {
  const Fixture fx = MakeFixture(31);
  const mvsc::OutOfSampleModel model = MakeAnchorModel(fx);
  const std::string bytes = ModelSerializer::Serialize(model);
  auto loaded = ModelSerializer::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_clusters(), model.num_clusters());
  ASSERT_TRUE(loaded->anchor_model().has_value());
  EXPECT_EQ(PredictOrDie(*loaded, fx.test), PredictOrDie(model, fx.test));
  // Serialization is deterministic: a round-tripped model re-serializes to
  // the exact same bytes.
  EXPECT_EQ(ModelSerializer::Serialize(*loaded), bytes);
}

TEST(ModelIoTest, ExactModelRoundTripsWithIdenticalPredictions) {
  const Fixture fx = MakeFixture(32);
  const mvsc::OutOfSampleModel model = MakeExactModel(fx);
  const std::string bytes = ModelSerializer::Serialize(model);
  auto loaded = ModelSerializer::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->anchor_model().has_value());
  EXPECT_EQ(PredictOrDie(*loaded, fx.test), PredictOrDie(model, fx.test));
  EXPECT_EQ(ModelSerializer::Serialize(*loaded), bytes);
}

TEST(ModelIoTest, EveryCorruptedPayloadByteIsRejected) {
  const Fixture fx = MakeFixture(33);
  const std::string bytes =
      ModelSerializer::Serialize(MakeAnchorModel(fx));
  // Past the 16-byte header (magic + version + kind) every byte sits in a
  // section frame — tag, length, payload, or CRC — and a flip anywhere must
  // come back as a clean error, never a crash or a silently-wrong model.
  for (std::size_t i = 16; i < bytes.size(); i += 41) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    auto loaded = ModelSerializer::Deserialize(corrupt);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " was accepted";
  }
}

TEST(ModelIoTest, EveryTruncationIsRejected) {
  const Fixture fx = MakeFixture(34);
  const std::string bytes =
      ModelSerializer::Serialize(MakeExactModel(fx));
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                          std::size_t{15}, std::size_t{16}, std::size_t{40},
                          bytes.size() / 2, bytes.size() - 1}) {
    auto loaded = ModelSerializer::Deserialize(
        std::string_view(bytes.data(), len));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes was accepted";
  }
}

TEST(ModelIoTest, FutureVersionIsRejectedAsFailedPrecondition) {
  const Fixture fx = MakeFixture(35);
  std::string bytes = ModelSerializer::Serialize(MakeAnchorModel(fx));
  // The version u32 sits right after the 8-byte magic, little-endian.
  bytes[8] = static_cast<char>(ModelSerializer::kFormatVersion + 1);
  auto loaded = ModelSerializer::Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition)
      << loaded.status().ToString();
}

TEST(ModelIoTest, BadMagicIsRejected) {
  const Fixture fx = MakeFixture(36);
  std::string bytes = ModelSerializer::Serialize(MakeAnchorModel(fx));
  bytes[0] = 'X';
  auto loaded = ModelSerializer::Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, TrailingBytesAreRejected) {
  const Fixture fx = MakeFixture(37);
  std::string bytes = ModelSerializer::Serialize(MakeAnchorModel(fx));
  bytes.push_back('\0');
  EXPECT_FALSE(ModelSerializer::Deserialize(bytes).ok());
}

TEST(ModelIoTest, SaveThenLoadRoundTripsThroughAFile) {
  const Fixture fx = MakeFixture(38);
  const mvsc::OutOfSampleModel model = MakeAnchorModel(fx);
  const std::string path =
      ::testing::TempDir() + "/serve_model_io_test.model";
  ASSERT_TRUE(ModelSerializer::Save(model, path).ok());
  auto loaded = ModelSerializer::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(PredictOrDie(*loaded, fx.test), PredictOrDie(model, fx.test));
}

TEST(ModelIoTest, LoadOfAMissingFileIsNotFound) {
  auto loaded = ModelSerializer::Load("/nonexistent/umvsc/model.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace umvsc::serve
