#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stream/streaming_unified.h"

namespace umvsc::stream {
namespace {

data::DriftStreamConfig StreamConfig() {
  data::DriftStreamConfig config;
  config.batch_size = 150;
  config.num_clusters = 3;
  config.views = {{12, data::ViewQuality::kInformative, 0.4},
                  {9, data::ViewQuality::kInformative, 0.6},
                  {7, data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 6.0;
  config.seed = 42;
  return config;
}

StreamingOptions BaseOptions() {
  StreamingOptions options;
  options.unified.num_clusters = 3;
  options.unified.seed = 5;
  options.unified.anchors.num_anchors = 48;
  options.unified.anchors.anchor_neighbors = 3;
  options.window_capacity = 600;
  return options;
}

TEST(StreamingUnifiedTest, TracksAStationaryStream) {
  auto gen = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen.ok());
  auto stream = StreamingUnifiedMVSC::Create(BaseOptions());
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<std::size_t> truth;  // ground truth of the window, oldest first
  for (std::size_t t = 0; t < 6; ++t) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok());
    truth.insert(truth.end(), batch->labels.begin(), batch->labels.end());
    auto update = stream->Ingest(*batch);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    if (truth.size() > stream->options().window_capacity) {
      truth.erase(truth.begin(),
                  truth.end() - static_cast<std::ptrdiff_t>(
                                    stream->options().window_capacity));
    }
    EXPECT_EQ(update->window_size, truth.size());
    ASSERT_EQ(update->labels.size(), truth.size());
    EXPECT_EQ(update->full_resolve, t == 0) << "batch " << t;
    auto acc = eval::ClusteringAccuracy(update->labels, truth);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, 0.93) << "batch " << t;
  }
  // Stationary stream: exactly the first-batch full solve, the rest warm.
  EXPECT_EQ(stream->full_resolves(), 1u);
  EXPECT_EQ(stream->incremental_updates(), 5u);
}

TEST(StreamingUnifiedTest, EvictionInvariants) {
  auto gen = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen.ok());
  StreamingOptions options = BaseOptions();
  options.window_capacity = 400;  // not a batch multiple: partial evictions
  auto stream = StreamingUnifiedMVSC::Create(options);
  ASSERT_TRUE(stream.ok());
  std::size_t ingested = 0;
  for (std::size_t t = 0; t < 5; ++t) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok());
    ingested += batch->NumSamples();
    auto update = stream->Ingest(*batch);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    const std::size_t expect_window = std::min<std::size_t>(ingested, 400);
    EXPECT_EQ(update->window_size, expect_window);
    EXPECT_EQ(stream->window_size(), expect_window);
    EXPECT_EQ(update->evicted,
              ingested > 400 ? std::min<std::size_t>(ingested - 400, 150) : 0);
    EXPECT_EQ(update->labels.size(), expect_window);
    EXPECT_EQ(stream->window_labels().size(), expect_window);
  }
}

TEST(StreamingUnifiedTest, WarmVsColdParityOnStaticStream) {
  // Same frozen model, same window, same reduced problem — the only
  // difference is the alternation entry (carried warm state + small
  // budgets vs cold discretize-init + batch budgets). On a stationary
  // stream both must land on the SAME partition, and the warm entry must
  // spend strictly fewer Lanczos matvecs on every incremental update.
  StreamingOptions warm_options = BaseOptions();
  StreamingOptions cold_options = BaseOptions();
  cold_options.warm_updates = false;
  auto warm = StreamingUnifiedMVSC::Create(warm_options);
  auto cold = StreamingUnifiedMVSC::Create(cold_options);
  ASSERT_TRUE(warm.ok() && cold.ok());
  auto gen_a = data::DriftStreamGenerator::Create(StreamConfig());
  auto gen_b = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen_a.ok() && gen_b.ok());
  for (std::size_t t = 0; t < 6; ++t) {
    auto batch_a = gen_a->NextBatch();
    auto batch_b = gen_b->NextBatch();
    ASSERT_TRUE(batch_a.ok() && batch_b.ok());
    auto wu = warm->Ingest(*batch_a);
    auto cu = cold->Ingest(*batch_b);
    ASSERT_TRUE(wu.ok()) << wu.status().ToString();
    ASSERT_TRUE(cu.ok()) << cu.status().ToString();
    if (t == 0) {
      // The shared full solve: bitwise the same state on both sides.
      EXPECT_EQ(wu->labels, cu->labels);
      EXPECT_EQ(wu->lanczos_matvecs, cu->lanczos_matvecs);
      continue;
    }
    // Identical partition (label numbering is gauge: the cold path re-runs
    // seeded discretization restarts each batch, so compare partitions).
    auto acc = eval::ClusteringAccuracy(wu->labels, cu->labels);
    ASSERT_TRUE(acc.ok());
    EXPECT_DOUBLE_EQ(*acc, 1.0) << "batch " << t;
    EXPECT_LT(wu->lanczos_matvecs, cu->lanczos_matvecs) << "batch " << t;
  }
}

TEST(StreamingUnifiedTest, DriftTriggersFullResolve) {
  data::DriftStreamConfig config = StreamConfig();
  config.drift_rate = 0.45;
  config.drift_start_batch = 3;
  auto gen = data::DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  auto stream = StreamingUnifiedMVSC::Create(BaseOptions());
  ASSERT_TRUE(stream.ok());
  bool drift_fired = false;
  for (std::size_t t = 0; t < 10; ++t) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok());
    auto update = stream->Ingest(*batch);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    if (t > 0 && update->full_resolve) {
      drift_fired = true;
      EXPECT_EQ(update->resolve_reason.rfind("drift:", 0), 0u)
          << update->resolve_reason;
    }
  }
  EXPECT_TRUE(drift_fired);
  EXPECT_GT(stream->full_resolves(), 1u);
}

TEST(StreamingUnifiedTest, TriggerPatternAndLabelsAreThreadInvariant) {
  // The whole streaming pipeline — per-point extension, basis rebuild,
  // reduced solves, drift detection — must be bitwise deterministic in the
  // thread count: same triggers at the same batches, same labels.
  data::DriftStreamConfig config = StreamConfig();
  config.drift_rate = 0.45;
  config.drift_start_batch = 3;
  auto run = [&](std::size_t threads) {
    ScopedNumThreads scoped(threads);
    auto gen = data::DriftStreamGenerator::Create(config);
    UMVSC_CHECK(gen.ok(), "generator");
    auto stream = StreamingUnifiedMVSC::Create(BaseOptions());
    UMVSC_CHECK(stream.ok(), "stream");
    std::vector<std::string> reasons;
    std::vector<std::vector<std::size_t>> labels;
    std::vector<double> objectives;
    for (std::size_t t = 0; t < 8; ++t) {
      auto batch = gen->NextBatch();
      UMVSC_CHECK(batch.ok(), "batch");
      auto update = stream->Ingest(*batch);
      UMVSC_CHECK(update.ok(), "update");
      reasons.push_back(update->resolve_reason);
      labels.push_back(update->labels);
      objectives.push_back(update->objective);
    }
    return std::make_tuple(reasons, labels, objectives);
  };
  const auto t1 = run(1);
  const auto t2 = run(2);
  const auto t8 = run(8);
  EXPECT_EQ(std::get<0>(t1), std::get<0>(t2));
  EXPECT_EQ(std::get<0>(t1), std::get<0>(t8));
  EXPECT_EQ(std::get<1>(t1), std::get<1>(t2));
  EXPECT_EQ(std::get<1>(t1), std::get<1>(t8));
  EXPECT_EQ(std::get<2>(t1), std::get<2>(t2));
  EXPECT_EQ(std::get<2>(t1), std::get<2>(t8));
}

TEST(StreamingUnifiedTest, SetNumClustersReResolvesDerivedDims) {
  auto gen = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen.ok());
  auto stream = StreamingUnifiedMVSC::Create(BaseOptions());
  ASSERT_TRUE(stream.ok());
  auto batch = gen->NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(stream->Ingest(*batch).ok());
  // basis_per_view = 0 resolved against c = 3 → c + 2 dims per view.
  EXPECT_EQ(stream->view_basis_dims(0), 5u);

  ASSERT_TRUE(stream->SetNumClusters(4).ok());
  auto batch2 = gen->NextBatch();
  ASSERT_TRUE(batch2.ok());
  auto update = stream->Ingest(*batch2);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(update->full_resolve);
  EXPECT_EQ(update->resolve_reason, "cluster-count-change");
  // The derived default was re-resolved against the NEW count, not served
  // from a stale cache.
  EXPECT_EQ(stream->view_basis_dims(0), 6u);
  for (std::size_t label : update->labels) EXPECT_LT(label, 4u);

  EXPECT_FALSE(stream->SetNumClusters(1).ok());
}

TEST(StreamingUnifiedTest, FrozenAnchorOracleResolvesEveryBatch) {
  // Regression: Ingest's full path (oracle mode) skips ExtendRows, so the
  // flat model arrays lag the raw rows by the just-appended batch. A
  // frozen-anchor re-solve (reselect_anchors_on_resolve = false) reads
  // those rows back and used to run past the end of z_cols/z_vals — it
  // must first extend the frozen model over the missing suffix.
  auto gen = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen.ok());
  StreamingOptions options = BaseOptions();
  options.always_full_resolve = true;
  options.reselect_anchors_on_resolve = false;
  auto stream = StreamingUnifiedMVSC::Create(options);
  ASSERT_TRUE(stream.ok());
  std::vector<std::size_t> truth;
  for (std::size_t t = 0; t < 5; ++t) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok());
    truth.insert(truth.end(), batch->labels.begin(), batch->labels.end());
    if (truth.size() > options.window_capacity) {
      truth.erase(truth.begin(), truth.end() - static_cast<std::ptrdiff_t>(
                                                   options.window_capacity));
    }
    auto update = stream->Ingest(*batch);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    EXPECT_TRUE(update->full_resolve) << "batch " << t;
    ASSERT_EQ(update->labels.size(), truth.size());
    auto acc = eval::ClusteringAccuracy(update->labels, truth);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, 0.9) << "batch " << t;
  }
  EXPECT_EQ(stream->full_resolves(), 5u);
  EXPECT_EQ(stream->incremental_updates(), 0u);
}

TEST(StreamingUnifiedTest, FrozenAnchorResolveSurvivesOversizedBatch) {
  // Regression: a batch larger than the window on the full path leaves the
  // model arrays with FEWER than head_ rows at compaction time — the erase
  // must clamp to each array's length (it used to erase past the end), and
  // the frozen-anchor re-solve must rebuild the lost coverage from raw.
  data::DriftStreamConfig config = StreamConfig();
  config.batch_size = 500;
  auto gen = data::DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  StreamingOptions options = BaseOptions();
  options.window_capacity = 200;  // every batch overflows the window alone
  options.always_full_resolve = true;
  options.reselect_anchors_on_resolve = false;
  auto stream = StreamingUnifiedMVSC::Create(options);
  ASSERT_TRUE(stream.ok());
  for (std::size_t t = 0; t < 3; ++t) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok());
    auto update = stream->Ingest(*batch);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    EXPECT_EQ(update->window_size, 200u);
    EXPECT_EQ(update->evicted, t == 0 ? 300u : 500u);
    ASSERT_EQ(update->labels.size(), 200u);
    const std::vector<std::size_t> truth(batch->labels.end() - 200,
                                         batch->labels.end());
    auto acc = eval::ClusteringAccuracy(update->labels, truth);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, 0.9) << "batch " << t;
  }
}

TEST(StreamingUnifiedTest, SetNumClustersWorksWithFrozenAnchors) {
  // Regression: the pending re-solve a SetNumClusters schedules also takes
  // Ingest's full path (no ExtendRows); with frozen anchors it must extend
  // the model over the batch that carried the pending flag before reading
  // the flat rows back.
  auto gen = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen.ok());
  StreamingOptions options = BaseOptions();
  options.reselect_anchors_on_resolve = false;
  auto stream = StreamingUnifiedMVSC::Create(options);
  ASSERT_TRUE(stream.ok());
  auto batch = gen->NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(stream->Ingest(*batch).ok());
  EXPECT_EQ(stream->view_basis_dims(0), 5u);

  ASSERT_TRUE(stream->SetNumClusters(4).ok());
  auto batch2 = gen->NextBatch();
  ASSERT_TRUE(batch2.ok());
  auto update = stream->Ingest(*batch2);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(update->full_resolve);
  EXPECT_EQ(update->resolve_reason, "cluster-count-change");
  EXPECT_EQ(update->window_size, 300u);
  ASSERT_EQ(update->labels.size(), 300u);
  EXPECT_EQ(stream->view_basis_dims(0), 6u);
  for (std::size_t label : update->labels) EXPECT_LT(label, 4u);
}

TEST(StreamingUnifiedTest, RejectsSchemaDrift) {
  auto gen = data::DriftStreamGenerator::Create(StreamConfig());
  ASSERT_TRUE(gen.ok());
  auto stream = StreamingUnifiedMVSC::Create(BaseOptions());
  ASSERT_TRUE(stream.ok());
  auto batch = gen->NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(stream->Ingest(*batch).ok());
  // A batch with different view dims must be rejected.
  data::DriftStreamConfig other = StreamConfig();
  other.views[1].dim = 4;
  auto gen2 = data::DriftStreamGenerator::Create(other);
  ASSERT_TRUE(gen2.ok());
  auto bad = gen2->NextBatch();
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(stream->Ingest(*bad).ok());
}

}  // namespace
}  // namespace umvsc::stream
