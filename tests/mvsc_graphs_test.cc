#include "mvsc/graphs.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/connectivity.h"
#include "la/lanczos.h"

namespace umvsc::mvsc {
namespace {

data::MultiViewDataset EasyDataset(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 120;
  config.num_clusters = 3;
  config.views = {{10, data::ViewQuality::kInformative, 0.4},
                  {6, data::ViewQuality::kWeak, 1.0},
                  {8, data::ViewQuality::kNoisy, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto d = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(d.ok(), "test dataset generation failed");
  return std::move(*d);
}

TEST(BuildGraphsTest, ShapesAndSymmetry) {
  data::MultiViewDataset dataset = EasyDataset(1);
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(dataset);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  EXPECT_EQ(graphs->NumViews(), 3u);
  EXPECT_EQ(graphs->NumSamples(), 120u);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_TRUE(graphs->affinities[v].IsSymmetric(1e-10));
    EXPECT_TRUE(graphs->laplacians[v].IsSymmetric(1e-10));
    EXPECT_GT(graphs->affinities[v].NumNonZeros(), 0u);
  }
}

TEST(BuildGraphsTest, LaplacianSpectrumWithinZeroTwo) {
  data::MultiViewDataset dataset = EasyDataset(2);
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(dataset);
  ASSERT_TRUE(graphs.ok());
  for (std::size_t v = 0; v < graphs->NumViews(); ++v) {
    StatusOr<la::SymEigenResult> top =
        la::LanczosLargest(graphs->laplacians[v], 1);
    ASSERT_TRUE(top.ok());
    EXPECT_LE(top->eigenvalues[0], 2.0 + 1e-8);
    StatusOr<la::SymEigenResult> bottom =
        la::LanczosSmallest(graphs->laplacians[v], 1, 2.0 + 1e-9);
    ASSERT_TRUE(bottom.ok());
    EXPECT_NEAR(bottom->eigenvalues[0], 0.0, 1e-8);
  }
}

TEST(BuildGraphsTest, InformativeViewGraphAlignsWithClusters) {
  data::MultiViewDataset dataset = EasyDataset(3);
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(dataset);
  ASSERT_TRUE(graphs.ok());
  // Count the edge mass within vs across ground-truth clusters for the
  // informative view: within-cluster mass must dominate.
  const la::CsrMatrix& w = graphs->affinities[0];
  double within = 0.0, across = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t k = w.row_offsets()[i]; k < w.row_offsets()[i + 1]; ++k) {
      const std::size_t j = w.col_indices()[k];
      if (dataset.labels[i] == dataset.labels[j]) {
        within += w.values()[k];
      } else {
        across += w.values()[k];
      }
    }
  }
  EXPECT_GT(within, 5.0 * across);
}

TEST(BuildGraphsTest, AdaptiveNeighborsOptionWorks) {
  data::MultiViewDataset dataset = EasyDataset(4);
  GraphOptions options;
  options.adaptive_neighbors = true;
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(dataset, options);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  EXPECT_TRUE(graphs->affinities[0].IsSymmetric(1e-10));
}

TEST(BuildGraphsTest, KnnClampedForTinyDatasets) {
  data::MultiViewConfig config;
  config.num_samples = 8;
  config.num_clusters = 2;
  config.views = {{4, data::ViewQuality::kInformative, 0.3}};
  config.seed = 5;
  auto dataset = data::MakeGaussianMultiView(config);
  ASSERT_TRUE(dataset.ok());
  GraphOptions options;
  options.knn = 100;  // far larger than n
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(*dataset, options);
  EXPECT_TRUE(graphs.ok()) << graphs.status().ToString();
}

TEST(BuildSingleGraphTest, MatchesMultiViewPathOnOneView) {
  data::MultiViewDataset dataset = EasyDataset(6);
  data::MultiViewDataset single;
  single.views.push_back(dataset.views[0]);
  single.labels = dataset.labels;
  StatusOr<MultiViewGraphs> multi = BuildGraphs(single);
  StatusOr<MultiViewGraphs> direct = BuildSingleGraph(dataset.views[0]);
  ASSERT_TRUE(multi.ok() && direct.ok());
  EXPECT_TRUE(la::AlmostEqual(multi->affinities[0].ToDense(),
                              direct->affinities[0].ToDense(), 1e-12));
}

TEST(BuildGraphsTest, RejectsInvalidDataset) {
  data::MultiViewDataset broken;
  EXPECT_FALSE(BuildGraphs(broken).ok());
}

}  // namespace
}  // namespace umvsc::mvsc
