// End-to-end determinism contract (docs/THREADING.md): every parallelized
// kernel, and a full UnifiedMVSC run on top of them, must produce BITWISE
// identical output at 1, 2, and 8 threads from the same seed.

#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "data/synthetic.h"
#include "graph/distance.h"
#include "graph/knn_graph.h"
#include "gtest/gtest.h"
#include "la/gemm_kernel.h"
#include "la/lanczos.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "la/sparse.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace umvsc {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

la::Matrix DeterministicMatrix(std::size_t rows, std::size_t cols,
                               double phase) {
  la::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = std::sin(0.7 * static_cast<double>(i) +
                         1.3 * static_cast<double>(j) + phase) +
                0.01 * static_cast<double>(i + j);
    }
  }
  return m;
}

bool BitwiseEqual(const la::Matrix& a, const la::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(ParallelDeterminismTest, MatMulFamilyIsBitwiseIdenticalAcrossThreads) {
  const la::Matrix a = DeterministicMatrix(131, 67, 0.0);
  const la::Matrix b = DeterministicMatrix(67, 89, 1.0);
  const la::Matrix bt = DeterministicMatrix(89, 67, 2.0);
  ScopedNumThreads baseline(1);
  const la::Matrix ref_mul = la::MatMul(a, b);
  const la::Matrix ref_tmul = la::MatTMul(a, DeterministicMatrix(131, 40, 3.0));
  const la::Matrix ref_mult = la::MatMulT(a, bt);
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    EXPECT_TRUE(BitwiseEqual(ref_mul, la::MatMul(a, b))) << threads;
    EXPECT_TRUE(BitwiseEqual(
        ref_tmul, la::MatTMul(a, DeterministicMatrix(131, 40, 3.0))))
        << threads;
    EXPECT_TRUE(BitwiseEqual(ref_mult, la::MatMulT(a, bt))) << threads;
  }
}

TEST(ParallelDeterminismTest, GramKernelsAreBitwiseIdenticalAcrossThreads) {
  // Odd sizes so the 4x8 register tiles and the reduce-chunk grids all hit
  // their edge paths.
  const la::Matrix a = DeterministicMatrix(301, 23, 0.0);
  ScopedNumThreads baseline(1);
  const la::Matrix ref_gram = la::Gram(a);
  const la::Matrix ref_outer = la::OuterGram(DeterministicMatrix(97, 13, 1.0));
  // Gram's chunked reduction computes both triangles with identical
  // arithmetic, so the result must be bitwise symmetric.
  for (std::size_t i = 0; i < ref_gram.rows(); ++i) {
    for (std::size_t j = i + 1; j < ref_gram.cols(); ++j) {
      ASSERT_EQ(ref_gram(i, j), ref_gram(j, i)) << i << "," << j;
    }
  }
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    EXPECT_TRUE(BitwiseEqual(ref_gram, la::Gram(a))) << threads;
    EXPECT_TRUE(BitwiseEqual(ref_outer,
                             la::OuterGram(DeterministicMatrix(97, 13, 1.0))))
        << threads;
  }
}

TEST(ParallelDeterminismTest,
     VectorizedStragglersAreBitwiseIdenticalAcrossThreads) {
  const la::Matrix a = DeterministicMatrix(157, 43, 0.0);
  const la::Matrix b = DeterministicMatrix(157, 43, 1.0);
  la::Vector x(43);
  for (std::size_t i = 0; i < 43; ++i) x[i] = std::sin(0.3 * i) + 0.5;
  ScopedNumThreads baseline(1);
  const la::Vector ref_mv = la::MatVec(a, x);
  const la::Matrix ref_t = la::Transpose(a);
  const la::Matrix ref_h = la::Hadamard(a, b);
  la::Matrix ref_add = a;
  ref_add.Add(b, -0.25);
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    const la::Vector mv = la::MatVec(a, x);
    ASSERT_EQ(mv.size(), ref_mv.size());
    for (std::size_t i = 0; i < mv.size(); ++i) {
      EXPECT_EQ(ref_mv[i], mv[i]) << threads << " row " << i;
    }
    EXPECT_TRUE(BitwiseEqual(ref_t, la::Transpose(a))) << threads;
    EXPECT_TRUE(BitwiseEqual(ref_h, la::Hadamard(a, b))) << threads;
    la::Matrix add = a;
    add.Add(b, -0.25);
    EXPECT_TRUE(BitwiseEqual(ref_add, add)) << threads;
  }
}

// The scalar dispatch path (UMVSC_SIMD=off) shares the SIMD path's
// accumulation grid, so it must be just as thread-count-invariant — and on
// x86 (no FMA contraction anywhere) it must reproduce the SIMD path's bits
// exactly.
TEST(ParallelDeterminismTest, ScalarDispatchIsDeterministicAcrossThreads) {
  const la::Matrix a = DeterministicMatrix(131, 67, 0.0);
  const la::Matrix b = DeterministicMatrix(67, 89, 1.0);
  la::Matrix simd_result;
  {
    ScopedNumThreads baseline(1);
    simd_result = la::MatMul(a, b);
  }
  la::kernel::ScopedForceScalar force;
  ScopedNumThreads baseline(1);
  const la::Matrix ref = la::MatMul(a, b);
  const la::Matrix ref_gram = la::Gram(a);
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    EXPECT_TRUE(BitwiseEqual(ref, la::MatMul(a, b))) << threads;
    EXPECT_TRUE(BitwiseEqual(ref_gram, la::Gram(a))) << threads;
  }
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_TRUE(BitwiseEqual(simd_result, ref));
#endif
}

TEST(ParallelDeterminismTest, QuadraticTraceIsBitwiseIdenticalAcrossThreads) {
  la::Matrix l = la::OuterGram(DeterministicMatrix(90, 12, 0.5));
  const la::Matrix f = DeterministicMatrix(90, 5, 1.5);
  ScopedNumThreads baseline(1);
  const double ref = la::QuadraticTrace(l, f);
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    EXPECT_EQ(ref, la::QuadraticTrace(l, f)) << threads;
  }
}

TEST(ParallelDeterminismTest,
     PairwiseSquaredDistancesIsBitwiseIdenticalAcrossThreads) {
  const la::Matrix x = DeterministicMatrix(153, 24, 0.25);
  ScopedNumThreads baseline(1);
  const la::Matrix ref = graph::PairwiseSquaredDistances(x);
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    EXPECT_TRUE(BitwiseEqual(ref, graph::PairwiseSquaredDistances(x)))
        << threads;
  }
}

TEST(ParallelDeterminismTest, KnnGraphIsIdenticalAcrossThreads) {
  const la::Matrix x = DeterministicMatrix(80, 10, 0.75);
  const la::Matrix sq = graph::PairwiseSquaredDistances(x);
  // Turn distances into a positive affinity for the kNN builder.
  la::Matrix affinity(sq.rows(), sq.cols());
  for (std::size_t i = 0; i < sq.size(); ++i) {
    affinity.data()[i] = 1.0 / (1.0 + sq.data()[i]);
  }
  for (std::size_t i = 0; i < sq.rows(); ++i) affinity(i, i) = 0.0;

  ScopedNumThreads baseline(1);
  const auto ref = graph::BuildKnnGraph(affinity, 7);
  ASSERT_TRUE(ref.ok());
  const auto ref_can = graph::AdaptiveNeighborGraph(sq, 7);
  ASSERT_TRUE(ref_can.ok());
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    const auto got = graph::BuildKnnGraph(affinity, 7);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ref->col_indices(), got->col_indices()) << threads;
    EXPECT_EQ(ref->row_offsets(), got->row_offsets()) << threads;
    EXPECT_EQ(ref->values(), got->values()) << threads;
    const auto got_can = graph::AdaptiveNeighborGraph(sq, 7);
    ASSERT_TRUE(got_can.ok());
    EXPECT_EQ(ref_can->col_indices(), got_can->col_indices()) << threads;
    EXPECT_EQ(ref_can->row_offsets(), got_can->row_offsets()) << threads;
    EXPECT_EQ(ref_can->values(), got_can->values()) << threads;
  }
}

// Sparse kernels: the row-parallel SpMV and the cache-blocked SpMM must be
// bitwise identical across thread counts, and the SpMM must equal b
// independent per-column SpMVs exactly (same per-row accumulation order).
TEST(ParallelDeterminismTest, SparseMultiplyIsBitwiseIdenticalAcrossThreads) {
  la::Matrix dense = DeterministicMatrix(140, 140, 0.1);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (std::fabs(dense.data()[i]) < 0.9) dense.data()[i] = 0.0;  // sparsify
  }
  const la::CsrMatrix a = la::CsrMatrix::FromDense(dense);
  const la::Matrix x = DeterministicMatrix(140, 70, 0.4);  // spans 2 panels

  ScopedNumThreads baseline(1);
  la::Matrix ref(140, 70);
  a.MultiplyInto(x, ref, 1.25);
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    la::Matrix got(140, 70);
    a.MultiplyInto(x, got, 1.25);
    EXPECT_TRUE(BitwiseEqual(ref, got)) << threads;
    // Column-by-column SpMV agreement, under the same thread count.
    la::Matrix by_column(140, 70);
    for (std::size_t j = 0; j < 70; ++j) {
      la::Vector xj = x.Col(j);
      la::Vector yj(140);
      a.MultiplyInto(xj, yj, 1.25);
      by_column.SetCol(j, yj);
    }
    EXPECT_TRUE(BitwiseEqual(ref, by_column)) << threads;
  }
}

TEST(ParallelDeterminismTest, BlockLanczosIsBitwiseIdenticalAcrossThreads) {
  la::Matrix dense = DeterministicMatrix(96, 96, 0.2);
  la::Matrix sym(96, 96);
  for (std::size_t i = 0; i < 96; ++i) {
    for (std::size_t j = 0; j < 96; ++j) {
      sym(i, j) = 0.5 * (dense(i, j) + dense(j, i));
    }
  }
  const la::CsrMatrix a = la::CsrMatrix::FromDense(sym);
  ScopedNumThreads baseline(1);
  const auto ref = la::BlockLanczosLargest(a, 6);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  for (std::size_t threads : kThreadCounts) {
    ScopedNumThreads scope(threads);
    const auto got = la::BlockLanczosLargest(a, 6);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(ref->eigenvalues[j], got->eigenvalues[j]) << threads;
    }
    EXPECT_TRUE(BitwiseEqual(ref->eigenvectors, got->eigenvectors)) << threads;
  }
}

// The acceptance test of the threading work: a FULL pipeline — synthetic
// data, per-view graph construction, and the unified solver — replayed at
// 1, 2, and 8 threads from one seed must agree bit for bit on the labels,
// the objective trace, the view weights, and the embedding.
TEST(ParallelDeterminismTest, FullUnifiedRunIsBitwiseIdenticalAcrossThreads) {
  data::MultiViewConfig config;
  config.num_samples = 120;
  config.num_clusters = 3;
  config.views = {{12, data::ViewQuality::kInformative, 0.6},
                  {8, data::ViewQuality::kWeak, 1.0},
                  {10, data::ViewQuality::kNoisy, 1.0}};
  config.seed = 7;

  auto run_at = [&](std::size_t threads) {
    ScopedNumThreads scope(threads);
    StatusOr<data::MultiViewDataset> dataset =
        data::MakeGaussianMultiView(config);
    EXPECT_TRUE(dataset.ok());
    StatusOr<mvsc::MultiViewGraphs> graphs = mvsc::BuildGraphs(*dataset);
    EXPECT_TRUE(graphs.ok());
    mvsc::UnifiedOptions options;
    options.num_clusters = 3;
    options.seed = 11;
    StatusOr<mvsc::UnifiedResult> result =
        mvsc::UnifiedMVSC(options).Run(*graphs);
    EXPECT_TRUE(result.ok());
    return std::move(*result);
  };

  const mvsc::UnifiedResult ref = run_at(1);
  ASSERT_FALSE(ref.labels.empty());
  ASSERT_FALSE(ref.objective_trace.empty());
  for (std::size_t threads : kThreadCounts) {
    const mvsc::UnifiedResult got = run_at(threads);
    EXPECT_EQ(ref.labels, got.labels) << threads << " threads";
    EXPECT_EQ(ref.objective_trace, got.objective_trace)
        << threads << " threads";
    EXPECT_EQ(ref.warmup_trace, got.warmup_trace) << threads << " threads";
    EXPECT_EQ(ref.view_weights, got.view_weights) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(ref.embedding, got.embedding))
        << threads << " threads";
    EXPECT_EQ(ref.iterations, got.iterations) << threads << " threads";
  }
}

}  // namespace
}  // namespace umvsc
