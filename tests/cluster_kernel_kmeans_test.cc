#include "cluster/kernel_kmeans.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "la/ops.h"

namespace umvsc::cluster {
namespace {

struct Blobs {
  la::Matrix data;
  std::vector<std::size_t> labels;
};

Blobs MakeBlobs(std::size_t per_cluster, std::size_t k, double separation,
                std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.data = la::Matrix(per_cluster * k, 2);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      blobs.data(row, 0) = rng.Gaussian(separation * static_cast<double>(c), 0.3);
      blobs.data(row, 1) = rng.Gaussian(0.0, 0.3);
      blobs.labels.push_back(c);
    }
  }
  return blobs;
}

// Linear kernel K = X·Xᵀ makes kernel K-means equal plain K-means.
TEST(KernelKMeansTest, LinearKernelRecoversBlobs) {
  Blobs blobs = MakeBlobs(25, 3, 8.0, 60);
  la::Matrix gram = la::OuterGram(blobs.data);
  KernelKMeansOptions options;
  options.num_clusters = 3;
  options.seed = 1;
  StatusOr<KernelKMeansResult> result = KernelKMeans(gram, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto acc = eval::ClusteringAccuracy(result->labels, blobs.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

TEST(KernelKMeansTest, GaussianKernelSeparatesRings) {
  // Two concentric rings: linearly inseparable, but a Gaussian kernel makes
  // kernel K-means succeed where plain K-means cannot.
  Rng rng(61);
  const std::size_t n = 120;
  la::Matrix x(n, 2);
  std::vector<std::size_t> truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ring = i % 2;
    truth[i] = ring;
    const double r = ring == 0 ? 1.0 : 4.0;
    const double theta = rng.Uniform() * 2.0 * M_PI;
    x(i, 0) = r * std::cos(theta) + rng.Gaussian(0.0, 0.08);
    x(i, 1) = r * std::sin(theta) + rng.Gaussian(0.0, 0.08);
  }
  la::Matrix sq = graph::PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> kernel = graph::GaussianKernel(sq, 0.8);
  ASSERT_TRUE(kernel.ok());
  for (std::size_t i = 0; i < n; ++i) (*kernel)(i, i) = 1.0;

  KernelKMeansOptions options;
  options.num_clusters = 2;
  options.restarts = 20;
  options.seed = 2;
  StatusOr<KernelKMeansResult> result = KernelKMeans(*kernel, options);
  ASSERT_TRUE(result.ok());
  auto acc = eval::ClusteringAccuracy(result->labels, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(KernelKMeansTest, ObjectiveImprovesWithRestarts) {
  Blobs blobs = MakeBlobs(20, 4, 2.0, 62);
  la::Matrix gram = la::OuterGram(blobs.data);
  KernelKMeansOptions one;
  one.num_clusters = 4;
  one.restarts = 1;
  one.seed = 3;
  KernelKMeansOptions many = one;
  many.restarts = 15;
  StatusOr<KernelKMeansResult> r1 = KernelKMeans(gram, one);
  StatusOr<KernelKMeansResult> r2 = KernelKMeans(gram, many);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(r2->objective, r1->objective + 1e-9);
}

TEST(KernelKMeansTest, DeterministicForSeed) {
  Blobs blobs = MakeBlobs(15, 3, 4.0, 63);
  la::Matrix gram = la::OuterGram(blobs.data);
  KernelKMeansOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  StatusOr<KernelKMeansResult> a = KernelKMeans(gram, options);
  StatusOr<KernelKMeansResult> b = KernelKMeans(gram, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(KernelKMeansTest, AllClustersPopulated) {
  Blobs blobs = MakeBlobs(30, 2, 20.0, 64);
  la::Matrix gram = la::OuterGram(blobs.data);
  KernelKMeansOptions options;
  options.num_clusters = 4;  // more clusters than natural groups
  options.seed = 5;
  StatusOr<KernelKMeansResult> result = KernelKMeans(gram, options);
  ASSERT_TRUE(result.ok());
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t l : result->labels) counts[l]++;
  for (std::size_t c = 0; c < 4; ++c) EXPECT_GT(counts[c], 0u);
}

TEST(KernelKMeansTest, RejectsInvalidInputs) {
  KernelKMeansOptions options;
  options.num_clusters = 2;
  EXPECT_FALSE(KernelKMeans(la::Matrix(), options).ok());
  EXPECT_FALSE(KernelKMeans(la::Matrix(2, 3), options).ok());
  la::Matrix asym(3, 3);
  asym(0, 1) = 1.0;
  EXPECT_FALSE(KernelKMeans(asym, options).ok());
  la::Matrix gram = la::Matrix::Identity(3);
  options.num_clusters = 4;
  EXPECT_FALSE(KernelKMeans(gram, options).ok());
  options.num_clusters = 2;
  options.restarts = 0;
  EXPECT_FALSE(KernelKMeans(gram, options).ok());
}

}  // namespace
}  // namespace umvsc::cluster
