#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace umvsc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a.Next() != b.Next());
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  // SplitMix64 seeding must not produce the all-zero (absorbing) state.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= (r.Next() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    std::uint64_t v = r.UniformInt(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  // Each bucket should hold about 10000 draws; 4-sigma band.
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng r(17);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = r.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParamsScales) {
  Rng r(19);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = r.Gaussian(3.0, 0.5);
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng r(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  r.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng r(29);
  auto idx = r.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng r(31);
  auto idx = r.SampleWithoutReplacement(5, 5);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleDiscreteFollowsWeights) {
  Rng r(37);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) counts[r.SampleDiscrete(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], 10000, 500);
  EXPECT_NEAR(counts[2], 30000, 500);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.Next() == child.Next());
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace umvsc
