#include "graph/laplacian.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"
#include "la/sym_eigen.h"

namespace umvsc::graph {
namespace {

// Symmetric random affinity with zero diagonal.
la::Matrix RandomAffinity(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.Uniform();
      w(i, j) = v;
      w(j, i) = v;
    }
  }
  return w;
}

TEST(LaplacianTest, UnnormalizedRowSumsVanish) {
  la::Matrix w = RandomAffinity(12, 10);
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kUnnormalized);
  ASSERT_TRUE(l.ok());
  for (std::size_t i = 0; i < 12; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 12; ++j) row_sum += (*l)(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

TEST(LaplacianTest, UnnormalizedIsPsdWithZeroEigenvalue) {
  la::Matrix w = RandomAffinity(10, 11);
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kUnnormalized);
  ASSERT_TRUE(l.ok());
  StatusOr<la::SymEigenResult> eig = la::SymmetricEigen(*l);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 0.0, 1e-9);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(eig->eigenvalues[i], -1e-9);
  }
}

TEST(LaplacianTest, SymmetricNormalizedSpectrumInZeroTwo) {
  la::Matrix w = RandomAffinity(15, 12);
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kSymmetric);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->IsSymmetric(1e-12));
  StatusOr<la::SymEigenResult> eig = la::SymmetricEigen(*l);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 0.0, 1e-9);
  EXPECT_LE(eig->eigenvalues[14], 2.0 + 1e-9);
}

TEST(LaplacianTest, NullSpaceDimensionEqualsComponents) {
  // Two disconnected triangles.
  la::Matrix w(6, 6);
  auto connect = [&](std::size_t a, std::size_t b) {
    w(a, b) = 1.0;
    w(b, a) = 1.0;
  };
  connect(0, 1);
  connect(1, 2);
  connect(0, 2);
  connect(3, 4);
  connect(4, 5);
  connect(3, 5);
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kSymmetric);
  ASSERT_TRUE(l.ok());
  StatusOr<la::SymEigenResult> eig = la::SymmetricEigen(*l);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 0.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 0.0, 1e-10);
  EXPECT_GT(eig->eigenvalues[2], 0.1);
}

TEST(LaplacianTest, RandomWalkRowsSumToZero) {
  la::Matrix w = RandomAffinity(8, 13);
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kRandomWalk);
  ASSERT_TRUE(l.ok());
  for (std::size_t i = 0; i < 8; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 8; ++j) row_sum += (*l)(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

TEST(LaplacianTest, IsolatedVertexGetsIdentityRow) {
  la::Matrix w(3, 3);
  w(0, 1) = 1.0;
  w(1, 0) = 1.0;  // vertex 2 isolated
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kSymmetric);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ((*l)(2, 2), 1.0);
  EXPECT_DOUBLE_EQ((*l)(2, 0), 0.0);
}

TEST(LaplacianTest, SparseMatchesDense) {
  la::Matrix w = RandomAffinity(14, 14);
  // Sparsify a bit.
  for (std::size_t i = 0; i < 14; ++i) {
    for (std::size_t j = 0; j < 14; ++j) {
      if (w(i, j) < 0.5) w(i, j) = 0.0;
    }
  }
  w.Symmetrize();
  la::CsrMatrix ws = la::CsrMatrix::FromDense(w);
  for (auto kind : {LaplacianKind::kUnnormalized, LaplacianKind::kSymmetric,
                    LaplacianKind::kRandomWalk}) {
    StatusOr<la::Matrix> dense = Laplacian(w, kind);
    StatusOr<la::CsrMatrix> sparse = Laplacian(ws, kind);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    EXPECT_TRUE(la::AlmostEqual(sparse->ToDense(), *dense, 1e-12));
  }
}

TEST(LaplacianTest, NormalizedAdjacencyComplementsSymmetricLaplacian) {
  la::Matrix w = RandomAffinity(9, 15);
  StatusOr<la::Matrix> a = NormalizedAdjacency(w);
  StatusOr<la::Matrix> l = Laplacian(w, LaplacianKind::kSymmetric);
  ASSERT_TRUE(a.ok() && l.ok());
  // L_sym + A_norm = I.
  la::Matrix sum = la::Add(*a, *l);
  EXPECT_TRUE(la::AlmostEqual(sum, la::Matrix::Identity(9), 1e-12));
}

TEST(LaplacianTest, RejectsInvalidAffinities) {
  la::Matrix rect(2, 3);
  EXPECT_FALSE(Laplacian(rect, LaplacianKind::kSymmetric).ok());
  la::Matrix neg(3, 3);
  neg(0, 1) = -0.5;
  neg(1, 0) = -0.5;
  EXPECT_FALSE(Laplacian(neg, LaplacianKind::kSymmetric).ok());
  la::Matrix asym(3, 3);
  asym(0, 1) = 1.0;
  EXPECT_FALSE(Laplacian(asym, LaplacianKind::kSymmetric).ok());
}

TEST(LaplacianTest, DegreesMatchBetweenDenseAndSparse) {
  la::Matrix w = RandomAffinity(7, 16);
  la::CsrMatrix ws = la::CsrMatrix::FromDense(w);
  EXPECT_TRUE(la::AlmostEqual(Degrees(w), Degrees(ws), 1e-12));
}

}  // namespace
}  // namespace umvsc::graph
