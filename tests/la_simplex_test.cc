#include "la/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace umvsc::la {
namespace {

void ExpectOnSimplex(const Vector& x, double radius) {
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], 0.0);
    sum += x[i];
  }
  EXPECT_NEAR(sum, radius, 1e-12);
}

TEST(SimplexTest, PointAlreadyOnSimplexIsFixed) {
  Vector v{0.2, 0.5, 0.3};
  Vector p = ProjectToSimplex(v);
  EXPECT_TRUE(AlmostEqual(p, v, 1e-12));
}

TEST(SimplexTest, UniformInputProjectsToUniform) {
  Vector v(4, 10.0);
  Vector p = ProjectToSimplex(v);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p[i], 0.25, 1e-12);
}

TEST(SimplexTest, DominantCoordinateWins) {
  Vector v{100.0, 0.0, 0.0};
  Vector p = ProjectToSimplex(v);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(SimplexTest, KnownTwoDimensionalProjection) {
  // Projecting (1, 0.5): both stay positive, shifted by θ = 0.25.
  Vector p = ProjectToSimplex(Vector{1.0, 0.5});
  EXPECT_NEAR(p[0], 0.75, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
}

TEST(SimplexTest, NegativeEntriesClampToZero) {
  Vector p = ProjectToSimplex(Vector{1.0, -5.0, 0.9});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  ExpectOnSimplex(p, 1.0);
}

TEST(SimplexTest, CustomRadius) {
  Vector p = ProjectToSimplex(Vector{3.0, 1.0}, 2.0);
  ExpectOnSimplex(p, 2.0);
  EXPECT_GT(p[0], p[1]);
}

TEST(SimplexTest, SingleElement) {
  Vector p = ProjectToSimplex(Vector{-7.0});
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(SimplexTest, ProjectionIsNearestPoint) {
  // Fuzz: the projection must beat random simplex points in distance.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.UniformInt(8));
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = rng.Gaussian(0.0, 3.0);
    Vector p = ProjectToSimplex(v);
    ExpectOnSimplex(p, 1.0);
    const double dist = (p - v).Norm2();
    for (int probe = 0; probe < 20; ++probe) {
      // Random simplex point via normalized exponentials.
      Vector q(n);
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        q[i] = -std::log(std::max(rng.Uniform(), 1e-300));
        total += q[i];
      }
      q.Scale(1.0 / total);
      EXPECT_LE(dist, (q - v).Norm2() + 1e-9);
    }
  }
}

TEST(SimplexDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(ProjectToSimplex(Vector{}), "empty");
  EXPECT_DEATH(ProjectToSimplex(Vector{1.0}, 0.0), "positive");
}

}  // namespace
}  // namespace umvsc::la
