#include "eval/internal_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "common/rng.h"

namespace umvsc::eval {
namespace {

struct Blobs {
  la::Matrix data;
  std::vector<std::size_t> labels;
};

Blobs MakeBlobs(std::size_t per_cluster, std::size_t k, double separation,
                std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.data = la::Matrix(per_cluster * k, 2);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      blobs.data(row, 0) =
          rng.Gaussian(separation * static_cast<double>(c), 0.3);
      blobs.data(row, 1) = rng.Gaussian(0.0, 0.3);
      blobs.labels.push_back(c);
    }
  }
  return blobs;
}

TEST(SilhouetteTest, WellSeparatedBlobsScoreHigh) {
  Blobs blobs = MakeBlobs(25, 3, 10.0, 1);
  StatusOr<double> score = SilhouetteScore(blobs.data, blobs.labels);
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_GT(*score, 0.85);
}

TEST(SilhouetteTest, RandomLabelsScoreNearZeroOrNegative) {
  Blobs blobs = MakeBlobs(25, 3, 10.0, 2);
  Rng rng(3);
  std::vector<std::size_t> random(blobs.labels.size());
  for (auto& l : random) l = static_cast<std::size_t>(rng.UniformInt(3));
  StatusOr<double> good = SilhouetteScore(blobs.data, blobs.labels);
  StatusOr<double> bad = SilhouetteScore(blobs.data, random);
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_LT(*bad, 0.2);
  EXPECT_GT(*good, *bad + 0.5);
}

TEST(SilhouetteTest, TwoPointsTwoClusters) {
  la::Matrix x{{0.0}, {1.0}};
  std::vector<std::size_t> labels{0, 1};
  // Both points are singletons: score 0 by convention.
  StatusOr<double> score = SilhouetteScore(x, labels);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(*score, 0.0);
}

TEST(SilhouetteTest, KnownHandComputedValue) {
  // Two clusters on a line: {0, 1} and {10, 11}.
  la::Matrix x{{0.0}, {1.0}, {10.0}, {11.0}};
  std::vector<std::size_t> labels{0, 0, 1, 1};
  // Point 0: a = 1, b = (10+11)/2 = 10.5 → s = 9.5/10.5. Point 1:
  // a = 1, b = 9.5 → 8.5/9.5; symmetric on the right.
  const double expected =
      0.5 * (9.5 / 10.5 + 8.5 / 9.5);
  StatusOr<double> score = SilhouetteScore(x, labels);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, expected, 1e-12);
}

TEST(SilhouetteTest, RejectsInvalidInputs) {
  la::Matrix x(4, 2);
  EXPECT_FALSE(SilhouetteScore(x, {0, 0, 0}).ok());           // length
  EXPECT_FALSE(SilhouetteScore(x, {0, 0, 0, 0}).ok());        // one cluster
  EXPECT_FALSE(SilhouetteScore(la::Matrix(), {}).ok());       // empty
}

TEST(DaviesBouldinTest, BetterClusteringScoresLower) {
  Blobs blobs = MakeBlobs(25, 3, 10.0, 4);
  Rng rng(5);
  std::vector<std::size_t> random(blobs.labels.size());
  for (auto& l : random) l = static_cast<std::size_t>(rng.UniformInt(3));
  StatusOr<double> good = DaviesBouldinIndex(blobs.data, blobs.labels);
  StatusOr<double> bad = DaviesBouldinIndex(blobs.data, random);
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_LT(*good, *bad);
  EXPECT_GT(*good, 0.0);
}

TEST(DaviesBouldinTest, ScaleInvarianceOfOrdering) {
  // Scaling all features by a constant scales scatter and separation
  // equally: the index is exactly invariant.
  Blobs blobs = MakeBlobs(20, 3, 6.0, 6);
  StatusOr<double> base = DaviesBouldinIndex(blobs.data, blobs.labels);
  la::Matrix scaled = blobs.data;
  scaled.Scale(7.5);
  StatusOr<double> after = DaviesBouldinIndex(scaled, blobs.labels);
  ASSERT_TRUE(base.ok() && after.ok());
  EXPECT_NEAR(*base, *after, 1e-12);
}

TEST(SelectClusterCountTest, FindsPlantedK) {
  Blobs blobs = MakeBlobs(30, 4, 8.0, 7);
  auto cluster_at_k =
      [&](std::size_t k) -> StatusOr<std::vector<std::size_t>> {
    cluster::KMeansOptions options;
    options.num_clusters = k;
    options.seed = 11;
    auto r = cluster::KMeans(blobs.data, options);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  };
  StatusOr<ClusterCountSelection> selection =
      SelectClusterCount(blobs.data, 2, 8, cluster_at_k);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->best_k, 4u);
  ASSERT_EQ(selection->candidate_ks.size(), 7u);
  ASSERT_EQ(selection->silhouettes.size(), 7u);
}

TEST(SelectClusterCountTest, SkipsFailingCandidates) {
  Blobs blobs = MakeBlobs(20, 3, 8.0, 8);
  auto cluster_at_k =
      [&](std::size_t k) -> StatusOr<std::vector<std::size_t>> {
    if (k != 3) return Status::FailedPrecondition("only k=3 supported");
    cluster::KMeansOptions options;
    options.num_clusters = k;
    options.seed = 1;
    auto r = cluster::KMeans(blobs.data, options);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  };
  StatusOr<ClusterCountSelection> selection =
      SelectClusterCount(blobs.data, 2, 6, cluster_at_k);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->best_k, 3u);
  EXPECT_EQ(selection->candidate_ks.size(), 1u);
}

TEST(SelectClusterCountTest, RejectsBadRange) {
  Blobs blobs = MakeBlobs(10, 2, 5.0, 9);
  auto noop = [](std::size_t) -> StatusOr<std::vector<std::size_t>> {
    return Status::Internal("unused");
  };
  EXPECT_FALSE(SelectClusterCount(blobs.data, 1, 5, noop).ok());
  EXPECT_FALSE(SelectClusterCount(blobs.data, 5, 4, noop).ok());
  EXPECT_FALSE(SelectClusterCount(blobs.data, 2, 20, noop).ok());
}

}  // namespace
}  // namespace umvsc::eval
