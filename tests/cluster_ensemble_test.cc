#include "cluster/ensemble.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace umvsc::cluster {
namespace {

using Labels = std::vector<std::size_t>;

TEST(CoAssociationTest, SingleLabelingGivesBinaryMatrix) {
  Labels labels{0, 0, 1, 1};
  StatusOr<la::Matrix> co = CoAssociationMatrix({labels});
  ASSERT_TRUE(co.ok());
  EXPECT_DOUBLE_EQ((*co)(0, 1), 1.0);
  EXPECT_DOUBLE_EQ((*co)(0, 2), 0.0);
  EXPECT_DOUBLE_EQ((*co)(2, 3), 1.0);
  EXPECT_DOUBLE_EQ((*co)(1, 1), 1.0);
  EXPECT_TRUE(co->IsSymmetric(0.0));
}

TEST(CoAssociationTest, FractionsCountAgreements) {
  Labels a{0, 0, 1};
  Labels b{0, 1, 1};
  StatusOr<la::Matrix> co = CoAssociationMatrix({a, b});
  ASSERT_TRUE(co.ok());
  EXPECT_DOUBLE_EQ((*co)(0, 1), 0.5);  // together in a only
  EXPECT_DOUBLE_EQ((*co)(1, 2), 0.5);  // together in b only
  EXPECT_DOUBLE_EQ((*co)(0, 2), 0.0);
}

TEST(CoAssociationTest, PermutedIdsAreEquivalent) {
  Labels a{0, 0, 1, 1};
  Labels b{1, 1, 0, 0};  // identical clustering, renamed ids
  StatusOr<la::Matrix> one = CoAssociationMatrix({a});
  StatusOr<la::Matrix> both = CoAssociationMatrix({a, b});
  ASSERT_TRUE(one.ok() && both.ok());
  EXPECT_TRUE(la::AlmostEqual(*one, *both, 1e-15));
}

TEST(CoAssociationTest, RejectsInvalidEnsembles) {
  EXPECT_FALSE(CoAssociationMatrix({}).ok());
  EXPECT_FALSE(CoAssociationMatrix({Labels{}}).ok());
  EXPECT_FALSE(CoAssociationMatrix({Labels{0, 1}, Labels{0}}).ok());
}

TEST(ConsensusTest, RecoversSharedStructureFromNoisyEnsemble) {
  // Ground truth: 3 clusters of 20. Each ensemble member is the truth with
  // 15% of points flipped to random clusters.
  Rng rng(10);
  const std::size_t n = 60;
  Labels truth(n);
  for (std::size_t i = 0; i < n; ++i) truth[i] = i / 20;
  std::vector<Labels> ensemble;
  for (int member = 0; member < 9; ++member) {
    Labels noisy = truth;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Uniform() < 0.15) {
        noisy[i] = static_cast<std::size_t>(rng.UniformInt(3));
      }
    }
    ensemble.push_back(std::move(noisy));
  }
  ConsensusOptions options;
  options.num_clusters = 3;
  options.seed = 11;
  StatusOr<Labels> consensus = ConsensusClustering(ensemble, options);
  ASSERT_TRUE(consensus.ok()) << consensus.status().ToString();
  auto acc = eval::ClusteringAccuracy(*consensus, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
  // Consensus should beat the average ensemble member.
  double mean_member = 0.0;
  for (const Labels& member : ensemble) {
    auto member_acc = eval::ClusteringAccuracy(member, truth);
    mean_member += *member_acc;
  }
  mean_member /= static_cast<double>(ensemble.size());
  EXPECT_GT(*acc, mean_member);
}

TEST(ConsensusTest, DisagreeingEnsembleStillProducesValidLabels) {
  Rng rng(12);
  std::vector<Labels> ensemble;
  for (int member = 0; member < 5; ++member) {
    Labels random(30);
    for (auto& l : random) l = static_cast<std::size_t>(rng.UniformInt(3));
    ensemble.push_back(std::move(random));
  }
  ConsensusOptions options;
  options.num_clusters = 3;
  options.seed = 13;
  StatusOr<Labels> consensus = ConsensusClustering(ensemble, options);
  ASSERT_TRUE(consensus.ok());
  EXPECT_EQ(consensus->size(), 30u);
  for (std::size_t l : *consensus) EXPECT_LT(l, 3u);
}

}  // namespace
}  // namespace umvsc::cluster
