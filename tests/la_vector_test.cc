#include "la/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace umvsc::la {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  v[1] = 2.5;
  EXPECT_DOUBLE_EQ(v[1], 2.5);

  Vector w{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(w[2], 3.0);

  Vector filled(4, 7.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(filled[i], 7.0);
}

TEST(VectorTest, NormOfKnownVector) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm2(), 5.0);
}

TEST(VectorTest, NormAvoidsOverflow) {
  Vector v{1e200, 1e200};
  EXPECT_NEAR(v.Norm2(), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(VectorTest, NormAvoidsUnderflow) {
  Vector v{3e-200, 4e-200};
  EXPECT_NEAR(v.Norm2(), 5e-200, 1e-212);
}

TEST(VectorTest, SumAndMaxAbs) {
  Vector v{1.0, -5.0, 2.0};
  EXPECT_DOUBLE_EQ(v.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(v.MaxAbs(), 5.0);
}

TEST(VectorTest, ScaleAxpy) {
  Vector v{1.0, 2.0};
  v.Scale(2.0);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
  Vector x{1.0, 1.0};
  v.Axpy(-2.0, x);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(VectorTest, NormalizeReturnsOldNormAndUnitLength) {
  Vector v{3.0, 4.0};
  double old_norm = v.Normalize();
  EXPECT_DOUBLE_EQ(old_norm, 5.0);
  EXPECT_NEAR(v.Norm2(), 1.0, 1e-15);
}

TEST(VectorTest, DotAndOperators) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);

  Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  Vector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[0], 3.0);
  Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
}

TEST(VectorTest, AlmostEqual) {
  Vector a{1.0, 2.0};
  Vector b{1.0 + 1e-12, 2.0};
  EXPECT_TRUE(AlmostEqual(a, b, 1e-10));
  EXPECT_FALSE(AlmostEqual(a, b, 1e-14));
  Vector c{1.0};
  EXPECT_FALSE(AlmostEqual(a, c, 1.0));  // size mismatch
}

TEST(VectorTest, FillResetsEntries) {
  Vector v{1.0, 2.0, 3.0};
  v.Fill(0.5);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(v[i], 0.5);
}

TEST(VectorDeathTest, MismatchedAxpyAborts) {
  Vector a(3), b(4);
  EXPECT_DEATH(a.Axpy(1.0, b), "dimension mismatch");
}

TEST(VectorDeathTest, NormalizeZeroAborts) {
  Vector v(3);
  EXPECT_DEATH(v.Normalize(), "zero vector");
}

}  // namespace
}  // namespace umvsc::la
