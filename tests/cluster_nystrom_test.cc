#include "cluster/nystrom.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "la/ops.h"

namespace umvsc::cluster {
namespace {

struct Blobs {
  la::Matrix data;
  std::vector<std::size_t> labels;
};

Blobs MakeBlobs(std::size_t per_cluster, std::size_t k, double separation,
                std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.data = la::Matrix(per_cluster * k, 3);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      blobs.data(row, 0) =
          rng.Gaussian(separation * static_cast<double>(c), 0.4);
      blobs.data(row, 1) = rng.Gaussian(0.0, 0.4);
      blobs.data(row, 2) = rng.Gaussian(0.0, 0.4);
      blobs.labels.push_back(c);
    }
  }
  return blobs;
}

TEST(NystromTest, RecoversBlobsWithFewLandmarks) {
  Blobs blobs = MakeBlobs(150, 3, 8.0, 1);  // n = 450
  NystromOptions options;
  options.num_clusters = 3;
  options.landmarks = 40;
  options.seed = 2;
  StatusOr<NystromResult> result =
      NystromSpectralClustering(blobs.data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto acc = eval::ClusteringAccuracy(result->labels, blobs.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(NystromTest, EmbeddingHasNearOrthonormalColumns) {
  Blobs blobs = MakeBlobs(80, 3, 8.0, 3);
  NystromOptions options;
  options.num_clusters = 3;
  options.landmarks = 60;
  options.seed = 4;
  StatusOr<NystromResult> result =
      NystromSpectralClustering(blobs.data, options);
  ASSERT_TRUE(result.ok());
  // Orthonormality holds up to the Nyström approximation error.
  la::Matrix gram = la::Gram(result->embedding);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(gram(i, i), 1.0, 0.1);
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(gram(i, j), 0.0, 0.1);
    }
  }
  // Top eigenvalue of the normalized affinity is ≈ 1.
  EXPECT_NEAR(result->eigenvalues[0], 1.0, 0.1);
}

TEST(NystromTest, MoreLandmarksNotWorse) {
  Blobs blobs = MakeBlobs(100, 4, 5.0, 5);
  double few_acc = 0.0, many_acc = 0.0;
  for (auto [landmarks, out] :
       {std::pair<std::size_t, double*>{16, &few_acc},
        std::pair<std::size_t, double*>{120, &many_acc}}) {
    NystromOptions options;
    options.num_clusters = 4;
    options.landmarks = landmarks;
    options.seed = 6;
    auto result = NystromSpectralClustering(blobs.data, options);
    ASSERT_TRUE(result.ok());
    auto acc = eval::ClusteringAccuracy(result->labels, blobs.labels);
    ASSERT_TRUE(acc.ok());
    *out = *acc;
  }
  EXPECT_GE(many_acc + 0.05, few_acc);
  EXPECT_GT(many_acc, 0.9);
}

TEST(NystromTest, DeterministicForSeed) {
  Blobs blobs = MakeBlobs(60, 2, 8.0, 7);
  NystromOptions options;
  options.num_clusters = 2;
  options.landmarks = 25;
  options.seed = 8;
  auto a = NystromSpectralClustering(blobs.data, options);
  auto b = NystromSpectralClustering(blobs.data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(NystromTest, ExplicitSigmaAccepted) {
  Blobs blobs = MakeBlobs(50, 2, 10.0, 9);
  NystromOptions options;
  options.num_clusters = 2;
  options.landmarks = 20;
  options.sigma = 1.0;
  options.seed = 10;
  auto result = NystromSpectralClustering(blobs.data, options);
  ASSERT_TRUE(result.ok());
  auto acc = eval::ClusteringAccuracy(result->labels, blobs.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

// Regression for the sigma = 0 heuristic: the bandwidth is the lower median
// of ALL landmark-pair distances, computed serially in ascending (i, j)
// order — a pure function of the landmark set. Labels must therefore be
// identical at every thread count (the old heuristic sampled pairs in a
// thread-dependent order).
TEST(NystromTest, MedianSigmaHeuristicIsThreadInvariant) {
  Blobs blobs = MakeBlobs(70, 3, 7.0, 12);
  NystromOptions options;
  options.num_clusters = 3;
  options.landmarks = 30;
  options.sigma = 0.0;  // exercise the heuristic
  options.seed = 13;
  std::vector<std::size_t> reference;
  {
    ScopedNumThreads serial(1);
    auto result = NystromSpectralClustering(blobs.data, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference = result->labels;
    auto acc = eval::ClusteringAccuracy(result->labels, blobs.labels);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, 0.95);
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ScopedNumThreads scoped(threads);
    auto result = NystromSpectralClustering(blobs.data, options);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result->labels, reference) << "threads=" << threads;
  }
}

TEST(NystromTest, RejectsInvalidOptions) {
  Blobs blobs = MakeBlobs(20, 2, 5.0, 11);
  NystromOptions options;
  options.num_clusters = 2;
  options.landmarks = 40;  // >= n
  EXPECT_FALSE(NystromSpectralClustering(blobs.data, options).ok());
  options.landmarks = 10;
  options.num_clusters = 11;  // > landmarks
  EXPECT_FALSE(NystromSpectralClustering(blobs.data, options).ok());
  options.num_clusters = 1;
  EXPECT_FALSE(NystromSpectralClustering(blobs.data, options).ok());
  EXPECT_FALSE(NystromSpectralClustering(la::Matrix(), options).ok());
}

}  // namespace
}  // namespace umvsc::cluster
