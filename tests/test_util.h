#ifndef UMVSC_TESTS_TEST_UTIL_H_
#define UMVSC_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "la/qr.h"

namespace umvsc::test {

/// Random symmetric matrix with entries of magnitude ~1.
inline la::Matrix RandomSymmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix a = la::Matrix::RandomGaussian(n, n, rng);
  a.Symmetrize();
  return a;
}

/// Random symmetric positive-definite matrix A = GᵀG + n·ε·I.
inline la::Matrix RandomSpd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix g = la::Matrix::RandomGaussian(n, n, rng);
  la::Matrix a = la::Gram(g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1e-3 * static_cast<double>(n);
  return a;
}

/// Random matrix with orthonormal columns (rows >= cols).
inline la::Matrix RandomOrthonormal(std::size_t rows, std::size_t cols,
                                    std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix g = la::Matrix::RandomGaussian(rows, cols, rng);
  return la::Orthonormalize(g);
}

/// Symmetric matrix with a prescribed spectrum: V·diag(evals)·Vᵀ for a
/// random orthogonal V. The gold standard for eigensolver tests.
inline la::Matrix SymmetricWithSpectrum(const la::Vector& evals,
                                        std::uint64_t seed) {
  const std::size_t n = evals.size();
  la::Matrix v = RandomOrthonormal(n, n, seed);
  la::Matrix vd = v;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) vd(i, j) *= evals[j];
  }
  return la::MatMulT(vd, v);
}

}  // namespace umvsc::test

#endif  // UMVSC_TESTS_TEST_UTIL_H_
