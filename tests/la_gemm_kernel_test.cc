// The packed GEMM kernel contract (src/la/gemm_kernel.h): C accumulates on
// the fixed kc grid — per element, serial ascending p within each kc block,
// blocks added in ascending order — independent of the row range, the
// register tile, edge handling, and the dispatch backend. The reference
// below implements that grid longhand with unfused mul/add, so on x86 every
// comparison is exact; adversarial shapes sweep all the edge-handling paths
// (dims that are not multiples of the 4x8 tile, 0- and 1-sized dims, and
// k past the kc=256 block edge).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <vector>

#include "gtest/gtest.h"
#include "la/gemm_kernel.h"

namespace umvsc::la::kernel {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kBitwiseDispatch = true;
#else
constexpr bool kBitwiseDispatch = false;
#endif

constexpr std::size_t kKcGrid = 256;  // mirrors detail::kKc

std::vector<double> TestMatrix(std::size_t rows, std::size_t cols,
                               double phase) {
  std::vector<double> m(rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m[i * cols + j] = std::sin(0.7 * static_cast<double>(i) +
                                 1.3 * static_cast<double>(j) + phase) +
                        0.01 * static_cast<double>(i + j);
    }
  }
  return m;
}

// The documented accumulation grid, written out longhand.
void ReferenceGemmAdd(std::size_t n, std::size_t k, const Operand& a,
                      const Operand& b, double* c, std::size_t c_stride,
                      std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; kk += kKcGrid) {
        const std::size_t kcb = std::min(kKcGrid, k - kk);
        double partial = 0.0;
        for (std::size_t p = 0; p < kcb; ++p) {
          const double prod = a.At(i, kk + p) * b.At(kk + p, j);
          partial += prod;
        }
        c[i * c_stride + j] += partial;
      }
    }
  }
}

void ExpectClose(const std::vector<double>& got,
                 const std::vector<double>& want, std::size_t k,
                 const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (kBitwiseDispatch) {
      EXPECT_EQ(got[i], want[i]) << label << " element " << i;
    } else {
      const double tol = 1e-15 * static_cast<double>(k + 1);
      EXPECT_NEAR(got[i], want[i], tol) << label << " element " << i;
    }
  }
}

void CheckShape(std::size_t m, std::size_t n, std::size_t k, bool a_trans,
                bool b_trans) {
  SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n << " k=" << k
                                    << " aT=" << a_trans << " bT=" << b_trans);
  // Physical layouts: A is m x k (or k x m when read transposed), B is
  // k x n (or n x k).
  const std::vector<double> a_buf =
      a_trans ? TestMatrix(k, m, 0.0) : TestMatrix(m, k, 0.0);
  const std::vector<double> b_buf =
      b_trans ? TestMatrix(n, k, 1.0) : TestMatrix(k, n, 1.0);
  const Operand a{a_buf.data(), a_trans ? m : k, a_trans};
  const Operand b{b_buf.data(), b_trans ? k : n, b_trans};

  // Accumulate semantics: C starts non-zero and GemmAdd adds into it.
  const std::vector<double> c0 = TestMatrix(m, n == 0 ? 1 : n, 2.0);
  std::vector<double> want(m * n);
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = c0[i];
  ReferenceGemmAdd(n, k, a, b, want.data(), n, 0, m);

  std::vector<double> got = std::vector<double>(want.size());
  for (std::size_t i = 0; i < got.size(); ++i) got[i] = c0[i];
  GemmAdd(n, k, a, b, got.data(), n, 0, m);
  ExpectClose(got, want, k, "native");

  std::vector<double> got_scalar(want.size());
  for (std::size_t i = 0; i < got_scalar.size(); ++i) got_scalar[i] = c0[i];
  GemmAddScalar(n, k, a, b, got_scalar.data(), n, 0, m);
  // The scalar-forced instantiation shares the exact grid: bitwise on x86.
  ExpectClose(got_scalar, want, k, "scalar");
  if (kBitwiseDispatch && !got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), got_scalar.data(),
                             got.size() * sizeof(double)));
  }
}

TEST(GemmKernelTest, AdversarialShapesMatchTheReferenceGrid) {
  const std::size_t dims[] = {1, 2, 3, 4, 5, 7, 8, 9, 17, 31, 33, 65};
  for (std::size_t m : dims) {
    for (std::size_t n : dims) {
      for (std::size_t k : {1ul, 3ul, 8ul, 33ul}) {
        CheckShape(m, n, k, false, false);
      }
    }
  }
}

TEST(GemmKernelTest, AllTransposeCombinationsMatch) {
  for (bool a_trans : {false, true}) {
    for (bool b_trans : {false, true}) {
      CheckShape(13, 21, 37, a_trans, b_trans);
      CheckShape(64, 8, 16, a_trans, b_trans);
    }
  }
}

TEST(GemmKernelTest, InnerDimPastTheKcBlockEdgeMatches) {
  CheckShape(9, 11, 256, false, false);
  CheckShape(9, 11, 257, false, false);
  CheckShape(9, 11, 300, false, true);
  CheckShape(5, 5, 513, true, false);
}

TEST(GemmKernelTest, DegenerateDimensionsAreNoOpsOrScalars) {
  CheckShape(1, 1, 1, false, false);
  CheckShape(1, 1, 1, true, true);
  CheckShape(0, 5, 3, false, false);   // empty row range: no-op
  CheckShape(5, 0, 3, false, false);   // n = 0: no columns to write
  CheckShape(5, 3, 0, false, false);   // k = 0: C unchanged
  CheckShape(1, 9, 4, false, false);
  CheckShape(9, 1, 4, false, false);
}

TEST(GemmKernelTest, RowRangeRestrictsWritesAndPartitionsAgree) {
  const std::size_t m = 23, n = 17, k = 29;
  const std::vector<double> a_buf = TestMatrix(m, k, 0.0);
  const std::vector<double> b_buf = TestMatrix(k, n, 1.0);
  const Operand a{a_buf.data(), k, false};
  const Operand b{b_buf.data(), n, false};

  std::vector<double> whole(m * n, 0.0);
  GemmAdd(n, k, a, b, whole.data(), n, 0, m);

  // A restricted range must only touch its rows...
  std::vector<double> part(m * n, 0.0);
  GemmAdd(n, k, a, b, part.data(), n, 7, 15);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i >= 7 && i < 15) {
        EXPECT_EQ(part[i * n + j], whole[i * n + j]) << i << "," << j;
      } else {
        EXPECT_EQ(part[i * n + j], 0.0) << i << "," << j;
      }
    }
  }

  // ...and any partition of [0, m) must reproduce the single-span bits —
  // the property the row-parallel callers rely on.
  const std::size_t cuts[] = {0, 1, 4, 11, 12, 20, 23};
  std::vector<double> pieced(m * n, 0.0);
  for (std::size_t s = 0; s + 1 < std::size(cuts); ++s) {
    GemmAdd(n, k, a, b, pieced.data(), n, cuts[s], cuts[s + 1]);
  }
  EXPECT_EQ(0,
            std::memcmp(pieced.data(), whole.data(), m * n * sizeof(double)));
}

TEST(GemmKernelTest, StridedOutputLeavesGapsUntouched) {
  const std::size_t m = 6, n = 5, k = 7, c_stride = 9;
  const std::vector<double> a_buf = TestMatrix(m, k, 0.0);
  const std::vector<double> b_buf = TestMatrix(k, n, 1.0);
  const Operand a{a_buf.data(), k, false};
  const Operand b{b_buf.data(), n, false};

  std::vector<double> c(m * c_stride, -4.0);
  std::vector<double> want = c;
  ReferenceGemmAdd(n, k, a, b, want.data(), c_stride, 0, m);
  GemmAdd(n, k, a, b, c.data(), c_stride, 0, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < c_stride; ++j) {
      if (j < n) {
        if (kBitwiseDispatch) {
          EXPECT_EQ(c[i * c_stride + j], want[i * c_stride + j]);
        } else {
          EXPECT_NEAR(c[i * c_stride + j], want[i * c_stride + j], 1e-13);
        }
      } else {
        EXPECT_EQ(c[i * c_stride + j], -4.0) << "gap " << i << "," << j;
      }
    }
  }
}

TEST(GemmKernelTest, DispatchPathsAgreeUnderScopedForceScalar) {
  const std::size_t m = 31, n = 27, k = 300;
  const std::vector<double> a_buf = TestMatrix(m, k, 0.5);
  const std::vector<double> b_buf = TestMatrix(k, n, 1.5);
  const Operand a{a_buf.data(), k, false};
  const Operand b{b_buf.data(), n, false};

  std::vector<double> native(m * n, 0.0);
  GemmAdd(n, k, a, b, native.data(), n, 0, m);

  std::vector<double> forced(m * n, 0.0);
  {
    ScopedForceScalar force;
    GemmAdd(n, k, a, b, forced.data(), n, 0, m);
  }
  if (kBitwiseDispatch) {
    EXPECT_EQ(0, std::memcmp(native.data(), forced.data(),
                             native.size() * sizeof(double)));
  } else {
    for (std::size_t i = 0; i < native.size(); ++i) {
      EXPECT_NEAR(native[i], forced[i], 1e-15 * static_cast<double>(k));
    }
  }
}

}  // namespace
}  // namespace umvsc::la::kernel
