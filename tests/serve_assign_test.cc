#include "serve/batch_assign.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "data/synthetic.h"
#include "mvsc/anchor_unified.h"
#include "mvsc/out_of_sample.h"
#include "mvsc/unified.h"

namespace umvsc::serve {
namespace {

struct Fixture {
  data::MultiViewDataset train;
  data::MultiViewDataset test;
};

// One view is 300-dimensional — past la::kernel's 256-wide kc block — so
// the parity assertions cover the multi-block accumulation path, not just
// the degenerate single-block case.
Fixture MakeFixture(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 230;
  config.num_clusters = 3;
  config.views = {{300, data::ViewQuality::kInformative, 0.8},
                  {20, data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto full = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(full.ok(), "dataset generation failed");
  Fixture fx;
  const std::size_t n_train = 150;
  const std::size_t n = full->NumSamples();
  for (std::size_t v = 0; v < full->NumViews(); ++v) {
    fx.train.views.push_back(
        full->views[v].Block(0, 0, n_train, full->views[v].cols()));
    fx.test.views.push_back(full->views[v].Block(
        n_train, 0, n - n_train, full->views[v].cols()));
  }
  fx.train.labels.assign(full->labels.begin(),
                         full->labels.begin() + n_train);
  return fx;
}

ModelHandle MakeAnchorHandle(const Fixture& fx) {
  mvsc::UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  options.anchors.enabled = true;
  options.anchors.num_anchors = 32;
  options.anchors.anchor_neighbors = 4;
  auto solved = mvsc::SolveUnifiedAnchors(fx.train, options);
  UMVSC_CHECK(solved.ok(), "anchor solve failed");
  auto model = mvsc::OutOfSampleModel::FitAnchor(std::move(solved->model));
  UMVSC_CHECK(model.ok(), "FitAnchor failed");
  return std::make_shared<const mvsc::OutOfSampleModel>(*std::move(model));
}

TEST(BatchAssignTest, BatchedLabelsMatchPerPointBitwise) {
  const Fixture fx = MakeFixture(71);
  const ModelHandle handle = MakeAnchorHandle(fx);
  auto serial = handle->Predict(fx.test);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // The whole grid: thread counts × tile heights, including a tile of one
  // row (every point its own GEMM panel) and a prime height that misaligns
  // every boundary. One bit of divergence anywhere fails the contract.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ScopedNumThreads scope(threads);
    for (std::size_t tile : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      AssignOptions options;
      options.tile_rows = tile;
      auto batched = BatchAssigner(handle, options).Assign(fx.test);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      EXPECT_EQ(*batched, *serial)
          << "threads " << threads << " tile_rows " << tile;
    }
  }
}

TEST(BatchAssignTest, TrainingPointsKeepTheirTrainingLabels) {
  const Fixture fx = MakeFixture(72);
  mvsc::UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  options.anchors.enabled = true;
  options.anchors.num_anchors = 32;
  options.anchors.anchor_neighbors = 4;
  auto solved = mvsc::SolveUnifiedAnchors(fx.train, options);
  ASSERT_TRUE(solved.ok());
  const std::vector<std::size_t> train_labels = solved->result.labels;
  auto model = mvsc::OutOfSampleModel::FitAnchor(std::move(solved->model));
  ASSERT_TRUE(model.ok());
  const BatchAssigner assigner(
      std::make_shared<const mvsc::OutOfSampleModel>(*std::move(model)));
  // The anchor extension reproduces the training assignment chain, so
  // re-assigning the training batch must replay the training labels.
  auto replay = assigner.Assign(fx.train);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, train_labels);
}

TEST(BatchAssignTest, ExactPathModelsFallBackToPredict) {
  const Fixture fx = MakeFixture(73);
  auto model = mvsc::OutOfSampleModel::Fit(fx.train, fx.train.labels,
                                           {0.6, 0.4});
  ASSERT_TRUE(model.ok());
  const ModelHandle handle =
      std::make_shared<const mvsc::OutOfSampleModel>(*std::move(model));
  auto serial = handle->Predict(fx.test);
  ASSERT_TRUE(serial.ok());
  auto batched = BatchAssigner(handle).Assign(fx.test);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_EQ(*batched, *serial);
}

TEST(BatchAssignTest, RejectsMismatchedBatches) {
  const Fixture fx = MakeFixture(74);
  const BatchAssigner assigner(MakeAnchorHandle(fx));

  data::MultiViewDataset wrong_views;
  wrong_views.views.push_back(fx.test.views[0]);
  auto r1 = assigner.Assign(wrong_views);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  data::MultiViewDataset wrong_dims;
  wrong_dims.views.push_back(fx.test.views[1]);
  wrong_dims.views.push_back(fx.test.views[0]);
  auto r2 = assigner.Assign(wrong_dims);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace umvsc::serve
