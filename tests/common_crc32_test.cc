#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace umvsc {
namespace {

TEST(Crc32Test, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32/ISO-HDLC check vector.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(check, std::strlen(check)), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) {
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, SeedChainingEqualsOneShot) {
  const std::string bytes = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32(bytes.data(), bytes.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{10},
                            bytes.size() - 1, bytes.size()}) {
    const std::uint32_t first = Crc32(bytes.data(), split);
    const std::uint32_t chained =
        Crc32(bytes.data() + split, bytes.size() - split, first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesTheChecksum) {
  std::string bytes(64, '\0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(i * 7 + 1);
  }
  const std::uint32_t clean = Crc32(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); i += 5) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_NE(Crc32(corrupt.data(), corrupt.size()), clean)
        << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace umvsc
