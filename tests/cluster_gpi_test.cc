#include "cluster/gpi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "la/svd.h"

#include "common/rng.h"
#include "la/ops.h"
#include "la/sym_eigen.h"
#include "test_util.h"

namespace umvsc::cluster {
namespace {

TEST(GershgorinTest, BoundsLargestEigenvalue) {
  la::Matrix a = test::RandomSymmetric(12, 50);
  StatusOr<la::SymEigenResult> eig = la::SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(GershgorinUpperBound(a), eig->eigenvalues[11]);
  la::CsrMatrix sparse = la::CsrMatrix::FromDense(a);
  EXPECT_NEAR(GershgorinUpperBound(sparse), GershgorinUpperBound(a), 1e-12);
}

TEST(GpiTest, ZeroBRecoversSmallestEigenspace) {
  // With B = 0, min Tr(FᵀAF) over the Stiefel manifold is spanned by the
  // k smallest eigenvectors; compare the attained objective.
  la::Matrix a = test::RandomSpd(20, 51);
  const std::size_t k = 3;
  StatusOr<la::SymEigenResult> eig = la::SmallestEigenpairs(a, k);
  ASSERT_TRUE(eig.ok());
  const double optimal =
      eig->eigenvalues[0] + eig->eigenvalues[1] + eig->eigenvalues[2];

  la::Matrix f0 = test::RandomOrthonormal(20, k, 52);
  GpiOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-14;
  StatusOr<GpiResult> result =
      GeneralizedPowerIteration(a, la::Matrix(20, k), f0, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, optimal, 1e-5 * std::max(1.0, optimal));
  EXPECT_LT(la::OrthonormalityError(result->f), 1e-9);
}

TEST(GpiTest, ObjectiveDecreasesMonotonically) {
  la::Matrix a = test::RandomSymmetric(15, 53);
  Rng rng(54);
  la::Matrix b = la::Matrix::RandomGaussian(15, 3, rng);
  la::Matrix f = test::RandomOrthonormal(15, 3, 55);

  auto objective = [&](const la::Matrix& m) {
    return la::QuadraticTrace(a, m) - 2.0 * la::TraceOfProduct(m, b);
  };
  double prev = objective(f);
  // Run GPI one step at a time and confirm descent.
  for (int step = 0; step < 10; ++step) {
    GpiOptions one;
    one.max_iterations = 1;
    one.tolerance = 0.0;
    StatusOr<GpiResult> result = GeneralizedPowerIteration(a, b, f, one);
    ASSERT_TRUE(result.ok());
    const double obj = objective(result->f);
    EXPECT_LE(obj, prev + 1e-9) << "step " << step;
    prev = obj;
    f = result->f;
  }
}

TEST(GpiTest, StrongBPullsTowardItsStiefelProjection) {
  // With A = 0 the solution is the Procrustes projection of B.
  Rng rng(56);
  la::Matrix b = la::Matrix::RandomGaussian(12, 3, rng);
  la::Matrix f0 = test::RandomOrthonormal(12, 3, 57);
  GpiOptions options;
  options.max_iterations = 500;
  StatusOr<GpiResult> result =
      GeneralizedPowerIteration(la::Matrix(12, 12), b, f0, options);
  ASSERT_TRUE(result.ok());
  StatusOr<la::Matrix> expected = la::StiefelProjection(b);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(la::AlmostEqual(result->f, *expected, 1e-6));
}

TEST(GpiTest, SparseMatchesDense) {
  la::Matrix a = test::RandomSpd(18, 58);
  la::CsrMatrix a_sparse = la::CsrMatrix::FromDense(a);
  Rng rng(59);
  la::Matrix b = la::Matrix::RandomGaussian(18, 2, rng);
  la::Matrix f0 = test::RandomOrthonormal(18, 2, 60);
  GpiOptions options;
  options.max_iterations = 300;
  StatusOr<GpiResult> dense = GeneralizedPowerIteration(a, b, f0, options);
  StatusOr<GpiResult> sparse =
      GeneralizedPowerIteration(a_sparse, b, f0, options);
  ASSERT_TRUE(dense.ok() && sparse.ok());
  EXPECT_NEAR(dense->objective, sparse->objective,
              1e-6 * std::max(1.0, std::fabs(dense->objective)));
}

TEST(GpiTest, RejectsInvalidInputs) {
  la::Matrix a = test::RandomSymmetric(6, 61);
  la::Matrix b(6, 2);
  la::Matrix f0 = test::RandomOrthonormal(6, 2, 62);
  EXPECT_FALSE(GeneralizedPowerIteration(la::Matrix(5, 6), b, f0).ok());
  EXPECT_FALSE(GeneralizedPowerIteration(a, la::Matrix(5, 2), f0).ok());
  EXPECT_FALSE(GeneralizedPowerIteration(a, b, la::Matrix(6, 3)).ok());
  la::Matrix not_orthonormal(6, 2, 0.8);
  EXPECT_FALSE(GeneralizedPowerIteration(a, b, not_orthonormal).ok());
}

}  // namespace
}  // namespace umvsc::cluster
