// Concurrent-first-use test of the eigensolver auto-policy. The policy
// calibrates lazily behind std::call_once; this binary's FIRST touch of
// EigensolvePolicy::Get() happens from many threads at once, pinning that
// exactly one calibration runs, every caller blocks until it finishes, and
// all callers see the same fully-built instance. Lives in its own binary
// (fresh process) precisely so nothing else triggers the calibration
// before the race does.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "la/lanczos.h"

namespace umvsc::la {
namespace {

TEST(EigensolvePolicyConcurrentTest, FirstUseFromManyThreadsCalibratesOnce) {
  constexpr int kThreads = 8;
  std::vector<const EigensolvePolicy*> seen(kThreads, nullptr);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, &ready, t] {
      // Spin until every thread exists so the Get() calls really race.
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      seen[t] = &EigensolvePolicy::Get();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(seen[t], nullptr);
    // One instance: every racer resolved the same address.
    EXPECT_EQ(seen[t], seen[0]);
  }
  // The instance each racer saw was fully calibrated, not part-built.
  ASSERT_EQ(seen[0]->probes().size(), 4u);
  for (const EigensolvePolicy::Probe& probe : seen[0]->probes()) {
    EXPECT_GT(probe.n, 0u);
    EXPECT_GT(probe.block_seconds, 0.0);
    EXPECT_GT(probe.single_seconds, 0.0);
  }
}

TEST(EigensolvePolicyConcurrentTest, LaterUseIsTheSameInstance) {
  EXPECT_EQ(&EigensolvePolicy::Get(), &EigensolvePolicy::Get());
}

}  // namespace
}  // namespace umvsc::la
