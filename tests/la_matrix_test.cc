#include "la/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace umvsc::la {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[1], 2.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.RowPtr(1)[1], 4.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(eye.Trace(), 3.0);

  Matrix d = Matrix::Diagonal(Vector{2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, RowColDiagAccessors) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Vector r = m.Row(1);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
  Vector c = m.Col(2);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
  Vector d = m.Diag();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(MatrixTest, SetRowSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{1.0, 2.0});
  m.SetCol(1, Vector{7.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, Block) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
  Matrix left = m.LeftCols(2);
  EXPECT_EQ(left.cols(), 2u);
  EXPECT_DOUBLE_EQ(left(2, 1), 8.0);
}

TEST(MatrixTest, ScaleAddSymmetrize) {
  Matrix m{{1.0, 2.0}, {4.0, 3.0}};
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  m.Add(Matrix::Identity(2), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  m.Symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), m(1, 0));
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
}

TEST(MatrixTest, Norms) {
  Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, IsSymmetric) {
  Matrix sym{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(sym.IsSymmetric());
  Matrix asym{{1.0, 2.0}, {2.1, 3.0}};
  EXPECT_FALSE(asym.IsSymmetric(1e-3));
  EXPECT_TRUE(asym.IsSymmetric(0.2));
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.IsSymmetric());
}

TEST(MatrixTest, RandomMatricesUseRangeAndSeed) {
  Rng rng(5);
  Matrix u = Matrix::RandomUniform(50, 50, rng, -1.0, 1.0);
  EXPECT_LE(u.MaxAbs(), 1.0);
  Rng rng2(5);
  Matrix u2 = Matrix::RandomUniform(50, 50, rng2, -1.0, 1.0);
  EXPECT_TRUE(AlmostEqual(u, u2, 0.0));
}

TEST(MatrixTest, AlmostEqualRespectsShape) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_FALSE(AlmostEqual(a, b, 1.0));
}

TEST(MatrixTest, ToStringContainsEntries) {
  Matrix m{{1.5, 2.0}};
  std::string s = m.ToString(1);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

TEST(MatrixDeathTest, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(MatrixDeathTest, TraceOfRectangularAborts) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.Trace(), "square");
}

}  // namespace
}  // namespace umvsc::la
