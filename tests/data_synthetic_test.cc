#include "data/synthetic.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace umvsc::data {
namespace {

MultiViewConfig BasicConfig() {
  MultiViewConfig config;
  config.num_samples = 90;
  config.num_clusters = 3;
  config.views = {{8, ViewQuality::kInformative, 0.5},
                  {5, ViewQuality::kWeak, 1.0},
                  {6, ViewQuality::kNoisy, 1.0}};
  config.seed = 7;
  return config;
}

TEST(GaussianMultiViewTest, ShapesAndLabels) {
  StatusOr<MultiViewDataset> d = MakeGaussianMultiView(BasicConfig());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumSamples(), 90u);
  EXPECT_EQ(d->NumViews(), 3u);
  EXPECT_EQ(d->NumClusters(), 3u);
  EXPECT_EQ(d->views[0].cols(), 8u);
  EXPECT_EQ(d->views[1].cols(), 5u);
  EXPECT_TRUE(d->Validate().ok());
  // Balanced by default: 30 per cluster.
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t l : d->labels) counts[l]++;
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(counts[c], 30u);
}

TEST(GaussianMultiViewTest, DeterministicForSeed) {
  StatusOr<MultiViewDataset> a = MakeGaussianMultiView(BasicConfig());
  StatusOr<MultiViewDataset> b = MakeGaussianMultiView(BasicConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_TRUE(la::AlmostEqual(a->views[0], b->views[0], 0.0));
  MultiViewConfig other = BasicConfig();
  other.seed = 8;
  StatusOr<MultiViewDataset> c = MakeGaussianMultiView(other);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(la::AlmostEqual(a->views[0], c->views[0], 1e-6));
}

TEST(GaussianMultiViewTest, ImbalanceSkewsClusterSizes) {
  MultiViewConfig config = BasicConfig();
  config.imbalance = 1.0;
  StatusOr<MultiViewDataset> d = MakeGaussianMultiView(config);
  ASSERT_TRUE(d.ok());
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t l : d->labels) counts[l]++;
  EXPECT_GT(counts[0], counts[2]);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 90u);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_GE(counts[c], 1u);
}

TEST(GaussianMultiViewTest, InformativeViewSeparatesNoisyDoesNot) {
  // Between/within scatter ratio should be large for the informative view
  // and ~0 for the noisy one.
  MultiViewConfig config = BasicConfig();
  config.cluster_separation = 6.0;
  StatusOr<MultiViewDataset> d = MakeGaussianMultiView(config);
  ASSERT_TRUE(d.ok());
  auto separation_score = [&](const la::Matrix& x) {
    // Distance between cluster means relative to within-cluster spread.
    const std::size_t dims = x.cols();
    std::vector<la::Vector> means(3, la::Vector(dims));
    std::vector<std::size_t> counts(3, 0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const std::size_t c = d->labels[i];
      for (std::size_t j = 0; j < dims; ++j) means[c][j] += x(i, j);
      counts[c]++;
    }
    for (std::size_t c = 0; c < 3; ++c) {
      means[c].Scale(1.0 / static_cast<double>(counts[c]));
    }
    double between = 0.0;
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = a + 1; b < 3; ++b) {
        between += (means[a] - means[b]).Norm2();
      }
    }
    double within = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      within += (x.Row(i) - means[d->labels[i]]).Norm2();
    }
    return between / (within / static_cast<double>(x.rows()));
  };
  EXPECT_GT(separation_score(d->views[0]), 5.0 * separation_score(d->views[2]));
}

TEST(GaussianMultiViewTest, RejectsBadConfigs) {
  MultiViewConfig config = BasicConfig();
  config.num_samples = 0;
  EXPECT_FALSE(MakeGaussianMultiView(config).ok());
  config = BasicConfig();
  config.num_clusters = 0;
  EXPECT_FALSE(MakeGaussianMultiView(config).ok());
  config = BasicConfig();
  config.views.clear();
  EXPECT_FALSE(MakeGaussianMultiView(config).ok());
  config = BasicConfig();
  config.views[0].dim = 0;
  EXPECT_FALSE(MakeGaussianMultiView(config).ok());
  config = BasicConfig();
  config.views[0].noise = -1.0;
  EXPECT_FALSE(MakeGaussianMultiView(config).ok());
}

TEST(TwoMoonsTest, StructureAndNoiseView) {
  StatusOr<MultiViewDataset> d = MakeTwoMoonsMultiView(100, 0.05, true, 9);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumViews(), 3u);
  EXPECT_EQ(d->NumClusters(), 2u);
  EXPECT_EQ(d->views[0].cols(), 2u);
  EXPECT_TRUE(d->Validate().ok());
  StatusOr<MultiViewDataset> no_noise = MakeTwoMoonsMultiView(50, 0.05, false, 9);
  ASSERT_TRUE(no_noise.ok());
  EXPECT_EQ(no_noise->NumViews(), 2u);
}

TEST(RingsTest, ThreeBalancedRings) {
  StatusOr<MultiViewDataset> d = MakeRingsMultiView(90, 0.05, 10);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumClusters(), 3u);
  // Radius view feature 0 orders the rings.
  double max_r0 = 0.0, min_r2 = 1e9;
  for (std::size_t i = 0; i < 90; ++i) {
    if (d->labels[i] == 0) max_r0 = std::max(max_r0, d->views[1](i, 0));
    if (d->labels[i] == 2) min_r2 = std::min(min_r2, d->views[1](i, 0));
  }
  EXPECT_LT(max_r0, min_r2);
}

TEST(SimulateBenchmarkTest, AllNamesProduceValidDatasets) {
  for (const std::string& name : BenchmarkNames()) {
    StatusOr<MultiViewDataset> d = SimulateBenchmark(name, 3, 0.15);
    ASSERT_TRUE(d.ok()) << name << ": " << d.status().ToString();
    EXPECT_TRUE(d->Validate().ok()) << name;
    EXPECT_GE(d->NumViews(), 2u) << name;
    EXPECT_GE(d->NumClusters(), 5u) << name;
  }
}

TEST(SimulateBenchmarkTest, FullScaleMatchesPublishedStats) {
  StatusOr<MultiViewDataset> d = SimulateBenchmark("MSRC-v1", 1, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 210u);
  EXPECT_EQ(d->NumClusters(), 7u);
  EXPECT_EQ(d->NumViews(), 5u);
  EXPECT_EQ(d->views[0].cols(), 24u);
  EXPECT_EQ(d->views[1].cols(), 576u);
}

TEST(SimulateBenchmarkTest, UnknownNameAndBadScaleRejected) {
  EXPECT_EQ(SimulateBenchmark("NoSuchSet", 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(SimulateBenchmark("MSRC-v1", 1, 0.0).ok());
  EXPECT_FALSE(SimulateBenchmark("MSRC-v1", 1, 1.5).ok());
}

}  // namespace
}  // namespace umvsc::data
