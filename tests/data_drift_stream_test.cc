#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "la/ops.h"

namespace umvsc::data {
namespace {

DriftStreamConfig BaseConfig() {
  DriftStreamConfig config;
  config.batch_size = 200;
  config.num_clusters = 3;
  config.views = {{12, ViewQuality::kInformative, 0.4},
                  {9, ViewQuality::kInformative, 0.6},
                  {7, ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = 42;
  return config;
}

TEST(DriftStreamTest, BatchesAreWellFormed) {
  auto gen = DriftStreamGenerator::Create(BaseConfig());
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  for (std::size_t b = 0; b < 3; ++b) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->NumSamples(), 200u);
    ASSERT_EQ(batch->NumViews(), 3u);
    EXPECT_EQ(batch->views[0].cols(), 12u);
    EXPECT_EQ(batch->views[1].cols(), 9u);
    EXPECT_EQ(batch->views[2].cols(), 7u);
    ASSERT_EQ(batch->labels.size(), 200u);
    for (std::size_t label : batch->labels) EXPECT_LT(label, 3u);
  }
  EXPECT_EQ(gen->batches_emitted(), 3u);
}

TEST(DriftStreamTest, StreamsAreBitwiseDeterministic) {
  auto a = DriftStreamGenerator::Create(BaseConfig());
  auto b = DriftStreamGenerator::Create(BaseConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t t = 0; t < 4; ++t) {
    auto batch_a = a->NextBatch();
    auto batch_b = b->NextBatch();
    ASSERT_TRUE(batch_a.ok() && batch_b.ok());
    EXPECT_EQ(batch_a->labels, batch_b->labels) << "batch " << t;
    for (std::size_t v = 0; v < 3; ++v) {
      EXPECT_TRUE(la::AlmostEqual(batch_a->views[v], batch_b->views[v], 0.0))
          << "batch " << t << " view " << v;
    }
  }
}

TEST(DriftStreamTest, ZeroDriftIsStationary) {
  // With drift_rate 0, per-cluster view means stay put (within sampling
  // noise) across widely separated batches.
  DriftStreamConfig config = BaseConfig();
  config.batch_size = 600;
  auto gen = DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  auto cluster_mean = [](const MultiViewDataset& d, std::size_t k) {
    std::vector<double> mean(d.views[0].cols(), 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < d.NumSamples(); ++i) {
      if (d.labels[i] != k) continue;
      const double* row = d.views[0].RowPtr(i);
      for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += row[j];
      ++count;
    }
    for (double& m : mean) m /= static_cast<double>(count);
    return mean;
  };
  auto first = gen->NextBatch();
  ASSERT_TRUE(first.ok());
  for (std::size_t t = 0; t < 7; ++t) ASSERT_TRUE(gen->NextBatch().ok());
  auto last = gen->NextBatch();
  ASSERT_TRUE(last.ok());
  for (std::size_t k = 0; k < 3; ++k) {
    const std::vector<double> m0 = cluster_mean(*first, k);
    const std::vector<double> m8 = cluster_mean(*last, k);
    double dist2 = 0.0;
    for (std::size_t j = 0; j < m0.size(); ++j) {
      dist2 += (m0[j] - m8[j]) * (m0[j] - m8[j]);
    }
    EXPECT_LT(std::sqrt(dist2), 1.0) << "cluster " << k;
  }
}

TEST(DriftStreamTest, DriftMovesCentroidsMonotonically) {
  DriftStreamConfig config = BaseConfig();
  config.batch_size = 600;
  config.drift_rate = 0.2;
  config.drift_start_batch = 2;
  auto gen = DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  // Collect per-batch cluster-0 means of view 0.
  std::vector<std::vector<double>> means;
  for (std::size_t t = 0; t < 9; ++t) {
    auto batch = gen->NextBatch();
    ASSERT_TRUE(batch.ok());
    std::vector<double> mean(batch->views[0].cols(), 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < batch->NumSamples(); ++i) {
      if (batch->labels[i] != 0) continue;
      const double* row = batch->views[0].RowPtr(i);
      for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += row[j];
      ++count;
    }
    ASSERT_GT(count, 0u);
    for (double& m : mean) m /= static_cast<double>(count);
    means.push_back(std::move(mean));
  }
  auto dist_to_first = [&](std::size_t t) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < means[0].size(); ++j) {
      d2 += (means[t][j] - means[0][j]) * (means[t][j] - means[0][j]);
    }
    return std::sqrt(d2);
  };
  // Pre-drift batches stay near batch 0; late batches march away, and the
  // displacement keeps growing (mean shift, not a bounded wobble).
  EXPECT_LT(dist_to_first(2), 1.0);
  EXPECT_GT(dist_to_first(8), dist_to_first(4));
  EXPECT_GT(dist_to_first(8), 2.0);
}

TEST(DriftStreamTest, HeavyTailSkewsBatchComposition) {
  DriftStreamConfig config = BaseConfig();
  config.batch_size = 1000;
  config.num_clusters = 4;
  config.heavy_tail = 1.0;
  auto gen = DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  auto batch = gen->NextBatch();
  ASSERT_TRUE(batch.ok());
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t label : batch->labels) counts[label]++;
  // decay 0.25: expected shares ~ (0.75, 0.19, 0.05, 0.01).
  EXPECT_GT(counts[0], counts[3] * 10);
  EXPECT_GT(counts[0], 600u);
  // Uniform draw for comparison.
  config.heavy_tail = 0.0;
  auto uniform = DriftStreamGenerator::Create(config);
  ASSERT_TRUE(uniform.ok());
  auto ubatch = uniform->NextBatch();
  ASSERT_TRUE(ubatch.ok());
  std::vector<std::size_t> ucounts(4, 0);
  for (std::size_t label : ubatch->labels) ucounts[label]++;
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(ucounts[k], 150u) << "cluster " << k;
    EXPECT_LT(ucounts[k], 350u) << "cluster " << k;
  }
}

TEST(DriftStreamTest, IncompleteBatchesKeepLabelsAndShape) {
  DriftStreamConfig config = BaseConfig();
  config.missing_fraction = 0.25;
  auto gen = DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  auto batch = gen->NextBatch();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->NumSamples(), 200u);
  EXPECT_EQ(batch->labels.size(), 200u);
  // Determinism must hold through the incompleteness path too.
  auto gen2 = DriftStreamGenerator::Create(config);
  ASSERT_TRUE(gen2.ok());
  auto batch2 = gen2->NextBatch();
  ASSERT_TRUE(batch2.ok());
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_TRUE(la::AlmostEqual(batch->views[v], batch2->views[v], 0.0));
  }
}

TEST(DriftStreamTest, RejectsInvalidConfigs) {
  DriftStreamConfig config = BaseConfig();
  config.batch_size = 0;
  EXPECT_FALSE(DriftStreamGenerator::Create(config).ok());
  config = BaseConfig();
  config.views.clear();
  EXPECT_FALSE(DriftStreamGenerator::Create(config).ok());
  config = BaseConfig();
  config.heavy_tail = 1.5;
  EXPECT_FALSE(DriftStreamGenerator::Create(config).ok());
  config = BaseConfig();
  config.drift_rate = -0.1;
  EXPECT_FALSE(DriftStreamGenerator::Create(config).ok());
  config = BaseConfig();
  config.views = {{12, ViewQuality::kInformative, 0.4}};
  config.missing_fraction = 0.3;
  EXPECT_FALSE(DriftStreamGenerator::Create(config).ok());
}

}  // namespace
}  // namespace umvsc::data
