#include "common/parallel.h"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace umvsc {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::size_t n = 1013;
    std::vector<int> counts(n, 0);
    ParallelFor(
        0, n, 7,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) counts[i]++;
        },
        threads);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(counts[i], 1) << "index " << i << " at " << threads
                              << " threads";
    }
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  bool called = false;
  ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { called = true; }, 8);
  ParallelFor(7, 3, 1, [&](std::size_t, std::size_t) { called = true; }, 8);
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleElementRangeRunsOnce) {
  std::atomic<int> calls{0};
  ParallelFor(
      41, 42, 16,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_EQ(lo, 41u);
        EXPECT_EQ(hi, 42u);
        calls++;
      },
      8);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, GrainZeroIsTreatedAsOne) {
  const std::size_t n = 64;
  std::vector<int> counts(n, 0);
  ParallelFor(
      0, n, 0,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) counts[i]++;
      },
      4);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(counts[i], 1);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsSerially) {
  std::atomic<int> calls{0};
  ParallelFor(
      0, 10, 100,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
        EXPECT_FALSE(InParallelRegion());  // serial fast path
        calls++;
      },
      8);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, SpanBoundariesAreGrainAligned) {
  const std::size_t begin = 3, end = 3 + 257, grain = 16;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  ParallelFor(
      begin, end, grain,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        spans.push_back({lo, hi});
      },
      8);
  std::size_t covered = 0;
  for (const auto& [lo, hi] : spans) {
    EXPECT_EQ((lo - begin) % grain, 0u) << "span start must be grain-aligned";
    if (hi != end) EXPECT_EQ((hi - begin) % grain, 0u);
    EXPECT_LT(lo, hi);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, end - begin);
}

TEST(ParallelForTest, PoolIsReusedAcrossManyRegions) {
  // Exercises the generation/wakeup logic: many back-to-back jobs must each
  // run to completion with no lost or duplicated work.
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    ParallelFor(
        0, 100, 1,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
          }
        },
        4);
    ASSERT_EQ(sum.load(), 4950);
  }
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      ParallelFor(
          0, 100, 1,
          [&](std::size_t lo, std::size_t) {
            if (lo == 0) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> ok{0};
  ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) { ok++; }, 4);
  EXPECT_GT(ok.load(), 0);
}

TEST(ParallelForTest, NestedRegionsRunSeriallyWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  ParallelFor(
      0, 8, 1,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_TRUE(InParallelRegion());
        for (std::size_t i = lo; i < hi; ++i) {
          ParallelFor(
              0, 10, 1,
              [&](std::size_t ilo, std::size_t ihi) {
                inner_total.fetch_add(static_cast<int>(ihi - ilo));
              },
              8);
        }
      },
      4);
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ParallelReduceTest, MatchesSerialSumOfIntegers) {
  const std::size_t n = 1000;
  const long expected = static_cast<long>(n) * (n - 1) / 2;
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const long got = ParallelReduce<long>(
        0, n, 13, 0L,
        [](std::size_t lo, std::size_t hi) {
          long s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
          return s;
        },
        [](const long& a, const long& b) { return a + b; }, threads);
    EXPECT_EQ(got, expected);
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const double got = ParallelReduce<double>(
      10, 10, 4, -3.5,
      [](std::size_t, std::size_t) { return 1.0; },
      [](const double& a, const double& b) { return a + b; }, 8);
  EXPECT_EQ(got, -3.5);
}

TEST(ParallelReduceTest, FloatingPointSumIsBitwiseStableAcrossThreadCounts) {
  // Values chosen so that re-associating the sum changes the low bits: if
  // the reduction tree depended on the thread count, these comparisons
  // would fail.
  const std::size_t n = 2048;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = (i % 3 == 0 ? 1.0 : -1.0) / static_cast<double>(i + 1) * 1e8;
  }
  auto sum_at = [&](std::size_t threads) {
    return ParallelReduce<double>(
        0, n, 32, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](const double& a, const double& b) { return a + b; }, threads);
  };
  const double at1 = sum_at(1);
  EXPECT_EQ(at1, sum_at(2));
  EXPECT_EQ(at1, sum_at(5));
  EXPECT_EQ(at1, sum_at(8));
}

TEST(ThreadCountTest, DefaultsAreSaneAndOverridable) {
  EXPECT_GE(HardwareThreads(), 1u);
  EXPECT_GE(DefaultNumThreads(), 1u);
  const std::size_t before = DefaultNumThreads();
  {
    ScopedNumThreads scope(3);
    EXPECT_EQ(DefaultNumThreads(), 3u);
    {
      ScopedNumThreads inner(5);
      EXPECT_EQ(DefaultNumThreads(), 5u);
    }
    EXPECT_EQ(DefaultNumThreads(), 3u);
  }
  EXPECT_EQ(DefaultNumThreads(), before);
  SetDefaultNumThreads(2);
  EXPECT_EQ(DefaultNumThreads(), 2u);
  SetDefaultNumThreads(0);  // reset to env/hardware default
  EXPECT_EQ(DefaultNumThreads(), before);
}

}  // namespace
}  // namespace umvsc
