// Tests of the compute-once stage cache: single factory run per key,
// concurrent duplicate requesters sharing one in-flight computation, the
// throwing-factory evict-and-retry contract, and the hit/miss accounting
// bench/multi_job reports.

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/stage_cache.h"

namespace umvsc::exec {
namespace {

std::shared_ptr<const int> MakeInt(int value) {
  return std::make_shared<const int>(value);
}

TEST(StageCacheTest, ComputesOncePerKey) {
  StageCache cache;
  int factory_runs = 0;
  auto factory = [&] {
    ++factory_runs;
    return MakeInt(42);
  };
  std::shared_ptr<const int> first = cache.Get<int>("k", factory);
  std::shared_ptr<const int> second = cache.Get<int>("k", factory);
  EXPECT_EQ(factory_runs, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*first, 42);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StageCacheTest, DistinctKeysComputeIndependently) {
  StageCache cache;
  EXPECT_EQ(*cache.Get<int>("a", [] { return MakeInt(1); }), 1);
  EXPECT_EQ(*cache.Get<int>("b", [] { return MakeInt(2); }), 2);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(StageCacheTest, ConcurrentRequestersShareOneComputation) {
  StageCache cache;
  std::atomic<int> factory_runs{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const int>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &factory_runs, &results, t] {
      results[t] = cache.Get<int>("shared", [&factory_runs] {
        factory_runs.fetch_add(1);
        // Hold the computation open long enough that the other threads
        // arrive while it is in flight and must wait, not recompute.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return MakeInt(7);
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(factory_runs.load(), 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(*results[t], 7);
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(cache.hits() + cache.misses(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(StageCacheTest, ThrowingFactoryEvictsAndLaterRequestersRetry) {
  StageCache cache;
  EXPECT_THROW(cache.Get<int>("k",
                              []() -> std::shared_ptr<const int> {
                                throw std::runtime_error("stage failed");
                              }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // the failed entry did not stick
  // A later requester runs the factory fresh and succeeds.
  EXPECT_EQ(*cache.Get<int>("k", [] { return MakeInt(9); }), 9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StageCacheTest, ClearDropsEntriesButKeepsCounters) {
  StageCache cache;
  cache.Get<int>("k", [] { return MakeInt(1); });
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  int factory_runs = 0;
  cache.Get<int>("k", [&factory_runs] {
    ++factory_runs;
    return MakeInt(1);
  });
  EXPECT_EQ(factory_runs, 1);  // a fresh miss after Clear
  EXPECT_EQ(cache.misses(), 2u);
}

}  // namespace
}  // namespace umvsc::exec
