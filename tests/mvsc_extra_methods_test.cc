#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/baselines.h"
#include "mvsc/coreg.h"
#include "mvsc/graphs.h"
#include "mvsc/mlan.h"
#include "mvsc/multi_nmf.h"
#include "mvsc/mvkkm.h"

namespace umvsc::mvsc {
namespace {

struct TestProblem {
  data::MultiViewDataset dataset;
  MultiViewGraphs graphs;
};

TestProblem MakeProblem(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 150;
  config.num_clusters = 3;
  config.views = {{12, data::ViewQuality::kInformative, 0.4},
                  {8, data::ViewQuality::kWeak, 1.0},
                  {10, data::ViewQuality::kNoisy, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto dataset = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(dataset.ok(), "dataset generation failed");
  auto graphs = BuildGraphs(*dataset);
  UMVSC_CHECK(graphs.ok(), "graph construction failed");
  return {std::move(*dataset), std::move(*graphs)};
}

double Accuracy(const std::vector<std::size_t>& pred,
                const std::vector<std::size_t>& truth) {
  auto acc = eval::ClusteringAccuracy(pred, truth);
  UMVSC_CHECK(acc.ok(), "accuracy computation failed");
  return *acc;
}

TEST(MlanTest, RecoversClustersAndLearnsGraph) {
  TestProblem problem = MakeProblem(70);
  MlanOptions options;
  options.num_clusters = 3;
  options.seed = 1;
  StatusOr<MlanResult> result = Mlan(problem.dataset, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.9);
  // Learned graph: symmetric, nonnegative, total mass n (each row of the
  // directed solution is a simplex point).
  const la::Matrix& s = result->learned_graph;
  EXPECT_TRUE(s.IsSymmetric(1e-9));
  double total = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s.data()[i], -1e-12);
    total += s.data()[i];
  }
  EXPECT_NEAR(total, static_cast<double>(problem.dataset.NumSamples()), 1e-6);
  EXPECT_GE(result->iterations, 1u);
}

TEST(MlanTest, NoisyViewGetsLowWeight) {
  TestProblem problem = MakeProblem(71);
  MlanOptions options;
  options.num_clusters = 3;
  options.seed = 2;
  StatusOr<MlanResult> result = Mlan(problem.dataset, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->view_weights[2], result->view_weights[0]);
}

TEST(MlanTest, RejectsInvalidOptions) {
  TestProblem problem = MakeProblem(72);
  MlanOptions options;
  options.num_clusters = 1;
  EXPECT_FALSE(Mlan(problem.dataset, options).ok());
  options.num_clusters = 3;
  options.knn = 0;
  EXPECT_FALSE(Mlan(problem.dataset, options).ok());
  EXPECT_FALSE(Mlan(data::MultiViewDataset{}, MlanOptions{}).ok());
}

TEST(MvkkmTest, RecoversClustersAndWeightsViews) {
  TestProblem problem = MakeProblem(73);
  MvkkmOptions options;
  options.num_clusters = 3;
  options.seed = 3;
  StatusOr<MvkkmResult> result =
      MultiViewKernelKMeans(problem.dataset, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.85);
  // Weights form a distribution and punish the noisy view.
  double total = 0.0;
  for (double w : result->view_weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LT(result->view_weights[2], result->view_weights[0]);
}

TEST(MvkkmTest, RejectsInvalidOptions) {
  TestProblem problem = MakeProblem(74);
  MvkkmOptions options;
  options.num_clusters = 1;
  EXPECT_FALSE(MultiViewKernelKMeans(problem.dataset, options).ok());
  options.num_clusters = 3;
  options.p = 1.0;
  EXPECT_FALSE(MultiViewKernelKMeans(problem.dataset, options).ok());
}

TEST(CoRegPairwiseTest, BothModesRecoverClusters) {
  TestProblem problem = MakeProblem(75);
  for (auto mode : {CoRegMode::kCentroid, CoRegMode::kPairwise}) {
    CoRegOptions options;
    options.num_clusters = 3;
    options.mode = mode;
    options.seed = 4;
    StatusOr<CoRegResult> result = CoRegSpectral(problem.graphs, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.85)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(MultiNmfTest, RecoversClustersWithNonnegativeConsensus) {
  TestProblem problem = MakeProblem(77);
  MultiNmfOptions options;
  options.num_clusters = 3;
  options.seed = 6;
  StatusOr<MultiNmfResult> result = MultiViewNmf(problem.dataset, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.7);
  for (std::size_t i = 0; i < result->consensus.size(); ++i) {
    EXPECT_GE(result->consensus.data()[i], 0.0);
  }
  EXPECT_EQ(result->view_factors.size(), 3u);
  EXPECT_GE(result->iterations, 2u);
}

TEST(MultiNmfTest, ObjectiveDecreasesOverIterations) {
  TestProblem problem = MakeProblem(78);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t iters : {2, 10, 60}) {
    MultiNmfOptions options;
    options.num_clusters = 3;
    options.max_iterations = iters;
    options.tolerance = 0.0;
    options.seed = 7;
    StatusOr<MultiNmfResult> result = MultiViewNmf(problem.dataset, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->objective, prev + 1e-9);
    prev = result->objective;
  }
}

TEST(MultiNmfTest, RejectsInvalidOptions) {
  TestProblem problem = MakeProblem(79);
  MultiNmfOptions options;
  options.num_clusters = 1;
  EXPECT_FALSE(MultiViewNmf(problem.dataset, options).ok());
  options.num_clusters = 3;
  options.lambda = -1.0;
  EXPECT_FALSE(MultiViewNmf(problem.dataset, options).ok());
}

TEST(EnsembleScTest, LateFusionRecoversClusters) {
  TestProblem problem = MakeProblem(85);
  BaselineOptions options;
  options.num_clusters = 3;
  options.seed = 8;
  StatusOr<std::vector<std::size_t>> result =
      EnsembleSC(problem.graphs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(Accuracy(*result, problem.dataset.labels), 0.85);
}

TEST(CoRegPairwiseTest, PairwiseLeavesConsensusEmpty) {
  TestProblem problem = MakeProblem(76);
  CoRegOptions options;
  options.num_clusters = 3;
  options.mode = CoRegMode::kPairwise;
  options.seed = 5;
  StatusOr<CoRegResult> result = CoRegSpectral(problem.graphs, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->consensus.empty());
  EXPECT_EQ(result->view_embeddings.size(), 3u);
}

}  // namespace
}  // namespace umvsc::mvsc
