#include "la/lanczos.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"
#include "la/sym_eigen.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

// Builds the symmetric adjacency of a cycle graph on n vertices.
CsrMatrix CycleAdjacency(std::size_t n) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    t.push_back({i, j, 1.0});
    t.push_back({j, i, 1.0});
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t));
}

// Unnormalized Laplacian of a disjoint union of `c` cliques of size `s`.
CsrMatrix BlockCliqueLaplacian(std::size_t c, std::size_t s) {
  std::vector<Triplet> t;
  for (std::size_t b = 0; b < c; ++b) {
    const std::size_t base = b * s;
    for (std::size_t i = 0; i < s; ++i) {
      t.push_back({base + i, base + i, static_cast<double>(s - 1)});
      for (std::size_t j = 0; j < s; ++j) {
        if (i != j) t.push_back({base + i, base + j, -1.0});
      }
    }
  }
  return CsrMatrix::FromTriplets(c * s, c * s, std::move(t));
}

TEST(LanczosTest, LargestEigenvaluesOfDenseReference) {
  Matrix dense = test::RandomSymmetric(40, 90);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> full = SymmetricEigen(dense);
  StatusOr<SymEigenResult> lan = LanczosLargest(sparse, 4);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lan.ok()) << lan.status().ToString();
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(lan->eigenvalues[j], full->eigenvalues[39 - j], 1e-7);
  }
}

TEST(LanczosTest, RitzVectorsAreEigenvectors) {
  Matrix dense = test::RandomSymmetric(30, 91);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> lan = LanczosLargest(sparse, 3);
  ASSERT_TRUE(lan.ok());
  EXPECT_LT(OrthonormalityError(lan->eigenvectors), 1e-8);
  for (int j = 0; j < 3; ++j) {
    Vector v = lan->eigenvectors.Col(j);
    Vector av = sparse.Multiply(v);
    av.Axpy(-lan->eigenvalues[j], v);
    EXPECT_LT(av.Norm2(), 1e-6 * std::max(1.0, std::fabs(lan->eigenvalues[j])));
  }
}

TEST(LanczosTest, CycleGraphSpectrumKnown) {
  // Adjacency eigenvalues of a cycle: 2·cos(2πk/n); the largest is 2.
  const std::size_t n = 50;
  CsrMatrix a = CycleAdjacency(n);
  StatusOr<SymEigenResult> lan = LanczosLargest(a, 1);
  ASSERT_TRUE(lan.ok());
  EXPECT_NEAR(lan->eigenvalues[0], 2.0, 1e-8);
}

TEST(LanczosTest, SmallestViaComplementOnLaplacian) {
  // Disconnected graph with 4 components: smallest 4 Laplacian eigenvalues
  // are all exactly 0 — the multiplicity case that naive Lanczos misses.
  const std::size_t c = 4, s = 8;
  CsrMatrix lap = BlockCliqueLaplacian(c, s);
  // Spectral bound: unnormalized clique Laplacian has max eigenvalue s.
  StatusOr<SymEigenResult> lan =
      LanczosSmallest(lap, c, static_cast<double>(s) + 1.0);
  ASSERT_TRUE(lan.ok()) << lan.status().ToString();
  for (std::size_t j = 0; j < c; ++j) {
    EXPECT_NEAR(lan->eigenvalues[j], 0.0, 1e-7) << "j=" << j;
  }
  // The 4-dimensional null space must be fully captured: Lap·V ≈ 0.
  Matrix lv = lap.Multiply(lan->eigenvectors);
  EXPECT_LT(lv.MaxAbs(), 1e-7);
  EXPECT_LT(OrthonormalityError(lan->eigenvectors), 1e-8);
}

TEST(LanczosTest, SmallestMatchesDenseReference) {
  Matrix dense = test::RandomSpd(35, 92);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> full = SymmetricEigen(dense);
  ASSERT_TRUE(full.ok());
  const double bound = full->eigenvalues[34] * 1.01;
  StatusOr<SymEigenResult> lan = LanczosSmallest(sparse, 3, bound);
  ASSERT_TRUE(lan.ok()) << lan.status().ToString();
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(lan->eigenvalues[j], full->eigenvalues[j], 1e-6);
  }
}

TEST(LanczosTest, MatrixFreeOperatorWorks) {
  // Operator for diag(1, 2, …, n) without materializing a matrix.
  const std::size_t n = 25;
  SymmetricOperator op = [n](const Vector& x, Vector& y) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += static_cast<double>(i + 1) * x[i];
    }
  };
  StatusOr<SymEigenResult> lan = LanczosLargest(op, n, 2);
  ASSERT_TRUE(lan.ok());
  EXPECT_NEAR(lan->eigenvalues[0], static_cast<double>(n), 1e-8);
  EXPECT_NEAR(lan->eigenvalues[1], static_cast<double>(n - 1), 1e-8);
}

TEST(LanczosTest, InvalidArguments) {
  CsrMatrix a = CycleAdjacency(10);
  EXPECT_FALSE(LanczosLargest(a, 0).ok());
  EXPECT_FALSE(LanczosLargest(a, 11).ok());
  EXPECT_FALSE(LanczosSmallest(a, 2, -1.0).ok());
  CsrMatrix rect = CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}});
  EXPECT_FALSE(LanczosLargest(rect, 1).ok());
}

TEST(LanczosTest, MatvecCounterCountsOperatorApplications) {
  CsrMatrix a = CycleAdjacency(60);
  LanczosOptions options;
  std::size_t matvecs = 0;
  options.matvec_count = &matvecs;
  StatusOr<SymEigenResult> res = LanczosLargest(a, 3, options);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // One matvec per Krylov step; the subspace must at least reach the safety
  // dimension k + max(k, 8).
  EXPECT_GE(matvecs, 3u + 8u);
  EXPECT_LE(matvecs, options.max_subspace);
}

TEST(LanczosTest, WarmStartConvergesWithFewerMatvecs) {
  // Well-separated top block so both solves converge crisply.
  const std::size_t n = 150;
  const std::size_t k = 5;
  Vector evals(n);
  for (std::size_t i = 0; i < n; ++i) {
    evals[i] = i < n - k ? 0.01 * static_cast<double>(i)
                         : 10.0 + static_cast<double>(i - (n - k));
  }
  Matrix dense = test::SymmetricWithSpectrum(evals, 131);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);

  LanczosOptions cold;
  std::size_t cold_matvecs = 0;
  cold.matvec_count = &cold_matvecs;
  StatusOr<SymEigenResult> first = LanczosLargest(sparse, k, cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Re-solve seeded with the converged eigenvectors: the Krylov space
  // collapses onto the invariant subspace almost immediately.
  LanczosOptions warm;
  std::size_t warm_matvecs = 0;
  warm.matvec_count = &warm_matvecs;
  warm.warm_start = &first->eigenvectors;
  StatusOr<SymEigenResult> second = LanczosLargest(sparse, k, warm);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_LT(warm_matvecs, cold_matvecs);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(second->eigenvalues[j], first->eigenvalues[j], 1e-7);
  }
}

TEST(LanczosTest, MismatchedWarmStartIsIgnored) {
  CsrMatrix a = CycleAdjacency(40);
  Matrix wrong_rows(7, 2);  // not 40 rows: must be ignored, not crash
  LanczosOptions options;
  options.warm_start = &wrong_rows;
  StatusOr<SymEigenResult> res = LanczosLargest(a, 2, options);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  StatusOr<SymEigenResult> plain = LanczosLargest(a, 2);
  ASSERT_TRUE(plain.ok());
  // Identical to the cold solve bit for bit — same seed, same random start.
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(res->eigenvalues[j], plain->eigenvalues[j]);
  }
}

TEST(LanczosTest, KEqualsNReturnsFullSpectrum) {
  Matrix dense = test::RandomSymmetric(12, 93);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  StatusOr<SymEigenResult> full = SymmetricEigen(dense);
  StatusOr<SymEigenResult> lan = LanczosLargest(sparse, 12);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lan.ok()) << lan.status().ToString();
  for (int j = 0; j < 12; ++j) {
    EXPECT_NEAR(lan->eigenvalues[j], full->eigenvalues[11 - j], 1e-7);
  }
}

}  // namespace
}  // namespace umvsc::la
