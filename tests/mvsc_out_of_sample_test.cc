#include "mvsc/out_of_sample.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc {
namespace {

// Train/test pair drawn from the same latent configuration via a fixed
// generator seed: the generator is deterministic, so regenerating with a
// larger n and splitting yields i.i.d. train/test from one distribution.
struct Split {
  data::MultiViewDataset train;
  data::MultiViewDataset test;
};

Split MakeSplit(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 240;
  config.num_clusters = 3;
  config.views = {{10, data::ViewQuality::kInformative, 0.4},
                  {6, data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto full = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(full.ok(), "dataset generation failed");
  Split split;
  const std::size_t n_train = 180;
  const std::size_t n = full->NumSamples();
  for (std::size_t v = 0; v < full->NumViews(); ++v) {
    split.train.views.push_back(
        full->views[v].Block(0, 0, n_train, full->views[v].cols()));
    split.test.views.push_back(full->views[v].Block(
        n_train, 0, n - n_train, full->views[v].cols()));
  }
  split.train.labels.assign(full->labels.begin(),
                            full->labels.begin() + n_train);
  split.test.labels.assign(full->labels.begin() + n_train, full->labels.end());
  split.train.name = "train";
  split.test.name = "test";
  return split;
}

TEST(OutOfSampleTest, NewPointsGetConsistentClusters) {
  Split split = MakeSplit(80);
  UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 1;
  StatusOr<UnifiedResult> fitted = UnifiedMVSC(options).Run(split.train);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  // Sanity: training clustering is good.
  auto train_acc =
      eval::ClusteringAccuracy(fitted->labels, split.train.labels);
  ASSERT_TRUE(train_acc.ok());
  ASSERT_GT(*train_acc, 0.9);

  StatusOr<OutOfSampleModel> model = OutOfSampleModel::Fit(
      split.train, fitted->labels, fitted->view_weights);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  StatusOr<std::vector<std::size_t>> predicted = model->Predict(split.test);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  ASSERT_EQ(predicted->size(), split.test.NumSamples());
  // The extension must carry the clustering to unseen points.
  auto test_acc = eval::ClusteringAccuracy(*predicted, split.test.labels);
  ASSERT_TRUE(test_acc.ok());
  EXPECT_GT(*test_acc, 0.85);
}

TEST(OutOfSampleTest, PredictingTrainingPointsReproducesLabelsMostly) {
  Split split = MakeSplit(81);
  std::vector<double> uniform(split.train.NumViews(),
                              1.0 / split.train.NumViews());
  StatusOr<OutOfSampleModel> model =
      OutOfSampleModel::Fit(split.train, split.train.labels, uniform);
  ASSERT_TRUE(model.ok());
  StatusOr<std::vector<std::size_t>> predicted = model->Predict(split.train);
  ASSERT_TRUE(predicted.ok());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < predicted->size(); ++i) {
    agree += (*predicted)[i] == split.train.labels[i];
  }
  EXPECT_GT(static_cast<double>(agree) / predicted->size(), 0.95);
}

TEST(OutOfSampleTest, RejectsMismatchedBatches) {
  Split split = MakeSplit(82);
  std::vector<double> uniform(2, 0.5);
  StatusOr<OutOfSampleModel> model =
      OutOfSampleModel::Fit(split.train, split.train.labels, uniform);
  ASSERT_TRUE(model.ok());

  data::MultiViewDataset wrong_views;
  wrong_views.views.push_back(split.test.views[0]);
  EXPECT_FALSE(model->Predict(wrong_views).ok());

  data::MultiViewDataset wrong_dims = split.test;
  wrong_dims.views[1] = la::Matrix(split.test.NumSamples(), 3);
  EXPECT_FALSE(model->Predict(wrong_dims).ok());
}

TEST(OutOfSampleTest, FitValidatesInputs) {
  Split split = MakeSplit(83);
  std::vector<double> uniform(2, 0.5);
  std::vector<std::size_t> short_labels(5, 0);
  EXPECT_FALSE(OutOfSampleModel::Fit(split.train, short_labels, uniform).ok());
  std::vector<double> bad_weights{0.5, -0.5};
  EXPECT_FALSE(
      OutOfSampleModel::Fit(split.train, split.train.labels, bad_weights).ok());
  std::vector<double> wrong_count{1.0};
  EXPECT_FALSE(
      OutOfSampleModel::Fit(split.train, split.train.labels, wrong_count).ok());
  OutOfSampleOptions options;
  options.knn = 0;
  EXPECT_FALSE(OutOfSampleModel::Fit(split.train, split.train.labels, uniform,
                                     options)
                   .ok());
}

// The anchor-mode serving path: FitAnchor wraps the model of a completed
// anchor solve, and Predict assigns new points through anchors only (never
// the training rows). Re-predicting the TRAINING set must reproduce the
// training labels — the prediction chain (s-sparse anchor row → anchor_map
// → assignment argmax) is the same chain the solver used to label them.
TEST(OutOfSampleTest, AnchorModelReproducesTrainingLabels) {
  Split split = MakeSplit(84);
  UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 5;
  options.anchors.enabled = true;
  options.anchors.num_anchors = 32;
  options.anchors.anchor_neighbors = 5;
  StatusOr<AnchorUnifiedResult> fitted =
      SolveUnifiedAnchors(split.train, options);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  auto train_acc =
      eval::ClusteringAccuracy(fitted->result.labels, split.train.labels);
  ASSERT_TRUE(train_acc.ok());
  ASSERT_GT(*train_acc, 0.9);

  StatusOr<OutOfSampleModel> model = OutOfSampleModel::FitAnchor(fitted->model);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->num_clusters(), 3u);

  StatusOr<std::vector<std::size_t>> replayed = model->Predict(split.train);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(*replayed, fitted->result.labels);

  // And it generalizes: held-out points land in the right clusters.
  StatusOr<std::vector<std::size_t>> predicted = model->Predict(split.test);
  ASSERT_TRUE(predicted.ok());
  auto test_acc = eval::ClusteringAccuracy(*predicted, split.test.labels);
  ASSERT_TRUE(test_acc.ok());
  EXPECT_GT(*test_acc, 0.85);
}

TEST(OutOfSampleTest, FitAnchorValidatesTheModel) {
  Split split = MakeSplit(85);
  UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 5;
  options.anchors.enabled = true;
  options.anchors.num_anchors = 24;
  StatusOr<AnchorUnifiedResult> fitted =
      SolveUnifiedAnchors(split.train, options);
  ASSERT_TRUE(fitted.ok());

  AnchorModel empty;
  EXPECT_FALSE(OutOfSampleModel::FitAnchor(empty).ok());

  AnchorModel bad_dims = fitted->model;
  bad_dims.assignment = la::Matrix(3, 3);
  EXPECT_FALSE(OutOfSampleModel::FitAnchor(bad_dims).ok());

  AnchorModel bad_neighbors = fitted->model;
  bad_neighbors.anchor_neighbors = 0;
  EXPECT_FALSE(OutOfSampleModel::FitAnchor(bad_neighbors).ok());

  // Batch shape mismatches are caught by the anchor Predict too.
  StatusOr<OutOfSampleModel> model = OutOfSampleModel::FitAnchor(fitted->model);
  ASSERT_TRUE(model.ok());
  data::MultiViewDataset wrong_views;
  wrong_views.views.push_back(split.test.views[0]);
  EXPECT_FALSE(model->Predict(wrong_views).ok());
  data::MultiViewDataset wrong_dims = split.test;
  wrong_dims.views[1] = la::Matrix(split.test.NumSamples(), 3);
  EXPECT_FALSE(model->Predict(wrong_dims).ok());
}

}  // namespace
}  // namespace umvsc::mvsc
