#include <algorithm>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "mvsc/amgl.h"
#include "mvsc/baselines.h"
#include "mvsc/coreg.h"
#include "mvsc/graphs.h"
#include "mvsc/two_stage.h"

namespace umvsc::mvsc {
namespace {

struct TestProblem {
  data::MultiViewDataset dataset;
  MultiViewGraphs graphs;
};

TestProblem MakeProblem(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 150;
  config.num_clusters = 3;
  config.views = {{12, data::ViewQuality::kInformative, 0.4},
                  {8, data::ViewQuality::kWeak, 1.0},
                  {10, data::ViewQuality::kNoisy, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto dataset = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(dataset.ok(), "dataset generation failed");
  auto graphs = BuildGraphs(*dataset);
  UMVSC_CHECK(graphs.ok(), "graph construction failed");
  return {std::move(*dataset), std::move(*graphs)};
}

double Accuracy(const std::vector<std::size_t>& pred,
                const std::vector<std::size_t>& truth) {
  auto acc = eval::ClusteringAccuracy(pred, truth);
  UMVSC_CHECK(acc.ok(), "accuracy computation failed");
  return *acc;
}

TEST(TwoStageTest, RecoversClustersAndDownweightsNoise) {
  TestProblem problem = MakeProblem(40);
  TwoStageOptions options;
  options.num_clusters = 3;
  options.seed = 1;
  StatusOr<TwoStageResult> result = TwoStageMVSC(problem.graphs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.9);
  EXPECT_LT(result->view_weights[2], result->view_weights[0]);
  EXPECT_GE(result->iterations, 1u);
}

TEST(TwoStageTest, AllWeightingsRun) {
  TestProblem problem = MakeProblem(41);
  for (auto mode : {ViewWeighting::kGammaPower, ViewWeighting::kAmgl,
                    ViewWeighting::kUniform}) {
    TwoStageOptions options;
    options.num_clusters = 3;
    options.weighting = mode;
    options.seed = 2;
    StatusOr<TwoStageResult> result = TwoStageMVSC(problem.graphs, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.85);
  }
}

TEST(TwoStageTest, RejectsInvalidOptions) {
  TestProblem problem = MakeProblem(42);
  TwoStageOptions options;
  options.num_clusters = 1;
  EXPECT_FALSE(TwoStageMVSC(problem.graphs, options).ok());
  options.num_clusters = 3;
  options.gamma = 0.5;
  EXPECT_FALSE(TwoStageMVSC(problem.graphs, options).ok());
  EXPECT_FALSE(TwoStageMVSC(MultiViewGraphs{}, TwoStageOptions{}).ok());
}

TEST(AmglTest, ParameterFreeBaselineWorks) {
  TestProblem problem = MakeProblem(43);
  AmglOptions options;
  options.num_clusters = 3;
  options.seed = 3;
  StatusOr<AmglResult> result = Amgl(problem.graphs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(Accuracy(result->labels, problem.dataset.labels), 0.9);
  // Self-weights form a distribution and punish the noisy view.
  double total = 0.0;
  for (double w : result->view_weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LT(result->view_weights[2], result->view_weights[0]);
}

TEST(CoRegTest, ConsensusBeatsWorstView) {
  TestProblem problem = MakeProblem(44);
  CoRegOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  StatusOr<CoRegResult> result = CoRegSpectral(problem.graphs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double coreg_acc = Accuracy(result->labels, problem.dataset.labels);
  EXPECT_GT(coreg_acc, 0.85);

  BaselineOptions base;
  base.num_clusters = 3;
  base.seed = 4;
  StatusOr<std::vector<std::vector<std::size_t>>> per_view =
      PerViewSpectral(problem.graphs, base);
  ASSERT_TRUE(per_view.ok());
  double worst = 1.0;
  for (const auto& labels : *per_view) {
    worst = std::min(worst, Accuracy(labels, problem.dataset.labels));
  }
  EXPECT_GT(coreg_acc, worst);
  EXPECT_EQ(result->view_embeddings.size(), 3u);
}

TEST(CoRegTest, LambdaZeroStillRuns) {
  TestProblem problem = MakeProblem(45);
  CoRegOptions options;
  options.num_clusters = 3;
  options.lambda = 0.0;
  options.max_iterations = 3;
  StatusOr<CoRegResult> result = CoRegSpectral(problem.graphs, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(CoRegTest, RejectsInvalidOptions) {
  TestProblem problem = MakeProblem(46);
  CoRegOptions options;
  options.num_clusters = 3;
  options.lambda = -0.5;
  EXPECT_FALSE(CoRegSpectral(problem.graphs, options).ok());
}

TEST(PerViewSpectralTest, InformativeViewBeatsNoisyView) {
  TestProblem problem = MakeProblem(47);
  BaselineOptions options;
  options.num_clusters = 3;
  options.seed = 5;
  StatusOr<std::vector<std::vector<std::size_t>>> per_view =
      PerViewSpectral(problem.graphs, options);
  ASSERT_TRUE(per_view.ok());
  ASSERT_EQ(per_view->size(), 3u);
  const double informative = Accuracy((*per_view)[0], problem.dataset.labels);
  const double noisy = Accuracy((*per_view)[2], problem.dataset.labels);
  EXPECT_GT(informative, 0.9);
  EXPECT_GT(informative, noisy + 0.2);
}

TEST(ConcatAndKernelBaselinesTest, ReasonableAccuracy) {
  TestProblem problem = MakeProblem(48);
  BaselineOptions options;
  options.num_clusters = 3;
  options.seed = 6;
  StatusOr<std::vector<std::size_t>> concat =
      ConcatFeatureSC(problem.dataset, options);
  ASSERT_TRUE(concat.ok()) << concat.status().ToString();
  EXPECT_GT(Accuracy(*concat, problem.dataset.labels), 0.6);

  StatusOr<std::vector<std::size_t>> kernel_add =
      KernelAdditionSC(problem.graphs, options);
  ASSERT_TRUE(kernel_add.ok());
  EXPECT_GT(Accuracy(*kernel_add, problem.dataset.labels), 0.6);

  StatusOr<std::vector<std::size_t>> km =
      ConcatKMeans(problem.dataset, options);
  ASSERT_TRUE(km.ok());
  EXPECT_GT(Accuracy(*km, problem.dataset.labels), 0.5);
}

TEST(BaselinesTest, EmptyGraphsRejected) {
  BaselineOptions options;
  options.num_clusters = 2;
  EXPECT_FALSE(PerViewSpectral(MultiViewGraphs{}, options).ok());
  EXPECT_FALSE(KernelAdditionSC(MultiViewGraphs{}, options).ok());
  EXPECT_FALSE(ConcatFeatureSC(data::MultiViewDataset{}, options).ok());
  EXPECT_FALSE(ConcatKMeans(data::MultiViewDataset{}, options).ok());
}

}  // namespace
}  // namespace umvsc::mvsc
