#include "la/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

TEST(OpsTest, MatMulKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = MatMul(a, b);
  Matrix expected{{19.0, 22.0}, {43.0, 50.0}};
  EXPECT_TRUE(AlmostEqual(c, expected, 1e-14));
}

TEST(OpsTest, MatMulIdentityIsNoop) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(7, 5, rng);
  EXPECT_TRUE(AlmostEqual(MatMul(Matrix::Identity(7), a), a, 1e-14));
  EXPECT_TRUE(AlmostEqual(MatMul(a, Matrix::Identity(5)), a, 1e-14));
}

TEST(OpsTest, MatMulBlockedMatchesNaiveOnLargeSizes) {
  // Exercise the blocking logic past the 64-wide block edge.
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(130, 70, rng);
  Matrix b = Matrix::RandomGaussian(70, 95, rng);
  Matrix c = MatMul(a, b);
  // Naive reference.
  Matrix ref(130, 95);
  for (std::size_t i = 0; i < 130; ++i) {
    for (std::size_t j = 0; j < 95; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 70; ++k) s += a(i, k) * b(k, j);
      ref(i, j) = s;
    }
  }
  EXPECT_TRUE(AlmostEqual(c, ref, 1e-10));
}

TEST(OpsTest, TransposedProductsMatchExplicitTranspose) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(20, 8, rng);
  Matrix b = Matrix::RandomGaussian(20, 6, rng);
  EXPECT_TRUE(AlmostEqual(MatTMul(a, b), MatMul(Transpose(a), b), 1e-12));

  Matrix c = Matrix::RandomGaussian(9, 8, rng);
  EXPECT_TRUE(AlmostEqual(MatMulT(a, c), MatMul(a, Transpose(c)), 1e-12));
}

TEST(OpsTest, MatVecAndMatTVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector x{1.0, -1.0};
  Vector y = MatVec(a, x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);

  Vector z{1.0, 0.0, -1.0};
  Vector w = MatTVec(a, z);
  EXPECT_DOUBLE_EQ(w[0], -4.0);
  EXPECT_DOUBLE_EQ(w[1], -4.0);
}

TEST(OpsTest, TransposeInvolution) {
  Rng rng(4);
  Matrix a = Matrix::RandomGaussian(6, 11, rng);
  EXPECT_TRUE(AlmostEqual(Transpose(Transpose(a)), a, 0.0));
}

TEST(OpsTest, GramMatchesDefinition) {
  Rng rng(5);
  Matrix a = Matrix::RandomGaussian(12, 5, rng);
  EXPECT_TRUE(AlmostEqual(Gram(a), MatMul(Transpose(a), a), 1e-12));
  EXPECT_TRUE(Gram(a).IsSymmetric(1e-14));
  EXPECT_TRUE(AlmostEqual(OuterGram(a), MatMul(a, Transpose(a)), 1e-12));
}

TEST(OpsTest, TraceOfProductMatchesTraceOfMatMul) {
  Rng rng(6);
  Matrix a = Matrix::RandomGaussian(7, 7, rng);
  Matrix b = Matrix::RandomGaussian(7, 7, rng);
  // Tr(AᵀB) via elementwise sum must equal Tr of the explicit product.
  EXPECT_NEAR(TraceOfProduct(a, b), MatMul(Transpose(a), b).Trace(), 1e-10);
}

TEST(OpsTest, QuadraticTraceMatchesExplicitProduct) {
  Matrix l = test::RandomSymmetric(9, 7);
  Rng rng(8);
  Matrix f = Matrix::RandomGaussian(9, 3, rng);
  double direct = MatMul(Transpose(f), MatMul(l, f)).Trace();
  EXPECT_NEAR(QuadraticTrace(l, f), direct, 1e-10);
}

TEST(OpsTest, HadamardAndAdd) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{2.0, 0.5}, {1.0, -1.0}};
  Matrix h = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 1), -4.0);
  Matrix s = Add(a, b, 2.0);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(OpsTest, HConcat) {
  Matrix a{{1.0}, {2.0}};
  Matrix b{{3.0, 4.0}, {5.0, 6.0}};
  Matrix c = HConcat({a, b});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 2), 6.0);
}

TEST(OpsTest, OrthonormalityErrorDetectsDeviation) {
  EXPECT_NEAR(OrthonormalityError(Matrix::Identity(4)), 0.0, 1e-15);
  Matrix skew = Matrix::Identity(4);
  skew(0, 0) = 2.0;
  EXPECT_NEAR(OrthonormalityError(skew), 3.0, 1e-15);
}

TEST(OpsDeathTest, DimensionMismatchesAbort) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH(MatMul(a, b), "dimension mismatch");
  Vector x(2);
  EXPECT_DEATH(MatVec(a, x), "dimension mismatch");
}

}  // namespace
}  // namespace umvsc::la
