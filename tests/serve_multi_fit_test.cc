// Tests of the executor-backed multi-tenant fit: every tenant's model
// lands in the registry, predictions are bitwise identical to a serial
// one-at-a-time fit at every worker count, and a broken tenant reports its
// failure without touching its siblings.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "exec/executor.h"
#include "mvsc/graphs.h"
#include "mvsc/out_of_sample.h"
#include "mvsc/unified.h"
#include "serve/multi_fit.h"
#include "serve/registry.h"

namespace umvsc::serve {
namespace {

data::MultiViewDataset TestDataset(std::uint64_t seed) {
  StatusOr<data::MultiViewDataset> dataset =
      data::SimulateBenchmark("MSRC-v1", seed, /*scale=*/0.25);
  EXPECT_TRUE(dataset.ok());
  return std::move(*dataset);
}

TenantFitSpec SpecFor(const std::string& id,
                      const data::MultiViewDataset& training, double beta) {
  TenantFitSpec spec;
  spec.model_id = id;
  spec.training = &training;
  spec.unified.num_clusters = training.NumClusters();
  spec.unified.beta = beta;
  spec.unified.seed = 7;
  return spec;
}

std::vector<std::size_t> SerialFitPredict(
    const data::MultiViewDataset& training, double beta,
    const data::MultiViewDataset& batch) {
  mvsc::UnifiedOptions options;
  options.num_clusters = training.NumClusters();
  options.beta = beta;
  options.seed = 7;
  StatusOr<mvsc::UnifiedResult> solved =
      mvsc::UnifiedMVSC(options).Run(training, mvsc::GraphOptions());
  EXPECT_TRUE(solved.ok());
  StatusOr<mvsc::OutOfSampleModel> model = mvsc::OutOfSampleModel::Fit(
      training, solved->labels, solved->view_weights);
  EXPECT_TRUE(model.ok());
  StatusOr<std::vector<std::size_t>> labels = model->Predict(batch);
  EXPECT_TRUE(labels.ok());
  return *labels;
}

TEST(MultiFitTest, FitsEveryTenantAndInstallsInRegistry) {
  const data::MultiViewDataset training_a = TestDataset(1);
  const data::MultiViewDataset training_b = TestDataset(2);
  exec::JobExecutor::Options options;
  options.num_workers = 2;
  exec::JobExecutor executor(options);
  ModelRegistry registry;
  std::vector<TenantFitSpec> specs = {SpecFor("tenant-a", training_a, 1.0),
                                      SpecFor("tenant-b", training_b, 0.1)};
  const std::vector<TenantFitReport> reports =
      FitTenantModels(executor, specs, &registry);
  ASSERT_EQ(reports.size(), 2u);
  for (const TenantFitReport& report : reports) {
    EXPECT_TRUE(report.status.ok()) << report.model_id << ": "
                                    << report.status.ToString();
  }
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.Get("tenant-a").ok());
  EXPECT_TRUE(registry.Get("tenant-b").ok());
}

TEST(MultiFitTest, ModelsMatchSerialFitsBitwiseAtEveryWorkerCount) {
  const data::MultiViewDataset training_a = TestDataset(1);
  const data::MultiViewDataset training_b = TestDataset(2);
  const data::MultiViewDataset probe = TestDataset(3);
  const std::vector<std::size_t> serial_a =
      SerialFitPredict(training_a, 1.0, probe);
  const std::vector<std::size_t> serial_b =
      SerialFitPredict(training_b, 0.1, probe);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    exec::JobExecutor::Options options;
    options.num_workers = workers;
    exec::JobExecutor executor(options);
    ModelRegistry registry;
    // Reversed submission order relative to the serial loop, on purpose.
    std::vector<TenantFitSpec> specs = {SpecFor("b", training_b, 0.1),
                                        SpecFor("a", training_a, 1.0)};
    const std::vector<TenantFitReport> reports =
        FitTenantModels(executor, specs, &registry);
    for (const TenantFitReport& report : reports) {
      ASSERT_TRUE(report.status.ok()) << report.status.ToString();
    }
    StatusOr<ModelHandle> model_a = registry.Get("a");
    StatusOr<ModelHandle> model_b = registry.Get("b");
    ASSERT_TRUE(model_a.ok());
    ASSERT_TRUE(model_b.ok());
    StatusOr<std::vector<std::size_t>> labels_a = (*model_a)->Predict(probe);
    StatusOr<std::vector<std::size_t>> labels_b = (*model_b)->Predict(probe);
    ASSERT_TRUE(labels_a.ok());
    ASSERT_TRUE(labels_b.ok());
    EXPECT_EQ(*labels_a, serial_a) << "workers " << workers;
    EXPECT_EQ(*labels_b, serial_b) << "workers " << workers;
  }
}

TEST(MultiFitTest, FailedTenantReportsWithoutPoisoningSiblings) {
  const data::MultiViewDataset training = TestDataset(1);
  exec::JobExecutor executor;
  ModelRegistry registry;
  TenantFitSpec broken;  // no training dataset
  broken.model_id = "broken";
  std::vector<TenantFitSpec> specs = {broken,
                                      SpecFor("healthy", training, 1.0)};
  const std::vector<TenantFitReport> reports =
      FitTenantModels(executor, specs, &registry);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(reports[0].status.ok());
  EXPECT_EQ(reports[0].model_id, "broken");
  EXPECT_TRUE(reports[1].status.ok()) << reports[1].status.ToString();
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.Get("healthy").ok());
  EXPECT_FALSE(registry.Get("broken").ok());
}

}  // namespace
}  // namespace umvsc::serve
