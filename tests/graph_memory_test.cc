// Allocation regression test for the tiled graph construction: building a
// kNN graph straight from features must never allocate an n × n buffer.
// Global operator new/delete are overridden IN THIS BINARY ONLY to track the
// largest single allocation made while tracking is enabled; the dense
// pipeline is measured alongside as a positive control that the hook sees
// n²-sized buffers when they do happen.
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/distance.h"
#include "graph/knn_graph.h"

namespace {

std::atomic<bool> g_track{false};
std::atomic<std::size_t> g_max_alloc{0};

void Record(std::size_t size) {
  if (!g_track.load(std::memory_order_relaxed)) return;
  std::size_t prev = g_max_alloc.load(std::memory_order_relaxed);
  while (size > prev &&
         !g_max_alloc.compare_exchange_weak(prev, size,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

void* operator new(std::size_t size) {
  Record(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  Record(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  Record(size);
  void* p = nullptr;
  const std::size_t a = static_cast<std::size_t>(align);
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace umvsc::graph {
namespace {

la::Matrix GaussianFeatures(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.Gaussian();
  }
  return x;
}

class AllocationScope {
 public:
  AllocationScope() {
    g_max_alloc.store(0, std::memory_order_relaxed);
    g_track.store(true, std::memory_order_relaxed);
  }
  ~AllocationScope() { g_track.store(false, std::memory_order_relaxed); }
  std::size_t max_single_allocation() const {
    return g_max_alloc.load(std::memory_order_relaxed);
  }
};

TEST(GraphMemoryTest, TiledBuildNeverAllocatesAQuadraticBuffer) {
  const std::size_t n = 1024;
  const std::size_t k = 10;
  la::Matrix x = GaussianFeatures(n, 8, 3);
  const std::size_t quadratic = n * n * sizeof(double);

  std::size_t tiled_peak = 0;
  {
    AllocationScope scope;
    StatusOr<la::CsrMatrix> w = BuildKnnGraphFromFeatures(x, k);
    tiled_peak = scope.max_single_allocation();
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(w->IsSymmetric(1e-12));
  }
  // The largest buffer the tiled path may hold is a per-thread
  // tile_rows × n panel (default 128 rows: 1 MB at n = 1024) plus O(n·k)
  // output arrays — nothing within a factor 2 of n² doubles.
  EXPECT_LT(tiled_peak, quadratic / 2)
      << "tiled build allocated " << tiled_peak << " bytes in one block";

  // Positive control: the dense distance matrix IS an n × n allocation, so
  // a silently broken hook cannot fake the assertion above.
  std::size_t dense_peak = 0;
  {
    AllocationScope scope;
    la::Matrix d2 = PairwiseSquaredDistances(x);
    dense_peak = scope.max_single_allocation();
    ASSERT_EQ(d2.rows(), n);
  }
  EXPECT_GE(dense_peak, quadratic);
}

TEST(GraphMemoryTest, AdaptiveTiledBuildStaysSubquadratic) {
  const std::size_t n = 768;
  la::Matrix x = GaussianFeatures(n, 6, 5);
  std::size_t peak = 0;
  {
    AllocationScope scope;
    StatusOr<la::CsrMatrix> w = AdaptiveNeighborGraphFromFeatures(x, 9);
    peak = scope.max_single_allocation();
    ASSERT_TRUE(w.ok());
  }
  EXPECT_LT(peak, n * n * sizeof(double) / 2);
}

}  // namespace
}  // namespace umvsc::graph
