// Tests of the per-worker bump arena: alignment, geometric growth, the
// Reset-retains-blocks contract (the steady-state zero-allocation claim of
// the executor's packing story), Release, and the footprint statistics.

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "exec/arena.h"

namespace umvsc::exec {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.Allocate(13, 8);
  void* b = arena.Allocate(64, 64);
  void* c = arena.Allocate(1, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Writes to one allocation must not clobber another.
  std::memset(a, 0xAA, 13);
  std::memset(b, 0xBB, 64);
  std::memset(c, 0xCC, 1);
  EXPECT_EQ(static_cast<unsigned char*>(a)[12], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[63], 0xBB);
}

TEST(ArenaTest, NewReturnsTypedUsableArray) {
  Arena arena;
  double* values = arena.New<double>(256);
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(values) % alignof(double), 0u);
  for (std::size_t i = 0; i < 256; ++i) values[i] = static_cast<double>(i);
  EXPECT_EQ(values[255], 255.0);
  EXPECT_EQ(arena.New<double>(0), nullptr);
}

TEST(ArenaTest, GrowsBeyondFirstBlock) {
  Arena arena(/*first_block_bytes=*/64);
  // Far more than one block's worth; earlier pointers must stay valid.
  unsigned char* first = arena.New<unsigned char>(48);
  first[0] = 7;
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(arena.Allocate(100), nullptr);
  }
  EXPECT_EQ(first[0], 7);  // growth appends blocks, never reallocates
  EXPECT_GE(arena.reserved_bytes(), 100u * 100u);
}

TEST(ArenaTest, ResetRetainsBlocksSoSteadyStateReservesNothingNew) {
  Arena arena(/*first_block_bytes=*/128);
  auto run_job = [&arena] {
    for (int i = 0; i < 20; ++i) arena.Allocate(1000);
  };
  run_job();
  const std::size_t reserved_after_first = arena.reserved_bytes();
  EXPECT_GT(reserved_after_first, 0u);
  for (int job = 0; job < 5; ++job) {
    arena.Reset();
    run_job();
    // The steady-state contract: identical per-job shapes re-fill the
    // retained blocks and never reserve another byte.
    EXPECT_EQ(arena.reserved_bytes(), reserved_after_first);
  }
}

TEST(ArenaTest, ReleaseDropsEverything) {
  Arena arena;
  arena.Allocate(1 << 12);
  EXPECT_GT(arena.reserved_bytes(), 0u);
  arena.Release();
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  // Still usable after a Release.
  EXPECT_NE(arena.Allocate(64), nullptr);
  EXPECT_GT(arena.reserved_bytes(), 0u);
}

TEST(ArenaTest, StatisticsTrackHighWaterAndLifetimeTraffic) {
  Arena arena(/*first_block_bytes=*/128);
  arena.Allocate(100);
  arena.Allocate(100);
  const std::size_t high_water = arena.high_water_bytes();
  EXPECT_GE(high_water, 200u);
  arena.Reset();
  arena.Allocate(50);
  // High water is across Resets; lifetime keeps accumulating.
  EXPECT_EQ(arena.high_water_bytes(), high_water);
  EXPECT_GE(arena.lifetime_bytes(), 250u);
}

}  // namespace
}  // namespace umvsc::exec
