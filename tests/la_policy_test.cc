// Tests of the measured eigensolver auto-policy: resolution order, the
// shape rules, and — the property everything above the la layer leans on —
// that the two paths the policy switches between produce identical
// partitions, so the policy can only ever change wall time.

#include <cstdlib>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/lanczos.h"
#include "mvsc/unified.h"

namespace umvsc {
namespace {

TEST(EigensolvePolicyTest, CalibrationProducesFullProbeGrid) {
  const la::EigensolvePolicy& policy = la::EigensolvePolicy::Get();
  ASSERT_EQ(policy.probes().size(), 4u);
  for (const la::EigensolvePolicy::Probe& probe : policy.probes()) {
    EXPECT_GT(probe.n, 0u);
    EXPECT_GT(probe.c, 0u);
    EXPECT_GT(probe.block_seconds, 0.0);
    EXPECT_GT(probe.single_seconds, 0.0);
  }
}

TEST(EigensolvePolicyTest, ShapeRulesBypassInterpolation) {
  const la::EigensolvePolicy& policy = la::EigensolvePolicy::Get();
  // k == 1: a width-1 panel is the single-vector iteration plus overhead.
  EXPECT_FALSE(policy.PreferBlock(100, 1));
  EXPECT_FALSE(policy.PreferBlock(100000, 1));
  // k >= 16: wide panels win regardless of the probe timings (ORL-like).
  EXPECT_TRUE(policy.PreferBlock(100, 16));
  EXPECT_TRUE(policy.PreferBlock(400, 40));
}

TEST(EigensolvePolicyTest, ResolveNeverReturnsAuto) {
  for (const std::size_t n : {50u, 200u, 2000u}) {
    for (const std::size_t k : {1u, 5u, 40u}) {
      const la::EigensolveMode mode =
          la::ResolveEigensolveMode(la::EigensolveMode::kAuto, n, k);
      EXPECT_NE(mode, la::EigensolveMode::kAuto);
    }
  }
}

TEST(EigensolvePolicyTest, ExplicitRequestWins) {
  EXPECT_EQ(la::ResolveEigensolveMode(la::EigensolveMode::kForceBlock, 10, 1),
            la::EigensolveMode::kForceBlock);
  EXPECT_EQ(
      la::ResolveEigensolveMode(la::EigensolveMode::kForceSingle, 400, 40),
      la::EigensolveMode::kForceSingle);
}

TEST(EigensolvePolicyTest, ScopedOverrideBeatsExplicitRequest) {
  {
    la::ScopedEigensolveMode scope(la::EigensolveMode::kForceSingle);
    EXPECT_EQ(la::ResolveEigensolveMode(la::EigensolveMode::kForceBlock, 400,
                                        40),
              la::EigensolveMode::kForceSingle);
  }
  // The override dies with the scope.
  EXPECT_EQ(la::ResolveEigensolveMode(la::EigensolveMode::kForceBlock, 400,
                                      40),
            la::EigensolveMode::kForceBlock);
}

TEST(EigensolvePolicyTest, EnvironmentVariableBeatsPolicy) {
  ASSERT_EQ(setenv("UMVSC_EIGENSOLVER", "block", 1), 0);
  EXPECT_EQ(la::ResolveEigensolveMode(la::EigensolveMode::kAuto, 100, 1),
            la::EigensolveMode::kForceBlock);
  ASSERT_EQ(setenv("UMVSC_EIGENSOLVER", "single", 1), 0);
  EXPECT_EQ(la::ResolveEigensolveMode(la::EigensolveMode::kAuto, 400, 40),
            la::EigensolveMode::kForceSingle);
  ASSERT_EQ(unsetenv("UMVSC_EIGENSOLVER"), 0);
}

TEST(EigensolvePolicyTest, AutoDispatchMatchesForcedPathBitwise) {
  // The auto entry points must be pure routers: under a pinned mode they
  // reproduce the corresponding direct solver bit for bit.
  data::MultiViewConfig config;
  config.num_samples = 90;
  config.num_clusters = 3;
  config.views = {{10, data::ViewQuality::kInformative, 0.4}};
  config.cluster_separation = 5.0;
  config.seed = 5;
  auto dataset = data::MakeGaussianMultiView(config);
  ASSERT_TRUE(dataset.ok());
  auto graphs = mvsc::BuildGraphs(*dataset);
  ASSERT_TRUE(graphs.ok());
  const la::CsrMatrix& lap = graphs->laplacians[0];

  la::LanczosOptions options;
  options.tolerance = 3e-6;
  for (const la::EigensolveMode mode :
       {la::EigensolveMode::kForceBlock, la::EigensolveMode::kForceSingle}) {
    StatusOr<la::SymEigenResult> via_auto =
        la::LanczosSmallestAuto(lap, 3, 2.0 + 1e-9, options, mode);
    StatusOr<la::SymEigenResult> direct =
        mode == la::EigensolveMode::kForceBlock
            ? la::BlockLanczosSmallest(lap, 3, 2.0 + 1e-9, options)
            : la::LanczosSmallest(lap, 3, 2.0 + 1e-9, options);
    ASSERT_TRUE(via_auto.ok()) << via_auto.status().ToString();
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(via_auto->eigenvalues[j], direct->eigenvalues[j]);
    }
    for (std::size_t i = 0; i < via_auto->eigenvectors.size(); ++i) {
      ASSERT_EQ(via_auto->eigenvectors.data()[i],
                direct->eigenvectors.data()[i]);
    }
  }
}

// Forced-block and forced-single runs of the full solver must land on the
// SAME partition (ARI exactly 1.0) — the guarantee that lets the measured
// policy choose freely on wall-time grounds alone. Shapes mirror the small
// paper datasets (3-Sources-scale and a 3-cluster problem).
TEST(EigensolvePolicyTest, ForcedPathsProduceIdenticalPartitions) {
  struct Shape {
    std::size_t n;
    std::size_t c;
  };
  for (const Shape shape : {Shape{169, 6}, Shape{150, 3}}) {
    data::MultiViewConfig config;
    config.num_samples = shape.n;
    config.num_clusters = shape.c;
    config.views = {{12, data::ViewQuality::kInformative, 0.4},
                    {8, data::ViewQuality::kWeak, 1.0}};
    config.cluster_separation = 5.0;
    config.seed = 31;
    auto dataset = data::MakeGaussianMultiView(config);
    ASSERT_TRUE(dataset.ok());
    auto graphs = mvsc::BuildGraphs(*dataset);
    ASSERT_TRUE(graphs.ok());

    mvsc::UnifiedOptions options;
    options.num_clusters = shape.c;
    options.seed = 11;

    options.block_lanczos = la::EigensolveMode::kForceBlock;
    StatusOr<mvsc::UnifiedResult> block =
        mvsc::UnifiedMVSC(options).Run(*graphs);
    ASSERT_TRUE(block.ok()) << block.status().ToString();

    options.block_lanczos = la::EigensolveMode::kForceSingle;
    StatusOr<mvsc::UnifiedResult> single =
        mvsc::UnifiedMVSC(options).Run(*graphs);
    ASSERT_TRUE(single.ok()) << single.status().ToString();

    StatusOr<double> ari =
        eval::AdjustedRandIndex(block->labels, single->labels);
    ASSERT_TRUE(ari.ok());
    EXPECT_DOUBLE_EQ(*ari, 1.0)
        << "paths diverged at n=" << shape.n << " c=" << shape.c;
  }
}

}  // namespace
}  // namespace umvsc
