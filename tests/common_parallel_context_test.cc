// Tests of the per-thread ParallelContext — the two-level scheduling
// primitive: an installed budget caps the regions of THIS thread only,
// nests with scope-restore semantics, can be suspended, and never leaks to
// other threads the way SetDefaultNumThreads would.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace umvsc {
namespace {

// Number of spans a region fans out into = number of fn invocations for a
// many-chunk grain-1 range.
std::size_t CountSpans(std::size_t range, std::size_t num_threads = 0) {
  std::atomic<std::size_t> spans{0};
  ParallelFor(
      0, range, 1,
      [&spans](std::size_t, std::size_t) { spans.fetch_add(1); },
      num_threads);
  return spans.load();
}

TEST(ParallelContextTest, NoContextInstalledByDefault) {
  EXPECT_EQ(CurrentParallelContext(), nullptr);
}

TEST(ParallelContextTest, InstalledBudgetCapsRegionFanOut) {
  const ScopedParallelContext budget(ParallelContext{2});
  ASSERT_NE(CurrentParallelContext(), nullptr);
  EXPECT_EQ(CurrentParallelContext()->num_threads, 2u);
  EXPECT_EQ(CountSpans(16), 2u);
}

TEST(ParallelContextTest, BudgetOneMeansSerial) {
  const ScopedParallelContext budget(ParallelContext{1});
  EXPECT_EQ(CountSpans(16), 1u);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelContextTest, ExplicitPerCallCountOverridesContext) {
  const ScopedParallelContext budget(ParallelContext{1});
  EXPECT_EQ(CountSpans(16, /*num_threads=*/3), 3u);
}

TEST(ParallelContextTest, ZeroBudgetFallsThroughToProcessDefault) {
  const ScopedNumThreads process_default(3);
  const ScopedParallelContext budget(ParallelContext{0});
  EXPECT_EQ(CountSpans(16), 3u);
}

TEST(ParallelContextTest, ScopesNestAndRestoreTheirPredecessor) {
  EXPECT_EQ(CurrentParallelContext(), nullptr);
  {
    const ScopedParallelContext outer(ParallelContext{4});
    EXPECT_EQ(CurrentParallelContext()->num_threads, 4u);
    {
      const ScopedParallelContext inner(ParallelContext{2});
      EXPECT_EQ(CurrentParallelContext()->num_threads, 2u);
      EXPECT_EQ(CountSpans(16), 2u);
    }
    EXPECT_EQ(CurrentParallelContext()->num_threads, 4u);
  }
  EXPECT_EQ(CurrentParallelContext(), nullptr);
}

TEST(ParallelContextTest, NullptrScopeSuspendsTheInstalledContext) {
  const ScopedNumThreads process_default(3);
  const ScopedParallelContext budget(ParallelContext{1});
  EXPECT_EQ(CountSpans(16), 1u);
  {
    // The calibration shape: once-per-process measurement must not be
    // skewed by whatever job budget happens to be installed.
    const ScopedParallelContext suspend(nullptr);
    EXPECT_EQ(CurrentParallelContext(), nullptr);
    EXPECT_EQ(CountSpans(16), 3u);
  }
  EXPECT_EQ(CurrentParallelContext()->num_threads, 1u);
}

TEST(ParallelContextTest, ContextIsPerThreadAndNeverLeaks) {
  const ScopedParallelContext budget(ParallelContext{2});
  const ParallelContext* other_thread_sees =
      &*CurrentParallelContext();  // placeholder, overwritten below
  std::size_t other_thread_spans = 0;
  std::thread other([&other_thread_sees, &other_thread_spans] {
    other_thread_sees = CurrentParallelContext();
    const ScopedNumThreads process_default(4);
    other_thread_spans = CountSpans(16);
  });
  other.join();
  // A fresh thread has no context — the installer's budget stayed local —
  // and resolves the process default instead.
  EXPECT_EQ(other_thread_sees, nullptr);
  EXPECT_EQ(other_thread_spans, 4u);
  EXPECT_EQ(CurrentParallelContext()->num_threads, 2u);
}

}  // namespace
}  // namespace umvsc
