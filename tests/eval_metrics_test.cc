#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace umvsc::eval {
namespace {

using Labels = std::vector<std::size_t>;

TEST(ContingencyTest, CountsPairs) {
  Labels pred{0, 0, 1, 1};
  Labels truth{0, 1, 1, 1};
  StatusOr<la::Matrix> table = ContingencyTable(pred, truth);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ((*table)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ((*table)(0, 1), 1.0);
  EXPECT_DOUBLE_EQ((*table)(1, 1), 2.0);
  EXPECT_DOUBLE_EQ((*table)(1, 0), 0.0);
}

TEST(ContingencyTest, RejectsBadInputs) {
  EXPECT_FALSE(ContingencyTable({}, {}).ok());
  EXPECT_FALSE(ContingencyTable({0, 1}, {0}).ok());
}

TEST(AccuracyTest, PerfectAndPermuted) {
  Labels truth{0, 0, 1, 1, 2, 2};
  StatusOr<double> same = ClusteringAccuracy(truth, truth);
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(*same, 1.0);
  // Permuted cluster ids are equivalent clusterings: accuracy must be 1.
  Labels permuted{2, 2, 0, 0, 1, 1};
  StatusOr<double> perm = ClusteringAccuracy(permuted, truth);
  ASSERT_TRUE(perm.ok());
  EXPECT_DOUBLE_EQ(*perm, 1.0);
}

TEST(AccuracyTest, KnownPartialMatch) {
  Labels truth{0, 0, 0, 1, 1, 1};
  Labels pred{0, 0, 1, 1, 1, 1};  // one point misplaced
  StatusOr<double> acc = ClusteringAccuracy(pred, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(*acc, 5.0 / 6.0, 1e-12);
}

TEST(AccuracyTest, DifferentClusterCounts) {
  // Predicted has 3 clusters, truth has 2: padding must handle it.
  Labels truth{0, 0, 1, 1};
  Labels pred{0, 1, 2, 2};
  StatusOr<double> acc = ClusteringAccuracy(pred, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(*acc, 0.75, 1e-12);
}

TEST(NmiTest, PerfectPermutedAndIndependent) {
  Labels truth{0, 0, 1, 1, 2, 2};
  Labels permuted{1, 1, 2, 2, 0, 0};
  StatusOr<double> perfect = NormalizedMutualInformation(permuted, truth);
  ASSERT_TRUE(perfect.ok());
  EXPECT_NEAR(*perfect, 1.0, 1e-12);

  // A constant labeling carries no information.
  Labels constant{0, 0, 0, 0, 0, 0};
  StatusOr<double> none = NormalizedMutualInformation(constant, truth);
  ASSERT_TRUE(none.ok());
  EXPECT_DOUBLE_EQ(*none, 0.0);
}

TEST(NmiTest, NormalizationsOrdered) {
  Labels truth{0, 0, 0, 1, 1, 2};
  Labels pred{0, 1, 0, 1, 1, 1};
  StatusOr<double> sqrt_nmi =
      NormalizedMutualInformation(pred, truth, NmiNormalization::kSqrt);
  StatusOr<double> max_nmi =
      NormalizedMutualInformation(pred, truth, NmiNormalization::kMax);
  StatusOr<double> arith_nmi =
      NormalizedMutualInformation(pred, truth, NmiNormalization::kArithmetic);
  ASSERT_TRUE(sqrt_nmi.ok() && max_nmi.ok() && arith_nmi.ok());
  // max-normalized NMI is the smallest; sqrt and arithmetic sit above it.
  EXPECT_LE(*max_nmi, *sqrt_nmi + 1e-12);
  EXPECT_LE(*max_nmi, *arith_nmi + 1e-12);
  EXPECT_GT(*max_nmi, 0.0);
  EXPECT_LT(*sqrt_nmi, 1.0);
}

TEST(NmiTest, SymmetricInArguments) {
  Labels a{0, 0, 1, 1, 2, 2, 0, 1};
  Labels b{0, 1, 1, 1, 2, 0, 0, 2};
  StatusOr<double> ab = NormalizedMutualInformation(a, b);
  StatusOr<double> ba = NormalizedMutualInformation(b, a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-12);
}

TEST(AriTest, PerfectIsOneRandomNearZero) {
  Labels truth{0, 0, 1, 1, 2, 2};
  StatusOr<double> perfect = AdjustedRandIndex(truth, truth);
  ASSERT_TRUE(perfect.ok());
  EXPECT_NEAR(*perfect, 1.0, 1e-12);

  // Independent random labelings have ARI concentrated near 0.
  Rng rng(80);
  const std::size_t n = 2000;
  Labels a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::size_t>(rng.UniformInt(4));
    b[i] = static_cast<std::size_t>(rng.UniformInt(4));
  }
  StatusOr<double> random = AdjustedRandIndex(a, b);
  ASSERT_TRUE(random.ok());
  EXPECT_NEAR(*random, 0.0, 0.05);
}

TEST(AriTest, KnownSklearnExample) {
  // sklearn doc example: ARI([0,0,1,2], [0,0,1,1]) = 0.571428…
  Labels truth{0, 0, 1, 1};
  Labels pred{0, 0, 1, 2};
  StatusOr<double> ari = AdjustedRandIndex(pred, truth);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.5714285714, 1e-9);
}

TEST(RandIndexTest, BoundsAndPerfection) {
  Labels truth{0, 1, 0, 1, 2};
  StatusOr<double> perfect = RandIndex(truth, truth);
  ASSERT_TRUE(perfect.ok());
  EXPECT_DOUBLE_EQ(*perfect, 1.0);
  Labels pred{0, 0, 1, 1, 1};
  StatusOr<double> ri = RandIndex(pred, truth);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.0);
  EXPECT_LE(*ri, 1.0);
}

TEST(PurityTest, KnownValues) {
  // Cluster 0: {0,0,1} → majority 2; cluster 1: {1,1} → 2. Purity 4/5.
  Labels pred{0, 0, 0, 1, 1};
  Labels truth{0, 0, 1, 1, 1};
  StatusOr<double> purity = Purity(pred, truth);
  ASSERT_TRUE(purity.ok());
  EXPECT_NEAR(*purity, 0.8, 1e-12);
  // Singleton clusters give perfect purity (the classic degenerate case).
  Labels singletons{0, 1, 2, 3, 4};
  StatusOr<double> degenerate = Purity(singletons, truth);
  ASSERT_TRUE(degenerate.ok());
  EXPECT_DOUBLE_EQ(*degenerate, 1.0);
}

TEST(PairwiseFScoreTest, PerfectClustering) {
  Labels truth{0, 0, 1, 1};
  StatusOr<PairwiseScores> s = PairwiseFScore(truth, truth);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->precision, 1.0);
  EXPECT_DOUBLE_EQ(s->recall, 1.0);
  EXPECT_DOUBLE_EQ(s->f_score, 1.0);
}

TEST(PairwiseFScoreTest, OverSplittingHurtsRecallNotPrecision) {
  Labels truth{0, 0, 0, 0};
  Labels split{0, 0, 1, 1};
  StatusOr<PairwiseScores> s = PairwiseFScore(split, truth);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->precision, 1.0);
  EXPECT_NEAR(s->recall, 2.0 / 6.0, 1e-12);
}

TEST(ScoreClusteringTest, AggregatesAllMetrics) {
  Labels truth{0, 0, 1, 1, 2, 2};
  Labels pred{1, 1, 2, 2, 0, 0};
  StatusOr<ClusteringScores> s = ScoreClustering(pred, truth);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->accuracy, 1.0);
  EXPECT_NEAR(s->nmi, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s->purity, 1.0);
  EXPECT_NEAR(s->ari, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s->f_score, 1.0);
}

TEST(MetricsPropertyTest, AccuracyAtLeastPurityComplementSanity) {
  // Fuzz: metrics stay within [0, 1] and ACC <= Purity is NOT generally
  // true, but both stay bounded, and identical labelings are perfect.
  Rng rng(81);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 40;
    Labels a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::size_t>(rng.UniformInt(5));
      b[i] = static_cast<std::size_t>(rng.UniformInt(3));
    }
    StatusOr<ClusteringScores> s = ScoreClustering(a, b);
    ASSERT_TRUE(s.ok());
    EXPECT_GE(s->accuracy, 0.0);
    EXPECT_LE(s->accuracy, 1.0);
    EXPECT_GE(s->nmi, 0.0);
    EXPECT_LE(s->nmi, 1.0);
    EXPECT_GE(s->purity, 0.0);
    EXPECT_LE(s->purity, 1.0);
    EXPECT_GE(s->ari, -1.0);
    EXPECT_LE(s->ari, 1.0);
    // Purity never decreases when refining predicted clusters to singletons.
    Labels singletons(n);
    for (std::size_t i = 0; i < n; ++i) singletons[i] = i;
    StatusOr<double> p_single = Purity(singletons, b);
    StatusOr<double> p_orig = Purity(a, b);
    ASSERT_TRUE(p_single.ok() && p_orig.ok());
    EXPECT_GE(*p_single + 1e-12, *p_orig);
  }
}

}  // namespace
}  // namespace umvsc::eval
