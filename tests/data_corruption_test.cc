#include "data/corruption.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace umvsc::data {
namespace {

MultiViewDataset SmallDataset(std::uint64_t seed) {
  MultiViewConfig config;
  config.num_samples = 60;
  config.num_clusters = 3;
  config.views = {{8, ViewQuality::kInformative, 0.4},
                  {5, ViewQuality::kWeak, 1.0}};
  config.seed = seed;
  auto d = MakeGaussianMultiView(config);
  UMVSC_CHECK(d.ok(), "dataset generation failed");
  return std::move(*d);
}

TEST(CorruptionTest, AddRelativeNoiseChangesEntriesProportionally) {
  MultiViewDataset d = SmallDataset(1);
  la::Matrix before = d.views[0];
  ASSERT_TRUE(AddRelativeNoise(d, 0, 0.5, 7).ok());
  EXPECT_TRUE(d.Validate().ok());
  // The injected noise variance should be ~ (0.5·s)² with s the view scale.
  double diff2 = 0.0, scale2 = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const double diff = d.views[0].data()[i] - before.data()[i];
    diff2 += diff * diff;
    scale2 += before.data()[i] * before.data()[i];
  }
  diff2 /= static_cast<double>(before.size());
  scale2 /= static_cast<double>(before.size());
  EXPECT_GT(diff2, 0.05 * scale2);
  EXPECT_LT(diff2, 1.0 * scale2);
  // Other views untouched.
  EXPECT_TRUE(la::AlmostEqual(d.views[1], SmallDataset(1).views[1], 0.0));
}

TEST(CorruptionTest, ZeroNoiseIsNoop) {
  MultiViewDataset d = SmallDataset(2);
  la::Matrix before = d.views[0];
  ASSERT_TRUE(AddRelativeNoise(d, 0, 0.0, 7).ok());
  EXPECT_TRUE(la::AlmostEqual(d.views[0], before, 0.0));
}

TEST(CorruptionTest, CorruptSampleRowsTouchesExactFraction) {
  MultiViewDataset d = SmallDataset(3);
  la::Matrix before = d.views[0];
  ASSERT_TRUE(CorruptSampleRows(d, 0, 0.25, 9).ok());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < d.views[0].rows(); ++i) {
    bool row_changed = false;
    for (std::size_t j = 0; j < d.views[0].cols(); ++j) {
      row_changed |= d.views[0](i, j) != before(i, j);
    }
    changed += row_changed;
  }
  EXPECT_EQ(changed, 15u);  // 25% of 60
}

TEST(CorruptionTest, CorruptAllAndNone) {
  MultiViewDataset d = SmallDataset(4);
  la::Matrix before = d.views[0];
  ASSERT_TRUE(CorruptSampleRows(d, 0, 0.0, 9).ok());
  EXPECT_TRUE(la::AlmostEqual(d.views[0], before, 0.0));
  ASSERT_TRUE(CorruptSampleRows(d, 0, 1.0, 9).ok());
  EXPECT_FALSE(la::AlmostEqual(d.views[0], before, 1e-6));
}

TEST(CorruptionTest, ReplaceViewWithNoiseDestroysStructureKeepsScale) {
  MultiViewDataset d = SmallDataset(5);
  la::Matrix before = d.views[0];
  ASSERT_TRUE(ReplaceViewWithNoise(d, 0, 11).ok());
  EXPECT_FALSE(la::AlmostEqual(d.views[0], before, 1e-3));
  // Scale preserved within a factor ~2.
  double var_before = 0.0, var_after = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    var_before += before.data()[i] * before.data()[i];
    var_after += d.views[0].data()[i] * d.views[0].data()[i];
  }
  EXPECT_GT(var_after, 0.25 * var_before);
  EXPECT_LT(var_after, 4.0 * var_before);
}

TEST(CorruptionTest, DeterministicForSeed) {
  MultiViewDataset a = SmallDataset(6);
  MultiViewDataset b = SmallDataset(6);
  ASSERT_TRUE(AddRelativeNoise(a, 1, 0.3, 42).ok());
  ASSERT_TRUE(AddRelativeNoise(b, 1, 0.3, 42).ok());
  EXPECT_TRUE(la::AlmostEqual(a.views[1], b.views[1], 0.0));
}

TEST(CorruptionTest, InvalidArgumentsRejected) {
  MultiViewDataset d = SmallDataset(7);
  EXPECT_EQ(AddRelativeNoise(d, 5, 0.1, 1).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(AddRelativeNoise(d, 0, -0.1, 1).ok());
  EXPECT_FALSE(CorruptSampleRows(d, 0, 1.5, 1).ok());
  EXPECT_FALSE(CorruptSampleRows(d, 0, -0.1, 1).ok());
  MultiViewDataset broken;
  EXPECT_FALSE(ReplaceViewWithNoise(broken, 0, 1).ok());
}

}  // namespace
}  // namespace umvsc::data
