#include "common/status.h"

#include <gtest/gtest.h>

namespace umvsc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNumericalError), "NumericalError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailingStep() { return Status::IoError("disk"); }

Status Pipeline() {
  UMVSC_RETURN_IF_ERROR(Status::OK());
  UMVSC_RETURN_IF_ERROR(FailingStep());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagatesFirstFailure) {
  Status s = Pipeline();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace umvsc
