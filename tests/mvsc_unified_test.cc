#include "mvsc/unified.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/ops.h"

namespace umvsc::mvsc {
namespace {

struct TestProblem {
  data::MultiViewDataset dataset;
  MultiViewGraphs graphs;
};

TestProblem MakeProblem(std::uint64_t seed, std::size_t n = 150,
                        std::size_t c = 3) {
  data::MultiViewConfig config;
  config.num_samples = n;
  config.num_clusters = c;
  config.views = {{12, data::ViewQuality::kInformative, 0.4},
                  {8, data::ViewQuality::kWeak, 1.0},
                  {10, data::ViewQuality::kNoisy, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto dataset = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(dataset.ok(), "dataset generation failed");
  auto graphs = BuildGraphs(*dataset);
  UMVSC_CHECK(graphs.ok(), "graph construction failed");
  return {std::move(*dataset), std::move(*graphs)};
}

UnifiedOptions DefaultOptions(std::size_t c) {
  UnifiedOptions options;
  options.num_clusters = c;
  options.beta = 1.0;
  options.gamma = 2.0;
  options.seed = 11;
  return options;
}

TEST(UnifiedMvscTest, RecoversPlantedClusters) {
  TestProblem problem = MakeProblem(21);
  UnifiedMVSC solver(DefaultOptions(3));
  StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  StatusOr<double> acc =
      eval::ClusteringAccuracy(result->labels, problem.dataset.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(UnifiedMvscTest, OutputInvariantsHold) {
  TestProblem problem = MakeProblem(22);
  UnifiedMVSC solver(DefaultOptions(3));
  StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
  ASSERT_TRUE(result.ok());
  const std::size_t n = problem.graphs.NumSamples();
  // Indicator is one-hot per row and matches labels.
  ASSERT_EQ(result->indicator.rows(), n);
  ASSERT_EQ(result->indicator.cols(), 3u);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += result->indicator(i, j);
    EXPECT_DOUBLE_EQ(row_sum, 1.0);
    EXPECT_DOUBLE_EQ(result->indicator(i, result->labels[i]), 1.0);
  }
  // F on the Stiefel manifold, R orthogonal.
  EXPECT_LT(la::OrthonormalityError(result->embedding), 1e-8);
  EXPECT_LT(la::OrthonormalityError(result->rotation), 1e-9);
  // Weights form a distribution.
  double total = 0.0;
  for (double w : result->view_weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(UnifiedMvscTest, NoisyViewGetsLowestWeight) {
  TestProblem problem = MakeProblem(23);
  UnifiedMVSC solver(DefaultOptions(3));
  StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
  ASSERT_TRUE(result.ok());
  // View order: informative, weak, noisy.
  EXPECT_LT(result->view_weights[2], result->view_weights[0]);
}

TEST(UnifiedMvscTest, ObjectiveTraceSettles) {
  TestProblem problem = MakeProblem(24);
  UnifiedOptions options = DefaultOptions(3);
  options.max_iterations = 40;
  UnifiedMVSC solver(options);
  StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->objective_trace.size(), 2u);
  // The trace ends no higher than it starts, and the tail is stable
  // (the Y-step uses the scaled-indicator heuristic, so we allow tiny
  // non-monotonic wiggles rather than asserting strict descent).
  EXPECT_LE(result->objective_trace.back(),
            result->objective_trace.front() + 1e-9);
  if (result->converged) {
    const auto& trace = result->objective_trace;
    const double last = trace[trace.size() - 1];
    const double prev = trace[trace.size() - 2];
    EXPECT_NEAR(last, prev, 1e-4 * std::max(1.0, std::abs(prev)));
  }
}

TEST(UnifiedMvscTest, DeterministicForFixedSeed) {
  TestProblem problem = MakeProblem(25);
  UnifiedMVSC solver(DefaultOptions(3));
  StatusOr<UnifiedResult> a = solver.Run(problem.graphs);
  StatusOr<UnifiedResult> b = solver.Run(problem.graphs);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->objective_trace, b->objective_trace);
}

TEST(UnifiedMvscTest, AllWeightingModesRun) {
  TestProblem problem = MakeProblem(26);
  for (auto mode : {ViewWeighting::kGammaPower, ViewWeighting::kAmgl,
                    ViewWeighting::kUniform}) {
    UnifiedOptions options = DefaultOptions(3);
    options.weighting = mode;
    UnifiedMVSC solver(options);
    StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    StatusOr<double> acc =
        eval::ClusteringAccuracy(result->labels, problem.dataset.labels);
    ASSERT_TRUE(acc.ok());
    EXPECT_GT(*acc, 0.9) << "mode " << static_cast<int>(mode);
  }
}

TEST(UnifiedMvscTest, UniformWeightingReportsUniformWeights) {
  TestProblem problem = MakeProblem(27);
  UnifiedOptions options = DefaultOptions(3);
  options.weighting = ViewWeighting::kUniform;
  UnifiedMVSC solver(options);
  StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
  ASSERT_TRUE(result.ok());
  for (double w : result->view_weights) EXPECT_NEAR(w, 1.0 / 3.0, 1e-12);
}

TEST(UnifiedMvscTest, LargerGammaFlattensWeights) {
  TestProblem problem = MakeProblem(28);
  UnifiedOptions sharp = DefaultOptions(3);
  sharp.gamma = 1.2;
  UnifiedOptions flat = DefaultOptions(3);
  flat.gamma = 8.0;
  StatusOr<UnifiedResult> rs = UnifiedMVSC(sharp).Run(problem.graphs);
  StatusOr<UnifiedResult> rf = UnifiedMVSC(flat).Run(problem.graphs);
  ASSERT_TRUE(rs.ok() && rf.ok());
  auto spread = [](const std::vector<double>& w) {
    return *std::max_element(w.begin(), w.end()) -
           *std::min_element(w.begin(), w.end());
  };
  EXPECT_GT(spread(rs->view_weights), spread(rf->view_weights));
}

TEST(UnifiedMvscTest, RunFromRawDatasetMatchesGraphPath) {
  TestProblem problem = MakeProblem(29);
  UnifiedMVSC solver(DefaultOptions(3));
  StatusOr<UnifiedResult> via_graphs = solver.Run(problem.graphs);
  StatusOr<UnifiedResult> via_dataset = solver.Run(problem.dataset);
  ASSERT_TRUE(via_graphs.ok() && via_dataset.ok());
  EXPECT_EQ(via_graphs->labels, via_dataset->labels);
}

TEST(UnifiedMvscTest, WarmStartMatchesColdStartWithFewerMatvecs) {
  TestProblem problem = MakeProblem(29);

  UnifiedOptions cold_options = DefaultOptions(3);
  cold_options.warm_start = false;
  // kExcess also exercises the per-view SpectralFloors matvec accounting.
  cold_options.smoothness = SmoothnessNormalization::kExcess;
  StatusOr<UnifiedResult> cold = UnifiedMVSC(cold_options).Run(problem.graphs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  UnifiedOptions warm_options = cold_options;
  warm_options.warm_start = true;
  StatusOr<UnifiedResult> warm = UnifiedMVSC(warm_options).Run(problem.graphs);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Warm starting is a solver-internal speedup: the clustering must agree
  // exactly (same partition up to label permutation) while the eigensolver
  // does strictly less work.
  StatusOr<double> agreement =
      eval::ClusteringAccuracy(warm->labels, cold->labels);
  ASSERT_TRUE(agreement.ok());
  EXPECT_EQ(*agreement, 1.0);
  EXPECT_LT(warm->lanczos_matvecs, cold->lanczos_matvecs);
  EXPECT_GT(warm->lanczos_matvecs, 0u);
}

TEST(UnifiedMvscTest, RejectsInvalidOptions) {
  TestProblem problem = MakeProblem(30, 60, 3);
  UnifiedOptions options = DefaultOptions(3);
  options.num_clusters = 1;
  EXPECT_FALSE(UnifiedMVSC(options).Run(problem.graphs).ok());
  options = DefaultOptions(3);
  options.beta = -1.0;
  EXPECT_FALSE(UnifiedMVSC(options).Run(problem.graphs).ok());
  options = DefaultOptions(3);
  options.gamma = 1.0;
  EXPECT_FALSE(UnifiedMVSC(options).Run(problem.graphs).ok());
  EXPECT_FALSE(UnifiedMVSC(DefaultOptions(3)).Run(MultiViewGraphs{}).ok());
}

TEST(UnifiedMvscTest, WorksWithManyClusters) {
  TestProblem problem = MakeProblem(31, 200, 8);
  UnifiedMVSC solver(DefaultOptions(8));
  StatusOr<UnifiedResult> result = solver.Run(problem.graphs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  StatusOr<double> acc =
      eval::ClusteringAccuracy(result->labels, problem.dataset.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.8);
}

}  // namespace
}  // namespace umvsc::mvsc
