#include "data/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace umvsc::data {
namespace {

MultiViewDataset SmallValidDataset() {
  MultiViewDataset d;
  d.name = "test";
  d.views.push_back(la::Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  d.views.push_back(la::Matrix{{1.0}, {0.0}, {2.0}});
  d.labels = {0, 1, 0};
  return d;
}

TEST(DatasetTest, AccessorsOnValidDataset) {
  MultiViewDataset d = SmallValidDataset();
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.NumViews(), 2u);
  EXPECT_EQ(d.NumSamples(), 3u);
  EXPECT_EQ(d.NumClusters(), 2u);
}

TEST(DatasetTest, UnlabeledDatasetIsValid) {
  MultiViewDataset d = SmallValidDataset();
  d.labels.clear();
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.NumClusters(), 0u);
}

TEST(DatasetTest, ValidateRejectsBrokenStructures) {
  MultiViewDataset empty;
  EXPECT_FALSE(empty.Validate().ok());

  MultiViewDataset mismatched = SmallValidDataset();
  mismatched.views[1] = la::Matrix(2, 1);
  EXPECT_FALSE(mismatched.Validate().ok());

  MultiViewDataset bad_labels = SmallValidDataset();
  bad_labels.labels = {0, 1};
  EXPECT_FALSE(bad_labels.Validate().ok());

  MultiViewDataset sparse_labels = SmallValidDataset();
  sparse_labels.labels = {0, 2, 0};  // label 1 missing
  EXPECT_FALSE(sparse_labels.Validate().ok());

  MultiViewDataset nan_view = SmallValidDataset();
  nan_view.views[0](0, 0) = std::nan("");
  EXPECT_FALSE(nan_view.Validate().ok());

  MultiViewDataset zero_features = SmallValidDataset();
  zero_features.views[0] = la::Matrix(3, 0);
  EXPECT_FALSE(zero_features.Validate().ok());
}

TEST(DatasetTest, StandardizeProducesZeroMeanUnitVariance) {
  Rng rng(90);
  MultiViewDataset d;
  d.views.push_back(la::Matrix::RandomGaussian(50, 4, rng));
  d.views[0].Scale(7.0);
  d.StandardizeViews();
  for (std::size_t j = 0; j < 4; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < 50; ++i) mean += d.views[0](i, j);
    mean /= 50.0;
    for (std::size_t i = 0; i < 50; ++i) {
      var += (d.views[0](i, j) - mean) * (d.views[0](i, j) - mean);
    }
    var /= 50.0;
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-10);
  }
}

TEST(DatasetTest, StandardizeHandlesConstantFeatures) {
  MultiViewDataset d;
  d.views.push_back(la::Matrix(4, 2, 3.0));
  d.StandardizeViews();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(d.views[0](i, 0), 0.0);
    EXPECT_DOUBLE_EQ(d.views[0](i, 1), 0.0);
  }
}

}  // namespace
}  // namespace umvsc::data
