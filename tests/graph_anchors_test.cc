// Determinism and memory tests for the bipartite anchor-graph builder:
// SelectAnchors is a pure function of (x, options) regardless of threads,
// and BuildAnchorAffinity emits a CSR bitwise identical at every tile size
// and thread count (the same contract graph_tiled_test pins for the square
// builders). The allocation hook then proves the builder never touches an
// n × n — or even n × m — dense buffer at n = 20,000.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/anchors.h"
#include "graph/distance.h"

namespace {

std::atomic<bool> g_track{false};
std::atomic<std::size_t> g_max_alloc{0};

void Record(std::size_t size) {
  if (!g_track.load(std::memory_order_relaxed)) return;
  std::size_t prev = g_max_alloc.load(std::memory_order_relaxed);
  while (size > prev &&
         !g_max_alloc.compare_exchange_weak(prev, size,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

void* operator new(std::size_t size) {
  Record(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  Record(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  Record(size);
  void* p = nullptr;
  const std::size_t a = static_cast<std::size_t>(align);
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace umvsc::graph {
namespace {

la::Matrix ClusteredFeatures(std::size_t n, std::size_t d,
                             std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Gaussian((i % 4) * 3.0, 1.0);
    }
  }
  return x;
}

void ExpectBitwiseEqual(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_offsets(), b.row_offsets());
  ASSERT_EQ(a.col_indices(), b.col_indices());
  ASSERT_EQ(a.values().size(), b.values().size());
  EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                        a.values().size() * sizeof(double)),
            0);
}

void ExpectBitwiseEqual(const la::Matrix& a, const la::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        a.rows() * a.cols() * sizeof(double)),
            0);
}

class AllocationScope {
 public:
  AllocationScope() {
    g_max_alloc.store(0, std::memory_order_relaxed);
    g_track.store(true, std::memory_order_relaxed);
  }
  ~AllocationScope() { g_track.store(false, std::memory_order_relaxed); }
  std::size_t max_single_allocation() const {
    return g_max_alloc.load(std::memory_order_relaxed);
  }
};

TEST(AnchorSelectionTest, ValidatesAndShapes) {
  la::Matrix x = ClusteredFeatures(40, 3, 5);
  AnchorOptions options;
  options.num_anchors = 0;
  EXPECT_FALSE(SelectAnchors(x, options).ok());
  options.num_anchors = 41;
  EXPECT_FALSE(SelectAnchors(x, options).ok());
  options.num_anchors = 8;
  for (AnchorSelection sel :
       {AnchorSelection::kUniform, AnchorSelection::kKmeansppRefine}) {
    options.selection = sel;
    StatusOr<la::Matrix> anchors = SelectAnchors(x, options);
    ASSERT_TRUE(anchors.ok());
    EXPECT_EQ(anchors->rows(), 8u);
    EXPECT_EQ(anchors->cols(), 3u);
  }
}

TEST(AnchorSelectionTest, ThreadCountDoesNotChangeAnchors) {
  la::Matrix x = ClusteredFeatures(300, 4, 9);
  AnchorOptions options;
  options.num_anchors = 16;
  options.seed = 21;
  la::Matrix reference;
  {
    ScopedNumThreads serial(1);
    StatusOr<la::Matrix> got = SelectAnchors(x, options);
    ASSERT_TRUE(got.ok());
    reference = *got;
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}, std::size_t{8}}) {
    ScopedNumThreads scoped(threads);
    StatusOr<la::Matrix> got = SelectAnchors(x, options);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    ExpectBitwiseEqual(reference, *got);
  }
}

TEST(AnchorSelectionTest, SeedChangesTheDraw) {
  la::Matrix x = ClusteredFeatures(200, 3, 13);
  AnchorOptions options;
  options.num_anchors = 12;
  options.selection = AnchorSelection::kUniform;
  options.seed = 1;
  StatusOr<la::Matrix> a = SelectAnchors(x, options);
  options.seed = 2;
  StatusOr<la::Matrix> b = SelectAnchors(x, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(std::memcmp(a->data(), b->data(),
                        a->rows() * a->cols() * sizeof(double)),
            0);
}

TEST(AnchorAffinityTest, RowsAreStochasticSortedAndSparse) {
  la::Matrix x = ClusteredFeatures(150, 4, 17);
  AnchorOptions selection;
  selection.num_anchors = 20;
  StatusOr<la::Matrix> anchors = SelectAnchors(x, selection);
  ASSERT_TRUE(anchors.ok());
  AnchorGraphOptions options;
  options.anchor_neighbors = 6;
  StatusOr<la::CsrMatrix> z = BuildAnchorAffinity(x, *anchors, options);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->rows(), 150u);
  EXPECT_EQ(z->cols(), 20u);
  for (std::size_t i = 0; i < z->rows(); ++i) {
    const std::size_t begin = z->row_offsets()[i];
    const std::size_t end = z->row_offsets()[i + 1];
    ASSERT_EQ(end - begin, 6u);
    double sum = 0.0;
    for (std::size_t p = begin; p < end; ++p) {
      if (p > begin) {
        EXPECT_LT(z->col_indices()[p - 1], z->col_indices()[p]);
      }
      EXPECT_GT(z->values()[p], 0.0);
      sum += z->values()[p];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AnchorAffinityTest, TileSizeDoesNotChangeTheGraph) {
  la::Matrix x = ClusteredFeatures(83, 3, 19);
  AnchorOptions selection;
  selection.num_anchors = 14;
  StatusOr<la::Matrix> anchors = SelectAnchors(x, selection);
  ASSERT_TRUE(anchors.ok());
  AnchorGraphOptions reference_options;
  StatusOr<la::CsrMatrix> reference =
      BuildAnchorAffinity(x, *anchors, reference_options);
  ASSERT_TRUE(reference.ok());
  for (std::size_t tile : {std::size_t{1}, std::size_t{7}, std::size_t{32},
                           std::size_t{64}, std::size_t{4096}}) {
    AnchorGraphOptions options;
    options.tile_rows = tile;
    StatusOr<la::CsrMatrix> got = BuildAnchorAffinity(x, *anchors, options);
    ASSERT_TRUE(got.ok()) << "tile=" << tile;
    ExpectBitwiseEqual(*reference, *got);
  }
}

TEST(AnchorAffinityTest, ThreadCountDoesNotChangeTheGraph) {
  la::Matrix x = ClusteredFeatures(97, 5, 23);
  AnchorOptions selection;
  selection.num_anchors = 18;
  StatusOr<la::Matrix> anchors = SelectAnchors(x, selection);
  ASSERT_TRUE(anchors.ok());
  la::CsrMatrix reference;
  {
    ScopedNumThreads serial(1);
    AnchorGraphOptions options;
    options.tile_rows = 8;  // several tiles even at one thread
    StatusOr<la::CsrMatrix> got = BuildAnchorAffinity(x, *anchors, options);
    ASSERT_TRUE(got.ok());
    reference = *got;
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}, std::size_t{8}}) {
    ScopedNumThreads scoped(threads);
    AnchorGraphOptions options;
    options.tile_rows = 8;
    StatusOr<la::CsrMatrix> got = BuildAnchorAffinity(x, *anchors, options);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    ExpectBitwiseEqual(reference, *got);
  }
}

TEST(AnchorAffinityTest, NearestAnchorDefinitionMatchesBruteForce) {
  la::Matrix x = ClusteredFeatures(60, 3, 29);
  AnchorOptions selection;
  selection.num_anchors = 10;
  StatusOr<la::Matrix> anchors = SelectAnchors(x, selection);
  ASSERT_TRUE(anchors.ok());
  AnchorGraphOptions options;
  options.anchor_neighbors = 4;
  StatusOr<la::CsrMatrix> z = BuildAnchorAffinity(x, *anchors, options);
  ASSERT_TRUE(z.ok());
  // Brute-force per row: the 4 smallest squared distances (ties to the
  // smaller anchor index) with the self-tuning Gaussian row rule.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::vector<std::pair<double, std::size_t>> d2;
    for (std::size_t j = 0; j < anchors->rows(); ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < x.cols(); ++p) {
        const double diff = x(i, p) - (*anchors)(j, p);
        s += diff * diff;
      }
      d2.push_back({s, j});
    }
    std::sort(d2.begin(), d2.end());
    const double sigma2 = std::max(d2[3].first, 1e-300);
    double sum = 0.0;
    for (std::size_t r = 0; r < 4; ++r) {
      sum += std::exp(-d2[r].first / sigma2);
    }
    std::vector<std::pair<std::size_t, double>> expected;
    for (std::size_t r = 0; r < 4; ++r) {
      expected.push_back({d2[r].second, std::exp(-d2[r].first / sigma2) / sum});
    }
    std::sort(expected.begin(), expected.end());
    const std::size_t begin = z->row_offsets()[i];
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(z->col_indices()[begin + r], expected[r].first) << "row " << i;
      EXPECT_NEAR(z->values()[begin + r], expected[r].second, 1e-12)
          << "row " << i;
    }
  }
}

TEST(AnchorMemoryTest, BuilderNeverAllocatesAQuadraticBuffer) {
  const std::size_t n = 20000;
  const std::size_t m = 128;
  la::Matrix x = ClusteredFeatures(n, 8, 31);
  AnchorOptions selection;
  selection.num_anchors = m;
  AnchorGraphOptions options;
  options.anchor_neighbors = 5;

  std::size_t peak = 0;
  {
    AllocationScope scope;
    StatusOr<la::Matrix> anchors = SelectAnchors(x, selection);
    ASSERT_TRUE(anchors.ok());
    StatusOr<la::CsrMatrix> z = BuildAnchorAffinity(x, *anchors, options);
    peak = scope.max_single_allocation();
    ASSERT_TRUE(z.ok());
    EXPECT_EQ(z->rows(), n);
  }
  // The largest legitimate block is the O(n·s) selection/output arrays
  // (a few MB); nothing within a factor 8 of an n × n — and nothing the
  // size of a dense n × m panel either (tile_rows = 128 tiles only).
  EXPECT_LT(peak, n * n * sizeof(double) / 8)
      << "anchor build allocated " << peak << " bytes in one block";
  EXPECT_LT(peak, n * m * sizeof(double) / 2)
      << "anchor build allocated " << peak << " bytes in one block";

  // Positive control on a smaller size: a dense pairwise matrix IS seen by
  // the hook, so a silently broken override cannot fake the bounds above.
  const std::size_t n_small = 1024;
  la::Matrix small = ClusteredFeatures(n_small, 4, 37);
  std::size_t dense_peak = 0;
  {
    AllocationScope scope;
    la::Matrix d2 = PairwiseSquaredDistances(small);
    dense_peak = scope.max_single_allocation();
    ASSERT_EQ(d2.rows(), n_small);
  }
  EXPECT_GE(dense_peak, n_small * n_small * sizeof(double));
}

}  // namespace
}  // namespace umvsc::graph
