// The SIMD abstraction contract (src/la/simd.h): every backend performs
// the identical sequence of unfused IEEE-754 operations on the fixed
// 4-lane grid, so the native dispatch and the scalar emulation agree
// bitwise on x86 (no FMA anywhere) and to <= 1 ULP per accumulated term on
// targets whose compiler contracts the scalar fallback (aarch64 at
// -ffp-contract=fast). The ULP-bounded assertions encode that documented
// bound; the bitwise assertions are additionally enabled on x86.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "la/gemm_kernel.h"
#include "la/simd.h"

namespace umvsc::la {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kBitwiseDispatch = true;
#else
constexpr bool kBitwiseDispatch = false;
#endif

std::vector<double> TestSignal(std::size_t n, double phase) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.37 * static_cast<double>(i) + phase) +
           0.001 * static_cast<double>(i);
  }
  return v;
}

// Distance in representable doubles (same-sign finite inputs).
std::int64_t UlpDistance(double a, double b) {
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if ((ia < 0) != (ib < 0)) return a == b ? 0 : INT64_MAX;
  return std::abs(ia - ib);
}

// The documented lane grid, written out longhand: lane l accumulates
// elements l, l+4, l+8, ... and the lanes combine as (l0+l2)+(l1+l3),
// then the tail adds serially.
double ReferenceDotGrid(const double* x, const double* y, std::size_t n) {
  double lane[simd::kSimdLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + simd::kSimdLanes <= n; i += simd::kSimdLanes) {
    for (std::size_t l = 0; l < simd::kSimdLanes; ++l) {
      lane[l] += x[i + l] * y[i + l];
    }
  }
  double s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

TEST(SimdTest, BackendNamesAreConsistent) {
  const std::string native = simd::NativeBackendName();
  EXPECT_TRUE(native == "avx2" || native == "sse2" || native == "neon" ||
              native == "scalar")
      << native;
  const std::string active = kernel::ActiveBackendName();
  if (kernel::SimdEnabled()) {
    EXPECT_EQ(active, native);
  } else {
    EXPECT_EQ(active, "scalar");
  }
}

TEST(SimdTest, ScopedForceScalarFlipsAndRestoresDispatch) {
  const bool was_enabled = kernel::SimdEnabled();
  {
    kernel::ScopedForceScalar force;
    EXPECT_FALSE(kernel::SimdEnabled());
    EXPECT_STREQ(kernel::ActiveBackendName(), "scalar");
    {
      kernel::ScopedForceScalar unforce(false);
      EXPECT_TRUE(kernel::SimdEnabled());
    }
    EXPECT_FALSE(kernel::SimdEnabled());
  }
  EXPECT_EQ(kernel::SimdEnabled(), was_enabled);
}

TEST(SimdTest, LanePrimitivesMatchScalarEmulation) {
  using V = simd::NativeVec4;
  using S = simd::ScalarVec4;
  const double a[4] = {1.25, -3.5, 0.0, 1e-17};
  const double b[4] = {-2.0, 0.3, 7.75, 4.0};
  const double c[4] = {0.5, 0.25, -1.0, 2.0};

  double got[4], want[4];
  V::Store(got, V::Add(V::Load(a), V::Load(b)));
  S::Store(want, S::Add(S::Load(a), S::Load(b)));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], want[i]) << "Add lane " << i;

  V::Store(got, V::Mul(V::Load(a), V::Load(b)));
  S::Store(want, S::Mul(S::Load(a), S::Load(b)));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], want[i]) << "Mul lane " << i;

  V::Store(got, V::MulAdd(V::Load(a), V::Load(b), V::Load(c)));
  S::Store(want, S::MulAdd(S::Load(a), S::Load(b), S::Load(c)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i], want[i]) << "MulAdd lane " << i;
  }

  V::Store(got, V::Broadcast(3.14));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], 3.14);

  EXPECT_EQ(V::ReduceAdd(V::Load(a)), S::ReduceAdd(S::Load(a)));
  EXPECT_EQ(S::ReduceAdd(S::Load(a)), (a[0] + a[2]) + (a[1] + a[3]));
}

TEST(SimdTest, DotLanesFollowsTheDocumentedGrid) {
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 17u, 64u, 129u, 1000u}) {
    const std::vector<double> x = TestSignal(n, 0.0);
    const std::vector<double> y = TestSignal(n, 1.0);
    const double want = ReferenceDotGrid(x.data(), y.data(), n);
    const double scalar =
        simd::DotLanes<simd::ScalarVec4>(x.data(), y.data(), n);
    EXPECT_EQ(scalar, want) << "n=" << n;
    const double native =
        simd::DotLanes<simd::NativeVec4>(x.data(), y.data(), n);
    if (kBitwiseDispatch) {
      EXPECT_EQ(native, scalar) << "n=" << n;
    } else {
      // Documented bound: <= 1 ULP of contraction slack per accumulated
      // term, n terms in total.
      EXPECT_LE(UlpDistance(native, scalar), static_cast<std::int64_t>(n) + 1)
          << "n=" << n;
    }
  }
}

TEST(SimdTest, AxpyAndMulLanesAreValueNeutral) {
  for (std::size_t n : {0u, 1u, 4u, 7u, 33u, 500u}) {
    const std::vector<double> x = TestSignal(n, 0.3);
    const std::vector<double> y0 = TestSignal(n, 0.9);

    std::vector<double> want = y0;
    for (std::size_t i = 0; i < n; ++i) {
      const double prod = -0.75 * x[i];  // unfused: product rounds first
      want[i] += prod;
    }
    std::vector<double> got = y0;
    simd::AxpyLanes<simd::NativeVec4>(-0.75, x.data(), got.data(), n);
    std::vector<double> got_scalar = y0;
    simd::AxpyLanes<simd::ScalarVec4>(-0.75, x.data(), got_scalar.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got_scalar[i], want[i]) << "axpy n=" << n << " i=" << i;
      if (kBitwiseDispatch) {
        EXPECT_EQ(got[i], want[i]) << "axpy n=" << n << " i=" << i;
      } else {
        EXPECT_LE(UlpDistance(got[i], want[i]), 1) << "axpy n=" << n;
      }
    }

    std::vector<double> prod_got(n), prod_want(n);
    simd::MulLanes<simd::NativeVec4>(x.data(), y0.data(), prod_got.data(), n);
    for (std::size_t i = 0; i < n; ++i) prod_want[i] = x[i] * y0[i];
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(prod_got[i], prod_want[i]) << "mul n=" << n << " i=" << i;
    }
  }
}

TEST(SimdTest, RuntimeDispatchedKernelsAgreeAcrossDispatchPaths) {
  const std::size_t n = 259;  // exercises lanes + a 3-element tail
  const std::vector<double> x = TestSignal(n, 0.1);
  const std::vector<double> y = TestSignal(n, 0.6);

  const double dot_native = kernel::Dot(x.data(), y.data(), n);
  std::vector<double> axpy_native = y;
  kernel::Axpy(1.5, x.data(), axpy_native.data(), n);
  std::vector<double> had_native(n);
  kernel::Hadamard(x.data(), y.data(), had_native.data(), n);

  kernel::ScopedForceScalar force;
  const double dot_scalar = kernel::Dot(x.data(), y.data(), n);
  std::vector<double> axpy_scalar = y;
  kernel::Axpy(1.5, x.data(), axpy_scalar.data(), n);
  std::vector<double> had_scalar(n);
  kernel::Hadamard(x.data(), y.data(), had_scalar.data(), n);

  if (kBitwiseDispatch) {
    EXPECT_EQ(dot_native, dot_scalar);
  } else {
    EXPECT_LE(UlpDistance(dot_native, dot_scalar),
              static_cast<std::int64_t>(n) + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(had_native[i], had_scalar[i]) << i;
    if (kBitwiseDispatch) {
      EXPECT_EQ(axpy_native[i], axpy_scalar[i]) << i;
    } else {
      EXPECT_LE(UlpDistance(axpy_native[i], axpy_scalar[i]), 1) << i;
    }
  }
}

}  // namespace
}  // namespace umvsc::la
