#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/cholesky.h"
#include "la/lu.h"
#include "la/ops.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

// ---------------------------------------------------------------- Cholesky

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a = test::RandomSpd(12, 21);
  StatusOr<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_TRUE(AlmostEqual(MatMulT(*l, *l), a, 1e-9));
  // Lower triangular with positive diagonal.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_GT((*l)(i, i), 0.0);
    for (std::size_t j = i + 1; j < 12; ++j) EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
  }
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a = test::RandomSpd(9, 22);
  Rng rng(23);
  Vector x_true(9);
  for (std::size_t i = 0; i < 9; ++i) x_true[i] = rng.Gaussian();
  Vector b = MatVec(a, x_true);
  StatusOr<Vector> x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(*x, x_true, 1e-8));
}

TEST(CholeskyTest, SolveMatrixSolvesAllColumns) {
  Matrix a = test::RandomSpd(6, 24);
  Rng rng(25);
  Matrix x_true = Matrix::RandomGaussian(6, 3, rng);
  Matrix b = MatMul(a, x_true);
  StatusOr<Matrix> x = CholeskySolveMatrix(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(*x, x_true, 1e-8));
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, −1
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------- LU

TEST(LuTest, SolveRecoversKnownSolution) {
  Rng rng(26);
  Matrix a = Matrix::RandomGaussian(15, 15, rng);
  Vector x_true(15);
  for (std::size_t i = 0; i < 15; ++i) x_true[i] = rng.Gaussian();
  Vector b = MatVec(a, x_true);
  StatusOr<Vector> x = LuSolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AlmostEqual(*x, x_true, 1e-8));
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  Vector b{2.0, 3.0};
  StatusOr<Vector> x = LuSolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(LuTest, DeterminantOfKnownMatrices) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 6.0, 1e-12);

  // Permutation matrix has determinant −1.
  Matrix p{{0.0, 1.0}, {1.0, 0.0}};
  StatusOr<LuDecomposition> lup = LuDecomposition::Compute(p);
  ASSERT_TRUE(lup.ok());
  EXPECT_NEAR(lup->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(27);
  Matrix a = Matrix::RandomGaussian(10, 10, rng);
  StatusOr<Matrix> inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(AlmostEqual(MatMul(a, *inv), Matrix::Identity(10), 1e-9));
  EXPECT_TRUE(AlmostEqual(MatMul(*inv, a), Matrix::Identity(10), 1e-9));
}

TEST(LuTest, SingularMatrixReported) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_EQ(LuSolve(a, Vector{1.0, 1.0}).status().code(),
            StatusCode::kNumericalError);
}

TEST(LuTest, MatrixSolveMatchesVectorSolve) {
  Rng rng(28);
  Matrix a = Matrix::RandomGaussian(8, 8, rng);
  Matrix b = Matrix::RandomGaussian(8, 4, rng);
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  Matrix x = lu->Solve(b);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(AlmostEqual(x.Col(j), lu->Solve(b.Col(j)), 1e-12));
  }
  EXPECT_TRUE(AlmostEqual(MatMul(a, x), b, 1e-8));
}

// Property sweep: solve/refactor across sizes.
class LuSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(LuSizeTest, ResidualIsTiny) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(100 + n));
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.Gaussian();
  StatusOr<Vector> x = LuSolve(a, b);
  ASSERT_TRUE(x.ok());
  Vector r = MatVec(a, *x) - b;
  EXPECT_LT(r.MaxAbs(), 1e-8 * std::max(1.0, b.MaxAbs()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeTest, ::testing::Values(1, 2, 3, 5, 8,
                                                              13, 21, 34, 55));

}  // namespace
}  // namespace umvsc::la
