#include "eval/hungarian.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace umvsc::eval {
namespace {

// Brute-force reference over all permutations (n <= 8).
double BruteForceMinCost(const la::Matrix& cost) {
  const std::size_t n = cost.rows();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += cost(i, perm[i]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, KnownThreeByThree) {
  la::Matrix cost{{4.0, 1.0, 3.0}, {2.0, 0.0, 5.0}, {3.0, 2.0, 2.0}};
  StatusOr<Assignment> result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total, 5.0);  // 1 + 2 + 2
}

TEST(HungarianTest, AssignmentIsAPermutation) {
  Rng rng(70);
  la::Matrix cost = la::Matrix::RandomUniform(10, 10, rng, 0.0, 100.0);
  StatusOr<Assignment> result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  std::set<std::size_t> cols(result->row_to_col.begin(),
                             result->row_to_col.end());
  EXPECT_EQ(cols.size(), 10u);
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  const int n = GetParam() % 7 + 2;  // sizes 2..8
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  la::Matrix cost = la::Matrix::RandomUniform(n, n, rng, -10.0, 10.0);
  StatusOr<Assignment> result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total, BruteForceMinCost(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, HungarianRandomTest,
                         ::testing::Range(0, 24));

TEST(HungarianTest, MaxProfitComplementsMinCost) {
  Rng rng(71);
  la::Matrix profit = la::Matrix::RandomUniform(6, 6, rng, 0.0, 5.0);
  StatusOr<Assignment> max = MaxProfitAssignment(profit);
  ASSERT_TRUE(max.ok());
  la::Matrix neg = profit;
  neg.Scale(-1.0);
  EXPECT_NEAR(max->total, -BruteForceMinCost(neg), 1e-9);
}

TEST(HungarianTest, OneByOne) {
  la::Matrix cost{{7.5}};
  StatusOr<Assignment> result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total, 7.5);
  EXPECT_EQ(result->row_to_col[0], 0u);
}

TEST(HungarianTest, TiesProduceSomeOptimalAssignment) {
  la::Matrix cost(4, 4, 1.0);  // everything ties
  StatusOr<Assignment> result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total, 4.0);
}

TEST(HungarianTest, RejectsInvalidInputs) {
  EXPECT_FALSE(MinCostAssignment(la::Matrix()).ok());
  EXPECT_FALSE(MinCostAssignment(la::Matrix(2, 3)).ok());
  la::Matrix inf_cost(2, 2);
  inf_cost(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MinCostAssignment(inf_cost).ok());
}

}  // namespace
}  // namespace umvsc::eval
