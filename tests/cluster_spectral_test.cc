#include "cluster/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"
#include "la/ops.h"

namespace umvsc::cluster {
namespace {

struct Moons {
  la::Matrix data;
  std::vector<std::size_t> labels;
};

// Interleaved half-moons: the canonical K-means-fails / spectral-wins case.
Moons MakeMoons(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Moons moons;
  moons.data = la::Matrix(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t moon = i % 2;
    moons.labels.push_back(moon);
    const double t = rng.Uniform() * M_PI;
    if (moon == 0) {
      moons.data(i, 0) = std::cos(t) + rng.Gaussian(0.0, noise);
      moons.data(i, 1) = std::sin(t) + rng.Gaussian(0.0, noise);
    } else {
      moons.data(i, 0) = 1.0 - std::cos(t) + rng.Gaussian(0.0, noise);
      moons.data(i, 1) = 0.5 - std::sin(t) + rng.Gaussian(0.0, noise);
    }
  }
  return moons;
}

la::Matrix MoonsAffinity(const Moons& moons) {
  la::Matrix d2 = graph::PairwiseSquaredDistances(moons.data);
  auto kernel = graph::SelfTuningKernel(d2, 7);
  UMVSC_CHECK(kernel.ok(), "kernel construction failed in test");
  // kNN sparsification is the standard recipe for interleaved shapes: the
  // dense kernel keeps weak cross-moon links that blur the cut.
  auto graph = graph::BuildKnnGraph(*kernel, 7);
  UMVSC_CHECK(graph.ok(), "kNN graph construction failed in test");
  return graph->ToDense();
}

TEST(SpectralEmbeddingTest, OrthonormalColumns) {
  Moons moons = MakeMoons(60, 0.05, 30);
  StatusOr<la::Matrix> f =
      SpectralEmbedding(MoonsAffinity(moons), 2,
                        graph::LaplacianKind::kSymmetric, false);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->cols(), 2u);
  EXPECT_LT(la::OrthonormalityError(*f), 1e-8);
}

TEST(SpectralEmbeddingTest, RowNormalizationMakesUnitRows) {
  Moons moons = MakeMoons(50, 0.05, 31);
  StatusOr<la::Matrix> f = SpectralEmbedding(
      MoonsAffinity(moons), 2, graph::LaplacianKind::kSymmetric, true);
  ASSERT_TRUE(f.ok());
  for (std::size_t i = 0; i < f->rows(); ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < 2; ++j) norm += (*f)(i, j) * (*f)(i, j);
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
  }
}

TEST(SpectralClusteringTest, SeparatesMoons) {
  Moons moons = MakeMoons(120, 0.04, 32);
  SpectralOptions options;
  options.num_clusters = 2;
  options.seed = 4;
  StatusOr<SpectralResult> result =
      SpectralClustering(MoonsAffinity(moons), options);
  ASSERT_TRUE(result.ok());
  StatusOr<double> acc = eval::ClusteringAccuracy(result->labels, moons.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(SpectralClusteringTest, RandomWalkLaplacianAlsoWorks) {
  Moons moons = MakeMoons(100, 0.04, 33);
  SpectralOptions options;
  options.num_clusters = 2;
  options.laplacian = graph::LaplacianKind::kRandomWalk;
  options.seed = 5;
  StatusOr<SpectralResult> result =
      SpectralClustering(MoonsAffinity(moons), options);
  ASSERT_TRUE(result.ok());
  StatusOr<double> acc = eval::ClusteringAccuracy(result->labels, moons.labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(SpectralEmbeddingSparseTest, MatchesDenseSubspace) {
  Moons moons = MakeMoons(80, 0.05, 34);
  la::Matrix affinity = MoonsAffinity(moons);
  StatusOr<la::CsrMatrix> sparse_w = graph::BuildKnnGraph(affinity, 7);
  ASSERT_TRUE(sparse_w.ok());
  StatusOr<la::Matrix> sparse_f =
      SpectralEmbeddingSparse(*sparse_w, 2, false);
  ASSERT_TRUE(sparse_f.ok()) << sparse_f.status().ToString();
  StatusOr<la::Matrix> dense_f = SpectralEmbedding(
      sparse_w->ToDense(), 2, graph::LaplacianKind::kSymmetric, false);
  ASSERT_TRUE(dense_f.ok());
  // Subspaces agree: the projector onto each embedding is identical.
  la::Matrix p_sparse = la::MatMulT(*sparse_f, *sparse_f);
  la::Matrix p_dense = la::MatMulT(*dense_f, *dense_f);
  EXPECT_TRUE(la::AlmostEqual(p_sparse, p_dense, 1e-5));
}

TEST(SpectralEmbeddingSparseTest, DisconnectedComponentsGiveIndicatorSubspace) {
  // Two cliques: embedding must span the component indicator space, making
  // the two groups linearly separable rows.
  std::vector<la::Triplet> t;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        if (i != j) t.push_back({5 * b + i, 5 * b + j, 1.0});
      }
    }
  }
  la::CsrMatrix w = la::CsrMatrix::FromTriplets(10, 10, std::move(t));
  StatusOr<la::Matrix> f = SpectralEmbeddingSparse(w, 2, true);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // Rows within a component coincide; across components they differ.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_TRUE(la::AlmostEqual(f->Row(i), f->Row(0), 1e-6));
    EXPECT_TRUE(la::AlmostEqual(f->Row(5 + i), f->Row(5), 1e-6));
  }
  EXPECT_FALSE(la::AlmostEqual(f->Row(0), f->Row(5), 1e-3));
}

TEST(SpectralEmbeddingTest, InvalidKRejected) {
  Moons moons = MakeMoons(20, 0.05, 35);
  la::Matrix affinity = MoonsAffinity(moons);
  EXPECT_FALSE(SpectralEmbedding(affinity, 0,
                                 graph::LaplacianKind::kSymmetric, true)
                   .ok());
  EXPECT_FALSE(SpectralEmbedding(affinity, 20,
                                 graph::LaplacianKind::kSymmetric, true)
                   .ok());
}

}  // namespace
}  // namespace umvsc::cluster
