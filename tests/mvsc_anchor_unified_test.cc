// Tests for the anchor (large-scale) mode of the unified solver: planted
// clusters recovered through the reduced space, label parity with the exact
// path on the same data, bitwise determinism across thread counts, output
// invariants, and the entry-point contract (anchor mode needs features, and
// leaving it disabled must not disturb the exact path).
#include "mvsc/anchor_unified.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/ops.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc {
namespace {

data::MultiViewDataset MakeDataset(std::uint64_t seed, std::size_t n = 600,
                                   std::size_t c = 4) {
  data::MultiViewConfig config;
  config.num_samples = n;
  config.num_clusters = c;
  config.views = {{8, data::ViewQuality::kInformative, 1.0},
                  {6, data::ViewQuality::kInformative, 1.0}};
  config.cluster_separation = 10.0;
  config.seed = seed;
  auto dataset = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(dataset.ok(), "dataset generation failed");
  return *std::move(dataset);
}

UnifiedOptions AnchorOptions(std::size_t c, std::size_t m = 48) {
  UnifiedOptions options;
  options.num_clusters = c;
  options.seed = 11;
  options.anchors.enabled = true;
  options.anchors.num_anchors = m;
  options.anchors.anchor_neighbors = 5;
  return options;
}

TEST(AnchorUnifiedTest, RecoversPlantedClusters) {
  data::MultiViewDataset dataset = MakeDataset(31);
  UnifiedMVSC solver(AnchorOptions(4));
  StatusOr<UnifiedResult> result = solver.Run(dataset);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  StatusOr<double> ari =
      eval::AdjustedRandIndex(result->labels, dataset.labels);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(AnchorUnifiedTest, AgreesWithTheExactPath) {
  data::MultiViewDataset dataset = MakeDataset(33);
  UnifiedOptions anchor_options = AnchorOptions(4);
  UnifiedOptions exact_options = anchor_options;
  exact_options.anchors.enabled = false;
  StatusOr<UnifiedResult> anchored = UnifiedMVSC(anchor_options).Run(dataset);
  StatusOr<UnifiedResult> exact = UnifiedMVSC(exact_options).Run(dataset);
  ASSERT_TRUE(anchored.ok()) << anchored.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  StatusOr<double> parity =
      eval::AdjustedRandIndex(anchored->labels, exact->labels);
  ASSERT_TRUE(parity.ok());
  EXPECT_GE(*parity, 0.95);
}

TEST(AnchorUnifiedTest, OutputInvariantsHold) {
  data::MultiViewDataset dataset = MakeDataset(35);
  const std::size_t n = dataset.NumSamples();
  UnifiedMVSC solver(AnchorOptions(4));
  StatusOr<UnifiedResult> result = solver.Run(dataset);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->labels.size(), n);
  ASSERT_EQ(result->indicator.rows(), n);
  ASSERT_EQ(result->indicator.cols(), 4u);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) row_sum += result->indicator(i, j);
    EXPECT_DOUBLE_EQ(row_sum, 1.0);
    EXPECT_DOUBLE_EQ(result->indicator(i, result->labels[i]), 1.0);
  }
  // F = B·G keeps orthonormal columns (B orthonormal, G orthonormal).
  ASSERT_EQ(result->embedding.rows(), n);
  ASSERT_EQ(result->embedding.cols(), 4u);
  EXPECT_LT(la::OrthonormalityError(result->embedding), 1e-6);
  EXPECT_LT(la::OrthonormalityError(result->rotation), 1e-9);
  double total = 0.0;
  for (double w : result->view_weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The objective trace is finite and the run reports convergence state.
  ASSERT_FALSE(result->objective_trace.empty());
  EXPECT_GT(result->iterations, 0u);
}

TEST(AnchorUnifiedTest, ThreadCountDoesNotChangeLabels) {
  data::MultiViewDataset dataset = MakeDataset(37, 400);
  UnifiedOptions options = AnchorOptions(4, 32);
  UnifiedResult reference;
  {
    ScopedNumThreads serial(1);
    StatusOr<UnifiedResult> got = UnifiedMVSC(options).Run(dataset);
    ASSERT_TRUE(got.ok());
    reference = *std::move(got);
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ScopedNumThreads scoped(threads);
    StatusOr<UnifiedResult> got = UnifiedMVSC(options).Run(dataset);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got->labels, reference.labels) << "threads=" << threads;
    EXPECT_EQ(std::memcmp(got->embedding.data(), reference.embedding.data(),
                          reference.embedding.rows() *
                              reference.embedding.cols() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

TEST(AnchorUnifiedTest, GraphEntryPointRejectsAnchorMode) {
  data::MultiViewDataset dataset = MakeDataset(39, 200);
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(dataset);
  ASSERT_TRUE(graphs.ok());
  UnifiedMVSC solver(AnchorOptions(4));
  StatusOr<UnifiedResult> result = solver.Run(*graphs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("Run(dataset)"), std::string::npos);
}

TEST(AnchorUnifiedTest, ValidatesAnchorCounts) {
  data::MultiViewDataset dataset = MakeDataset(41, 100);
  UnifiedOptions options = AnchorOptions(4);
  options.anchors.num_anchors = 200;  // > n
  EXPECT_FALSE(UnifiedMVSC(options).Run(dataset).ok());
  options.anchors.num_anchors = 32;
  options.anchors.anchor_neighbors = 0;
  EXPECT_FALSE(UnifiedMVSC(options).Run(dataset).ok());
  options.anchors.anchor_neighbors = 40;  // > m
  EXPECT_FALSE(UnifiedMVSC(options).Run(dataset).ok());
}

TEST(AnchorUnifiedTest, ModelExposesTheServingChain) {
  data::MultiViewDataset dataset = MakeDataset(43, 300);
  UnifiedOptions options = AnchorOptions(4, 32);
  StatusOr<AnchorUnifiedResult> got =
      SolveUnifiedAnchors(dataset, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const AnchorModel& model = got->model;
  ASSERT_EQ(model.views.size(), 2u);
  EXPECT_EQ(model.num_clusters, 4u);
  std::size_t total_dims = 0;
  for (const AnchorViewModel& view : model.views) {
    EXPECT_EQ(view.anchors.rows(), 32u);
    EXPECT_EQ(view.anchor_map.rows(), 32u);
    total_dims += view.anchor_map.cols();
  }
  EXPECT_EQ(model.assignment.rows(), total_dims);
  EXPECT_EQ(model.assignment.cols(), 4u);
}

}  // namespace
}  // namespace umvsc::mvsc
