#include "la/sparse.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"

namespace umvsc::la {
namespace {

CsrMatrix SmallExample() {
  // [[1, 0, 2],
  //  [0, 0, 3],
  //  [4, 5, 0]]
  return CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}, {2, 0, 4.0}, {2, 1, 5.0}});
}

TEST(CsrTest, FromTripletsBasicLayout) {
  CsrMatrix m = SmallExample();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.NumNonZeros(), 5u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 5.0);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.NumNonZeros(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.5);
}

TEST(CsrTest, UnsortedTripletsAreSorted) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{1, 2, 6.0}, {0, 1, 2.0}, {1, 0, 4.0}, {0, 0, 1.0}});
  Matrix d = m.ToDense();
  Matrix expected{{1.0, 2.0, 0.0}, {4.0, 0.0, 6.0}};
  EXPECT_TRUE(AlmostEqual(d, expected, 0.0));
}

TEST(CsrTest, EmptyRowsHandled) {
  CsrMatrix m = CsrMatrix::FromTriplets(4, 4, {{0, 0, 1.0}, {3, 3, 2.0}});
  EXPECT_DOUBLE_EQ(m.RowSums()[1], 0.0);
  Vector y = m.Multiply(Vector(4, 1.0));
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 2.0);
}

TEST(CsrTest, SpmvMatchesDense) {
  Rng rng(80);
  Matrix dense = Matrix::RandomGaussian(20, 15, rng);
  // Sparsify: zero out ~2/3 of entries.
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (rng.Uniform() < 0.66) dense(i, j) = 0.0;
    }
  }
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  Vector x(15);
  for (std::size_t i = 0; i < 15; ++i) x[i] = rng.Gaussian();
  EXPECT_TRUE(AlmostEqual(sparse.Multiply(x), MatVec(dense, x), 1e-12));
}

TEST(CsrTest, MultiplyIntoAccumulatesWithAlpha) {
  CsrMatrix m = SmallExample();
  Vector x{1.0, 1.0, 1.0};
  Vector y(3, 10.0);
  m.MultiplyInto(x, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 10.0 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(y[2], 10.0 + 2.0 * 9.0);
}

TEST(CsrTest, DenseMultiplyMatchesDense) {
  Rng rng(81);
  Matrix dense = Matrix::RandomGaussian(10, 8, rng);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  Matrix b = Matrix::RandomGaussian(8, 5, rng);
  EXPECT_TRUE(AlmostEqual(sparse.Multiply(b), MatMul(dense, b), 1e-12));
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  Rng rng(82);
  Matrix dense = Matrix::RandomGaussian(6, 9, rng);
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  EXPECT_TRUE(AlmostEqual(sparse.Transposed().ToDense(), Transpose(dense),
                          1e-14));
}

TEST(CsrTest, TransposedOfSparsePatternIsExactAndSorted) {
  Rng rng(83);
  Matrix dense = Matrix::RandomGaussian(40, 25, rng);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (rng.Uniform() < 0.8) dense(i, j) = 0.0;  // empty rows AND columns
    }
  }
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  CsrMatrix t = sparse.Transposed();
  EXPECT_EQ(t.rows(), 25u);
  EXPECT_EQ(t.cols(), 40u);
  EXPECT_EQ(t.NumNonZeros(), sparse.NumNonZeros());
  // The counting-sort scatter must leave columns strictly ascending within
  // each row (the FromParts invariant) and values exactly preserved.
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t k = t.row_offsets()[r] + 1; k < t.row_offsets()[r + 1];
         ++k) {
      EXPECT_LT(t.col_indices()[k - 1], t.col_indices()[k]);
    }
  }
  EXPECT_TRUE(AlmostEqual(t.ToDense(), Transpose(dense), 0.0));
  // Round trip is the identity, including the stored layout.
  CsrMatrix tt = t.Transposed();
  EXPECT_EQ(tt.row_offsets(), sparse.row_offsets());
  EXPECT_EQ(tt.col_indices(), sparse.col_indices());
  EXPECT_EQ(tt.values(), sparse.values());
}

TEST(CsrTest, SpmmMatchesDenseAndPerColumnSpmv) {
  Rng rng(84);
  Matrix dense = Matrix::RandomGaussian(30, 22, rng);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (rng.Uniform() < 0.7) dense(i, j) = 0.0;
    }
  }
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  // 79 columns forces a partial tail block in the cache-blocked panel loop.
  Matrix x = Matrix::RandomGaussian(22, 79, rng);
  Matrix y = Matrix::RandomGaussian(30, 79, rng);
  Matrix expected = y;
  expected.Add(MatMul(dense, x), 0.75);
  Matrix got = y;
  sparse.MultiplyInto(x, got, 0.75);
  EXPECT_TRUE(AlmostEqual(got, expected, 1e-12));
  // Bitwise agreement with per-column SpMV — the contract the block
  // eigensolver's determinism rests on.
  Matrix by_column = y;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    Vector xj = x.Col(j);
    Vector yj = by_column.Col(j);
    sparse.MultiplyInto(xj, yj, 0.75);
    by_column.SetCol(j, yj);
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.data()[i], by_column.data()[i]);
  }
}

TEST(CsrTest, SpmmZeroWidthPanelIsANoOp) {
  CsrMatrix m = SmallExample();
  Matrix x(3, 0);
  Matrix y(3, 0);
  m.MultiplyInto(x, y);  // must not touch anything or crash
  EXPECT_EQ(y.cols(), 0u);
}

TEST(CsrTest, RowSums) {
  CsrMatrix m = SmallExample();
  Vector sums = m.RowSums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 3.0);
  EXPECT_DOUBLE_EQ(sums[2], 9.0);
}

TEST(CsrTest, FromDenseDropTolerance) {
  Matrix dense{{1.0, 1e-15}, {0.0, 2.0}};
  CsrMatrix sparse = CsrMatrix::FromDense(dense, 1e-12);
  EXPECT_EQ(sparse.NumNonZeros(), 2u);
}

TEST(CsrTest, IdentityBehaves) {
  CsrMatrix eye = CsrMatrix::Identity(5);
  EXPECT_EQ(eye.NumNonZeros(), 5u);
  Vector x{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_TRUE(AlmostEqual(eye.Multiply(x), x, 0.0));
}

TEST(CsrTest, ScaleMultipliesValues) {
  CsrMatrix m = SmallExample();
  m.Scale(0.5);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 2.5);
}

TEST(CsrTest, IsSymmetricDetects) {
  CsrMatrix sym = CsrMatrix::FromTriplets(
      2, 2, {{0, 1, 3.0}, {1, 0, 3.0}, {0, 0, 1.0}});
  EXPECT_TRUE(sym.IsSymmetric());
  CsrMatrix asym = CsrMatrix::FromTriplets(2, 2, {{0, 1, 3.0}});
  EXPECT_FALSE(asym.IsSymmetric());
}

TEST(CsrDeathTest, OutOfRangeTripletAborts) {
  EXPECT_DEATH(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}), "out of range");
}

}  // namespace
}  // namespace umvsc::la
