#include "data/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"

namespace umvsc::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("umvsc_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, MatrixRoundTrip) {
  Rng rng(100);
  la::Matrix m = la::Matrix::RandomGaussian(7, 4, rng);
  ASSERT_TRUE(SaveMatrixCsv(m, Path("m.csv")).ok());
  StatusOr<la::Matrix> loaded = LoadMatrixCsv(Path("m.csv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(la::AlmostEqual(*loaded, m, 1e-15));
}

TEST_F(IoTest, LabelsRoundTrip) {
  std::vector<std::size_t> labels{0, 2, 1, 1, 0, 3};
  ASSERT_TRUE(SaveLabels(labels, Path("labels.txt")).ok());
  StatusOr<std::vector<std::size_t>> loaded = LoadLabels(Path("labels.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, labels);
}

TEST_F(IoTest, DatasetRoundTrip) {
  MultiViewConfig config;
  config.num_samples = 30;
  config.num_clusters = 3;
  config.views = {{4, ViewQuality::kInformative, 0.5},
                  {3, ViewQuality::kWeak, 1.0}};
  config.seed = 5;
  StatusOr<MultiViewDataset> dataset = MakeGaussianMultiView(config);
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(SaveDataset(*dataset, dir_.string()).ok());

  StatusOr<MultiViewDataset> loaded = LoadDataset(dir_.string(), "reloaded");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "reloaded");
  EXPECT_EQ(loaded->NumViews(), 2u);
  EXPECT_EQ(loaded->labels, dataset->labels);
  EXPECT_TRUE(la::AlmostEqual(loaded->views[0], dataset->views[0], 1e-12));
  EXPECT_TRUE(la::AlmostEqual(loaded->views[1], dataset->views[1], 1e-12));
}

TEST_F(IoTest, DatasetWithoutLabelsLoads) {
  MultiViewDataset d;
  d.views.push_back(la::Matrix{{1.0, 2.0}, {3.0, 4.0}, {0.0, 1.0}});
  ASSERT_TRUE(SaveDataset(d, dir_.string()).ok());
  StatusOr<MultiViewDataset> loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->labels.empty());
}

TEST_F(IoTest, MissingFilesReported) {
  EXPECT_EQ(LoadMatrixCsv(Path("absent.csv")).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(LoadLabels(Path("absent.txt")).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(LoadDataset(dir_.string()).status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, MalformedCsvReported) {
  {
    std::ofstream out(Path("bad.csv"));
    out << "1.0,2.0\n3.0,oops\n";
  }
  StatusOr<la::Matrix> r = LoadMatrixCsv(Path("bad.csv"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  {
    std::ofstream out(Path("ragged.csv"));
    out << "1.0,2.0\n3.0\n";
  }
  EXPECT_EQ(LoadMatrixCsv(Path("ragged.csv")).status().code(),
            StatusCode::kInvalidArgument);

  {
    std::ofstream out(Path("empty.csv"));
  }
  EXPECT_EQ(LoadMatrixCsv(Path("empty.csv")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MalformedLabelsReported) {
  {
    std::ofstream out(Path("neg.txt"));
    out << "0\n-3\n";
  }
  EXPECT_EQ(LoadLabels(Path("neg.txt")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IoTest, BlankLinesSkipped) {
  {
    std::ofstream out(Path("blank.csv"));
    out << "1.0,2.0\n\n3.0,4.0\n\n";
  }
  StatusOr<la::Matrix> m = LoadMatrixCsv(Path("blank.csv"));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 2u);
}

}  // namespace
}  // namespace umvsc::data
