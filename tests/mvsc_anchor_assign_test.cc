#include "mvsc/anchor_assign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "la/gemm_kernel.h"
#include "la/matrix.h"
#include "la/ops.h"

namespace umvsc::mvsc::assign {
namespace {

std::vector<double> RandomDoubles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Uniform() * 2.0 - 1.0;
  return out;
}

// The keystone pin: BlockedDot must reproduce a zero-initialized GemmAdd
// element bit for bit at EVERY inner dimension — below, at, and across the
// kernel's kc block edge. If la::kernel ever changes its accumulation grid,
// this test fails and kGemmKcBlock must move with it.
TEST(AnchorAssignTest, BlockedDotEqualsAGemmElement) {
  for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{100},
                        kGemmKcBlock - 1, kGemmKcBlock, kGemmKcBlock + 1,
                        std::size_t{1000}, 3 * kGemmKcBlock + 17}) {
    const std::vector<double> x = RandomDoubles(k, 11 + k);
    const std::vector<double> y = RandomDoubles(k, 77 + k);
    double c = 0.0;
    la::kernel::GemmAdd(1, k, {x.data(), k, false}, {y.data(), 1, false}, &c,
                        1, 0, 1);
    EXPECT_EQ(BlockedDot(x.data(), y.data(), k), c) << "k = " << k;
  }
}

TEST(AnchorAssignTest, BlockedDotEqualsPlainDotBelowTheBlockEdge) {
  // Inside one kc block the grid degenerates to the plain ascending dot —
  // which is why serving distances equal the training-side scalar dots for
  // every view with d <= kGemmKcBlock.
  const std::size_t k = 200;
  const std::vector<double> x = RandomDoubles(k, 5);
  const std::vector<double> y = RandomDoubles(k, 6);
  double plain = 0.0;
  for (std::size_t p = 0; p < k; ++p) plain += x[p] * y[p];
  EXPECT_EQ(BlockedDot(x.data(), y.data(), k), plain);
}

TEST(AnchorAssignTest, BlockedVecMatAddEqualsAMatMulRow) {
  for (std::size_t p : {std::size_t{3}, std::size_t{60}, kGemmKcBlock + 33}) {
    const std::size_t c = 7;
    const std::vector<double> u = RandomDoubles(p, 21 + p);
    la::Matrix a(p, c);
    const std::vector<double> av = RandomDoubles(p * c, 22 + p);
    std::copy(av.begin(), av.end(), a.data());

    la::Matrix u_mat(1, p);
    std::copy(u.begin(), u.end(), u_mat.data());
    const la::Matrix expected = la::MatMul(u_mat, a);

    std::vector<double> out(c, 0.0);
    BlockedVecMatAdd(u.data(), a, out.data());
    for (std::size_t j = 0; j < c; ++j) {
      EXPECT_EQ(out[j], expected(0, j)) << "p = " << p << " col " << j;
    }
  }
}

// Reference re-implementation of graph::BuildAnchorAffinity's row rule,
// written the straightforward way: full argsort by (distance, index),
// bandwidth from the s-th nearest, Gaussian weights in rank order,
// normalize, emit in ascending anchor order.
void ReferenceRow(const std::vector<double>& d2, std::size_t s,
                  std::vector<std::size_t>* cols,
                  std::vector<double>* weights) {
  std::vector<std::size_t> order(d2.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d2[a] < d2[b]; });
  order.resize(s);
  const double sigma2 = std::max(d2[order[s - 1]], 1e-300);
  std::vector<double> w(s);
  double sum = 0.0;
  for (std::size_t r = 0; r < s; ++r) {
    w[r] = std::exp(-d2[order[r]] / sigma2);
    sum += w[r];
  }
  // Multiply by the reciprocal, as graph::BuildAnchorAffinity does — a
  // divide would differ in the last bit.
  const double inv = 1.0 / sum;
  for (std::size_t r = 0; r < s; ++r) w[r] *= inv;
  std::vector<std::size_t> rank(s);
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  std::sort(rank.begin(), rank.end(),
            [&](std::size_t a, std::size_t b) { return order[a] < order[b]; });
  cols->clear();
  weights->clear();
  for (std::size_t r : rank) {
    cols->push_back(order[r]);
    weights->push_back(w[r]);
  }
}

TEST(AnchorAssignTest, SelectAnchorRowMatchesTheReferenceRule) {
  Rng rng(99);
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const std::size_t m = 5 + trial % 40;
    const std::size_t s = 1 + trial % std::min<std::size_t>(m, 8);
    std::vector<double> d2(m);
    for (double& v : d2) {
      // Quantized distances so exact ties happen often.
      v = std::floor(rng.Uniform() * 8.0) * 0.25;
    }
    std::vector<std::size_t> cols(s), ref_cols;
    std::vector<double> weights(s), ref_weights;
    SelectAnchorRow(d2.data(), m, s, cols.data(), weights.data());
    ReferenceRow(d2, s, &ref_cols, &ref_weights);
    for (std::size_t r = 0; r < s; ++r) {
      EXPECT_EQ(cols[r], ref_cols[r]) << "trial " << trial << " slot " << r;
      EXPECT_EQ(weights[r], ref_weights[r])
          << "trial " << trial << " slot " << r;
    }
    // Structural invariants: ascending columns, normalized mass.
    double sum = 0.0;
    for (std::size_t r = 0; r < s; ++r) {
      if (r > 0) EXPECT_LT(cols[r - 1], cols[r]);
      sum += weights[r];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AnchorAssignTest, SelectAnchorRowTiesKeepTheSmallerIndex) {
  const std::vector<double> d2 = {2.0, 1.0, 1.0, 1.0, 3.0};
  std::vector<std::size_t> cols(2);
  std::vector<double> weights(2);
  SelectAnchorRow(d2.data(), d2.size(), 2, cols.data(), weights.data());
  EXPECT_EQ(cols[0], 1u);
  EXPECT_EQ(cols[1], 2u);
  // Both selected distances equal the bandwidth → equal weights of 1/2.
  EXPECT_DOUBLE_EQ(weights[0], 0.5);
  EXPECT_DOUBLE_EQ(weights[1], 0.5);
}

TEST(AnchorAssignTest, RowSquaredNormIsTheAscendingSum) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_EQ(RowSquaredNorm(x.data(), x.size()), (1.0 + 4.0) + 9.0);
}

TEST(AnchorAssignTest, RowArgMaxTiesKeepTheSmallerIndex) {
  const std::vector<double> scores = {0.5, 2.0, 2.0, -1.0};
  EXPECT_EQ(RowArgMax(scores.data(), scores.size()), 1u);
  const std::vector<double> flat = {3.0, 3.0, 3.0};
  EXPECT_EQ(RowArgMax(flat.data(), flat.size()), 0u);
}

TEST(AnchorAssignTest, SquaredFromDotClampsAtZero) {
  EXPECT_EQ(SquaredFromDot(1.0, 1.0, 1.0 + 1e-18), 0.0);
  EXPECT_EQ(SquaredFromDot(4.0, 1.0, 1.0), 3.0);
}

}  // namespace
}  // namespace umvsc::mvsc::assign
