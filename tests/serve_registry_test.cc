#include "serve/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/check.h"
#include "data/synthetic.h"
#include "mvsc/anchor_unified.h"
#include "mvsc/out_of_sample.h"
#include "mvsc/unified.h"
#include "serve/model_io.h"

namespace umvsc::serve {
namespace {

data::MultiViewDataset MakeTrain(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 120;
  config.num_clusters = 3;
  config.views = {{10, data::ViewQuality::kInformative, 0.4},
                  {6, data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto full = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(full.ok(), "dataset generation failed");
  return *std::move(full);
}

mvsc::OutOfSampleModel MakeModel(const data::MultiViewDataset& train,
                                 std::size_t num_anchors = 16) {
  mvsc::UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  options.anchors.enabled = true;
  options.anchors.num_anchors = num_anchors;
  options.anchors.anchor_neighbors = 3;
  auto solved = mvsc::SolveUnifiedAnchors(train, options);
  UMVSC_CHECK(solved.ok(), "anchor solve failed");
  auto model = mvsc::OutOfSampleModel::FitAnchor(std::move(solved->model));
  UMVSC_CHECK(model.ok(), "FitAnchor failed");
  return *std::move(model);
}

TEST(RegistryTest, InsertGetRemoveLifecycle) {
  const data::MultiViewDataset train = MakeTrain(51);
  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Get("orl").status().code(), StatusCode::kNotFound);

  registry.Insert("orl", MakeModel(train));
  registry.Insert("coil", MakeModel(train));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Ids(), (std::vector<std::string>{"coil", "orl"}));

  auto handle = registry.Get("orl");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->num_clusters(), 3u);

  EXPECT_TRUE(registry.Remove("coil"));
  EXPECT_FALSE(registry.Remove("coil"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, HandlesSurviveAWarmSwap) {
  const data::MultiViewDataset train = MakeTrain(52);
  ModelRegistry registry;
  registry.Insert("m", MakeModel(train, 16));
  auto old_handle = registry.Get("m");
  ASSERT_TRUE(old_handle.ok());
  const mvsc::OutOfSampleModel* old_ptr = old_handle->get();

  // Replace the model behind the id: in-flight handles must keep serving
  // the old model, new Gets must see the new one.
  registry.Insert("m", MakeModel(train, 24));
  auto new_handle = registry.Get("m");
  ASSERT_TRUE(new_handle.ok());
  EXPECT_NE(new_handle->get(), old_ptr);
  EXPECT_EQ(old_handle->get(), old_ptr);
  EXPECT_EQ((*old_handle)->anchor_model()->views[0].anchors.rows(), 16u);
  EXPECT_EQ((*new_handle)->anchor_model()->views[0].anchors.rows(), 24u);

  auto labels = (*old_handle)->Predict(train);
  EXPECT_TRUE(labels.ok()) << labels.status().ToString();
}

TEST(RegistryTest, LoadFromFileInstallsTheModel) {
  const data::MultiViewDataset train = MakeTrain(53);
  const std::string path = ::testing::TempDir() + "/serve_registry_test.model";
  ASSERT_TRUE(ModelSerializer::Save(MakeModel(train), path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadFromFile("disk", path).ok());
  std::remove(path.c_str());
  auto handle = registry.Get("disk");
  ASSERT_TRUE(handle.ok());
  auto labels = (*handle)->Predict(train);
  EXPECT_TRUE(labels.ok()) << labels.status().ToString();
}

TEST(RegistryTest, LoadFromFilePropagatesErrorsWithoutInstalling) {
  ModelRegistry registry;
  Status status = registry.LoadFromFile("bad", "/nonexistent/model.bin");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.Get("bad").ok());
}

}  // namespace
}  // namespace umvsc::serve
