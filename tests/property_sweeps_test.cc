// Parameterized property sweeps across module boundaries: each suite checks
// one invariant over a grid of problem shapes, catching size-dependent bugs
// that single-shape unit tests miss.

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"
#include "graph/laplacian.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/svd.h"
#include "la/sym_eigen.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"
#include "test_util.h"

namespace umvsc {
namespace {

// ------------------------------------------------------------------ metrics

// Property: every clustering metric is invariant under any relabeling
// (permutation of cluster ids) of the prediction.
class MetricPermutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricPermutationSweep, MetricsAreRelabelingInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const std::size_t n = 60;
  const std::size_t k = 2 + GetParam() % 5;
  std::vector<std::size_t> truth(n), pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<std::size_t>(rng.UniformInt(k));
    pred[i] = static_cast<std::size_t>(rng.UniformInt(k));
  }
  // Densify ids so the permutation below is well defined.
  for (std::size_t c = 0; c < k; ++c) {
    truth[c % n] = c;
    pred[(c + 7) % n] = c;
  }
  // Random permutation of predicted ids.
  std::vector<std::size_t> perm(k);
  for (std::size_t c = 0; c < k; ++c) perm[c] = c;
  rng.Shuffle(perm);
  std::vector<std::size_t> relabeled(n);
  for (std::size_t i = 0; i < n; ++i) relabeled[i] = perm[pred[i]];

  auto before = eval::ScoreClustering(pred, truth);
  auto after = eval::ScoreClustering(relabeled, truth);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_NEAR(before->accuracy, after->accuracy, 1e-12);
  EXPECT_NEAR(before->nmi, after->nmi, 1e-12);
  EXPECT_NEAR(before->purity, after->purity, 1e-12);
  EXPECT_NEAR(before->ari, after->ari, 1e-12);
  EXPECT_NEAR(before->f_score, after->f_score, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPermutationSweep,
                         ::testing::Range(0, 12));

// ------------------------------------------------------------------- graphs

// Property: for any data shape, the self-tuning kNN pipeline produces a
// symmetric nonnegative affinity whose symmetric Laplacian is PSD with
// spectrum in [0, 2].
class GraphPipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GraphPipelineSweep, LaplacianSpectrumBounds) {
  auto [n, d, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + d * 10 + k));
  la::Matrix x = la::Matrix::RandomGaussian(n, d, rng);
  la::Matrix sq = graph::PairwiseSquaredDistances(x);
  auto kernel = graph::SelfTuningKernel(sq, k);
  ASSERT_TRUE(kernel.ok());
  auto w = graph::BuildKnnGraph(*kernel, k);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->IsSymmetric(1e-12));
  for (double v : w->values()) EXPECT_GE(v, 0.0);
  auto lap = graph::Laplacian(*w, graph::LaplacianKind::kSymmetric);
  ASSERT_TRUE(lap.ok());
  auto eig = la::SymmetricEigen(lap->ToDense());
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], -1e-9);
  EXPECT_LE(eig->eigenvalues[static_cast<std::size_t>(n) - 1], 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphPipelineSweep,
    ::testing::Values(std::tuple{12, 2, 3}, std::tuple{25, 5, 4},
                      std::tuple{40, 3, 8}, std::tuple{60, 10, 10},
                      std::tuple{30, 1, 5}));

// ------------------------------------------------------------------ lanczos

// Property: Lanczos extreme eigenvalues match the dense solver across k.
class LanczosKSweep : public ::testing::TestWithParam<int> {};

TEST_P(LanczosKSweep, MatchesDenseForAnyK) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  la::Matrix dense = test::RandomSymmetric(35, 7000 + GetParam());
  la::CsrMatrix sparse = la::CsrMatrix::FromDense(dense);
  auto full = la::SymmetricEigen(dense);
  auto lan = la::LanczosLargest(sparse, k);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lan.ok()) << lan.status().ToString();
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(lan->eigenvalues[j], full->eigenvalues[34 - j], 1e-7)
        << "k=" << k << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, LanczosKSweep, ::testing::Values(1, 2, 3, 5, 8,
                                                              13, 20));

// ------------------------------------------------------------------ unified

// Property: across (clusters, views) configurations, the unified solver
// produces structurally valid output (one-hot indicator, orthonormal F and
// R, simplex weights) and beats chance on well-separated data.
class UnifiedShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UnifiedShapeSweep, StructurallyValidAndBetterThanChance) {
  auto [c, v] = GetParam();
  data::MultiViewConfig config;
  config.num_samples = static_cast<std::size_t>(40 * c);
  config.num_clusters = static_cast<std::size_t>(c);
  for (int view = 0; view < v; ++view) {
    config.views.push_back(
        {8 + static_cast<std::size_t>(view) * 3,
         view + 1 == v && v > 1 ? data::ViewQuality::kNoisy
                                : data::ViewQuality::kInformative,
         0.6});
  }
  config.cluster_separation = 5.0;
  config.seed = static_cast<std::uint64_t>(c * 10 + v);
  auto dataset = data::MakeGaussianMultiView(config);
  ASSERT_TRUE(dataset.ok());
  auto graphs = mvsc::BuildGraphs(*dataset);
  ASSERT_TRUE(graphs.ok());

  mvsc::UnifiedOptions options;
  options.num_clusters = static_cast<std::size_t>(c);
  options.seed = 3;
  auto result = mvsc::UnifiedMVSC(options).Run(*graphs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_LT(la::OrthonormalityError(result->embedding), 1e-7);
  EXPECT_LT(la::OrthonormalityError(result->rotation), 1e-8);
  double weight_sum = 0.0;
  for (double w : result->view_weights) {
    EXPECT_GE(w, 0.0);
    weight_sum += w;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  for (std::size_t i = 0; i < result->indicator.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < result->indicator.cols(); ++j) {
      row_sum += result->indicator(i, j);
    }
    EXPECT_DOUBLE_EQ(row_sum, 1.0);
  }
  auto acc = eval::ClusteringAccuracy(result->labels, dataset->labels);
  ASSERT_TRUE(acc.ok());
  // Far above the 1/c chance level (capped: perfect accuracy must pass).
  EXPECT_GT(*acc, std::min(0.9, 2.0 / static_cast<double>(c)));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, UnifiedShapeSweep,
    ::testing::Values(std::tuple{2, 1}, std::tuple{2, 3}, std::tuple{3, 2},
                      std::tuple{4, 4}, std::tuple{6, 3}));

// -------------------------------------------------------------- procrustes

// Property: for any shape, ProcrustesRotation(Qᵀ) recovers Q when Q is
// orthogonal, and StiefelProjection is idempotent.
class ProcrustesSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProcrustesSweep, RecoversOrthogonalFactor) {
  const std::size_t c = static_cast<std::size_t>(GetParam());
  la::Matrix q = test::RandomOrthonormal(c, c, 900 + GetParam());
  auto r = la::ProcrustesRotation(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(la::AlmostEqual(*r, q, 1e-9));
  auto p = la::StiefelProjection(*r);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(la::AlmostEqual(*p, *r, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProcrustesSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 20));

}  // namespace
}  // namespace umvsc
