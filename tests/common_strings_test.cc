#include "common/strings.h"

#include <gtest/gtest.h>

namespace umvsc {
namespace {

TEST(SplitTest, BasicFields) {
  auto fields = Split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto fields = Split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, NoSeparator) {
  auto fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitTest, EmptyInput) {
  auto fields = Split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("xy"), "xy");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, RejectsMalformed) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseIntTest, ValidInputs) {
  long long v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseIntTest, RejectsMalformed) {
  long long v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("3.5", &v));
  EXPECT_FALSE(ParseInt("12a", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(500, 'y');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace umvsc
