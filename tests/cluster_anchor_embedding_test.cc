// Tests for the anchor-graph spectral embedding: the m × m reduced route
// must produce an orthonormal n × k embedding whose top directions separate
// well-separated blobs, expose the exact Z·anchor_map factorization it
// promises for out-of-sample extension, and stay bitwise deterministic
// across thread counts.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "cluster/anchor_embedding.h"
#include "cluster/kmeans.h"
#include "eval/metrics.h"
#include "graph/anchors.h"

namespace umvsc::cluster {
namespace {

// Three well-separated Gaussian blobs in 4D plus their ground truth.
la::Matrix Blobs(std::size_t n, std::uint64_t seed,
                 std::vector<std::size_t>* truth) {
  Rng rng(seed);
  la::Matrix x(n, 4);
  truth->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % 3;
    (*truth)[i] = c;
    for (std::size_t j = 0; j < 4; ++j) {
      x(i, j) = rng.Gaussian(static_cast<double>(c) * 6.0, 1.0);
    }
  }
  return x;
}

la::CsrMatrix BlobAffinity(const la::Matrix& x, std::size_t m,
                           std::size_t s) {
  graph::AnchorOptions selection;
  selection.num_anchors = m;
  StatusOr<la::Matrix> anchors = graph::SelectAnchors(x, selection);
  EXPECT_TRUE(anchors.ok());
  graph::AnchorGraphOptions options;
  options.anchor_neighbors = s;
  StatusOr<la::CsrMatrix> z = graph::BuildAnchorAffinity(x, *anchors, options);
  EXPECT_TRUE(z.ok());
  return *z;
}

TEST(AnchorEmbeddingTest, ValidatesInput) {
  std::vector<std::size_t> truth;
  la::Matrix x = Blobs(60, 3, &truth);
  la::CsrMatrix z = BlobAffinity(x, 12, 4);
  AnchorEmbeddingOptions options;
  options.dims = 0;
  EXPECT_FALSE(AnchorSpectralEmbedding(z, options).ok());
  options.dims = 13;  // > m
  EXPECT_FALSE(AnchorSpectralEmbedding(z, options).ok());
}

TEST(AnchorEmbeddingTest, OrthonormalColumnsAndDescendingSpectrum) {
  std::vector<std::size_t> truth;
  la::Matrix x = Blobs(200, 5, &truth);
  la::CsrMatrix z = BlobAffinity(x, 24, 5);
  AnchorEmbeddingOptions options;
  options.dims = 5;
  StatusOr<AnchorEmbeddingResult> got = AnchorSpectralEmbedding(z, options);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->embedding.rows(), 200u);
  ASSERT_EQ(got->embedding.cols(), 5u);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a; b < 5; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 200; ++i) {
        dot += got->embedding(i, a) * got->embedding(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-6) << a << "," << b;
    }
  }
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_GE(got->eigenvalues[t], -1e-12);
    EXPECT_LE(got->eigenvalues[t], 1.0 + 1e-9);
    if (t > 0) {
      EXPECT_LE(got->eigenvalues[t], got->eigenvalues[t - 1] + 1e-12);
    }
  }
  // Row-stochastic Z: the constant direction survives with eigenvalue 1.
  EXPECT_NEAR(got->eigenvalues[0], 1.0, 1e-8);
}

TEST(AnchorEmbeddingTest, EmbeddingIsExactlyZTimesAnchorMap) {
  std::vector<std::size_t> truth;
  la::Matrix x = Blobs(150, 7, &truth);
  la::CsrMatrix z = BlobAffinity(x, 20, 4);
  AnchorEmbeddingOptions options;
  options.dims = 4;
  StatusOr<AnchorEmbeddingResult> got = AnchorSpectralEmbedding(z, options);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->anchor_map.rows(), 20u);
  ASSERT_EQ(got->anchor_map.cols(), 4u);
  la::Matrix reconstructed(150, 4);
  z.MultiplyInto(got->anchor_map, reconstructed);
  EXPECT_EQ(std::memcmp(reconstructed.data(), got->embedding.data(),
                        150 * 4 * sizeof(double)),
            0)
      << "embedding must be the exact SpMM the extension map implies";
}

TEST(AnchorEmbeddingTest, SeparatesBlobs) {
  std::vector<std::size_t> truth;
  la::Matrix x = Blobs(300, 11, &truth);
  la::CsrMatrix z = BlobAffinity(x, 30, 5);
  AnchorEmbeddingOptions options;
  options.dims = 3;
  StatusOr<AnchorEmbeddingResult> got = AnchorSpectralEmbedding(z, options);
  ASSERT_TRUE(got.ok());
  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  kmeans.seed = 2;
  StatusOr<KMeansResult> clustered = KMeans(got->embedding, kmeans);
  ASSERT_TRUE(clustered.ok());
  StatusOr<double> ari = eval::AdjustedRandIndex(clustered->labels, truth);
  ASSERT_TRUE(ari.ok());
  EXPECT_GE(*ari, 0.98);
}

TEST(AnchorEmbeddingTest, ThreadCountDoesNotChangeTheEmbedding) {
  std::vector<std::size_t> truth;
  la::Matrix x = Blobs(180, 13, &truth);
  la::CsrMatrix z = BlobAffinity(x, 22, 4);
  AnchorEmbeddingOptions options;
  options.dims = 4;
  la::Matrix reference;
  {
    ScopedNumThreads serial(1);
    StatusOr<AnchorEmbeddingResult> got = AnchorSpectralEmbedding(z, options);
    ASSERT_TRUE(got.ok());
    reference = got->embedding;
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ScopedNumThreads scoped(threads);
    StatusOr<AnchorEmbeddingResult> got = AnchorSpectralEmbedding(z, options);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    ASSERT_EQ(got->embedding.rows(), reference.rows());
    EXPECT_EQ(std::memcmp(got->embedding.data(), reference.data(),
                          reference.rows() * reference.cols() *
                              sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

TEST(AnchorEmbeddingTest, ZeroMassAnchorDegradesGracefully) {
  // A hand-built Z whose last anchor column is never referenced: the
  // truncation rule must zero that direction instead of dividing by ~0.
  const std::size_t n = 12, m = 4;
  std::vector<std::size_t> offsets(n + 1);
  std::vector<std::size_t> cols;
  std::vector<double> vals;
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] = cols.size();
    const std::size_t a = i % 3;  // anchors 0..2 only; anchor 3 untouched
    const std::size_t b = (i + 1) % 3;
    cols.push_back(std::min(a, b));
    cols.push_back(std::max(a, b));
    vals.push_back(0.6);
    vals.push_back(0.4);
    if (cols[cols.size() - 2] > cols.back()) std::swap(vals[vals.size() - 2],
                                                       vals.back());
  }
  offsets[n] = cols.size();
  StatusOr<la::CsrMatrix> z =
      la::CsrMatrix::FromParts(n, m, offsets, cols, vals);
  ASSERT_TRUE(z.ok());
  AnchorEmbeddingOptions options;
  options.dims = 4;
  StatusOr<AnchorEmbeddingResult> got = AnchorSpectralEmbedding(*z, options);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->anchor_mass[3], 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(got->embedding(i, 3)));
  }
}

}  // namespace
}  // namespace umvsc::cluster
