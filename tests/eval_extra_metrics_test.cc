#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace umvsc::eval {
namespace {

using Labels = std::vector<std::size_t>;

TEST(FowlkesMallowsTest, PerfectClusteringIsOne) {
  Labels truth{0, 0, 1, 1, 2};
  StatusOr<double> fm = FowlkesMallows(truth, truth);
  ASSERT_TRUE(fm.ok());
  EXPECT_DOUBLE_EQ(*fm, 1.0);
}

TEST(FowlkesMallowsTest, IsGeometricMeanOfPairwiseScores) {
  Labels truth{0, 0, 0, 1, 1, 2};
  Labels pred{0, 0, 1, 1, 1, 1};
  StatusOr<double> fm = FowlkesMallows(pred, truth);
  StatusOr<PairwiseScores> s = PairwiseFScore(pred, truth);
  ASSERT_TRUE(fm.ok() && s.ok());
  EXPECT_NEAR(*fm, std::sqrt(s->precision * s->recall), 1e-12);
}

TEST(FowlkesMallowsTest, KnownValues) {
  // Permuted ids are a perfect clustering.
  EXPECT_NEAR(*FowlkesMallows({1, 1, 0, 0}, {0, 0, 1, 1}), 1.0, 1e-12);
  // All-merged vs two pairs: TP = 2, predicted pairs = 6, true pairs = 2,
  // so FM = √(2/6 · 2/2) = √(1/3).
  EXPECT_NEAR(*FowlkesMallows({0, 0, 0, 0}, {0, 0, 1, 1}),
              std::sqrt(1.0 / 3.0), 1e-9);
}

TEST(VMeasureTest, PerfectClusteringAllOnes) {
  Labels truth{0, 1, 2, 0, 1, 2};
  StatusOr<VMeasureScores> v = VMeasure(truth, truth);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->homogeneity, 1.0, 1e-12);
  EXPECT_NEAR(v->completeness, 1.0, 1e-12);
  EXPECT_NEAR(v->v_measure, 1.0, 1e-12);
}

TEST(VMeasureTest, OverSplittingKeepsHomogeneityHurtsCompleteness) {
  // Singleton predicted clusters: perfectly homogeneous, poor completeness.
  Labels truth{0, 0, 0, 1, 1, 1};
  Labels singletons{0, 1, 2, 3, 4, 5};
  StatusOr<VMeasureScores> v = VMeasure(singletons, truth);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->homogeneity, 1.0, 1e-12);
  EXPECT_LT(v->completeness, 0.5);
}

TEST(VMeasureTest, MergingKeepsCompletenessHurtsHomogeneity) {
  Labels truth{0, 0, 0, 1, 1, 1};
  Labels merged{0, 0, 0, 0, 0, 0};
  StatusOr<VMeasureScores> v = VMeasure(merged, truth);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->completeness, 1.0, 1e-12);
  EXPECT_NEAR(v->homogeneity, 0.0, 1e-12);
  EXPECT_NEAR(v->v_measure, 0.0, 1e-12);
}

TEST(VMeasureTest, VIsHarmonicMean) {
  Labels truth{0, 0, 1, 1, 2, 2, 0, 1};
  Labels pred{0, 1, 1, 1, 2, 0, 0, 2};
  StatusOr<VMeasureScores> v = VMeasure(pred, truth);
  ASSERT_TRUE(v.ok());
  const double expected = 2.0 * v->homogeneity * v->completeness /
                          (v->homogeneity + v->completeness);
  EXPECT_NEAR(v->v_measure, expected, 1e-12);
}

TEST(VMeasureTest, BoundedInUnitInterval) {
  Rng rng(90);
  for (int trial = 0; trial < 30; ++trial) {
    Labels a(30), b(30);
    for (std::size_t i = 0; i < 30; ++i) {
      a[i] = static_cast<std::size_t>(rng.UniformInt(4));
      b[i] = static_cast<std::size_t>(rng.UniformInt(5));
    }
    StatusOr<VMeasureScores> v = VMeasure(a, b);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(v->homogeneity, -1e-12);
    EXPECT_LE(v->homogeneity, 1.0 + 1e-12);
    EXPECT_GE(v->completeness, -1e-12);
    EXPECT_LE(v->completeness, 1.0 + 1e-12);
    EXPECT_GE(v->v_measure, -1e-12);
    EXPECT_LE(v->v_measure, 1.0 + 1e-12);
    // V-measure is symmetric under argument swap.
    StatusOr<VMeasureScores> vswap = VMeasure(b, a);
    ASSERT_TRUE(vswap.ok());
    EXPECT_NEAR(v->v_measure, vswap->v_measure, 1e-12);
  }
}

TEST(ExtraMetricsTest, InvalidInputsRejected) {
  EXPECT_FALSE(FowlkesMallows({}, {}).ok());
  EXPECT_FALSE(VMeasure({0, 1}, {0}).ok());
}

}  // namespace
}  // namespace umvsc::eval
