#include "la/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

void ExpectValidSvd(const Matrix& a, const SvdResult& r, double tol) {
  const std::size_t rank_dim = std::min(a.rows(), a.cols());
  ASSERT_EQ(r.singular_values.size(), rank_dim);
  ASSERT_EQ(r.u.rows(), a.rows());
  ASSERT_EQ(r.u.cols(), rank_dim);
  ASSERT_EQ(r.v.rows(), a.cols());
  ASSERT_EQ(r.v.cols(), rank_dim);

  EXPECT_LT(OrthonormalityError(r.u), tol);
  EXPECT_LT(OrthonormalityError(r.v), tol);
  // Descending, nonnegative.
  for (std::size_t i = 0; i < rank_dim; ++i) {
    EXPECT_GE(r.singular_values[i], -1e-14);
    if (i > 0) {
      EXPECT_LE(r.singular_values[i], r.singular_values[i - 1] + 1e-12);
    }
  }
  // Reconstruction U·Σ·Vᵀ = A.
  Matrix us = r.u;
  for (std::size_t i = 0; i < us.rows(); ++i) {
    for (std::size_t j = 0; j < us.cols(); ++j) {
      us(i, j) *= r.singular_values[j];
    }
  }
  EXPECT_TRUE(AlmostEqual(MatMulT(us, r.v), a, tol * std::max(1.0, a.MaxAbs())));
}

class SvdShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapeTest, RandomMatrixDecomposes) {
  auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 977 + n));
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  StatusOr<SvdResult> r = Svd(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectValidSvd(a, *r, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeTest,
    ::testing::Values(std::pair{1, 1}, std::pair{5, 5}, std::pair{12, 4},
                      std::pair{4, 12}, std::pair{40, 10}, std::pair{10, 40},
                      std::pair{30, 30}));

TEST(SvdTest, KnownDiagonal) {
  Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  StatusOr<SvdResult> r = Svd(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(r->singular_values[1], 2.0, 1e-12);
  EXPECT_NEAR(r->singular_values[2], 1.0, 1e-12);
}

TEST(SvdTest, NegativeDiagonalGivesPositiveSingularValues) {
  Matrix a = Matrix::Diagonal(Vector{-5.0, 2.0});
  StatusOr<SvdResult> r = Svd(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->singular_values[0], 5.0, 1e-12);
  EXPECT_NEAR(r->singular_values[1], 2.0, 1e-12);
  ExpectValidSvd(a, *r, 1e-10);
}

TEST(SvdTest, RankDeficientMatrix) {
  // Rank-1 outer product: second singular value must be ~0 and U must still
  // have orthonormal columns.
  Matrix a(6, 3);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
    }
  }
  StatusOr<SvdResult> r = Svd(a);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->singular_values[0], 1.0);
  EXPECT_NEAR(r->singular_values[1], 0.0, 1e-10);
  EXPECT_NEAR(r->singular_values[2], 0.0, 1e-10);
  ExpectValidSvd(a, *r, 1e-9);
}

TEST(SvdTest, ZeroMatrix) {
  Matrix a(4, 2);
  StatusOr<SvdResult> r = Svd(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->singular_values[0], 0.0, 1e-14);
  EXPECT_LT(OrthonormalityError(r->u), 1e-10);
}

TEST(SvdTest, SingularValuesMatchEigenvaluesOfGram) {
  Rng rng(70);
  Matrix a = Matrix::RandomGaussian(20, 6, rng);
  StatusOr<SvdResult> r = Svd(a);
  ASSERT_TRUE(r.ok());
  Matrix g = Gram(a);
  // σ_i² are the eigenvalues of AᵀA.
  double frob2 = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    frob2 += r->singular_values[i] * r->singular_values[i];
  }
  EXPECT_NEAR(frob2, g.Trace(), 1e-8 * g.Trace());
}

TEST(SvdTest, EmptyMatrixRejected) {
  EXPECT_FALSE(Svd(Matrix()).ok());
}

TEST(ProcrustesTest, RecoversKnownRotation) {
  // R* = argmax Tr(Rᵀ M); for M orthogonal the optimum is R = M.
  Matrix m = test::RandomOrthonormal(5, 5, 71);
  StatusOr<Matrix> r = ProcrustesRotation(m);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AlmostEqual(*r, m, 1e-9));
}

TEST(ProcrustesTest, ResultIsOrthogonalAndOptimal) {
  Rng rng(72);
  Matrix m = Matrix::RandomGaussian(4, 4, rng);
  StatusOr<Matrix> r = ProcrustesRotation(m);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(OrthonormalityError(*r), 1e-10);
  const double opt = TraceOfProduct(*r, m);
  // No random orthogonal matrix should beat the Procrustes solution.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Matrix q = test::RandomOrthonormal(4, 4, 100 + seed);
    EXPECT_LE(TraceOfProduct(q, m), opt + 1e-9);
  }
}

TEST(StiefelProjectionTest, ProjectionIsOrthonormalAndNearest) {
  Rng rng(73);
  Matrix m = Matrix::RandomGaussian(10, 3, rng);
  StatusOr<Matrix> p = StiefelProjection(m);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(OrthonormalityError(*p), 1e-10);
  // Nearest in Frobenius norm among sampled Stiefel points.
  const double dist = Add(m, *p, -1.0).FrobeniusNorm();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Matrix q = test::RandomOrthonormal(10, 3, 200 + seed);
    EXPECT_LE(dist, Add(m, q, -1.0).FrobeniusNorm() + 1e-9);
  }
}

TEST(StiefelProjectionTest, IdempotentOnStiefelPoints) {
  Matrix q = test::RandomOrthonormal(8, 3, 74);
  StatusOr<Matrix> p = StiefelProjection(q);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(AlmostEqual(*p, q, 1e-9));
}

}  // namespace
}  // namespace umvsc::la
