#include "data/standardize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::data {
namespace {

la::Matrix TestMatrix() {
  return la::Matrix{{1.0, 10.0, 5.0},
                    {2.0, 10.0, -3.0},
                    {3.0, 10.0, 4.0},
                    {6.0, 10.0, 0.0}};
}

TEST(StandardizeTest, ComputesPopulationStatistics) {
  const la::Matrix m = TestMatrix();
  la::Vector means, inv_stds;
  ColumnStandardization(m, &means, &inv_stds);
  ASSERT_EQ(means.size(), 3u);
  ASSERT_EQ(inv_stds.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
  // Population variance of column 0: ((−2)² + (−1)² + 0² + 3²) / 4 = 3.5.
  EXPECT_DOUBLE_EQ(inv_stds[0], 1.0 / std::sqrt(3.5));
  // Constant columns keep inv_std = 1 — centered, not rescaled.
  EXPECT_DOUBLE_EQ(inv_stds[1], 1.0);
}

TEST(StandardizeTest, AppliedColumnsAreZeroMeanUnitVariance) {
  const la::Matrix m = TestMatrix();
  la::Vector means, inv_stds;
  ColumnStandardization(m, &means, &inv_stds);
  const la::Matrix z = ApplyStandardization(m, means, inv_stds);
  for (std::size_t j = 0; j < z.cols(); ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < z.rows(); ++i) mean += z(i, j);
    mean /= static_cast<double>(z.rows());
    for (std::size_t i = 0; i < z.rows(); ++i) {
      var += (z(i, j) - mean) * (z(i, j) - mean);
    }
    var /= static_cast<double>(z.rows());
    EXPECT_NEAR(mean, 0.0, 1e-12);
    if (j != 1) EXPECT_NEAR(var, 1.0, 1e-12);
  }
  // The constant column collapses to exact zeros.
  for (std::size_t i = 0; i < z.rows(); ++i) EXPECT_EQ(z(i, 1), 0.0);
}

TEST(StandardizeTest, InPlaceMatchesCopyingVersion) {
  la::Matrix m = TestMatrix();
  la::Vector means, inv_stds;
  ColumnStandardization(m, &means, &inv_stds);
  const la::Matrix copy = ApplyStandardization(m, means, inv_stds);
  ApplyStandardizationInPlace(m, means, inv_stds);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(m(i, j), copy(i, j));
    }
  }
}

TEST(StandardizeTest, RowFormMatchesMatrixFormBitwise) {
  const la::Matrix m = TestMatrix();
  la::Vector means, inv_stds;
  ColumnStandardization(m, &means, &inv_stds);
  const la::Matrix z = ApplyStandardization(m, means, inv_stds);
  std::vector<double> row(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    ApplyStandardizationRow(m.RowPtr(i), m.cols(), means, inv_stds,
                            row.data());
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(row[j], z(i, j)) << "row " << i << " col " << j;
    }
  }
}

TEST(StandardizeTest, RowFormMayAliasItsInput) {
  const la::Matrix m = TestMatrix();
  la::Vector means, inv_stds;
  ColumnStandardization(m, &means, &inv_stds);
  const la::Matrix z = ApplyStandardization(m, means, inv_stds);
  std::vector<double> buf(m.RowPtr(2), m.RowPtr(2) + m.cols());
  ApplyStandardizationRow(buf.data(), m.cols(), means, inv_stds, buf.data());
  for (std::size_t j = 0; j < m.cols(); ++j) EXPECT_EQ(buf[j], z(2, j));
}

}  // namespace
}  // namespace umvsc::data
