#include "cluster/rotation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "la/ops.h"
#include "la/qr.h"
#include "test_util.h"

namespace umvsc::cluster {
namespace {

TEST(IndicatorTest, RoundTripLabelsIndicator) {
  std::vector<std::size_t> labels{0, 2, 1, 1, 0};
  la::Matrix y = LabelsToIndicator(labels, 3);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
  for (std::size_t i = 0; i < 5; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += y(i, j);
    EXPECT_DOUBLE_EQ(row_sum, 1.0);
    EXPECT_DOUBLE_EQ(y(i, labels[i]), 1.0);
  }
  EXPECT_EQ(IndicatorToLabels(y), labels);
}

TEST(IndicatorTest, ScaledIndicatorHasUnitColumns) {
  std::vector<std::size_t> labels{0, 0, 0, 0, 1};
  la::Matrix y = LabelsToIndicator(labels, 2);
  la::Matrix y_hat = ScaledIndicator(y);
  // Column norms are 1 regardless of cluster size.
  for (std::size_t j = 0; j < 2; ++j) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < 5; ++i) norm2 += y_hat(i, j) * y_hat(i, j);
    EXPECT_NEAR(norm2, 1.0, 1e-12);
  }
  EXPECT_NEAR(y_hat(0, 0), 0.5, 1e-12);  // 1/sqrt(4)
  EXPECT_NEAR(y_hat(4, 1), 1.0, 1e-12);
}

TEST(IndicatorTest, ScaledIndicatorEmptyColumnStaysZero) {
  la::Matrix y(3, 2);
  y(0, 0) = 1.0;
  y(1, 0) = 1.0;
  y(2, 0) = 1.0;  // column 1 empty
  la::Matrix y_hat = ScaledIndicator(y);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y_hat(i, 1), 0.0);
}

// Builds an embedding that IS a rotated scaled indicator: discretization
// must recover the planted clusters exactly.
TEST(DiscretizeTest, RecoversPlantedRotatedIndicator) {
  const std::size_t n = 60, c = 4;
  Rng rng(40);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::size_t>(rng.UniformInt(c));
  }
  // Guarantee every cluster is non-empty.
  for (std::size_t j = 0; j < c; ++j) labels[j] = j;
  la::Matrix y_hat = ScaledIndicator(LabelsToIndicator(labels, c));
  la::Matrix rot = test::RandomOrthonormal(c, c, 41);
  la::Matrix f = la::MatMulT(y_hat, rot);  // F = Ŷ·Rᵀ, so F·R = Ŷ

  RotationOptions options;
  options.seed = 42;
  StatusOr<RotationResult> result = DiscretizeEmbedding(f, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  StatusOr<double> acc = eval::ClusteringAccuracy(result->labels, labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
  EXPECT_LT(la::OrthonormalityError(result->rotation), 1e-9);
}

TEST(DiscretizeTest, IndicatorRowsAreOneHot) {
  la::Matrix f = test::RandomOrthonormal(30, 3, 43);
  RotationOptions options;
  options.seed = 1;
  StatusOr<RotationResult> result = DiscretizeEmbedding(f, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < 30; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(result->indicator(i, j) == 0.0 ||
                  result->indicator(i, j) == 1.0);
      row_sum += result->indicator(i, j);
    }
    EXPECT_DOUBLE_EQ(row_sum, 1.0);
  }
}

TEST(DiscretizeTest, MoreRestartsNeverWorseObjective) {
  la::Matrix f = test::RandomOrthonormal(40, 4, 44);
  RotationOptions one;
  one.restarts = 1;
  one.seed = 7;
  RotationOptions many = one;
  many.restarts = 10;
  StatusOr<RotationResult> r1 = DiscretizeEmbedding(f, one);
  StatusOr<RotationResult> r10 = DiscretizeEmbedding(f, many);
  ASSERT_TRUE(r1.ok() && r10.ok());
  EXPECT_LE(r10->objective, r1->objective + 1e-9);
}

TEST(DiscretizeTest, InvalidInputsRejected) {
  EXPECT_FALSE(DiscretizeEmbedding(la::Matrix(2, 3), {}).ok());  // n < c
  RotationOptions zero_restarts;
  zero_restarts.restarts = 0;
  EXPECT_FALSE(
      DiscretizeEmbedding(la::Matrix(5, 2), zero_restarts).ok());
}

}  // namespace
}  // namespace umvsc::cluster
