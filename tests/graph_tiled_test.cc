// Equivalence tests for the tiled O(n·k)-memory graph construction: the
// feature-direct builders must emit CSR graphs BYTE-identical to the dense
// distance → kernel → sparsify pipeline, at every tile size and every
// thread count. Byte-identical means equal row offsets, equal column
// indices, and bit-for-bit equal double values (memcmp, not tolerance).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/knn_graph.h"

namespace umvsc::graph {
namespace {

la::Matrix RandomFeatures(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Gaussian((i % 3) * 2.5, 1.0);
    }
  }
  return x;
}

void ExpectBitwiseEqual(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_offsets(), b.row_offsets());
  ASSERT_EQ(a.col_indices(), b.col_indices());
  ASSERT_EQ(a.values().size(), b.values().size());
  EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                        a.values().size() * sizeof(double)),
            0);
}

// The dense reference pipeline the tiled builder replaces.
la::CsrMatrix DenseKnnReference(const la::Matrix& x, std::size_t k,
                                KnnSymmetrization sym) {
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> kernel = SelfTuningKernel(d2, k);
  EXPECT_TRUE(kernel.ok());
  StatusOr<la::CsrMatrix> w = BuildKnnGraph(*kernel, k, sym);
  EXPECT_TRUE(w.ok());
  return *w;
}

TEST(TiledGraphTest, FromFeaturesMatchesDensePipeline) {
  la::Matrix x = RandomFeatures(61, 4, 7);
  for (KnnSymmetrization sym :
       {KnnSymmetrization::kUnion, KnnSymmetrization::kMutual,
        KnnSymmetrization::kAverage}) {
    la::CsrMatrix dense = DenseKnnReference(x, 5, sym);
    StatusOr<la::CsrMatrix> tiled = BuildKnnGraphFromFeatures(x, 5, sym);
    ASSERT_TRUE(tiled.ok());
    ExpectBitwiseEqual(dense, *tiled);
  }
}

TEST(TiledGraphTest, TileSizeDoesNotChangeTheGraph) {
  la::Matrix x = RandomFeatures(53, 3, 11);
  StatusOr<la::CsrMatrix> reference = BuildKnnGraphFromFeatures(x, 4);
  ASSERT_TRUE(reference.ok());
  for (std::size_t tile : {std::size_t{1}, std::size_t{7}, std::size_t{32},
                           std::size_t{64}, std::size_t{4096}}) {
    TiledGraphOptions tiling;
    tiling.tile_rows = tile;
    StatusOr<la::CsrMatrix> got =
        BuildKnnGraphFromFeatures(x, 4, KnnSymmetrization::kUnion, tiling);
    ASSERT_TRUE(got.ok()) << "tile=" << tile;
    ExpectBitwiseEqual(*reference, *got);
  }
}

TEST(TiledGraphTest, ThreadCountDoesNotChangeTheGraph) {
  la::Matrix x = RandomFeatures(47, 5, 13);
  la::CsrMatrix reference;
  {
    ScopedNumThreads serial(1);
    StatusOr<la::CsrMatrix> got = BuildKnnGraphFromFeatures(x, 6);
    ASSERT_TRUE(got.ok());
    reference = *got;
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}, std::size_t{8}}) {
    ScopedNumThreads scoped(threads);
    TiledGraphOptions tiling;
    tiling.tile_rows = 8;  // several tiles per thread
    StatusOr<la::CsrMatrix> got =
        BuildKnnGraphFromFeatures(x, 6, KnnSymmetrization::kUnion, tiling);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    ExpectBitwiseEqual(reference, *got);
  }
}

TEST(TiledGraphTest, DenseWrapperMatchesAcrossTilesAndThreads) {
  la::Matrix x = RandomFeatures(40, 3, 17);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> kernel = SelfTuningKernel(d2, 4);
  ASSERT_TRUE(kernel.ok());
  StatusOr<la::CsrMatrix> reference = BuildKnnGraph(*kernel, 4);
  ASSERT_TRUE(reference.ok());
  for (std::size_t tile : {std::size_t{3}, std::size_t{16}, std::size_t{128}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ScopedNumThreads scoped(threads);
      TiledGraphOptions tiling;
      tiling.tile_rows = tile;
      StatusOr<la::CsrMatrix> got =
          BuildKnnGraph(*kernel, 4, KnnSymmetrization::kUnion, tiling);
      ASSERT_TRUE(got.ok());
      ExpectBitwiseEqual(*reference, *got);
    }
  }
}

TEST(TiledGraphTest, AdaptiveFromFeaturesMatchesDense) {
  la::Matrix x = RandomFeatures(45, 4, 19);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::CsrMatrix> reference = AdaptiveNeighborGraph(d2, 7);
  ASSERT_TRUE(reference.ok());
  for (std::size_t tile : {std::size_t{1}, std::size_t{16}, std::size_t{512}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{6}}) {
      ScopedNumThreads scoped(threads);
      TiledGraphOptions tiling;
      tiling.tile_rows = tile;
      StatusOr<la::CsrMatrix> got =
          AdaptiveNeighborGraphFromFeatures(x, 7, tiling);
      ASSERT_TRUE(got.ok());
      ExpectBitwiseEqual(*reference, *got);
    }
  }
}

TEST(TiledGraphTest, SelfTuningScalesMatchDenseDefinition) {
  la::Matrix x = RandomFeatures(37, 6, 23);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  const std::size_t k = 5;
  StatusOr<la::Vector> scales = SelfTuningScales(x, k, /*tile_rows=*/9);
  ASSERT_TRUE(scales.ok());
  // Dense definition: σ_i = sqrt(k-th smallest squared distance to another
  // point), exactly as SelfTuningKernel extracts it.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::vector<double> row;
    for (std::size_t j = 0; j < x.rows(); ++j) {
      if (j != i) row.push_back(d2(i, j));
    }
    std::nth_element(row.begin(), row.begin() + (k - 1), row.end());
    const double expected = std::sqrt(std::max(row[k - 1], 1e-300));
    EXPECT_EQ((*scales)[i], expected) << "row " << i;
  }
}

TEST(TiledGraphTest, NegativeAffinityStillRejected) {
  la::Matrix affinity(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      affinity(i, j) = i == j ? 0.0 : 1.0;
    }
  }
  affinity(5, 2) = -0.25;
  for (std::size_t tile : {std::size_t{1}, std::size_t{4}, std::size_t{128}}) {
    TiledGraphOptions tiling;
    tiling.tile_rows = tile;
    StatusOr<la::CsrMatrix> w =
        BuildKnnGraph(affinity, 2, KnnSymmetrization::kUnion, tiling);
    EXPECT_FALSE(w.ok());
    EXPECT_NE(w.status().message().find("nonnegative"), std::string::npos);
  }
}

}  // namespace
}  // namespace umvsc::graph
