#include <gtest/gtest.h>

#include "data/incomplete.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/lanczos.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc {
namespace {

data::MultiViewDataset MakeDataset(std::uint64_t seed, std::size_t n = 150) {
  data::MultiViewConfig config;
  config.num_samples = n;
  config.num_clusters = 3;
  config.views = {{12, data::ViewQuality::kInformative, 0.4},
                  {10, data::ViewQuality::kInformative, 0.6},
                  {8, data::ViewQuality::kWeak, 1.0}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto d = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(d.ok(), "dataset generation failed");
  return std::move(*d);
}

TEST(MakeIncompleteTest, RespectsConstraintsAndFraction) {
  data::MultiViewDataset d = MakeDataset(1);
  StatusOr<data::ViewPresence> presence = data::MakeIncomplete(d, 0.3, 7);
  ASSERT_TRUE(presence.ok()) << presence.status().ToString();
  ASSERT_TRUE(presence->Validate(d).ok());
  // Missing fraction roughly honored.
  std::size_t absent = 0;
  for (std::size_t v = 0; v < 3; ++v) {
    absent += d.NumSamples() - presence->CountPresent(v);
  }
  const double fraction =
      static_cast<double>(absent) / static_cast<double>(3 * d.NumSamples());
  EXPECT_NEAR(fraction, 0.3, 0.05);
  // Every sample somewhere.
  for (std::size_t i = 0; i < d.NumSamples(); ++i) {
    bool anywhere = false;
    for (std::size_t v = 0; v < 3; ++v) anywhere |= presence->present[v][i];
    EXPECT_TRUE(anywhere);
  }
}

TEST(MakeIncompleteTest, ZeroFractionKeepsEverything) {
  data::MultiViewDataset d = MakeDataset(2);
  la::Matrix before = d.views[0];
  StatusOr<data::ViewPresence> presence = data::MakeIncomplete(d, 0.0, 7);
  ASSERT_TRUE(presence.ok());
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(presence->CountPresent(v), d.NumSamples());
  }
  EXPECT_TRUE(la::AlmostEqual(d.views[0], before, 0.0));
}

TEST(MakeIncompleteTest, AbsentRowsAreOverwritten) {
  data::MultiViewDataset d = MakeDataset(3);
  data::MultiViewDataset original = d;
  StatusOr<data::ViewPresence> presence = data::MakeIncomplete(d, 0.4, 9);
  ASSERT_TRUE(presence.ok());
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::size_t i = 0; i < d.NumSamples(); ++i) {
      if (presence->present[v][i]) {
        EXPECT_TRUE(
            la::AlmostEqual(d.views[v].Row(i), original.views[v].Row(i), 0.0));
      } else {
        EXPECT_FALSE(
            la::AlmostEqual(d.views[v].Row(i), original.views[v].Row(i), 1e-9));
      }
    }
  }
}

TEST(MakeIncompleteTest, ReportsAchievedFraction) {
  data::MultiViewDataset d = MakeDataset(10);
  StatusOr<data::ViewPresence> presence = data::MakeIncomplete(d, 0.3, 7);
  ASSERT_TRUE(presence.ok());
  EXPECT_DOUBLE_EQ(presence->target_missing_fraction, 0.3);
  // The achieved fraction is the exact removed-pair count, not the target.
  std::size_t absent = 0;
  for (std::size_t v = 0; v < 3; ++v) {
    absent += d.NumSamples() - presence->CountPresent(v);
  }
  const double fraction =
      static_cast<double>(absent) / static_cast<double>(3 * d.NumSamples());
  EXPECT_DOUBLE_EQ(presence->achieved_missing_fraction, fraction);
  EXPECT_FALSE(presence->Saturated());
}

TEST(MakeIncompleteTest, SaturationIsReportedNotHidden) {
  // Two views and a min_present_per_view that keeps nearly every sample:
  // the feasible removals cap far below the 0.45 target. The call must
  // still succeed (the pattern is the best achievable) but say so.
  data::MultiViewConfig config;
  config.num_samples = 40;
  config.num_clusters = 2;
  config.views = {{6, data::ViewQuality::kInformative, 0.4},
                  {5, data::ViewQuality::kInformative, 0.4}};
  config.seed = 11;
  auto d = data::MakeGaussianMultiView(config);
  ASSERT_TRUE(d.ok());
  StatusOr<data::ViewPresence> presence =
      data::MakeIncomplete(*d, 0.45, 7, /*min_present_per_view=*/36);
  ASSERT_TRUE(presence.ok()) << presence.status().ToString();
  // At most 4 removals per view are legal: achieved <= 8/80 = 0.1.
  EXPECT_LE(presence->achieved_missing_fraction, 0.1 + 1e-12);
  EXPECT_TRUE(presence->Saturated());
  ASSERT_TRUE(presence->Validate(*d).ok());
}

TEST(MakeIncompleteTest, NoiseFillStatsComeFromPresentRowsOnly) {
  // Repeatedly re-apply MakeIncomplete to the same dataset — the streaming
  // pattern. With fill statistics over present rows only, the fill scale is
  // pinned to the (unchanged) observed rows and the view's overall variance
  // stays near the original; folding previously filled rows into the
  // statistics would compound it instead.
  data::MultiViewDataset d = MakeDataset(12, 300);
  const la::Matrix original = d.views[0];
  auto total_variance = [](const la::Matrix& m) {
    double mean = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) mean += m.data()[i];
    mean /= static_cast<double>(m.size());
    double var = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      const double c = m.data()[i] - mean;
      var += c * c;
    }
    return var / static_cast<double>(m.size());
  };
  const double base_var = total_variance(original);
  double last_var = base_var;
  for (std::uint64_t pass = 0; pass < 6; ++pass) {
    StatusOr<data::ViewPresence> presence =
        data::MakeIncomplete(d, 0.35, 100 + pass);
    ASSERT_TRUE(presence.ok());
    last_var = total_variance(d.views[0]);
    // Scale-matched fill: the view-wide variance stays within a modest
    // factor of the original on EVERY pass (compounding would blow past 2x
    // of the original within a few passes and keep growing).
    EXPECT_LT(last_var, 2.0 * base_var) << "pass " << pass;
    EXPECT_GT(last_var, 0.3 * base_var) << "pass " << pass;
  }
}

TEST(MakeIncompleteTest, RejectsInvalidArguments) {
  data::MultiViewDataset d = MakeDataset(4);
  EXPECT_FALSE(data::MakeIncomplete(d, -0.1, 1).ok());
  EXPECT_FALSE(data::MakeIncomplete(d, 1.0, 1).ok());
  data::MultiViewDataset broken;
  EXPECT_FALSE(data::MakeIncomplete(broken, 0.2, 1).ok());
}

TEST(BuildGraphsIncompleteTest, AbsentVerticesHaveZeroRows) {
  data::MultiViewDataset d = MakeDataset(5);
  StatusOr<data::ViewPresence> presence = data::MakeIncomplete(d, 0.3, 11);
  ASSERT_TRUE(presence.ok());
  StatusOr<MultiViewGraphs> graphs = BuildGraphsIncomplete(d, *presence);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  for (std::size_t v = 0; v < 3; ++v) {
    const la::CsrMatrix& lap = graphs->laplacians[v];
    EXPECT_TRUE(lap.IsSymmetric(1e-9));
    for (std::size_t i = 0; i < d.NumSamples(); ++i) {
      const std::size_t row_nnz =
          lap.row_offsets()[i + 1] - lap.row_offsets()[i];
      if (!presence->present[v][i]) {
        EXPECT_EQ(row_nnz, 0u) << "view " << v << " row " << i;
      } else {
        EXPECT_GT(row_nnz, 0u);
      }
    }
    // Spectrum still within [0, 2].
    auto top = la::LanczosLargest(lap, 1);
    ASSERT_TRUE(top.ok());
    EXPECT_LE(top->eigenvalues[0], 2.0 + 1e-8);
  }
}

TEST(BuildGraphsIncompleteTest, FullPresenceMatchesCompleteBuilder) {
  data::MultiViewDataset d = MakeDataset(6);
  data::ViewPresence presence;
  presence.present.assign(3, std::vector<bool>(d.NumSamples(), true));
  StatusOr<MultiViewGraphs> incomplete = BuildGraphsIncomplete(d, presence);
  StatusOr<MultiViewGraphs> complete = BuildGraphs(d);
  ASSERT_TRUE(incomplete.ok() && complete.ok());
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_TRUE(la::AlmostEqual(incomplete->affinities[v].ToDense(),
                                complete->affinities[v].ToDense(), 1e-12));
  }
}

TEST(IncompleteClusteringTest, UnifiedSurvivesModerateMissingness) {
  data::MultiViewDataset d = MakeDataset(7, 200);
  std::vector<std::size_t> truth = d.labels;
  StatusOr<data::ViewPresence> presence = data::MakeIncomplete(d, 0.25, 13);
  ASSERT_TRUE(presence.ok());
  StatusOr<MultiViewGraphs> graphs = BuildGraphsIncomplete(d, *presence);
  ASSERT_TRUE(graphs.ok());
  UnifiedOptions options;
  options.num_clusters = 3;
  options.seed = 2;
  StatusOr<UnifiedResult> result = UnifiedMVSC(options).Run(*graphs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto acc = eval::ClusteringAccuracy(result->labels, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.85);
}

TEST(IncompleteClusteringTest, RejectsMismatchedPresence) {
  data::MultiViewDataset d = MakeDataset(8);
  data::ViewPresence wrong;
  wrong.present.assign(2, std::vector<bool>(d.NumSamples(), true));
  EXPECT_FALSE(BuildGraphsIncomplete(d, wrong).ok());
}

}  // namespace
}  // namespace umvsc::mvsc
