#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/jacobi_eigen.h"
#include "la/ops.h"
#include "la/sym_eigen.h"
#include "test_util.h"

namespace umvsc::la {
namespace {

// Checks A·V = V·diag(λ) and VᵀV = I.
void ExpectValidEigenDecomposition(const Matrix& a, const SymEigenResult& r,
                                   double tol) {
  const std::size_t n = a.rows();
  ASSERT_EQ(r.eigenvalues.size(), n);
  ASSERT_EQ(r.eigenvectors.rows(), n);
  ASSERT_EQ(r.eigenvectors.cols(), n);
  EXPECT_LT(OrthonormalityError(r.eigenvectors), tol);
  Matrix av = MatMul(a, r.eigenvectors);
  Matrix vd = r.eigenvectors;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) vd(i, j) *= r.eigenvalues[j];
  }
  EXPECT_TRUE(AlmostEqual(av, vd, tol * std::max(1.0, a.MaxAbs())));
  // Ascending order.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(r.eigenvalues[i - 1], r.eigenvalues[i] + 1e-12);
  }
}

TEST(SymEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal(Vector{3.0, -1.0, 2.0});
  StatusOr<SymEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r->eigenvalues[2], 3.0, 1e-12);
  ExpectValidEigenDecomposition(a, *r, 1e-10);
}

TEST(SymEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  StatusOr<SymEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r->eigenvalues[1], 3.0, 1e-12);
}

TEST(SymEigenTest, PrescribedSpectrumIsRecovered) {
  Vector evals{-4.0, -1.5, 0.0, 0.5, 2.0, 7.5};
  Matrix a = test::SymmetricWithSpectrum(evals, 31);
  StatusOr<SymEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_NEAR(r->eigenvalues[i], evals[i], 1e-9);
  }
  ExpectValidEigenDecomposition(a, *r, 1e-9);
}

TEST(SymEigenTest, RepeatedEigenvaluesHandled) {
  Vector evals{1.0, 1.0, 1.0, 5.0, 5.0};
  Matrix a = test::SymmetricWithSpectrum(evals, 32);
  StatusOr<SymEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_NEAR(r->eigenvalues[i], evals[i], 1e-9);
  }
  ExpectValidEigenDecomposition(a, *r, 1e-9);
}

TEST(SymEigenTest, OneByOneAndEmpty) {
  Matrix a{{4.0}};
  StatusOr<SymEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->eigenvalues[0], 4.0);

  StatusOr<SymEigenResult> e = SymmetricEigen(Matrix());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->eigenvalues.size(), 0u);
}

TEST(SymEigenTest, RejectsAsymmetricInput) {
  Matrix a{{1.0, 5.0}, {0.0, 1.0}};
  EXPECT_EQ(SymmetricEigen(a).status().code(), StatusCode::kInvalidArgument);
}

class SymEigenSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SymEigenSizeTest, RandomSymmetricDecomposes) {
  const int n = GetParam();
  Matrix a = test::RandomSymmetric(n, static_cast<std::uint64_t>(n) * 7 + 1);
  StatusOr<SymEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectValidEigenDecomposition(a, *r, 1e-8);
  // Trace is preserved by similarity.
  EXPECT_NEAR(r->eigenvalues.Sum(), a.Trace(),
              1e-9 * std::max(1.0, std::fabs(a.Trace())));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigenSizeTest,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33, 64, 100));

TEST(JacobiEigenTest, MatchesQlPipelineOnRandomMatrices) {
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    Matrix a = test::RandomSymmetric(12, seed);
    StatusOr<SymEigenResult> ql = SymmetricEigen(a);
    StatusOr<SymEigenResult> jc = JacobiEigen(a);
    ASSERT_TRUE(ql.ok());
    ASSERT_TRUE(jc.ok());
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(ql->eigenvalues[i], jc->eigenvalues[i], 1e-9)
          << "seed " << seed << " index " << i;
    }
  }
}

TEST(JacobiEigenTest, ValidDecomposition) {
  Matrix a = test::RandomSymmetric(20, 50);
  StatusOr<SymEigenResult> r = JacobiEigen(a);
  ASSERT_TRUE(r.ok());
  ExpectValidEigenDecomposition(a, *r, 1e-9);
}

TEST(TridiagonalEigenTest, KnownLaplacianChain) {
  // Path-graph Laplacian tridiagonal: eigenvalues 2 − 2cos(kπ/n)… use the
  // free-end chain [2, −1; −1, 2 …] with known spectrum
  // λ_k = 2 − 2cos(kπ/(n+1)), k = 1…n.
  const std::size_t n = 8;
  Vector d(n, 2.0);
  Vector e(n - 1, -1.0);
  StatusOr<SymEigenResult> r = TridiagonalEigen(d, e);
  ASSERT_TRUE(r.ok());
  for (std::size_t k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * M_PI /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(r->eigenvalues[k - 1], expected, 1e-10);
  }
}

TEST(TridiagonalEigenTest, RejectsBadSubdiagonalLength) {
  EXPECT_EQ(TridiagonalEigen(Vector(4), Vector(4)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExtremeEigenpairsTest, SmallestAndLargestAgreeWithFull) {
  Matrix a = test::RandomSymmetric(15, 60);
  StatusOr<SymEigenResult> full = SymmetricEigen(a);
  StatusOr<SymEigenResult> lo = SmallestEigenpairs(a, 3);
  StatusOr<SymEigenResult> hi = LargestEigenpairs(a, 3);
  ASSERT_TRUE(full.ok() && lo.ok() && hi.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(lo->eigenvalues[i], full->eigenvalues[i]);
    EXPECT_DOUBLE_EQ(hi->eigenvalues[i], full->eigenvalues[14 - i]);
  }
  EXPECT_EQ(lo->eigenvectors.cols(), 3u);
  EXPECT_EQ(hi->eigenvectors.cols(), 3u);
  EXPECT_LT(OrthonormalityError(lo->eigenvectors), 1e-9);
}

TEST(ExtremeEigenpairsTest, RejectsOversizedK) {
  Matrix a = test::RandomSymmetric(4, 61);
  EXPECT_FALSE(SmallestEigenpairs(a, 5).ok());
  EXPECT_FALSE(LargestEigenpairs(a, 5).ok());
}

}  // namespace
}  // namespace umvsc::la
