#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "la/ops.h"

namespace umvsc::graph {
namespace {

TEST(DistanceTest, KnownPairs) {
  la::Matrix x{{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}};
  la::Matrix d2 = PairwiseSquaredDistances(x);
  EXPECT_DOUBLE_EQ(d2(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(d2(0, 2), 1.0);
  EXPECT_NEAR(d2(1, 2), 18.0, 1e-12);
  la::Matrix d = PairwiseDistances(x);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
}

TEST(DistanceTest, DiagonalZeroAndSymmetric) {
  Rng rng(1);
  la::Matrix x = la::Matrix::RandomGaussian(20, 6, rng);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  EXPECT_TRUE(d2.IsSymmetric(1e-12));
  for (std::size_t i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(d2(i, i), 0.0);
}

TEST(DistanceTest, MatchesNaiveComputation) {
  Rng rng(2);
  la::Matrix x = la::Matrix::RandomGaussian(15, 4, rng);
  la::Matrix d2 = PairwiseSquaredDistances(x);
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t j = 0; j < 15; ++j) {
      double ref = 0.0;
      for (std::size_t p = 0; p < 4; ++p) {
        const double diff = x(i, p) - x(j, p);
        ref += diff * diff;
      }
      EXPECT_NEAR(d2(i, j), ref, 1e-10);
    }
  }
}

TEST(DistanceTest, NonNegativeDespiteRounding) {
  // Identical rows stress the Gram-expansion cancellation.
  la::Matrix x(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = 1e8;
    x(i, 1) = -1e8;
    x(i, 2) = 0.5;
  }
  la::Matrix d2 = PairwiseSquaredDistances(x);
  for (std::size_t i = 0; i < d2.size(); ++i) EXPECT_GE(d2.data()[i], 0.0);
}

TEST(CosineTest, KnownVectors) {
  la::Matrix x{{1.0, 0.0}, {0.0, 2.0}, {3.0, 3.0}, {0.0, 0.0}};
  la::Matrix s = CosineSimilarity(x);
  EXPECT_NEAR(s(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(s(0, 2), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
  // Zero rows get similarity 0 everywhere, including self.
  EXPECT_DOUBLE_EQ(s(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(s(3, 0), 0.0);
}

TEST(GaussianKernelTest, ValuesAndDiagonal) {
  la::Matrix d2{{0.0, 4.0}, {4.0, 0.0}};
  StatusOr<la::Matrix> w = GaussianKernel(d2, 1.0);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)(0, 0), 0.0);  // no self loops
  EXPECT_NEAR((*w)(0, 1), std::exp(-2.0), 1e-12);
  EXPECT_TRUE(w->IsSymmetric(1e-14));
}

TEST(GaussianKernelTest, RejectsBadInputs) {
  la::Matrix d2(2, 3);
  EXPECT_FALSE(GaussianKernel(d2, 1.0).ok());
  la::Matrix sq(2, 2);
  EXPECT_FALSE(GaussianKernel(sq, 0.0).ok());
  EXPECT_FALSE(GaussianKernel(sq, -1.0).ok());
}

TEST(SelfTuningKernelTest, ScalesAdaptToDensity) {
  // Two clusters of very different scales: the self-tuning kernel should
  // give strong in-cluster affinity for BOTH, while a single global sigma
  // fit to the tight cluster starves the loose one.
  Rng rng(3);
  la::Matrix x(20, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = rng.Gaussian(0.0, 0.01);
    x(i, 1) = rng.Gaussian(0.0, 0.01);
    x(10 + i, 0) = rng.Gaussian(100.0, 5.0);
    x(10 + i, 1) = rng.Gaussian(100.0, 5.0);
  }
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<la::Matrix> w = SelfTuningKernel(d2, 3);
  ASSERT_TRUE(w.ok());
  double tight_min = 1.0, loose_min = 1.0;
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      if (i == j) continue;
      tight_min = std::min(tight_min, (*w)(i, j));
      loose_min = std::min(loose_min, (*w)(10 + i, 10 + j));
    }
  }
  EXPECT_GT(tight_min, 1e-4);
  EXPECT_GT(loose_min, 1e-4);
  // Cross-cluster affinity is negligible.
  EXPECT_LT((*w)(0, 15), 1e-8);
}

TEST(SelfTuningKernelTest, RejectsBadK) {
  la::Matrix d2(5, 5);
  EXPECT_FALSE(SelfTuningKernel(d2, 0).ok());
  EXPECT_FALSE(SelfTuningKernel(d2, 5).ok());
}

TEST(MedianSigmaTest, MedianOfKnownDistances) {
  // Points at 0, 1, 3 on a line: pairwise distances 1, 2, 3 → median 2.
  la::Matrix x{{0.0}, {1.0}, {3.0}};
  la::Matrix d2 = PairwiseSquaredDistances(x);
  StatusOr<double> sigma = MedianHeuristicSigma(d2);
  ASSERT_TRUE(sigma.ok());
  EXPECT_DOUBLE_EQ(*sigma, 2.0);
}

TEST(MedianSigmaTest, AllZeroFails) {
  la::Matrix d2(3, 3);
  EXPECT_FALSE(MedianHeuristicSigma(d2).ok());
}

}  // namespace
}  // namespace umvsc::graph
