#include <gtest/gtest.h>

#include "data/incomplete.h"
#include "data/synthetic.h"
#include "graph/connectivity.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "mvsc/graphs.h"

namespace umvsc::mvsc {
namespace {

data::MultiViewDataset MakeDataset(std::uint64_t seed) {
  data::MultiViewConfig config;
  config.num_samples = 120;
  config.num_clusters = 3;
  config.views = {{10, data::ViewQuality::kInformative, 0.4},
                  {8, data::ViewQuality::kInformative, 0.6}};
  config.cluster_separation = 5.0;
  config.seed = seed;
  auto d = data::MakeGaussianMultiView(config);
  UMVSC_CHECK(d.ok(), "dataset generation failed");
  return std::move(*d);
}

TEST(MassNormalizedCombinationTest, CompleteViewsGiveScaledWeightedSum) {
  data::MultiViewDataset d = MakeDataset(1);
  auto graphs = BuildGraphs(d);
  ASSERT_TRUE(graphs.ok());
  std::vector<double> coeff{0.7, 0.3};
  la::CsrMatrix normalized =
      MassNormalizedCombination(graphs->laplacians, coeff);
  la::CsrMatrix plain = la::WeightedSum(graphs->laplacians, coeff);
  // With complete views every Laplacian has unit diagonal, so the mass is
  // Σcoeff everywhere and the normalized combination is the plain sum
  // divided by Σcoeff.
  la::Matrix expected = plain.ToDense();
  expected.Scale(1.0 / (coeff[0] + coeff[1]));
  EXPECT_TRUE(la::AlmostEqual(normalized.ToDense(), expected, 1e-10));
}

TEST(MassNormalizedCombinationTest, UnitDiagonalUnderIncompleteness) {
  data::MultiViewDataset d = MakeDataset(2);
  auto presence = data::MakeIncomplete(d, 0.3, 5);
  ASSERT_TRUE(presence.ok());
  auto graphs = BuildGraphsIncomplete(d, *presence);
  ASSERT_TRUE(graphs.ok());
  std::vector<double> coeff{0.9, 0.1};
  la::CsrMatrix normalized =
      MassNormalizedCombination(graphs->laplacians, coeff);
  // Every sample is present somewhere, so every diagonal is renormalized
  // to exactly 1 — the conditioning property the solvers rely on.
  for (std::size_t i = 0; i < normalized.rows(); ++i) {
    EXPECT_NEAR(normalized.At(i, i), 1.0, 1e-9) << "row " << i;
  }
  // Spectrum within [0, 2].
  auto top = la::LanczosLargest(normalized, 1);
  ASSERT_TRUE(top.ok());
  EXPECT_LE(top->eigenvalues[0], 2.0 + 1e-8);
  auto bottom = la::LanczosSmallest(normalized, 1, 2.0 + 1e-9);
  ASSERT_TRUE(bottom.ok());
  EXPECT_GE(bottom->eigenvalues[0], -1e-8);
}

TEST(BridgingTest, DisconnectedViewsBecomeConnected) {
  // Very separated clusters: raw kNN graphs disconnect; with bridging on
  // (the default) every per-view affinity is a single component.
  data::MultiViewConfig config;
  config.num_samples = 90;
  config.num_clusters = 3;
  config.views = {{8, data::ViewQuality::kInformative, 0.1}};
  config.cluster_separation = 30.0;
  config.seed = 3;
  auto d = data::MakeGaussianMultiView(config);
  ASSERT_TRUE(d.ok());

  GraphOptions bridged;
  auto with_bridge = BuildGraphs(*d, bridged);
  ASSERT_TRUE(with_bridge.ok());
  EXPECT_TRUE(graph::IsConnected(with_bridge->affinities[0]));

  GraphOptions raw;
  raw.bridge_components = false;
  auto without = BuildGraphs(*d, raw);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(graph::IsConnected(without->affinities[0]));
  // Bridging only ADDS edges.
  EXPECT_GE(with_bridge->affinities[0].NumNonZeros(),
            without->affinities[0].NumNonZeros());
}

TEST(BridgingTest, BridgeWeightIsWeakestEdge) {
  data::MultiViewConfig config;
  config.num_samples = 60;
  config.num_clusters = 2;
  config.views = {{6, data::ViewQuality::kInformative, 0.1}};
  config.cluster_separation = 40.0;
  config.seed = 4;
  auto d = data::MakeGaussianMultiView(config);
  ASSERT_TRUE(d.ok());
  GraphOptions raw;
  raw.bridge_components = false;
  auto without = BuildGraphs(*d, raw);
  ASSERT_TRUE(without.ok());
  double min_raw = 1e300;
  for (double v : without->affinities[0].values()) {
    if (v > 0.0) min_raw = std::min(min_raw, v);
  }
  auto with_bridge = BuildGraphs(*d);
  ASSERT_TRUE(with_bridge.ok());
  double min_bridged = 1e300;
  for (double v : with_bridge->affinities[0].values()) {
    if (v > 0.0) min_bridged = std::min(min_bridged, v);
  }
  // The added bridges reuse the weakest existing weight, so the minimum
  // positive edge weight is unchanged.
  EXPECT_NEAR(min_bridged, min_raw, 1e-15);
}

}  // namespace
}  // namespace umvsc::mvsc
