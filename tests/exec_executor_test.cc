// Tests of the multi-tenant job executor: the two-level scheduling budget
// (a budget-b job's parallel regions fan out over exactly b participants),
// bitwise determinism of job outputs against a plain serial loop at every
// worker count and submission order, exception isolation between sibling
// jobs, cancellation, and the foreground/background lanes.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "exec/executor.h"
#include "la/batched.h"
#include "la/matrix.h"
#include "la/svd.h"

namespace umvsc::exec {
namespace {

JobSpec MakeJob(std::function<Status(JobContext&)> work,
                std::size_t thread_budget = 1, bool background = false) {
  JobSpec spec;
  spec.work = std::move(work);
  spec.thread_budget = thread_budget;
  spec.background = background;
  return spec;
}

TEST(JobExecutorTest, SubmitRunsJobAndReturnsItsStatus) {
  JobExecutor executor;
  std::atomic<bool> ran{false};
  JobHandle ok = executor.Submit(MakeJob([&ran](JobContext&) {
    ran.store(true);
    return Status::OK();
  }));
  EXPECT_TRUE(ok.Await().ok());
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(ok.Done());
  JobHandle bad = executor.Submit(MakeJob(
      [](JobContext&) { return Status::InvalidArgument("nope"); }));
  EXPECT_FALSE(bad.Await().ok());
}

// The level-2 budget satellite: a budget-b job's ParallelFor over many
// grain-1 chunks is cut into exactly b spans — one per participating
// thread — never the process default, never the whole pool.
TEST(JobExecutorTest, BudgetedJobFansOutOverExactlyBudgetSpans) {
  JobExecutor::Options options;
  options.num_workers = 1;
  JobExecutor executor(options);
  for (const std::size_t budget : {std::size_t{1}, std::size_t{3}}) {
    std::atomic<std::size_t> spans{0};
    std::size_t seen_budget = 0;
    JobHandle handle =
        executor.Submit(MakeJob(
            [&spans, &seen_budget](JobContext& context) {
              seen_budget = context.thread_budget();
              ParallelFor(0, 24, 1, [&spans](std::size_t, std::size_t) {
                spans.fetch_add(1);
              });
              return Status::OK();
            },
            budget));
    ASSERT_TRUE(handle.Await().ok());
    EXPECT_EQ(seen_budget, budget);
    EXPECT_EQ(spans.load(), budget);
  }
}

// The budget must not leak: while a budget-1 job is running, a plain
// thread with no context still resolves the process default.
TEST(JobExecutorTest, BudgetDoesNotLeakOutsideTheJob) {
  JobExecutor executor;
  std::promise<void> inside;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  JobHandle handle = executor.Submit(MakeJob(
      [&inside, release_future](JobContext&) {
        inside.set_value();
        release_future.wait();
        return Status::OK();
      },
      /*thread_budget=*/1));
  inside.get_future().wait();
  EXPECT_EQ(CurrentParallelContext(), nullptr);  // this thread: no context
  release.set_value();
  EXPECT_TRUE(handle.Await().ok());
}

double NestedWorkload(std::size_t n) {
  // Outer fan-out whose body runs a nested ParallelFor — the composed
  // shape of a job: per-view loop around row-parallel kernels. Division
  // and sqrt make any partitioning change visible in the low bits.
  std::vector<double> rows(n, 0.0);
  ParallelFor(0, n, 2, [&rows](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      ParallelFor(i * 31, i * 31 + 97, 8,
                  [&acc, i](std::size_t lo2, std::size_t hi2) {
                    for (std::size_t j = lo2; j < hi2; ++j) {
                      acc += std::sqrt(static_cast<double>(j + 1)) /
                             static_cast<double>(i + 1);
                    }
                  });
      rows[i] = acc;
    }
  });
  double total = 0.0;
  for (double r : rows) total += r;
  return total;
}

// Nested ParallelFor inside a budgeted job is bitwise identical to the
// same computation run serially with no executor at all.
TEST(JobExecutorTest, NestedParallelForMatchesSerialBitwise) {
  const double serial = NestedWorkload(40);
  for (const std::size_t budget : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
      JobExecutor::Options options;
      options.num_workers = workers;
      JobExecutor executor(options);
      double value = 0.0;
      JobHandle handle = executor.Submit(MakeJob(
          [&value](JobContext&) {
            value = NestedWorkload(40);
            return Status::OK();
          },
          budget));
      ASSERT_TRUE(handle.Await().ok());
      EXPECT_EQ(value, serial) << "budget " << budget << " workers "
                               << workers;
    }
  }
}

// The exception-isolation satellite: a throwing job surfaces as ITS
// status; siblings and the executor itself are unaffected.
TEST(JobExecutorTest, ExceptionInOneJobDoesNotPoisonSiblings) {
  JobExecutor::Options options;
  options.num_workers = 2;
  JobExecutor executor(options);
  JobHandle thrower = executor.Submit(MakeJob([](JobContext&) -> Status {
    throw std::runtime_error("tenant bug");
  }));
  std::vector<JobHandle> siblings;
  for (int i = 0; i < 4; ++i) {
    siblings.push_back(executor.Submit(
        MakeJob([](JobContext&) { return Status::OK(); })));
  }
  Status failed = thrower.Await();
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("tenant bug"), std::string::npos);
  for (JobHandle& sibling : siblings) {
    EXPECT_TRUE(sibling.Await().ok());
  }
  // Still serviceable after the escape.
  EXPECT_TRUE(executor
                  .Submit(MakeJob([](JobContext&) { return Status::OK(); }))
                  .Await()
                  .ok());
}

TEST(JobExecutorTest, CancelRemovesPendingJobFromQueue) {
  JobExecutor executor;  // one worker
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  JobHandle blocker = executor.Submit(MakeJob([release_future](JobContext&) {
    release_future.wait();
    return Status::OK();
  }));
  std::atomic<bool> ran{false};
  JobHandle pending = executor.Submit(MakeJob([&ran](JobContext&) {
    ran.store(true);
    return Status::OK();
  }));
  EXPECT_TRUE(pending.Cancel());  // still queued behind the blocker
  Status cancelled = pending.Await();  // resolves without the worker
  EXPECT_FALSE(cancelled.ok());
  release.set_value();
  EXPECT_TRUE(blocker.Await().ok());
  executor.WaitAll();
  EXPECT_FALSE(ran.load());
}

TEST(JobExecutorTest, RunningJobSeesCooperativeCancelFlag) {
  JobExecutor executor;
  std::promise<void> started;
  std::atomic<bool> observed{false};
  JobHandle handle = executor.Submit(MakeJob(
      [&started, &observed](JobContext& context) {
        started.set_value();
        while (!context.cancel_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        observed.store(true);
        return Status::OK();  // body decides; here it exits cleanly
      },
      /*thread_budget=*/1, /*background=*/true));
  started.get_future().wait();
  EXPECT_FALSE(handle.Cancel());  // running: flag only
  EXPECT_TRUE(handle.Await().ok());
  EXPECT_TRUE(observed.load());
}

TEST(JobExecutorTest, ForegroundJobsOvertakeQueuedBackgroundJobs) {
  JobExecutor executor;  // one worker so queue order is observable
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  JobHandle blocker = executor.Submit(MakeJob([release_future](JobContext&) {
    release_future.wait();
    return Status::OK();
  }));
  std::vector<int> order;
  std::mutex order_mu;
  auto record = [&order, &order_mu](int tag) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(tag);
  };
  JobHandle background = executor.Submit(MakeJob(
      [&record](JobContext&) {
        record(1);
        return Status::OK();
      },
      1, /*background=*/true));
  JobHandle foreground = executor.Submit(MakeJob([&record](JobContext&) {
    record(2);
    return Status::OK();
  }));
  release.set_value();
  executor.WaitAll();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // foreground ran first despite later submission
  EXPECT_EQ(order[1], 1);
}

TEST(JobExecutorTest, OnWorkerThreadDistinguishesInsideFromOutside) {
  JobExecutor executor;
  EXPECT_FALSE(executor.OnWorkerThread());
  bool inside = false;
  JobHandle handle = executor.Submit(
      MakeJob([&inside, &executor](JobContext&) {
        inside = executor.OnWorkerThread();
        return Status::OK();
      }));
  ASSERT_TRUE(handle.Await().ok());
  EXPECT_TRUE(inside);
}

TEST(JobExecutorTest, ContextProvidesArenaScratchAndHooks) {
  JobExecutor executor;
  JobHandle handle = executor.Submit(MakeJob([](JobContext& context) {
    double* workspace = context.arena().New<double>(64);
    if (workspace == nullptr) return Status::Internal("no arena memory");
    workspace[63] = 1.0;
    const mvsc::SolveHooks hooks = context.hooks();
    if (hooks.scratch == nullptr) return Status::Internal("no scratch");
    if (hooks.batcher == nullptr) return Status::Internal("no batcher");
    return Status::OK();
  }));
  EXPECT_TRUE(handle.Await().ok());
}

la::Matrix TestMatrix(std::size_t n, std::uint64_t salt) {
  la::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Deterministic full-rank-ish fill; no RNG so every run agrees.
      m(i, j) = std::sin(static_cast<double>(salt + i * n + j + 1)) +
                (i == j ? 2.0 : 0.0);
    }
  }
  return m;
}

// The headline contract: per-job results (here, Procrustes rotations
// routed through the cross-job batcher) are bitwise identical to a plain
// serial loop, at worker counts {1, 2, 8}, forward and reversed order.
TEST(JobExecutorTest, JobOutputsMatchSerialLoopBitwiseEverywhere) {
  constexpr std::size_t kJobs = 24;
  std::vector<la::Matrix> inputs;
  inputs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    inputs.push_back(TestMatrix(3 + i % 3, 17 * (i + 1)));
  }
  std::vector<la::Matrix> baseline;
  for (const la::Matrix& input : inputs) {
    StatusOr<la::Matrix> rotation = la::ProcrustesRotation(input);
    ASSERT_TRUE(rotation.ok());
    baseline.push_back(std::move(*rotation));
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const bool reversed : {false, true}) {
      JobExecutor::Options options;
      options.num_workers = workers;
      JobExecutor executor(options);
      std::vector<la::Matrix> outputs(kJobs);
      std::vector<JobHandle> handles;
      for (std::size_t k = 0; k < kJobs; ++k) {
        const std::size_t idx = reversed ? kJobs - 1 - k : k;
        handles.push_back(executor.Submit(
            MakeJob([&inputs, &outputs, idx](JobContext& context) {
              StatusOr<la::Matrix> rotation =
                  context.batcher() != nullptr
                      ? context.batcher()->Procrustes(inputs[idx])
                      : la::ProcrustesRotation(inputs[idx]);
              if (!rotation.ok()) return rotation.status();
              outputs[idx] = std::move(*rotation);
              return Status::OK();
            })));
      }
      for (JobHandle& handle : handles) ASSERT_TRUE(handle.Await().ok());
      for (std::size_t k = 0; k < kJobs; ++k) {
        ASSERT_EQ(outputs[k].rows(), baseline[k].rows());
        for (std::size_t i = 0; i < outputs[k].rows(); ++i) {
          for (std::size_t j = 0; j < outputs[k].cols(); ++j) {
            ASSERT_EQ(outputs[k](i, j), baseline[k](i, j))
                << "workers " << workers << " reversed " << reversed
                << " job " << k;
          }
        }
      }
    }
  }
}

TEST(JobExecutorTest, WaitAllBlocksUntilEverySubmittedJobFinishes) {
  JobExecutor::Options options;
  options.num_workers = 2;
  JobExecutor executor(options);
  std::atomic<int> finished{0};
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(executor.Submit(MakeJob([&finished](JobContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      finished.fetch_add(1);
      return Status::OK();
    })));
  }
  executor.WaitAll();
  EXPECT_EQ(finished.load(), 8);
  for (JobHandle& handle : handles) EXPECT_TRUE(handle.Done());
}

TEST(JobExecutorTest, DestructorCancelsPendingJobs) {
  std::atomic<bool> second_ran{false};
  JobHandle pending;
  {
    JobExecutor executor;  // one worker
    std::promise<void> release;
    std::shared_future<void> release_future = release.get_future().share();
    executor.Submit(MakeJob([release_future](JobContext&) {
      release_future.wait();
      return Status::OK();
    }));
    pending = executor.Submit(MakeJob([&second_ran](JobContext&) {
      second_ran.store(true);
      return Status::OK();
    }));
    release.set_value();
    // Destructor: drains or cancels, then joins.
  }
  EXPECT_TRUE(pending.Done());
}

}  // namespace
}  // namespace umvsc::exec
