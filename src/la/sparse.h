#ifndef UMVSC_LA_SPARSE_H_
#define UMVSC_LA_SPARSE_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::la {

/// A (row, col, value) entry used to assemble sparse matrices.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Compressed sparse row matrix (double). Immutable after construction;
/// assemble via the triplet factory, which sorts and merges duplicates by
/// summation (the usual finite-element / graph-assembly convention).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from triplets; duplicate (row, col) entries are summed and
  /// explicit zeros produced by cancellation are kept (they are harmless).
  static CsrMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> triplets);

  /// Dense-to-sparse conversion, dropping entries with |x| <= drop_tol.
  static CsrMatrix FromDense(const Matrix& dense, double drop_tol = 0.0);

  /// n × n identity.
  static CsrMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t NumNonZeros() const { return values_.size(); }

  /// CSR internals (for tight loops in callers).
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A·x. Requires x.size() == cols().
  Vector Multiply(const Vector& x) const;
  /// y += alpha · A·x, writing into a caller-provided buffer (no alloc).
  void MultiplyInto(const Vector& x, Vector& y, double alpha = 1.0) const;
  /// C = A·B for a dense right factor.
  Matrix Multiply(const Matrix& b) const;

  /// Aᵀ as a new CSR matrix.
  CsrMatrix Transposed() const;
  /// Per-row sums (the weighted degree vector when A is an adjacency).
  Vector RowSums() const;
  /// Entry lookup; O(log nnz-in-row). Returns 0 for absent entries.
  double At(std::size_t row, std::size_t col) const;
  /// Dense copy (for tests and small problems).
  Matrix ToDense() const;
  /// this *= alpha.
  void Scale(double alpha);

  /// True when the sparsity pattern and values are symmetric within tol.
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // length rows_ + 1
  std::vector<std::size_t> col_indices_;  // length nnz, sorted within a row
  std::vector<double> values_;            // length nnz
};

/// Weighted sum Σ_v weights[v]·matrices[v] of equally-shaped CSR matrices.
/// Requires at least one matrix and matching weight count/shapes.
CsrMatrix WeightedSum(const std::vector<CsrMatrix>& matrices,
                      const std::vector<double>& weights);

}  // namespace umvsc::la

#endif  // UMVSC_LA_SPARSE_H_
