#ifndef UMVSC_LA_SPARSE_H_
#define UMVSC_LA_SPARSE_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::la {

/// A (row, col, value) entry used to assemble sparse matrices.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Compressed sparse row matrix (double). Immutable after construction;
/// assemble via the triplet factory, which sorts and merges duplicates by
/// summation (the usual finite-element / graph-assembly convention).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from triplets; duplicate (row, col) entries are summed and
  /// explicit zeros produced by cancellation are kept (they are harmless).
  static CsrMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> triplets);

  /// Dense-to-sparse conversion, dropping entries with |x| <= drop_tol.
  static CsrMatrix FromDense(const Matrix& dense, double drop_tol = 0.0);

  /// Adopts already-assembled CSR arrays: `row_offsets` of length rows + 1
  /// with row_offsets[0] == 0, column indices strictly ascending within each
  /// row, and values of matching length. This is the no-sort fast path for
  /// callers that maintain a fixed sparsity pattern across iterations (see
  /// CsrCombiner); invariants are checked.
  static CsrMatrix FromParts(std::size_t rows, std::size_t cols,
                             std::vector<std::size_t> row_offsets,
                             std::vector<std::size_t> col_indices,
                             std::vector<double> values);

  /// n × n identity.
  static CsrMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t NumNonZeros() const { return values_.size(); }

  /// CSR internals (for tight loops in callers).
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A·x. Requires x.size() == cols().
  Vector Multiply(const Vector& x) const;
  /// y += alpha · A·x, writing into a caller-provided buffer (no alloc).
  /// Row-parallel on the global thread pool; each output row is one
  /// independent serial sum over that row's nonzeros, so the result is
  /// bitwise identical at every thread count.
  void MultiplyInto(const Vector& x, Vector& y, double alpha = 1.0) const;
  /// C = A·B for a dense right factor.
  Matrix Multiply(const Matrix& b) const;
  /// Y += alpha · A·X — the multi-vector SpMM kernel under the block
  /// eigensolver. Requires X of shape cols() × b and Y of shape rows() × b.
  /// Row-parallel over the thread pool. Skinny panels (b ≤ 12 — every
  /// Krylov panel, given the width cap of 10 in la/lanczos.h) run a
  /// register-resident kernel specialized per width at compile time: the
  /// whole accumulator row is held in 4-lane SIMD register groups plus a
  /// scalar remainder (la/simd.h) while the row's nonzeros stream by. Wider
  /// panels use the cache-blocked generic kernel. Both paths accumulate
  /// each output element's nonzeros unfused in CSR order, so the result is
  /// bitwise identical across thread counts, across the skinny/generic and
  /// SIMD/scalar dispatches, AND equal to b independent MultiplyInto calls
  /// on the columns (parallel_determinism_test relies on this).
  void MultiplyInto(const Matrix& x, Matrix& y, double alpha = 1.0) const;

  /// Aᵀ as a new CSR matrix. Counting-sort construction: per-column nnz
  /// histogram → prefix-sum offsets → one ordered scatter pass, O(nnz)
  /// with no triplet buffer and no comparison sort.
  CsrMatrix Transposed() const;
  /// Per-row sums (the weighted degree vector when A is an adjacency).
  Vector RowSums() const;
  /// Entry lookup; O(log nnz-in-row). Returns 0 for absent entries.
  double At(std::size_t row, std::size_t col) const;
  /// Dense copy (for tests and small problems).
  Matrix ToDense() const;
  /// this *= alpha.
  void Scale(double alpha);

  /// True when the sparsity pattern and values are symmetric within tol.
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // length rows_ + 1
  std::vector<std::size_t> col_indices_;  // length nnz, sorted within a row
  std::vector<double> values_;            // length nnz
};

/// Weighted sum Σ_v weights[v]·matrices[v] of equally-shaped CSR matrices.
/// Requires at least one matrix and matching weight count/shapes.
CsrMatrix WeightedSum(const std::vector<CsrMatrix>& matrices,
                      const std::vector<double>& weights);

/// Precomputed union sparsity pattern for repeated weighted combinations of
/// a FIXED set of CSR matrices (the per-view Laplacians of an alternating
/// solver, combined once per outer iteration with fresh weights). Plan()
/// merges the patterns and records, for every stored entry of every input
/// matrix, its slot in the union — Combine() is then a value-only axpy over
/// fixed structure: no triplet buffer, no sort, no pattern work. Combine's
/// accumulation runs in input order v = 0, 1, …, the same order WeightedSum
/// sums duplicates in, so results match it bitwise for up to two overlapping
/// entries per slot and differ only in floating-point summation order beyond
/// that.
class CsrCombiner {
 public:
  /// Builds the union pattern and the per-matrix slot maps. Requires at
  /// least one matrix; all must share one shape. Later Combine() calls must
  /// pass matrices with exactly the patterns seen here (values may change).
  static CsrCombiner Plan(const std::vector<CsrMatrix>& matrices);

  /// result = Σ_v weights[v]·matrices[v] on the planned union pattern.
  /// Entries whose weighted sum cancels to zero stay as explicit zeros —
  /// same convention as FromTriplets. Checks that each matrix still has the
  /// planned nonzero count.
  CsrMatrix Combine(const std::vector<CsrMatrix>& matrices,
                    const std::vector<double>& weights) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t NumNonZeros() const { return col_indices_.size(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // union pattern, length rows_ + 1
  std::vector<std::size_t> col_indices_;  // union pattern, sorted per row
  /// slots_[v][k] = union-value index of matrix v's k-th stored entry.
  std::vector<std::vector<std::size_t>> slots_;
};

namespace internal {
/// The cache-blocked wide-panel SpMM (Y += alpha·A·X) regardless of panel
/// width — the kernel MultiplyInto routes b > 12 to. Exposed so tests can
/// assert the skinny specializations are bitwise identical to it.
void SpmmGeneric(const CsrMatrix& a, const Matrix& x, Matrix& y,
                 double alpha = 1.0);
}  // namespace internal

}  // namespace umvsc::la

#endif  // UMVSC_LA_SPARSE_H_
