#include "la/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "la/ops.h"

namespace umvsc::la {

namespace {

// Re-orthogonalizes w against every column stored in `basis` (two classical
// Gram–Schmidt passes, which in double precision is as good as modified GS
// with full reorthogonalization).
void Reorthogonalize(const std::vector<Vector>& basis, Vector& w) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis) {
      const double dot = Dot(q, w);
      if (dot != 0.0) w.Axpy(-dot, q);
    }
  }
}

}  // namespace

StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("LanczosLargest requires 0 < k <= n");
  }
  const std::size_t max_m = std::min(n, options.max_subspace);
  if (max_m < k) {
    return Status::InvalidArgument("max_subspace smaller than k");
  }

  Rng rng(options.seed);
  std::vector<Vector> basis;  // Lanczos vectors q_0 … q_{m−1}
  basis.reserve(max_m);
  std::vector<double> alpha;  // diagonal of T
  std::vector<double> beta;   // subdiagonal of T

  // Warm columns usable by this solve: the column sum seeds q_0, and the
  // individual columns feed breakdown restarts before random directions do.
  const Matrix* warm = options.warm_start;
  if (warm != nullptr && (warm->rows() != n || warm->cols() == 0)) {
    warm = nullptr;
  }
  std::size_t next_warm = 0;

  Vector q(n);
  bool seeded = false;
  if (warm != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < warm->cols(); ++j) s += (*warm)(i, j);
      q[i] = s;
    }
    const double norm = q.Norm2();
    if (norm > 1e-12) {
      q.Scale(1.0 / norm);
      seeded = true;
    }
  }
  if (!seeded) {
    for (std::size_t i = 0; i < n; ++i) q[i] = rng.Gaussian();
    q.Normalize();
  }
  basis.push_back(q);

  double spectral_scale = 1.0;
  SymEigenResult small;  // eigen-decomposition of the current tridiagonal

  for (std::size_t m = 1; m <= max_m; ++m) {
    // Expand the Krylov basis: w = A·q_{m−1} − β_{m−2}·q_{m−2}.
    Vector w(n);
    op(basis.back(), w);
    if (options.matvec_count != nullptr) ++*options.matvec_count;
    const double a = Dot(basis.back(), w);
    alpha.push_back(a);
    spectral_scale = std::max(spectral_scale, std::fabs(a));
    Reorthogonalize(basis, w);
    const double b = w.Norm2();

    // Solve the small tridiagonal problem.
    Vector d(alpha.size());
    for (std::size_t i = 0; i < alpha.size(); ++i) d[i] = alpha[i];
    Vector e(beta.size());
    for (std::size_t i = 0; i < beta.size(); ++i) e[i] = beta[i];
    StatusOr<SymEigenResult> tri = TridiagonalEigen(d, e);
    if (!tri.ok()) return tri.status();
    small = std::move(*tri);

    // A Ritz pair's residual is |β_m · s_{m−1,j}| (last component of the
    // tridiagonal eigenvector scaled by the new off-diagonal norm). This is
    // also ≈0 whenever the basis spans an invariant subspace, which happens
    // *before* convergence for eigenvalues with multiplicity > 1 (a single
    // Krylov sequence sees one copy of each eigenspace). Guard against that
    // trap by requiring the subspace to grow past k by a safety margin
    // before accepting, and by restarting with fresh random directions on
    // every breakdown — restarts re-sample the missed eigenspace copies.
    const std::size_t min_dim = std::min(n, k + std::max<std::size_t>(k, 8));
    bool all_converged = false;
    if (m >= k) {
      all_converged = true;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;  // largest Ritz values
        const double resid = std::fabs(b * small.eigenvectors(m - 1, col));
        if (resid > options.tolerance * spectral_scale) {
          all_converged = false;
          break;
        }
      }
    }
    if ((all_converged && m >= min_dim) || m == n) {
      // Assemble the Ritz vectors X = Q · S for the k largest values.
      SymEigenResult out;
      out.eigenvalues = Vector(k);
      out.eigenvectors = Matrix(n, k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;
        out.eigenvalues[j] = small.eigenvalues[col];
        for (std::size_t i = 0; i < n; ++i) {
          double s = 0.0;
          for (std::size_t p = 0; p < m; ++p) {
            s += basis[p][i] * small.eigenvectors(p, col);
          }
          out.eigenvectors(i, j) = s;
        }
      }
      return out;
    }
    if (m == max_m) {
      return Status::NumericalError(StrFormat(
          "Lanczos did not converge within a subspace of %zu", max_m));
    }

    if (b <= 1e-12 * spectral_scale) {
      // Breakdown (invariant subspace): extend the basis. Warm-start columns
      // go first — they point at the eigenspace copies a single Krylov
      // sequence misses — then fresh random directions orthogonal to
      // everything found so far.
      Vector fresh(n);
      double norm = 0.0;
      while (warm != nullptr && next_warm < warm->cols()) {
        for (std::size_t i = 0; i < n; ++i) fresh[i] = (*warm)(i, next_warm);
        ++next_warm;
        Reorthogonalize(basis, fresh);
        norm = fresh.Norm2();
        if (norm > 1e-8) break;  // column adds a genuinely new direction
        norm = 0.0;
      }
      if (norm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) fresh[i] = rng.Gaussian();
        Reorthogonalize(basis, fresh);
        norm = fresh.Norm2();
      }
      if (norm <= 1e-12) {
        return Status::NumericalError(
            "Lanczos: could not extend the Krylov basis");
      }
      fresh.Scale(1.0 / norm);
      beta.push_back(0.0);
      basis.push_back(fresh);
    } else {
      w.Scale(1.0 / b);
      beta.push_back(b);
      basis.push_back(w);
    }
  }
  return Status::NumericalError("Lanczos subspace exhausted");
}

StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options) {
  if (spectral_bound <= 0.0) {
    return Status::InvalidArgument("spectral_bound must be positive");
  }
  SymmetricOperator complement = [&op, spectral_bound](const Vector& x,
                                                       Vector& y) {
    // y += (bound·I − A)·x
    Vector ax(x.size());
    op(x, ax);
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] += spectral_bound * x[i] - ax[i];
    }
  };
  StatusOr<SymEigenResult> res = LanczosLargest(complement, n, k, options);
  if (!res.ok()) return res.status();
  // Map back: λ_A = bound − λ_complement; order flips to ascending.
  for (std::size_t j = 0; j < k; ++j) {
    res->eigenvalues[j] = spectral_bound - res->eigenvalues[j];
  }
  return res;
}

StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  SymmetricOperator op = [&a](const Vector& x, Vector& y) {
    a.MultiplyInto(x, y);
  };
  return LanczosLargest(op, a.rows(), k, options);
}

StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  SymmetricOperator op = [&a](const Vector& x, Vector& y) {
    a.MultiplyInto(x, y);
  };
  return LanczosSmallest(op, a.rows(), k, spectral_bound, options);
}

namespace {

// Orthogonalizes v against every finalized panel of the basis and against
// the already-accepted columns of the panel under construction (two
// classical passes). The panel projections are the level-2 MatTVec/MatVec
// pair; this path only runs for replacement columns (rank-deficient panel
// slots), never in the panel hot loop.
void BlockReorthogonalizeVector(const std::vector<Matrix>& panels,
                                const std::vector<Vector>& partial, Vector& v) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Matrix& p : panels) {
      Vector proj = MatTVec(p, v);
      Vector back = MatVec(p, proj);
      v.Axpy(-1.0, back);
    }
    for (const Vector& q : partial) {
      const double dot = Dot(q, v);
      if (dot != 0.0) v.Axpy(-dot, q);
    }
  }
}

// Fills `accepted` up to `width` orthonormal columns. Candidates are taken
// in deterministic order: the columns of `candidates` (may be empty), then
// unused warm-start columns, then fresh Gaussian directions. Candidate
// columns are assumed orthogonal to the finalized panels already (the
// caller ran the panel-level reorthogonalization); warm/random replacements
// are orthogonalized against everything from scratch. Returns false when no
// acceptable direction can be found (the space is exhausted numerically).
bool FillPanelColumns(const std::vector<Matrix>& panels,
                      const Matrix* candidates, std::size_t width,
                      const Matrix* warm, std::size_t& next_warm, Rng& rng,
                      std::size_t n, std::vector<Vector>& accepted) {
  std::size_t next_candidate = 0;
  const std::size_t num_candidates =
      candidates == nullptr ? 0 : candidates->cols();
  std::size_t random_attempts = 0;
  while (accepted.size() < width) {
    Vector v(n);
    bool from_candidates = false;
    if (next_candidate < num_candidates) {
      for (std::size_t i = 0; i < n; ++i) v[i] = (*candidates)(i, next_candidate);
      ++next_candidate;
      from_candidates = true;
    } else if (warm != nullptr && next_warm < warm->cols()) {
      for (std::size_t i = 0; i < n; ++i) v[i] = (*warm)(i, next_warm);
      ++next_warm;
    } else {
      if (++random_attempts > 8) return false;
      for (std::size_t i = 0; i < n; ++i) v[i] = rng.Gaussian();
    }
    const double norm0 = v.Norm2();
    if (norm0 <= 1e-12) continue;
    v.Scale(1.0 / norm0);
    if (from_candidates) {
      // Already basis-orthogonal as a panel; only the within-panel
      // projections remain (two passes, modified-GS quality).
      for (int pass = 0; pass < 2; ++pass) {
        for (const Vector& q : accepted) {
          const double dot = Dot(q, v);
          if (dot != 0.0) v.Axpy(-dot, q);
        }
      }
    } else {
      BlockReorthogonalizeVector(panels, accepted, v);
    }
    const double norm = v.Norm2();
    if (norm <= 1e-8) continue;  // numerically dependent; next candidate
    v.Scale(1.0 / norm);
    accepted.push_back(std::move(v));
    random_attempts = 0;  // the cap bounds consecutive failures, not draws
  }
  return true;
}

Matrix AssemblePanel(std::vector<Vector> columns, std::size_t n) {
  Matrix panel(n, columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    panel.SetCol(j, columns[j]);
  }
  return panel;
}

// X = Q·S for a basis stored as panels: Σ_p panels[p] · S[rows of p, :].
Matrix PanelsTimes(const std::vector<Matrix>& panels, const Matrix& s) {
  Matrix x(panels.front().rows(), s.cols());
  std::size_t offset = 0;
  for (const Matrix& p : panels) {
    x.Add(MatMul(p, s.Block(offset, 0, p.cols(), s.cols())), 1.0);
    offset += p.cols();
  }
  return x;
}

}  // namespace

StatusOr<SymEigenResult> BlockLanczosLargest(const SymmetricBlockOperator& op,
                                             std::size_t n, std::size_t k,
                                             const LanczosOptions& options) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("BlockLanczosLargest requires 0 < k <= n");
  }
  const std::size_t max_m = std::min(n, options.max_subspace);
  if (max_m < k) {
    return Status::InvalidArgument("max_subspace smaller than k");
  }
  // Default block width: k capped at kDefaultBlockCap. The per-iteration
  // Rayleigh–Ritz eigensolve costs O(m³) while each panel raises the basis
  // dimension m by b, so a wide panel buys fewer Krylov polynomial degrees
  // per basis dimension; past a modest width the dense eigensolves dominate
  // and the solver degenerates toward a full O(n³) factorization. Measured
  // at n=400, k=40: b=40 needs the full m=n subspace (0.56 s) while b=10
  // converges at m=220 (0.16 s, on par with the single-vector solver). A
  // multiplicity of k is still captured: deficient panels are repaired with
  // fresh random directions and residuals are exact, so narrow panels only
  // add iterations, never wrong answers.
  constexpr std::size_t kDefaultBlockCap = 10;
  const std::size_t default_b = std::min(k, kDefaultBlockCap);
  const std::size_t b =
      std::min(options.block_size == 0 ? default_b : options.block_size,
               std::min(n, max_m));

  Rng rng(options.seed);
  const Matrix* warm = options.warm_start;
  if (warm != nullptr && (warm->rows() != n || warm->cols() == 0)) {
    warm = nullptr;
  }
  std::size_t next_warm = 0;

  // Basis panels Q_0 … Q_j and their raw operator images A·Q_0 … A·Q_j.
  // Keeping the images makes the Rayleigh–Ritz residuals exact — the block
  // solver never trusts the recurrence estimate that the multiplicity trap
  // (see LanczosLargest) poisons.
  std::vector<Matrix> q_panels;
  std::vector<Matrix> aq_panels;
  Matrix h(max_m, max_m);  // projected operator H = QᵀAQ, grown blockwise
  std::size_t m = 0;

  // First panel: warm-start columns enter column-per-column (no collapse
  // into a single direction), then random directions fill the remainder.
  {
    std::vector<Vector> columns;
    if (!FillPanelColumns(q_panels, nullptr, std::min(b, max_m), warm,
                          next_warm, rng, n, columns)) {
      return Status::NumericalError(
          "Block Lanczos: could not build the initial panel");
    }
    q_panels.push_back(AssemblePanel(std::move(columns), n));
    m = q_panels.back().cols();
  }

  double spectral_scale = 1.0;
  // The single-vector solver's anti-multiplicity margin, panel-scaled: the
  // basis must grow past k by at least one panel (or the classic margin of
  // 8, whichever is larger) before a converged set is accepted, so a warm
  // start that exactly spans an invariant — but wrong — subspace is always
  // challenged by directions outside it.
  const std::size_t min_dim = std::min(n, k + std::max<std::size_t>(b, 8));

  while (true) {
    const Matrix& q_last = q_panels.back();
    const std::size_t bw = q_last.cols();
    const std::size_t panel_offset = m - bw;

    // One panel application: W = A·Q_j, counted as bw Krylov directions.
    Matrix w(n, bw);
    op(q_last, w);
    if (options.matvec_count != nullptr) *options.matvec_count += bw;

    // Extend H = QᵀAQ by this panel's block column; mirror the off-diagonal
    // blocks and symmetrize the diagonal block so the projected problem is
    // symmetric by construction.
    {
      std::size_t offset = 0;
      for (const Matrix& p : q_panels) {
        const Matrix g = MatTMul(p, w);  // p.cols() × bw
        if (offset == panel_offset) {
          for (std::size_t i = 0; i < bw; ++i) {
            for (std::size_t j = 0; j < bw; ++j) {
              const double sym = 0.5 * (g(i, j) + g(j, i));
              h(panel_offset + i, panel_offset + j) = sym;
            }
          }
        } else {
          for (std::size_t i = 0; i < p.cols(); ++i) {
            for (std::size_t j = 0; j < bw; ++j) {
              h(offset + i, panel_offset + j) = g(i, j);
              h(panel_offset + j, offset + i) = g(i, j);
            }
          }
        }
        offset += p.cols();
      }
    }

    // Rayleigh–Ritz on the m × m projection.
    StatusOr<SymEigenResult> small = SymmetricEigen(h.Block(0, 0, m, m));
    if (!small.ok()) return small.status();
    for (std::size_t i = 0; i < m; ++i) {
      spectral_scale =
          std::max(spectral_scale, std::fabs(small->eigenvalues[i]));
    }

    if (m >= k) {
      // Wanted Ritz pairs: the k largest, descending.
      Matrix s_k(m, k);
      Vector theta(k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;
        theta[j] = small->eigenvalues[col];
        for (std::size_t i = 0; i < m; ++i) {
          s_k(i, j) = small->eigenvectors(i, col);
        }
      }
      const Matrix x = PanelsTimes(q_panels, s_k);
      // Exact residuals ‖A·x_j − θ_j·x_j‖: A·X = [stored images | fresh W]
      // · S_k, assembled without re-applying the operator.
      Matrix full_ax(n, k);
      if (!aq_panels.empty()) {
        full_ax = PanelsTimes(aq_panels, s_k.Block(0, 0, m - bw, k));
      }
      full_ax.Add(MatMul(w, s_k.Block(m - bw, 0, bw, k)), 1.0);
      bool all_converged = true;
      for (std::size_t j = 0; j < k && all_converged; ++j) {
        double rss = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double r = full_ax(i, j) - theta[j] * x(i, j);
          rss += r * r;
        }
        if (std::sqrt(rss) > options.tolerance * spectral_scale) {
          all_converged = false;
        }
      }
      if ((all_converged && m >= min_dim) || m == n) {
        SymEigenResult out;
        out.eigenvalues = std::move(theta);
        out.eigenvectors = x;
        return out;
      }
    }
    if (m >= max_m) {
      return Status::NumericalError(StrFormat(
          "Block Lanczos did not converge within a subspace of %zu", max_m));
    }

    // Next panel: store the raw image, then strip the basis from W with two
    // panel-level MatTMul + MatMul passes (the level-3 replacement for
    // per-vector Gram–Schmidt) and orthonormalize what remains. Deficient
    // columns — the block analogue of breakdown — are repaired from unused
    // warm-start columns first, then random directions.
    aq_panels.push_back(w);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Matrix& p : q_panels) {
        w.Add(MatMul(p, MatTMul(p, w)), -1.0);
      }
    }
    const std::size_t next_width = std::min(b, std::min(max_m, n) - m);
    std::vector<Vector> columns;
    if (!FillPanelColumns(q_panels, &w, next_width, warm, next_warm, rng, n,
                          columns)) {
      return Status::NumericalError(
          "Block Lanczos: could not extend the Krylov basis");
    }
    q_panels.push_back(AssemblePanel(std::move(columns), n));
    m += q_panels.back().cols();
  }
}

StatusOr<SymEigenResult> BlockLanczosSmallest(const SymmetricBlockOperator& op,
                                              std::size_t n, std::size_t k,
                                              double spectral_bound,
                                              const LanczosOptions& options) {
  if (spectral_bound <= 0.0) {
    return Status::InvalidArgument("spectral_bound must be positive");
  }
  // Panel-fused complement: one Y += bound·X − A·X pass over the whole
  // block per application (the A·X underneath is a single SpMM for CSR
  // operators), replacing the single-vector path's per-column lambda.
  SymmetricBlockOperator complement = [&op, spectral_bound](const Matrix& x,
                                                            Matrix& y) {
    Matrix ax(x.rows(), x.cols());
    op(x, ax);
    double* yd = y.data();
    const double* xd = x.data();
    const double* axd = ax.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      yd[i] += spectral_bound * xd[i] - axd[i];
    }
  };
  StatusOr<SymEigenResult> res = BlockLanczosLargest(complement, n, k, options);
  if (!res.ok()) return res.status();
  // Map back: λ_A = bound − λ_complement; order flips to ascending.
  for (std::size_t j = 0; j < k; ++j) {
    res->eigenvalues[j] = spectral_bound - res->eigenvalues[j];
  }
  return res;
}

StatusOr<SymEigenResult> BlockLanczosLargest(const CsrMatrix& a, std::size_t k,
                                             const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Block Lanczos requires a square matrix");
  }
  SymmetricBlockOperator op = [&a](const Matrix& x, Matrix& y) {
    a.MultiplyInto(x, y);
  };
  return BlockLanczosLargest(op, a.rows(), k, options);
}

StatusOr<SymEigenResult> BlockLanczosSmallest(const CsrMatrix& a, std::size_t k,
                                              double spectral_bound,
                                              const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Block Lanczos requires a square matrix");
  }
  SymmetricBlockOperator op = [&a](const Matrix& x, Matrix& y) {
    a.MultiplyInto(x, y);
  };
  return BlockLanczosSmallest(op, a.rows(), k, spectral_bound, options);
}

}  // namespace umvsc::la
