#include "la/lanczos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "la/gemm_kernel.h"
#include "la/ops.h"

namespace umvsc::la {

namespace {

// Re-orthogonalizes w against every column stored in `basis` (two classical
// Gram–Schmidt passes, which in double precision is as good as modified GS
// with full reorthogonalization).
void Reorthogonalize(const std::vector<Vector>& basis, Vector& w) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis) {
      const double dot = Dot(q, w);
      if (dot != 0.0) w.Axpy(-dot, q);
    }
  }
}

}  // namespace

StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("LanczosLargest requires 0 < k <= n");
  }
  const std::size_t max_m = std::min(n, options.max_subspace);
  if (max_m < k) {
    return Status::InvalidArgument("max_subspace smaller than k");
  }

  Rng rng(options.seed);
  std::vector<Vector> basis;  // Lanczos vectors q_0 … q_{m−1}
  basis.reserve(max_m);
  std::vector<double> alpha;  // diagonal of T
  std::vector<double> beta;   // subdiagonal of T

  // Warm columns usable by this solve: the column sum seeds q_0, and the
  // individual columns feed breakdown restarts before random directions do.
  const Matrix* warm = options.warm_start;
  if (warm != nullptr && (warm->rows() != n || warm->cols() == 0)) {
    warm = nullptr;
  }
  std::size_t next_warm = 0;

  Vector q(n);
  bool seeded = false;
  if (warm != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < warm->cols(); ++j) s += (*warm)(i, j);
      q[i] = s;
    }
    const double norm = q.Norm2();
    if (norm > 1e-12) {
      q.Scale(1.0 / norm);
      seeded = true;
    }
  }
  if (!seeded) {
    for (std::size_t i = 0; i < n; ++i) q[i] = rng.Gaussian();
    q.Normalize();
  }
  basis.push_back(q);

  double spectral_scale = 1.0;
  SymEigenResult small;  // eigen-decomposition of the current tridiagonal

  for (std::size_t m = 1; m <= max_m; ++m) {
    // Expand the Krylov basis: w = A·q_{m−1} − β_{m−2}·q_{m−2}.
    Vector w(n);
    op(basis.back(), w);
    if (options.matvec_count != nullptr) ++*options.matvec_count;
    const double a = Dot(basis.back(), w);
    alpha.push_back(a);
    spectral_scale = std::max(spectral_scale, std::fabs(a));
    Reorthogonalize(basis, w);
    const double b = w.Norm2();

    // A Ritz pair's residual is |β_m · s_{m−1,j}| (last component of the
    // tridiagonal eigenvector scaled by the new off-diagonal norm). This is
    // also ≈0 whenever the basis spans an invariant subspace, which happens
    // *before* convergence for eigenvalues with multiplicity > 1 (a single
    // Krylov sequence sees one copy of each eigenspace). Guard against that
    // trap by requiring the subspace to grow past k by a safety margin
    // before accepting, and by restarting with fresh random directions on
    // every breakdown — restarts re-sample the missed eigenspace copies.
    const std::size_t min_dim = std::min(n, k + std::max<std::size_t>(k, 8));

    // The O(m³) Rayleigh–Ritz solve only matters once acceptance is even
    // possible (m ≥ min_dim, or the basis is the full space) — nothing in
    // the growth phase reads its output, so skipping it there changes no
    // bit of the final result, only the wall time.
    bool all_converged = false;
    if (m >= min_dim || m == n) {
      // Solve the small tridiagonal problem.
      Vector d(alpha.size());
      for (std::size_t i = 0; i < alpha.size(); ++i) d[i] = alpha[i];
      Vector e(beta.size());
      for (std::size_t i = 0; i < beta.size(); ++i) e[i] = beta[i];
      StatusOr<SymEigenResult> tri = TridiagonalEigen(d, e);
      if (!tri.ok()) return tri.status();
      small = std::move(*tri);

      all_converged = true;  // min_dim ≥ k, so k Ritz pairs always exist here
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;  // largest Ritz values
        const double resid = std::fabs(b * small.eigenvectors(m - 1, col));
        if (resid > options.tolerance * spectral_scale) {
          all_converged = false;
          break;
        }
      }
    }
    if ((all_converged && m >= min_dim) || m == n) {
      // Assemble the Ritz vectors X = Q · S for the k largest values.
      SymEigenResult out;
      out.eigenvalues = Vector(k);
      out.eigenvectors = Matrix(n, k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;
        out.eigenvalues[j] = small.eigenvalues[col];
        for (std::size_t i = 0; i < n; ++i) {
          double s = 0.0;
          for (std::size_t p = 0; p < m; ++p) {
            s += basis[p][i] * small.eigenvectors(p, col);
          }
          out.eigenvectors(i, j) = s;
        }
      }
      return out;
    }
    if (m == max_m) {
      return Status::NumericalError(StrFormat(
          "Lanczos did not converge within a subspace of %zu", max_m));
    }

    if (b <= 1e-12 * spectral_scale) {
      // Breakdown (invariant subspace): extend the basis. Warm-start columns
      // go first — they point at the eigenspace copies a single Krylov
      // sequence misses — then fresh random directions orthogonal to
      // everything found so far.
      Vector fresh(n);
      double norm = 0.0;
      while (warm != nullptr && next_warm < warm->cols()) {
        for (std::size_t i = 0; i < n; ++i) fresh[i] = (*warm)(i, next_warm);
        ++next_warm;
        Reorthogonalize(basis, fresh);
        norm = fresh.Norm2();
        if (norm > 1e-8) break;  // column adds a genuinely new direction
        norm = 0.0;
      }
      if (norm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) fresh[i] = rng.Gaussian();
        Reorthogonalize(basis, fresh);
        norm = fresh.Norm2();
      }
      if (norm <= 1e-12) {
        return Status::NumericalError(
            "Lanczos: could not extend the Krylov basis");
      }
      fresh.Scale(1.0 / norm);
      beta.push_back(0.0);
      basis.push_back(fresh);
    } else {
      w.Scale(1.0 / b);
      beta.push_back(b);
      basis.push_back(w);
    }
  }
  return Status::NumericalError("Lanczos subspace exhausted");
}

StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options) {
  if (spectral_bound <= 0.0) {
    return Status::InvalidArgument("spectral_bound must be positive");
  }
  SymmetricOperator complement = [&op, spectral_bound](const Vector& x,
                                                       Vector& y) {
    // y += (bound·I − A)·x
    Vector ax(x.size());
    op(x, ax);
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] += spectral_bound * x[i] - ax[i];
    }
  };
  StatusOr<SymEigenResult> res = LanczosLargest(complement, n, k, options);
  if (!res.ok()) return res.status();
  // Map back: λ_A = bound − λ_complement; order flips to ascending.
  for (std::size_t j = 0; j < k; ++j) {
    res->eigenvalues[j] = spectral_bound - res->eigenvalues[j];
  }
  return res;
}

StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  SymmetricOperator op = [&a](const Vector& x, Vector& y) {
    a.MultiplyInto(x, y);
  };
  return LanczosLargest(op, a.rows(), k, options);
}

StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  SymmetricOperator op = [&a](const Vector& x, Vector& y) {
    a.MultiplyInto(x, y);
  };
  return LanczosSmallest(op, a.rows(), k, spectral_bound, options);
}

namespace {

// Basis layout of the block solver: the Lanczos vectors live in the left m
// columns of ONE contiguous n × max_m matrix (their operator images
// likewise), so every projection against the basis is a single GemmAdd
// over the full basis instead of one small GEMM per stored panel. At the
// panel widths the paper shapes need (b ≤ 10) a per-panel p.cols() × bw
// product is tiny — per-call packing and dispatch dominate its arithmetic
// — and fusing the calls removes that overhead wholesale. GemmAdd's
// accumulation grid is a pure function of the shapes alone, so cross-
// thread-count determinism is unchanged.

// Row grain of the basis-wide GemmAdd sweeps (same as la/ops.cc).
constexpr std::size_t kBlockRowGrain = 32;

// c = A[:, 0..m) · s for a basis held in the left m columns of `a`.
Matrix LeftColsTimes(const Matrix& a, std::size_t m, const Matrix& s) {
  Matrix c(a.rows(), s.cols());
  const kernel::Operand ao{a.data(), a.cols(), false};
  const kernel::Operand so{s.data(), s.cols(), false};
  ParallelFor(0, a.rows(), kBlockRowGrain,
              [&](std::size_t lo, std::size_t hi) {
                kernel::GemmAdd(s.cols(), m, ao, so, c.data(), s.cols(), lo,
                                hi);
              });
  return c;
}

// g = A[:, 0..m)ᵀ · w, overwriting caller storage (g is m × w.cols()).
void LeftColsTransposeTimes(const Matrix& a, std::size_t m, const Matrix& w,
                            Matrix& g) {
  g.Fill(0.0);
  const kernel::Operand at{a.data(), a.cols(), true};
  const kernel::Operand wo{w.data(), w.cols(), false};
  ParallelFor(0, m, kBlockRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(w.cols(), a.rows(), at, wo, g.data(), w.cols(), lo, hi);
  });
}

// w += A[:, 0..m) · g, accumulating in place (w is a.rows() × g.cols()).
void AddLeftColsTimes(const Matrix& a, std::size_t m, const Matrix& g,
                      Matrix& w) {
  const kernel::Operand ao{a.data(), a.cols(), false};
  const kernel::Operand go{g.data(), g.cols(), false};
  ParallelFor(0, w.rows(), kBlockRowGrain,
              [&](std::size_t lo, std::size_t hi) {
                kernel::GemmAdd(g.cols(), m, ao, go, w.data(), w.cols(), lo,
                                hi);
              });
}

// Contiguous copy of basis columns [c0, c0 + w): operators take a dense
// panel, and the skinny SpMM wants a packed right-hand side.
Matrix CopyColumns(const Matrix& q, std::size_t c0, std::size_t w) {
  Matrix p(q.rows(), w);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const double* src = q.RowPtr(i) + c0;
    std::copy(src, src + w, p.RowPtr(i));
  }
  return p;
}

// Appends `width` orthonormal columns to the basis at columns [m, m+width)
// of q. Directions are taken in deterministic order: the columns of
// `candidates` (may be null; assumed orthogonal to basis columns [0, m)
// already — the caller ran the basis-wide reorthogonalization), then
// unused warm-start columns, then fresh Gaussian directions; warm/random
// replacements are orthogonalized against the whole basis from scratch
// (two modified-GS passes — the rare panel-repair path, never the hot
// loop). Returns false when the space is numerically exhausted.
bool AppendPanelColumns(Matrix& q, std::size_t m, std::size_t width,
                        const Matrix* candidates, const Matrix* warm,
                        std::size_t& next_warm, Rng& rng) {
  const std::size_t n = q.rows();
  const std::size_t num_candidates =
      candidates == nullptr ? 0 : candidates->cols();
  std::size_t accepted = 0;
  std::size_t next_candidate = 0;
  std::size_t random_attempts = 0;
  Vector v(n);
  while (accepted < width) {
    bool from_candidates = false;
    if (next_candidate < num_candidates) {
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = (*candidates)(i, next_candidate);
      }
      ++next_candidate;
      from_candidates = true;
    } else if (warm != nullptr && next_warm < warm->cols()) {
      for (std::size_t i = 0; i < n; ++i) v[i] = (*warm)(i, next_warm);
      ++next_warm;
    } else {
      if (++random_attempts > 8) return false;
      for (std::size_t i = 0; i < n; ++i) v[i] = rng.Gaussian();
    }
    const double norm0 = v.Norm2();
    if (norm0 <= 1e-12) continue;
    v.Scale(1.0 / norm0);
    // Candidates only need the within-panel projections; replacements
    // project out every basis column.
    const std::size_t first = from_candidates ? m : 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = first; j < m + accepted; ++j) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += q(i, j) * v[i];
        if (dot != 0.0) {
          for (std::size_t i = 0; i < n; ++i) v[i] -= dot * q(i, j);
        }
      }
    }
    const double norm = v.Norm2();
    if (norm <= 1e-8) continue;  // numerically dependent; next candidate
    v.Scale(1.0 / norm);
    for (std::size_t i = 0; i < n; ++i) q(i, m + accepted) = v[i];
    ++accepted;
    random_attempts = 0;  // the cap bounds consecutive failures, not draws
  }
  return true;
}

}  // namespace

StatusOr<SymEigenResult> BlockLanczosLargest(const SymmetricBlockOperator& op,
                                             std::size_t n, std::size_t k,
                                             const LanczosOptions& options) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("BlockLanczosLargest requires 0 < k <= n");
  }
  const std::size_t max_m = std::min(n, options.max_subspace);
  if (max_m < k) {
    return Status::InvalidArgument("max_subspace smaller than k");
  }
  // Default block width: k capped at kDefaultBlockCap. The per-iteration
  // Rayleigh–Ritz eigensolve costs O(m³) while each panel raises the basis
  // dimension m by b, so a wide panel buys fewer Krylov polynomial degrees
  // per basis dimension; past a modest width the dense eigensolves dominate
  // and the solver degenerates toward a full O(n³) factorization. Measured
  // at n=400, k=40: b=40 needs the full m=n subspace (0.56 s) while b=10
  // converges at m=220 (0.16 s, on par with the single-vector solver). A
  // multiplicity of k is still captured: deficient panels are repaired with
  // fresh random directions and residuals are exact, so narrow panels only
  // add iterations, never wrong answers.
  constexpr std::size_t kDefaultBlockCap = 10;
  const std::size_t default_b = std::min(k, kDefaultBlockCap);
  const std::size_t b =
      std::min(options.block_size == 0 ? default_b : options.block_size,
               std::min(n, max_m));

  Rng rng(options.seed);
  const Matrix* warm = options.warm_start;
  if (warm != nullptr && (warm->rows() != n || warm->cols() == 0)) {
    warm = nullptr;
  }
  std::size_t next_warm = 0;

  // Contiguous basis Q (left m columns) and the raw operator images A·Q.
  // Keeping the images makes the Rayleigh–Ritz residuals exact — the block
  // solver never trusts the recurrence estimate that the multiplicity trap
  // (see LanczosLargest) poisons.
  Matrix q(n, max_m);
  Matrix aq(n, max_m);
  Matrix h(max_m, max_m);  // projected operator H = QᵀAQ, grown blockwise
  std::size_t m = 0;

  // First panel: warm-start columns enter column-per-column (no collapse
  // into a single direction), then random directions fill the remainder.
  if (!AppendPanelColumns(q, 0, std::min(b, max_m), nullptr, warm, next_warm,
                          rng)) {
    return Status::NumericalError(
        "Block Lanczos: could not build the initial panel");
  }
  m = std::min(b, max_m);
  std::size_t panel_offset = 0;
  Matrix panel = CopyColumns(q, 0, m);

  double spectral_scale = 1.0;
  // The single-vector solver's anti-multiplicity margin, panel-scaled: the
  // basis must grow past k by at least one panel (or the classic margin of
  // 8, whichever is larger) before a converged set is accepted, so a warm
  // start that exactly spans an invariant — but wrong — subspace is always
  // challenged by directions outside it.
  const std::size_t min_dim = std::min(n, k + std::max<std::size_t>(b, 8));

  // Ritz values at the most recent Rayleigh–Ritz solve — the θ-stability
  // pre-filter for the exact-residual assembly below.
  Vector prev_theta;
  bool have_prev_theta = false;

  while (true) {
    const std::size_t bw = panel.cols();

    // One panel application: W = A·Q_j, counted as bw Krylov directions.
    Matrix w(n, bw);
    op(panel, w);
    if (options.matvec_count != nullptr) *options.matvec_count += bw;
    // Keep the raw image: residuals stay exact without re-applying A.
    for (std::size_t i = 0; i < n; ++i) {
      const double* src = w.RowPtr(i);
      std::copy(src, src + bw, aq.RowPtr(i) + panel_offset);
    }

    // Extend H = QᵀAQ by this panel's block column — the projections
    // G = QᵀW in one basis-wide product; mirror the off-diagonal blocks
    // and symmetrize the diagonal block so the projected problem is
    // symmetric by construction. G is kept: it doubles as the first
    // reorthogonalization pass's coefficients, saving one full read of
    // the basis per iteration (see below).
    Matrix g(m, bw);
    LeftColsTransposeTimes(q, m, w, g);
    for (std::size_t i = 0; i < panel_offset; ++i) {
      for (std::size_t j = 0; j < bw; ++j) {
        h(i, panel_offset + j) = g(i, j);
        h(panel_offset + j, i) = g(i, j);
      }
    }
    for (std::size_t i = 0; i < bw; ++i) {
      for (std::size_t j = 0; j < bw; ++j) {
        h(panel_offset + i, panel_offset + j) =
            0.5 * (g(panel_offset + i, j) + g(panel_offset + j, i));
      }
    }

    // Rayleigh–Ritz on the m × m projection — O(m³), the dominant cost at
    // small panel widths, so it only runs once acceptance is possible
    // (m ≥ min_dim, or the basis is the full space). Nothing in the growth
    // phase reads its output, and spectral_scale at the first eligible
    // iteration equals the running maximum the per-iteration variant would
    // have accumulated (eigenvalue interlacing: the extreme |θ| grow
    // monotonically with m), so the skip changes no bit of the result.
    if (m >= min_dim || m == n) {
      StatusOr<SymEigenResult> small = SymmetricEigen(h.Block(0, 0, m, m));
      if (!small.ok()) return small.status();
      for (std::size_t i = 0; i < m; ++i) {
        spectral_scale =
            std::max(spectral_scale, std::fabs(small->eigenvalues[i]));
      }

      // Wanted Ritz pairs: the k largest, descending (min_dim ≥ k, so they
      // always exist here).
      Matrix s_k(m, k);
      Vector theta(k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;
        theta[j] = small->eigenvalues[col];
        for (std::size_t i = 0; i < m; ++i) {
          s_k(i, j) = small->eigenvectors(i, col);
        }
      }

      // Exact residuals cost two O(n·m·k) basis products per check, which
      // rivals the rest of the iteration. θ-stability pre-filter: a Ritz
      // pair's residual is bounded below by its value movement between
      // subspace growths, so while any wanted θ still moves by more than
      // the acceptance threshold the residual test cannot pass and the
      // assembly is skipped. Forced at the first eligible iteration (no
      // previous θ — a converged warm start must be accepted immediately)
      // and whenever the basis cannot grow further (the last chance to
      // accept before the max_m error / the m == n must-return).
      const bool must_check = m >= std::min(max_m, n);
      bool theta_stable = !have_prev_theta;
      if (have_prev_theta) {
        theta_stable = true;
        for (std::size_t j = 0; j < k; ++j) {
          if (std::fabs(theta[j] - prev_theta[j]) >
              options.tolerance * spectral_scale) {
            theta_stable = false;
            break;
          }
        }
      }
      prev_theta = theta;
      have_prev_theta = true;

      if (theta_stable || must_check) {
        // Exact residuals ‖A·x_j − θ_j·x_j‖ from the stored images: each of
        // X = Q·S_k and A·X = (AQ)·S_k is one basis-wide product, with no
        // re-application of the operator.
        const Matrix x = LeftColsTimes(q, m, s_k);
        const Matrix full_ax = LeftColsTimes(aq, m, s_k);
        bool all_converged = true;
        for (std::size_t j = 0; j < k && all_converged; ++j) {
          double rss = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const double r = full_ax(i, j) - theta[j] * x(i, j);
            rss += r * r;
          }
          if (std::sqrt(rss) > options.tolerance * spectral_scale) {
            all_converged = false;
          }
        }
        if ((all_converged && m >= min_dim) || m == n) {
          SymEigenResult out;
          out.eigenvalues = std::move(theta);
          out.eigenvectors = x;
          return out;
        }
      }
    }
    if (m >= max_m) {
      return Status::NumericalError(StrFormat(
          "Block Lanczos did not converge within a subspace of %zu", max_m));
    }

    // Next panel: strip the basis from W and orthonormalize what remains.
    // Pass 1 is classical block Gram–Schmidt reusing the H-extension
    // projections (W −= Q·G — the Qᵀ·W sweep is already paid for); pass 2
    // recomputes projections of the once-cleaned W, giving CGS2 quality.
    // Both passes subtract via an in-place negation of the small factor
    // plus a fused accumulation (IEEE negation is exact, so the bits match
    // the add-a-temporary form for any basis that fits one kc accumulation
    // block). Deficient columns — the block analogue of breakdown — are
    // repaired from unused warm-start columns first, then random
    // directions.
    g.Scale(-1.0);
    AddLeftColsTimes(q, m, g, w);
    Matrix g2(m, bw);
    LeftColsTransposeTimes(q, m, w, g2);
    g2.Scale(-1.0);
    AddLeftColsTimes(q, m, g2, w);
    const std::size_t next_width = std::min(b, std::min(max_m, n) - m);
    if (!AppendPanelColumns(q, m, next_width, &w, warm, next_warm, rng)) {
      return Status::NumericalError(
          "Block Lanczos: could not extend the Krylov basis");
    }
    panel_offset = m;
    m += next_width;
    panel = CopyColumns(q, panel_offset, next_width);
  }
}

StatusOr<SymEigenResult> BlockLanczosSmallest(const SymmetricBlockOperator& op,
                                              std::size_t n, std::size_t k,
                                              double spectral_bound,
                                              const LanczosOptions& options) {
  if (spectral_bound <= 0.0) {
    return Status::InvalidArgument("spectral_bound must be positive");
  }
  // Panel-fused complement: one Y += bound·X − A·X pass over the whole
  // block per application (the A·X underneath is a single SpMM for CSR
  // operators), replacing the single-vector path's per-column lambda.
  SymmetricBlockOperator complement = [&op, spectral_bound](const Matrix& x,
                                                            Matrix& y) {
    Matrix ax(x.rows(), x.cols());
    op(x, ax);
    double* yd = y.data();
    const double* xd = x.data();
    const double* axd = ax.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      yd[i] += spectral_bound * xd[i] - axd[i];
    }
  };
  StatusOr<SymEigenResult> res = BlockLanczosLargest(complement, n, k, options);
  if (!res.ok()) return res.status();
  // Map back: λ_A = bound − λ_complement; order flips to ascending.
  for (std::size_t j = 0; j < k; ++j) {
    res->eigenvalues[j] = spectral_bound - res->eigenvalues[j];
  }
  return res;
}

StatusOr<SymEigenResult> BlockLanczosLargest(const CsrMatrix& a, std::size_t k,
                                             const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Block Lanczos requires a square matrix");
  }
  SymmetricBlockOperator op = [&a](const Matrix& x, Matrix& y) {
    a.MultiplyInto(x, y);
  };
  return BlockLanczosLargest(op, a.rows(), k, options);
}

StatusOr<SymEigenResult> BlockLanczosSmallest(const CsrMatrix& a, std::size_t k,
                                              double spectral_bound,
                                              const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Block Lanczos requires a square matrix");
  }
  SymmetricBlockOperator op = [&a](const Matrix& x, Matrix& y) {
    a.MultiplyInto(x, y);
  };
  return BlockLanczosSmallest(op, a.rows(), k, spectral_bound, options);
}

// ---------------------------------------------------------------------------
// Measured auto-policy
// ---------------------------------------------------------------------------

namespace {

// The probe grid (see the EigensolvePolicy doc comment). log₂ 192 ≈ 7.58
// and log₂ 768 ≈ 9.58 bracket every paper-scale shape's log₂ n within a
// clamp of ≤ 1.5 octaves.
constexpr std::size_t kProbeN[2] = {192, 768};
constexpr std::size_t kProbeC[2] = {4, 12};

// A planted c-cluster symmetric normalized Laplacian, built directly from
// triplets so the calibration stays inside the la layer (no dependency on
// graph construction). Each vertex gets ~8 random in-cluster neighbors plus
// a sprinkle of cross-cluster edges — the degree and spectral profile of
// the k-NN affinity graphs the clustering layers feed this solver.
CsrMatrix ProbeLaplacian(std::size_t n, std::size_t c) {
  Rng rng(0x5eed + n * 131 + c);
  std::vector<std::vector<std::size_t>> adj(n);
  auto connect = [&adj](std::size_t i, std::size_t j) {
    if (i == j) return;
    for (std::size_t seen : adj[i]) {
      if (seen == j) return;
    }
    adj[i].push_back(j);
    adj[j].push_back(i);
  };
  const std::size_t per = n / c;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cluster = i / per < c ? i / per : c - 1;
    const std::size_t lo = cluster * per;
    const std::size_t hi = cluster + 1 == c ? n : lo + per;
    for (std::size_t e = 0; e < 8; ++e) {
      connect(i, lo + rng.UniformInt(hi - lo));
    }
    if (rng.Uniform() < 0.05) {
      connect(i, rng.UniformInt(n));
    }
  }
  std::vector<double> degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    degree[i] = static_cast<double>(adj[i].size());
  }
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 1.0});
    for (std::size_t j : adj[i]) {
      triplets.push_back({i, j, -1.0 / std::sqrt(degree[i] * degree[j])});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

// Wall time of the faster of two runs of `solve` — one repeat knocks out
// most scheduler noise without making first-use calibration noticeable.
template <typename Solve>
double BestOfTwoSeconds(const Solve& solve) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    solve();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

// Process-global override slot for ScopedEigensolveMode; -1 means no
// override is live. Same shape as kernel::ScopedForceScalar's flag.
std::atomic<int>& EigensolveOverrideSlot() {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

EigensolvePolicy::EigensolvePolicy() {
  // Calibration runs with the solver configuration the clustering layers
  // use (their 3e-6 tolerance, their max_subspace formula), so the ratios
  // transfer. The env/scope overrides are NOT consulted here — the policy
  // measures both paths regardless of what the process forces, so a later
  // un-forced query still has real data.
  //
  // First use may come from an executor worker running a thread-budgeted
  // job: suspend any installed ParallelContext so the probes time the
  // process-default pool configuration, not one tenant's budget — the
  // decision is baked in process-wide and must not depend on which job
  // happened to trigger it.
  const ScopedParallelContext no_context(nullptr);
  for (int ni = 0; ni < 2; ++ni) {
    for (int ci = 0; ci < 2; ++ci) {
      const std::size_t n = kProbeN[ni];
      const std::size_t c = kProbeC[ci];
      const CsrMatrix lap = ProbeLaplacian(n, c);
      LanczosOptions options;
      options.tolerance = 3e-6;
      options.max_subspace =
          std::min(n, std::max<std::size_t>(12 * c + 100, 250));
      Probe probe;
      probe.n = n;
      probe.c = c;
      probe.block_seconds = BestOfTwoSeconds([&] {
        (void)BlockLanczosSmallest(lap, c, 2.0 + 1e-9, options);
      });
      probe.single_seconds = BestOfTwoSeconds(
          [&] { (void)LanczosSmallest(lap, c, 2.0 + 1e-9, options); });
      log_ratio_[ni][ci] =
          std::log(std::max(probe.block_seconds, 1e-9) /
                   std::max(probe.single_seconds, 1e-9));
      probes_.push_back(probe);
    }
  }
}

const EigensolvePolicy& EigensolvePolicy::Get() {
  // Explicit once-guard rather than a magic static: the calibration body
  // runs timed probes through the thread pool, and the executor makes
  // CONCURRENT first use from several worker threads the common case (N
  // jobs submitted at once all reach their first eigensolve together).
  // call_once pins the intended semantics — exactly one thread calibrates,
  // every other first-user blocks until the probes finish, and no probe
  // ever runs twice (la_policy_concurrent_test exercises exactly this).
  static std::once_flag once;
  static const EigensolvePolicy* policy = nullptr;
  std::call_once(once, [] { policy = new EigensolvePolicy(); });
  return *policy;
}

bool EigensolvePolicy::PreferBlock(std::size_t n, std::size_t k) const {
  // Shape rules outside the probe grid: a width-1 panel is the
  // single-vector iteration plus panel overhead, and k ≥ 16 is where the
  // block path's level-3 kernels and in-panel multiplicity capture win in
  // every measurement (the ORL shape, 400 × 40, runs ~20% faster through
  // the block path while the single-vector solver needs 7× the sweeps).
  if (k <= 1) return false;
  if (k >= 16) return true;
  const auto clamp = [](double x, double lo, double hi) {
    return x < lo ? lo : (x > hi ? hi : x);
  };
  const double ln0 = std::log2(static_cast<double>(kProbeN[0]));
  const double ln1 = std::log2(static_cast<double>(kProbeN[1]));
  const double tn =
      (clamp(std::log2(static_cast<double>(n)), ln0, ln1) - ln0) / (ln1 - ln0);
  const double tc = (clamp(static_cast<double>(k),
                           static_cast<double>(kProbeC[0]),
                           static_cast<double>(kProbeC[1])) -
                     kProbeC[0]) /
                    static_cast<double>(kProbeC[1] - kProbeC[0]);
  const double interpolated =
      (1.0 - tn) * ((1.0 - tc) * log_ratio_[0][0] + tc * log_ratio_[0][1]) +
      tn * ((1.0 - tc) * log_ratio_[1][0] + tc * log_ratio_[1][1]);
  // Block must *beat* single with margin — near the crossover the noise in
  // the probes exceeds the stakes, and the single path is the safe default.
  return interpolated <= std::log(0.95);
}

ScopedEigensolveMode::ScopedEigensolveMode(EigensolveMode mode)
    : previous_(static_cast<EigensolveMode>(-1)) {
  const int raw = EigensolveOverrideSlot().exchange(
      static_cast<int>(mode), std::memory_order_relaxed);
  previous_ = static_cast<EigensolveMode>(raw);
}

ScopedEigensolveMode::~ScopedEigensolveMode() {
  EigensolveOverrideSlot().store(static_cast<int>(previous_),
                                 std::memory_order_relaxed);
}

EigensolveMode ResolveEigensolveMode(EigensolveMode requested, std::size_t n,
                                     std::size_t k) {
  const int scoped = EigensolveOverrideSlot().load(std::memory_order_relaxed);
  if (scoped == static_cast<int>(EigensolveMode::kForceBlock) ||
      scoped == static_cast<int>(EigensolveMode::kForceSingle)) {
    return static_cast<EigensolveMode>(scoped);
  }
  if (requested != EigensolveMode::kAuto) return requested;
  if (const char* env = std::getenv("UMVSC_EIGENSOLVER")) {
    const std::string value(env);
    if (value == "block") return EigensolveMode::kForceBlock;
    if (value == "single") return EigensolveMode::kForceSingle;
  }
  return EigensolvePolicy::Get().PreferBlock(n, k)
             ? EigensolveMode::kForceBlock
             : EigensolveMode::kForceSingle;
}

namespace {

// The single-vector view of a panel operator: each matvec is a width-1
// panel application. The zeroed n × 1 staging panels keep the y += A·x
// contract of SymmetricOperator.
SymmetricOperator ColumnOperator(const SymmetricBlockOperator& op) {
  return [&op](const Vector& x, Vector& y) {
    const std::size_t n = x.size();
    Matrix xm(n, 1);
    for (std::size_t i = 0; i < n; ++i) xm(i, 0) = x[i];
    Matrix ym(n, 1);
    op(xm, ym);
    for (std::size_t i = 0; i < n; ++i) y[i] += ym(i, 0);
  };
}

}  // namespace

StatusOr<SymEigenResult> LanczosLargestAuto(const CsrMatrix& a, std::size_t k,
                                            const LanczosOptions& options,
                                            EigensolveMode mode) {
  return ResolveEigensolveMode(mode, a.rows(), k) ==
                 EigensolveMode::kForceBlock
             ? BlockLanczosLargest(a, k, options)
             : LanczosLargest(a, k, options);
}

StatusOr<SymEigenResult> LanczosSmallestAuto(const CsrMatrix& a, std::size_t k,
                                             double spectral_bound,
                                             const LanczosOptions& options,
                                             EigensolveMode mode) {
  return ResolveEigensolveMode(mode, a.rows(), k) ==
                 EigensolveMode::kForceBlock
             ? BlockLanczosSmallest(a, k, spectral_bound, options)
             : LanczosSmallest(a, k, spectral_bound, options);
}

StatusOr<SymEigenResult> LanczosLargestAuto(const SymmetricBlockOperator& op,
                                            std::size_t n, std::size_t k,
                                            const LanczosOptions& options,
                                            EigensolveMode mode) {
  if (ResolveEigensolveMode(mode, n, k) == EigensolveMode::kForceBlock) {
    return BlockLanczosLargest(op, n, k, options);
  }
  return LanczosLargest(ColumnOperator(op), n, k, options);
}

StatusOr<SymEigenResult> LanczosSmallestAuto(const SymmetricBlockOperator& op,
                                             std::size_t n, std::size_t k,
                                             double spectral_bound,
                                             const LanczosOptions& options,
                                             EigensolveMode mode) {
  if (ResolveEigensolveMode(mode, n, k) == EigensolveMode::kForceBlock) {
    return BlockLanczosSmallest(op, n, k, spectral_bound, options);
  }
  return LanczosSmallest(ColumnOperator(op), n, k, spectral_bound, options);
}

}  // namespace umvsc::la
