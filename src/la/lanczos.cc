#include "la/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace umvsc::la {

namespace {

// Re-orthogonalizes w against every column stored in `basis` (two classical
// Gram–Schmidt passes, which in double precision is as good as modified GS
// with full reorthogonalization).
void Reorthogonalize(const std::vector<Vector>& basis, Vector& w) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis) {
      const double dot = Dot(q, w);
      if (dot != 0.0) w.Axpy(-dot, q);
    }
  }
}

}  // namespace

StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("LanczosLargest requires 0 < k <= n");
  }
  const std::size_t max_m = std::min(n, options.max_subspace);
  if (max_m < k) {
    return Status::InvalidArgument("max_subspace smaller than k");
  }

  Rng rng(options.seed);
  std::vector<Vector> basis;  // Lanczos vectors q_0 … q_{m−1}
  basis.reserve(max_m);
  std::vector<double> alpha;  // diagonal of T
  std::vector<double> beta;   // subdiagonal of T

  // Warm columns usable by this solve: the column sum seeds q_0, and the
  // individual columns feed breakdown restarts before random directions do.
  const Matrix* warm = options.warm_start;
  if (warm != nullptr && (warm->rows() != n || warm->cols() == 0)) {
    warm = nullptr;
  }
  std::size_t next_warm = 0;

  Vector q(n);
  bool seeded = false;
  if (warm != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < warm->cols(); ++j) s += (*warm)(i, j);
      q[i] = s;
    }
    const double norm = q.Norm2();
    if (norm > 1e-12) {
      q.Scale(1.0 / norm);
      seeded = true;
    }
  }
  if (!seeded) {
    for (std::size_t i = 0; i < n; ++i) q[i] = rng.Gaussian();
    q.Normalize();
  }
  basis.push_back(q);

  double spectral_scale = 1.0;
  SymEigenResult small;  // eigen-decomposition of the current tridiagonal

  for (std::size_t m = 1; m <= max_m; ++m) {
    // Expand the Krylov basis: w = A·q_{m−1} − β_{m−2}·q_{m−2}.
    Vector w(n);
    op(basis.back(), w);
    if (options.matvec_count != nullptr) ++*options.matvec_count;
    const double a = Dot(basis.back(), w);
    alpha.push_back(a);
    spectral_scale = std::max(spectral_scale, std::fabs(a));
    Reorthogonalize(basis, w);
    const double b = w.Norm2();

    // Solve the small tridiagonal problem.
    Vector d(alpha.size());
    for (std::size_t i = 0; i < alpha.size(); ++i) d[i] = alpha[i];
    Vector e(beta.size());
    for (std::size_t i = 0; i < beta.size(); ++i) e[i] = beta[i];
    StatusOr<SymEigenResult> tri = TridiagonalEigen(d, e);
    if (!tri.ok()) return tri.status();
    small = std::move(*tri);

    // A Ritz pair's residual is |β_m · s_{m−1,j}| (last component of the
    // tridiagonal eigenvector scaled by the new off-diagonal norm). This is
    // also ≈0 whenever the basis spans an invariant subspace, which happens
    // *before* convergence for eigenvalues with multiplicity > 1 (a single
    // Krylov sequence sees one copy of each eigenspace). Guard against that
    // trap by requiring the subspace to grow past k by a safety margin
    // before accepting, and by restarting with fresh random directions on
    // every breakdown — restarts re-sample the missed eigenspace copies.
    const std::size_t min_dim = std::min(n, k + std::max<std::size_t>(k, 8));
    bool all_converged = false;
    if (m >= k) {
      all_converged = true;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;  // largest Ritz values
        const double resid = std::fabs(b * small.eigenvectors(m - 1, col));
        if (resid > options.tolerance * spectral_scale) {
          all_converged = false;
          break;
        }
      }
    }
    if ((all_converged && m >= min_dim) || m == n) {
      // Assemble the Ritz vectors X = Q · S for the k largest values.
      SymEigenResult out;
      out.eigenvalues = Vector(k);
      out.eigenvectors = Matrix(n, k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t col = m - 1 - j;
        out.eigenvalues[j] = small.eigenvalues[col];
        for (std::size_t i = 0; i < n; ++i) {
          double s = 0.0;
          for (std::size_t p = 0; p < m; ++p) {
            s += basis[p][i] * small.eigenvectors(p, col);
          }
          out.eigenvectors(i, j) = s;
        }
      }
      return out;
    }
    if (m == max_m) {
      return Status::NumericalError(StrFormat(
          "Lanczos did not converge within a subspace of %zu", max_m));
    }

    if (b <= 1e-12 * spectral_scale) {
      // Breakdown (invariant subspace): extend the basis. Warm-start columns
      // go first — they point at the eigenspace copies a single Krylov
      // sequence misses — then fresh random directions orthogonal to
      // everything found so far.
      Vector fresh(n);
      double norm = 0.0;
      while (warm != nullptr && next_warm < warm->cols()) {
        for (std::size_t i = 0; i < n; ++i) fresh[i] = (*warm)(i, next_warm);
        ++next_warm;
        Reorthogonalize(basis, fresh);
        norm = fresh.Norm2();
        if (norm > 1e-8) break;  // column adds a genuinely new direction
        norm = 0.0;
      }
      if (norm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) fresh[i] = rng.Gaussian();
        Reorthogonalize(basis, fresh);
        norm = fresh.Norm2();
      }
      if (norm <= 1e-12) {
        return Status::NumericalError(
            "Lanczos: could not extend the Krylov basis");
      }
      fresh.Scale(1.0 / norm);
      beta.push_back(0.0);
      basis.push_back(fresh);
    } else {
      w.Scale(1.0 / b);
      beta.push_back(b);
      basis.push_back(w);
    }
  }
  return Status::NumericalError("Lanczos subspace exhausted");
}

StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options) {
  if (spectral_bound <= 0.0) {
    return Status::InvalidArgument("spectral_bound must be positive");
  }
  SymmetricOperator complement = [&op, spectral_bound](const Vector& x,
                                                       Vector& y) {
    // y += (bound·I − A)·x
    Vector ax(x.size());
    op(x, ax);
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] += spectral_bound * x[i] - ax[i];
    }
  };
  StatusOr<SymEigenResult> res = LanczosLargest(complement, n, k, options);
  if (!res.ok()) return res.status();
  // Map back: λ_A = bound − λ_complement; order flips to ascending.
  for (std::size_t j = 0; j < k; ++j) {
    res->eigenvalues[j] = spectral_bound - res->eigenvalues[j];
  }
  return res;
}

StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  SymmetricOperator op = [&a](const Vector& x, Vector& y) {
    a.MultiplyInto(x, y);
  };
  return LanczosLargest(op, a.rows(), k, options);
}

StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  SymmetricOperator op = [&a](const Vector& x, Vector& y) {
    a.MultiplyInto(x, y);
  };
  return LanczosSmallest(op, a.rows(), k, spectral_bound, options);
}

}  // namespace umvsc::la
