#include "la/batched.h"

#include "common/parallel.h"
#include "la/ops.h"
#include "la/svd.h"

namespace umvsc::la {

// All three kernels share one dispatch shape: grain-1 ParallelFor over the
// problem array, one contiguous run of whole problems per team, the serial
// kernel per slot. Outputs are write-disjoint caller slots, so the fan-out
// is deterministic by the pool's static-partition contract.

void BatchedProcrustes(ProcrustesProblem* problems, std::size_t count) {
  if (problems == nullptr || count == 0) return;
  ParallelFor(0, count, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      if (problems[p].input == nullptr || problems[p].output == nullptr) {
        continue;
      }
      *problems[p].output = ProcrustesRotation(*problems[p].input);
    }
  });
}

void BatchedSymmetricEigen(SymEigenProblem* problems, std::size_t count) {
  if (problems == nullptr || count == 0) return;
  ParallelFor(0, count, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      if (problems[p].input == nullptr || problems[p].output == nullptr) {
        continue;
      }
      *problems[p].output =
          SymmetricEigen(*problems[p].input, problems[p].symmetry_tol);
    }
  });
}

void BatchedGemm(GemmProblem* problems, std::size_t count) {
  if (problems == nullptr || count == 0) return;
  ParallelFor(0, count, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      const GemmProblem& job = problems[p];
      if (job.a == nullptr || job.b == nullptr || job.output == nullptr) {
        continue;
      }
      *job.output = job.transpose_a ? MatTMul(*job.a, *job.b)
                                    : MatMul(*job.a, *job.b);
    }
  });
}

}  // namespace umvsc::la
