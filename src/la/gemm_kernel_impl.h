#ifndef UMVSC_LA_GEMM_KERNEL_IMPL_H_
#define UMVSC_LA_GEMM_KERNEL_IMPL_H_

// Register-blocked, packed-panel GEMM — the template both dispatch flavors
// (native SIMD and scalar-forced) instantiate. Included only by
// gemm_kernel.cc and gemm_kernel_scalar.cc.
//
// Structure (BLIS-style, specialized to row-major operands):
//
//   for kk over k in kc blocks:            · fixed kc grid = the
//     pack B[kk:kk+kc, :] into nr strips     accumulation contract
//     for i0 over rows in mc blocks:
//       pack A[i0:i0+mc, kk:kk+kc] into mr strips
//       for each mr strip × nr strip:
//         mr×nr register tile accumulates serially over the kc block
//         tile adds into C
//
// Determinism: every C element accumulates (a) serially in ascending p
// inside each kc block — its own register lane, no cross-lane math — and
// (b) across kc blocks in ascending order via the C read-modify-write.
// The grid depends only on k (and the kKc constant), so the result is
// independent of the row range, the tile a value lands in, zero-padded
// edges, and the backend V.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "la/gemm_kernel.h"
#include "la/simd.h"

namespace umvsc::la::kernel::detail {

/// Register-tile rows: 4 broadcast-from-A values held per p step.
inline constexpr std::size_t kMr = 4;
/// Register-tile columns: two 4-lane vectors of packed B.
inline constexpr std::size_t kNr = 2 * simd::kSimdLanes;
/// kc: p-block edge. THE determinism-relevant constant — the accumulation
/// grid is the ⌈k/kKc⌉ blocking of the inner dimension and nothing else.
inline constexpr std::size_t kKc = 256;
/// mc: rows of A packed per cache block (kMc·kKc doubles ≈ 128 KiB).
inline constexpr std::size_t kMc = 64;

/// Packs B rows [kk, kk+kcb) × all n columns into nr-wide strips, p-major
/// within a strip (kNr contiguous doubles per p), zero-padding the last
/// strip. Padding lanes multiply into discarded tile slots only.
inline void PackB(const Operand& b, std::size_t kk, std::size_t kcb,
                  std::size_t n, double* bp) {
  const std::size_t strips = (n + kNr - 1) / kNr;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t j0 = s * kNr;
    const std::size_t jw = std::min(kNr, n - j0);
    double* dst = bp + s * kNr * kcb;
    if (!b.transposed) {
      for (std::size_t p = 0; p < kcb; ++p) {
        const double* src = b.data + (kk + p) * b.stride + j0;
        for (std::size_t u = 0; u < jw; ++u) dst[u] = src[u];
        for (std::size_t u = jw; u < kNr; ++u) dst[u] = 0.0;
        dst += kNr;
      }
    } else {
      for (std::size_t p = 0; p < kcb; ++p) {
        for (std::size_t u = 0; u < jw; ++u) {
          dst[u] = b.data[(j0 + u) * b.stride + (kk + p)];
        }
        for (std::size_t u = jw; u < kNr; ++u) dst[u] = 0.0;
        dst += kNr;
      }
    }
  }
}

/// Packs A rows [i0, i0+mb) × [kk, kk+kcb) into mr-row strips, p-major
/// (kMr contiguous doubles per p), zero-padding the last strip's rows.
inline void PackA(const Operand& a, std::size_t i0, std::size_t mb,
                  std::size_t kk, std::size_t kcb, double* ap) {
  const std::size_t strips = (mb + kMr - 1) / kMr;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t r0 = s * kMr;
    const std::size_t rw = std::min(kMr, mb - r0);
    double* dst = ap + s * kMr * kcb;
    if (!a.transposed) {
      for (std::size_t p = 0; p < kcb; ++p) {
        const double* col = a.data + (i0 + r0) * a.stride + (kk + p);
        for (std::size_t r = 0; r < rw; ++r) dst[r] = col[r * a.stride];
        for (std::size_t r = rw; r < kMr; ++r) dst[r] = 0.0;
        dst += kMr;
      }
    } else {
      for (std::size_t p = 0; p < kcb; ++p) {
        const double* row = a.data + (kk + p) * a.stride + (i0 + r0);
        for (std::size_t r = 0; r < rw; ++r) dst[r] = row[r];
        for (std::size_t r = rw; r < kMr; ++r) dst[r] = 0.0;
        dst += kMr;
      }
    }
  }
}

/// The mr×nr micro-kernel: tile[r][u] = Σ_p ap[p·kMr + r] · bp[p·kNr + u],
/// all eight kMr × (kNr/kSimdLanes) accumulators held in registers across
/// the whole kc block.
template <class V>
inline void MicroKernel(const double* ap, const double* bp, std::size_t kcb,
                        double* tile) {
  using Reg = typename V::Reg;
  Reg c00 = V::Zero(), c01 = V::Zero();
  Reg c10 = V::Zero(), c11 = V::Zero();
  Reg c20 = V::Zero(), c21 = V::Zero();
  Reg c30 = V::Zero(), c31 = V::Zero();
  for (std::size_t p = 0; p < kcb; ++p) {
    const Reg b0 = V::Load(bp);
    const Reg b1 = V::Load(bp + simd::kSimdLanes);
    const Reg a0 = V::Broadcast(ap[0]);
    c00 = V::MulAdd(a0, b0, c00);
    c01 = V::MulAdd(a0, b1, c01);
    const Reg a1 = V::Broadcast(ap[1]);
    c10 = V::MulAdd(a1, b0, c10);
    c11 = V::MulAdd(a1, b1, c11);
    const Reg a2 = V::Broadcast(ap[2]);
    c20 = V::MulAdd(a2, b0, c20);
    c21 = V::MulAdd(a2, b1, c21);
    const Reg a3 = V::Broadcast(ap[3]);
    c30 = V::MulAdd(a3, b0, c30);
    c31 = V::MulAdd(a3, b1, c31);
    ap += kMr;
    bp += kNr;
  }
  V::Store(tile + 0 * kNr, c00);
  V::Store(tile + 0 * kNr + simd::kSimdLanes, c01);
  V::Store(tile + 1 * kNr, c10);
  V::Store(tile + 1 * kNr + simd::kSimdLanes, c11);
  V::Store(tile + 2 * kNr, c20);
  V::Store(tile + 2 * kNr + simd::kSimdLanes, c21);
  V::Store(tile + 3 * kNr, c30);
  V::Store(tile + 3 * kNr + simd::kSimdLanes, c31);
}

template <class V>
void GemmAddImpl(std::size_t n, std::size_t k, const Operand& a,
                 const Operand& b, double* c, std::size_t c_stride,
                 std::size_t row_begin, std::size_t row_end) {
  if (row_end <= row_begin || n == 0 || k == 0) return;
  const std::size_t kc_max = std::min(k, kKc);
  const std::size_t strips_n = (n + kNr - 1) / kNr;
  // Per-call packing buffers; GemmAdd is invoked once per thread span, so
  // these are thread-private by construction.
  std::vector<double> bp(strips_n * kNr * kc_max);
  std::vector<double> ap(((kMc + kMr - 1) / kMr) * kMr * kc_max);
  double tile[kMr * kNr];

  for (std::size_t kk = 0; kk < k; kk += kKc) {
    const std::size_t kcb = std::min(kKc, k - kk);
    PackB(b, kk, kcb, n, bp.data());
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kMc) {
      const std::size_t mb = std::min(kMc, row_end - i0);
      PackA(a, i0, mb, kk, kcb, ap.data());
      for (std::size_t r0 = 0; r0 < mb; r0 += kMr) {
        const std::size_t rw = std::min(kMr, mb - r0);
        const double* apk = ap.data() + (r0 / kMr) * kMr * kcb;
        for (std::size_t s = 0; s < strips_n; ++s) {
          const std::size_t j0 = s * kNr;
          const std::size_t jw = std::min(kNr, n - j0);
          MicroKernel<V>(apk, bp.data() + s * kNr * kcb, kcb, tile);
          for (std::size_t r = 0; r < rw; ++r) {
            double* crow = c + (i0 + r0 + r) * c_stride + j0;
            const double* trow = tile + r * kNr;
            for (std::size_t u = 0; u < jw; ++u) crow[u] += trow[u];
          }
        }
      }
    }
  }
}

}  // namespace umvsc::la::kernel::detail

#endif  // UMVSC_LA_GEMM_KERNEL_IMPL_H_
