#include "la/qr.h"

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace umvsc::la {

namespace {

// Applies the Householder reflector H = I − tau·v·vᵀ (v implicit in
// work[j..m)) to columns [col0, n) of `a`, rows [j, m).
void ApplyReflectorLeft(Matrix& a, const std::vector<double>& v,
                        std::size_t j, double tau, std::size_t col0) {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t c = col0; c < n; ++c) {
    double dot = 0.0;
    for (std::size_t r = j; r < m; ++r) dot += v[r] * a(r, c);
    const double scale = tau * dot;
    for (std::size_t r = j; r < m; ++r) a(r, c) -= scale * v[r];
  }
}

}  // namespace

QrResult QrDecompose(const Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  UMVSC_CHECK(m >= n, "thin QR requires rows >= cols");
  Matrix r = a;
  // Accumulate Q by applying the reflectors to an m×n identity pad.
  Matrix q(m, n);
  for (std::size_t i = 0; i < n; ++i) q(i, i) = 1.0;

  std::vector<double> v(m, 0.0);
  std::vector<double> taus;
  std::vector<std::vector<double>> reflectors;
  taus.reserve(n);
  reflectors.reserve(n);

  for (std::size_t j = 0; j < n; ++j) {
    // Build the reflector that annihilates r(j+1..m, j).
    double norm = 0.0;
    for (std::size_t i = j; i < m; ++i) norm += r(i, j) * r(i, j);
    norm = std::sqrt(norm);
    std::fill(v.begin(), v.end(), 0.0);
    double tau = 0.0;
    if (norm > 0.0) {
      const double alpha = r(j, j) >= 0.0 ? -norm : norm;
      for (std::size_t i = j; i < m; ++i) v[i] = r(i, j);
      v[j] -= alpha;
      double vnorm2 = 0.0;
      for (std::size_t i = j; i < m; ++i) vnorm2 += v[i] * v[i];
      if (vnorm2 > 0.0) {
        tau = 2.0 / vnorm2;
        ApplyReflectorLeft(r, v, j, tau, j);
      }
      r(j, j) = alpha;
      for (std::size_t i = j + 1; i < m; ++i) r(i, j) = 0.0;
    }
    taus.push_back(tau);
    reflectors.push_back(v);
  }

  // Q = H_0 · H_1 · … · H_{n−1} · [I; 0]: apply reflectors in reverse.
  for (std::size_t j = n; j > 0; --j) {
    const std::size_t k = j - 1;
    if (taus[k] != 0.0) ApplyReflectorLeft(q, reflectors[k], k, taus[k], 0);
  }

  QrResult out;
  out.q = std::move(q);
  out.r = r.Block(0, 0, n, n);
  return out;
}

Matrix Orthonormalize(const Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  UMVSC_CHECK(m >= n, "Orthonormalize requires rows >= cols");
  QrResult qr = QrDecompose(a);
  // Detect numerically dependent columns and replace them by re-running QR
  // with random completions until every diagonal of R is healthy.
  const double tol = 1e-12 * std::max(1.0, a.MaxAbs()) *
                     static_cast<double>(std::max(m, n));
  bool deficient = false;
  for (std::size_t j = 0; j < n; ++j) {
    if (std::fabs(qr.r(j, j)) <= tol) {
      deficient = true;
      break;
    }
  }
  if (!deficient) return qr.q;

  // Rank-deficient: project random vectors against the found basis via a
  // second QR over [A | randoms] — in practice a single retry suffices.
  Rng rng(0xC0FFEE);
  Matrix padded = a;
  for (std::size_t j = 0; j < n; ++j) {
    if (std::fabs(qr.r(j, j)) <= tol) {
      for (std::size_t i = 0; i < m; ++i) padded(i, j) = rng.Gaussian();
    }
  }
  QrResult retry = QrDecompose(padded);
  return retry.q;
}

Vector LeastSquares(const Matrix& a, const Vector& b) {
  UMVSC_CHECK(a.rows() == b.size(), "LeastSquares dimension mismatch");
  QrResult qr = QrDecompose(a);
  Vector qtb = MatTVec(qr.q, b);
  const std::size_t n = a.cols();
  Vector x(n);
  for (std::size_t j = n; j > 0; --j) {
    const std::size_t i = j - 1;
    double s = qtb[i];
    for (std::size_t k = j; k < n; ++k) s -= qr.r(i, k) * x[k];
    UMVSC_CHECK(qr.r(i, i) != 0.0, "LeastSquares: rank-deficient system");
    x[i] = s / qr.r(i, i);
  }
  return x;
}

}  // namespace umvsc::la
