#include "la/nmf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "la/ops.h"

namespace umvsc::la {

namespace {

// Guard against division by exactly zero in the multiplicative updates.
constexpr double kEps = 1e-12;

// Normalizes W's columns to unit L2 norm and scales H's rows inversely, so
// the factorization is unchanged but W stays bounded.
void NormalizeColumns(Matrix& w, Matrix& h) {
  for (std::size_t j = 0; j < w.cols(); ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    if (norm <= kEps) continue;
    for (std::size_t i = 0; i < w.rows(); ++i) w(i, j) /= norm;
    for (std::size_t d = 0; d < h.cols(); ++d) h(j, d) *= norm;
  }
}

}  // namespace

StatusOr<NmfResult> Nmf(const Matrix& a, const NmfOptions& options) {
  const std::size_t n = a.rows(), d = a.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("NMF requires a non-empty matrix");
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] < 0.0) {
      return Status::InvalidArgument("NMF requires a nonnegative matrix");
    }
  }
  const std::size_t r = options.rank;
  if (r < 1 || r > std::min(n, d)) {
    return Status::InvalidArgument("NMF requires 1 <= rank <= min(n, d)");
  }

  Rng rng(options.seed);
  Matrix w = Matrix::RandomUniform(n, r, rng, 0.1, 1.0);
  Matrix h = Matrix::RandomUniform(r, d, rng, 0.1, 1.0);

  const double a_norm = std::max(a.FrobeniusNorm(), kEps);
  double prev_err = std::numeric_limits<double>::infinity();
  NmfResult out;
  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // H ← H ∘ (WᵀA) ⊘ (WᵀW·H).
    Matrix wta = MatTMul(w, a);
    Matrix wtwh = MatMul(Gram(w), h);
    for (std::size_t i = 0; i < h.size(); ++i) {
      h.data()[i] *= wta.data()[i] / (wtwh.data()[i] + kEps);
    }
    // W ← W ∘ (A·Hᵀ) ⊘ (W·HHᵀ).
    Matrix aht = MatMulT(a, h);
    Matrix whht = MatMul(w, OuterGram(h));
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] *= aht.data()[i] / (whht.data()[i] + kEps);
    }
    NormalizeColumns(w, h);

    const double err = Add(a, MatMul(w, h), -1.0).FrobeniusNorm() / a_norm;
    if (iter > 0 && prev_err - err <= options.tolerance * std::max(prev_err, kEps)) {
      out.relative_error = err;
      ++iter;
      break;
    }
    prev_err = err;
    out.relative_error = err;
  }
  out.w = std::move(w);
  out.h = std::move(h);
  out.iterations = iter;
  return out;
}

}  // namespace umvsc::la
