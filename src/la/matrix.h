#ifndef UMVSC_LA_MATRIX_H_
#define UMVSC_LA_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "la/vector.h"

namespace umvsc {
class Rng;
}  // namespace umvsc

namespace umvsc::la {

/// Dense double-precision matrix, row-major contiguous storage.
///
/// The workhorse type of the library: spectral embeddings, kernels, and
/// indicator matrices are all Matrix values. Copy is deep; move is O(1).
class Matrix {
 public:
  Matrix() = default;
  /// Zero matrix of shape rows × cols.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Constant matrix of shape rows × cols.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}
  /// Row-of-rows construction, mainly for tests:
  /// `Matrix m{{1, 2}, {3, 4}};`. All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// n × n identity.
  static Matrix Identity(std::size_t n);
  /// Square matrix with `d` on the diagonal.
  static Matrix Diagonal(const Vector& d);
  /// i.i.d. U(lo, hi) entries drawn from `rng`.
  static Matrix RandomUniform(std::size_t rows, std::size_t cols, Rng& rng,
                              double lo = 0.0, double hi = 1.0);
  /// i.i.d. N(0, 1) entries drawn from `rng`.
  static Matrix RandomGaussian(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator()(std::size_t i, std::size_t j) const {
    UMVSC_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  double& operator()(std::size_t i, std::size_t j) {
    UMVSC_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  /// Pointer to the first element of row i.
  const double* RowPtr(std::size_t i) const { return data_.data() + i * cols_; }
  double* RowPtr(std::size_t i) { return data_.data() + i * cols_; }

  /// Copy of row i as a Vector.
  Vector Row(std::size_t i) const;
  /// Copy of column j as a Vector.
  Vector Col(std::size_t j) const;
  /// Overwrites row i. Requires v.size() == cols().
  void SetRow(std::size_t i, const Vector& v);
  /// Overwrites column j. Requires v.size() == rows().
  void SetCol(std::size_t j, const Vector& v);
  /// Copy of the main diagonal (length min(rows, cols)).
  Vector Diag() const;

  /// Copy of the contiguous block starting at (r0, c0) of shape nr × nc.
  Matrix Block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;
  /// Copy of the first `k` columns.
  Matrix LeftCols(std::size_t k) const { return Block(0, 0, rows_, k); }

  void Fill(double value);
  /// In-place scaling: this *= alpha.
  void Scale(double alpha);
  /// In-place sum: this += alpha * other. Requires matching shapes.
  void Add(const Matrix& other, double alpha = 1.0);
  /// In-place symmetrization: this = (this + thisᵀ)/2. Requires square.
  void Symmetrize();

  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Largest absolute entry (0 for empty).
  double MaxAbs() const;
  /// Sum of diagonal entries. Requires square.
  double Trace() const;

  bool IsSquare() const { return rows_ == cols_; }
  /// True when ‖A − Aᵀ‖_max <= tol. Requires square.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Multi-line human-readable rendering (for logs and test failures).
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// True when shapes match and ‖A − B‖_max <= tol.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);

}  // namespace umvsc::la

#endif  // UMVSC_LA_MATRIX_H_
