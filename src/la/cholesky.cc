#include "la/cholesky.h"

#include <cmath>

#include "common/strings.h"

namespace umvsc::la {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(StrFormat(
          "matrix not positive definite at pivot %zu (value %g)", j, diag));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

namespace {

Vector SolveWithFactor(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  // Forward substitution L·y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution Lᵀ·x = y.
  Vector x(n);
  for (std::size_t j = n; j > 0; --j) {
    const std::size_t i = j - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

}  // namespace

StatusOr<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("CholeskySolve dimension mismatch");
  }
  StatusOr<Matrix> factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  return SolveWithFactor(*factor, b);
}

StatusOr<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("CholeskySolveMatrix dimension mismatch");
  }
  StatusOr<Matrix> factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.SetCol(j, SolveWithFactor(*factor, b.Col(j)));
  }
  return x;
}

}  // namespace umvsc::la
