#include "la/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "la/gemm_kernel.h"

namespace umvsc::la {

namespace {
// Row grain of the GemmAdd-routed kernels. The accumulation grid of
// kernel::GemmAdd is a pure function of the inner dimension (see
// gemm_kernel.h), so this constant affects scheduling only, never values.
constexpr std::size_t kGemmRowGrain = 32;

// ParallelFor grain of the row-parallel vector kernels.
constexpr std::size_t kMatVecGrain = 64;

// Grain of flat elementwise kernels (Hadamard, Matrix::Add): spans are
// value-neutral, the grain only amortizes dispatch.
constexpr std::size_t kFlatGrain = 4096;

// Cache tile edge of the blocked Transpose.
constexpr std::size_t kTransposeTile = 64;

// Rows of A accumulated per partial Gram chunk. The chunk grid (and the
// fixed ParallelReduce combine tree over it) depends only on the row count
// and this constant — never the thread count.
constexpr std::size_t kGramChunk = 256;

// Row-block edge of the OuterGram upper-triangle sweep. Equal to the
// ParallelFor grain so the block grid is the global multiples-of-16 grid
// regardless of how threads split the rows.
constexpr std::size_t kTriBlock = 16;
}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.cols() == b.rows(), "MatMul inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  const kernel::Operand ao{a.data(), k, false};
  const kernel::Operand bo{b.data(), n, false};
  // Row-parallel over the packed register-blocked kernel; each thread owns
  // a contiguous strip of C's rows. The kc accumulation grid is a pure
  // function of k, so the product is bitwise identical at every thread
  // count (see la/gemm_kernel.h).
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.rows() == b.rows(), "MatTMul dimension mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  const kernel::Operand ao{a.data(), m, true};  // A(i, p) = a(p, i)
  const kernel::Operand bo{b.data(), n, false};
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
  return c;
}

void MatMulAddInto(const Matrix& a, const Matrix& b, Matrix& c) {
  UMVSC_CHECK(a.cols() == b.rows(), "MatMulAddInto inner dimension mismatch");
  UMVSC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "MatMulAddInto output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const kernel::Operand ao{a.data(), k, false};
  const kernel::Operand bo{b.data(), n, false};
  // GemmAdd has += semantics natively; this is MatMul minus the zero-filled
  // temporary and the second add pass.
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
}

void MatTMulInto(const Matrix& a, const Matrix& b, Matrix& c) {
  UMVSC_CHECK(a.rows() == b.rows(), "MatTMulInto dimension mismatch");
  UMVSC_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
              "MatTMulInto output shape mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  c.Fill(0.0);
  const kernel::Operand ao{a.data(), m, true};  // A(i, p) = a(p, i)
  const kernel::Operand bo{b.data(), n, false};
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& c) {
  UMVSC_CHECK(a.cols() == b.rows(), "MatMulInto inner dimension mismatch");
  UMVSC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "MatMulInto output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.Fill(0.0);
  const kernel::Operand ao{a.data(), k, false};
  const kernel::Operand bo{b.data(), n, false};
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
}

void MatMulTInto(const Matrix& a, const Matrix& b, Matrix& c) {
  UMVSC_CHECK(a.cols() == b.cols(), "MatMulTInto dimension mismatch");
  UMVSC_CHECK(c.rows() == a.rows() && c.cols() == b.rows(),
              "MatMulTInto output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c.Fill(0.0);
  const kernel::Operand ao{a.data(), k, false};
  const kernel::Operand bo{b.data(), k, true};  // B(p, j) = b(j, p)
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.cols() == b.cols(), "MatMulT dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  const kernel::Operand ao{a.data(), k, false};
  const kernel::Operand bo{b.data(), k, true};  // B(p, j) = b(j, p)
  ParallelFor(0, m, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(n, k, ao, bo, c.data(), n, lo, hi);
  });
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  UMVSC_CHECK(a.cols() == x.size(), "MatVec dimension mismatch");
  Vector y(a.rows());
  // Each output element is one fixed-lane-grid dot product (simd.h), so the
  // row partition cannot affect any bit.
  ParallelFor(0, a.rows(), kMatVecGrain,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  y[i] = kernel::Dot(a.RowPtr(i), x.data(), a.cols());
                }
              });
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  UMVSC_CHECK(a.rows() == x.size(), "MatTVec dimension mismatch");
  Vector y(a.cols());
  // Serial over rows (every row writes the whole output); the per-row axpy
  // is vectorized value-neutrally.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    kernel::Axpy(xi, a.RowPtr(i), y.data(), a.cols());
  }
  return y;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  // Cache-blocked tiles; threads own row strips of A = column strips of T,
  // so writes are disjoint and the copy is trivially deterministic.
  ParallelFor(0, a.rows(), kTransposeTile,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t ii = lo; ii < hi; ii += kTransposeTile) {
                  const std::size_t iend = std::min(ii + kTransposeTile, hi);
                  for (std::size_t jj = 0; jj < a.cols();
                       jj += kTransposeTile) {
                    const std::size_t jend =
                        std::min(jj + kTransposeTile, a.cols());
                    for (std::size_t i = ii; i < iend; ++i) {
                      const double* arow = a.RowPtr(i);
                      for (std::size_t j = jj; j < jend; ++j) {
                        t(j, i) = arow[j];
                      }
                    }
                  }
                }
              });
  return t;
}

namespace {
Matrix AddMatrices(const Matrix& x, const Matrix& y) {
  Matrix out = x;
  out.Add(y);
  return out;
}
}  // namespace

Matrix Gram(const Matrix& a) {
  const std::size_t n = a.cols();
  // Chunked over rows of A: each kGramChunk-row slab contributes a partial
  // Gram via the packed kernel (full n×n — the sub-diagonal redundancy is
  // what makes every element's accumulation a pure function of the grid),
  // and the partials combine on ParallelReduce's fixed tree.
  return ParallelReduce<Matrix>(
      0, a.rows(), kGramChunk, Matrix(n, n),
      [&](std::size_t lo, std::size_t hi) {
        Matrix partial(n, n);
        const kernel::Operand at{a.data() + lo * n, n, true};
        const kernel::Operand ab{a.data() + lo * n, n, false};
        kernel::GemmAdd(n, hi - lo, at, ab, partial.data(), n, 0, n);
        return partial;
      },
      AddMatrices);
}

Matrix OuterGram(const Matrix& a) {
  const std::size_t n = a.rows(), d = a.cols();
  Matrix g(n, n);
  const kernel::Operand ao{a.data(), d, false};
  // Upper-triangle row blocks on the global kTriBlock grid: rows
  // [i0, i0+16) compute columns [i0, n) through the packed kernel (a
  // near-triangle superset; the few sub-diagonal elements inside a block
  // get the same bits the mirror pass would write). Blocks are row-disjoint
  // in g, so any thread partition is race-free, and each element's value
  // depends only on d and the kc grid.
  ParallelFor(0, n, kTriBlock, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i0 = lo; i0 < hi; i0 += kTriBlock) {
      const std::size_t iend = std::min(i0 + kTriBlock, hi);
      const kernel::Operand bo{a.data() + i0 * d, d, true};
      kernel::GemmAdd(n - i0, d, ao, bo, g.data() + i0, n, i0, iend);
    }
  });
  // Mirror the strict lower triangle; pass 1 has completed (ParallelFor
  // barrier), and rows are write-disjoint.
  ParallelFor(0, n, kTriBlock, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double* grow = g.RowPtr(i);
      for (std::size_t j = 0; j < i; ++j) grow[j] = g(j, i);
    }
  });
  return g;
}

namespace {
// Shared grain of the QuadraticTrace/TraceOfProduct reductions. The chunk
// grid (and hence the fixed reduction tree) depends only on the range and
// this constant — never on the thread count — which is what makes the
// objective traces of the solvers bitwise reproducible across
// UMVSC_NUM_THREADS settings.
constexpr std::size_t kTraceGrain = 16;

double AddDoubles(const double& x, const double& y) { return x + y; }

// Σ_i (LF)_i · F_i on the fixed chunk grid, shared by both QuadraticTrace
// overloads once LF is materialized.
double RowDotReduce(const Matrix& lf, const Matrix& f) {
  return ParallelReduce<double>(
      0, lf.rows(), kTraceGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          s += kernel::Dot(lf.RowPtr(i), f.RowPtr(i), f.cols());
        }
        return s;
      },
      AddDoubles);
}
}  // namespace

double TraceOfProduct(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "TraceOfProduct shape mismatch");
  return ParallelReduce<double>(
      0, a.size(), kFlatGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        return kernel::Dot(a.data() + lo, b.data() + lo, hi - lo);
      },
      AddDoubles);
}

double QuadraticTrace(const Matrix& l, const Matrix& f) {
  UMVSC_CHECK(l.IsSquare(), "QuadraticTrace requires square L");
  UMVSC_CHECK(l.cols() == f.rows(), "QuadraticTrace dimension mismatch");
  // Tr(Fᵀ L F) = Σ_i (L F)_i · F_i: one level-3 product through the packed
  // kernel, then a fixed-grid row-dot reduction.
  const std::size_t n = l.rows(), c = f.cols();
  Matrix lf(n, c);
  const kernel::Operand lo_op{l.data(), n, false};
  const kernel::Operand fo{f.data(), c, false};
  ParallelFor(0, n, kGemmRowGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::GemmAdd(c, n, lo_op, fo, lf.data(), c, lo, hi);
  });
  return RowDotReduce(lf, f);
}

double QuadraticTrace(const CsrMatrix& l, const Matrix& f) {
  UMVSC_CHECK(l.rows() == l.cols(), "QuadraticTrace requires square L");
  UMVSC_CHECK(l.cols() == f.rows(), "QuadraticTrace dimension mismatch");
  // Sparse level-3 path: LF via the cache-blocked SpMM, then the same
  // fixed-grid row-dot reduction as the dense overload.
  Matrix lf(l.rows(), f.cols());
  l.MultiplyInto(f, lf, 1.0);
  return RowDotReduce(lf, f);
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "Hadamard shape mismatch");
  Matrix c(a.rows(), a.cols());
  // Elementwise and value-neutral: spans only amortize dispatch.
  ParallelFor(0, a.size(), kFlatGrain, [&](std::size_t lo, std::size_t hi) {
    kernel::Hadamard(a.data() + lo, b.data() + lo, c.data() + lo, hi - lo);
  });
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b, double alpha) {
  Matrix c = a;
  c.Add(b, alpha);
  return c;
}

Matrix HConcat(const std::vector<Matrix>& blocks) {
  UMVSC_CHECK(!blocks.empty(), "HConcat requires at least one block");
  const std::size_t rows = blocks.front().rows();
  std::size_t cols = 0;
  for (const Matrix& b : blocks) {
    UMVSC_CHECK(b.rows() == rows, "HConcat row-count mismatch");
    cols += b.cols();
  }
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* dst = out.RowPtr(i);
    for (const Matrix& b : blocks) {
      const double* src = b.RowPtr(i);
      std::copy(src, src + b.cols(), dst);
      dst += b.cols();
    }
  }
  return out;
}

double OrthonormalityError(const Matrix& q) {
  Matrix g = Gram(q);
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) -= 1.0;
  return g.MaxAbs();
}

}  // namespace umvsc::la
