#include "la/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace umvsc::la {

namespace {
// Block edge for the cache-blocked GEMM. 64 doubles = 512 bytes per row
// strip, comfortably inside L1 for three blocks. Also the ParallelFor grain
// of the row-blocked kernels, so thread-span boundaries always coincide
// with block boundaries.
constexpr std::size_t kBlock = 64;

// ParallelFor grain of the row-parallel kernels: small enough to split
// paper-sized problems (n in the hundreds) across every core, large enough
// that a span amortizes the dispatch.
constexpr std::size_t kRowGrain = 16;
}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.cols() == b.rows(), "MatMul inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // Row-blocked: each thread owns a contiguous run of kBlock-aligned row
  // blocks of C. Per-element accumulation order (kk ascending, p within
  // block) is independent of the partition, so the product is bitwise
  // identical at every thread count.
  ParallelFor(0, m, kBlock, [&](std::size_t row_lo, std::size_t row_hi) {
    for (std::size_t ii = row_lo; ii < row_hi; ii += kBlock) {
      const std::size_t iend = std::min(ii + kBlock, row_hi);
      for (std::size_t kk = 0; kk < k; kk += kBlock) {
        const std::size_t kend = std::min(kk + kBlock, k);
        for (std::size_t i = ii; i < iend; ++i) {
          const double* arow = a.RowPtr(i);
          double* crow = c.RowPtr(i);
          for (std::size_t p = kk; p < kend; ++p) {
            const double aip = arow[p];
            if (aip == 0.0) continue;
            const double* brow = b.RowPtr(p);
            for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
          }
        }
      }
    }
  });
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.rows() == b.rows(), "MatTMul dimension mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  // Rank-1 accumulation row by row of A and B, with each thread owning a
  // contiguous strip of C's rows (= columns of A). Every thread streams the
  // same A/B rows but writes disjoint rows of C, and each element still
  // accumulates in ascending-p order — bitwise identical to one thread.
  ParallelFor(0, m, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = 0; p < k; ++p) {
      const double* arow = a.RowPtr(p);
      const double* brow = b.RowPtr(p);
      for (std::size_t i = lo; i < hi; ++i) {
        const double aip = arow[i];
        if (aip == 0.0) continue;
        double* crow = c.RowPtr(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      }
    }
  });
  return c;
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.cols() == b.cols(), "MatMulT dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  // Rows of C are independent dot-product sweeps: trivially row-parallel.
  ParallelFor(0, m, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double* arow = a.RowPtr(i);
      double* crow = c.RowPtr(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double* brow = b.RowPtr(j);
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        crow[j] = s;
      }
    }
  });
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  UMVSC_CHECK(a.cols() == x.size(), "MatVec dimension mismatch");
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  UMVSC_CHECK(a.rows() == x.size(), "MatTVec dimension mismatch");
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += arow[j] * xi;
  }
  return y;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = arow[j];
  }
  return t;
}

Matrix Gram(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  for (std::size_t p = 0; p < a.rows(); ++p) {
    const double* row = a.RowPtr(p);
    for (std::size_t i = 0; i < n; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* grow = g.RowPtr(i);
      for (std::size_t j = i; j < n; ++j) grow[j] += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix OuterGram(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix g(n, n);
  // Row-parallel over the upper triangle; iteration i writes g(i, j≥i) and
  // the mirror g(j>i, i) — each element exactly once, so spans are
  // write-disjoint. Static partitioning leaves the early (longer) rows on
  // the first threads; at O(n·d) per row the imbalance is bounded by 2×.
  ParallelFor(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double* ri = a.RowPtr(i);
      for (std::size_t j = i; j < n; ++j) {
        const double* rj = a.RowPtr(j);
        double s = 0.0;
        for (std::size_t p = 0; p < a.cols(); ++p) s += ri[p] * rj[p];
        g(i, j) = s;
        g(j, i) = s;
      }
    }
  });
  return g;
}

double TraceOfProduct(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "TraceOfProduct shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a.data()[i] * b.data()[i];
  return s;
}

namespace {
// Shared grain of the QuadraticTrace reductions. The chunk grid (and hence
// the fixed reduction tree) depends only on the row count and this constant
// — never on the thread count — which is what makes the objective traces of
// the solvers bitwise reproducible across UMVSC_NUM_THREADS settings.
constexpr std::size_t kTraceGrain = 16;

double AddDoubles(const double& x, const double& y) { return x + y; }
}  // namespace

double QuadraticTrace(const Matrix& l, const Matrix& f) {
  UMVSC_CHECK(l.IsSquare(), "QuadraticTrace requires square L");
  UMVSC_CHECK(l.cols() == f.rows(), "QuadraticTrace dimension mismatch");
  // Tr(Fᵀ L F) = Σ_i (L F)_i · F_i without forming Fᵀ. Row-chunked
  // deterministic reduction: each grain-sized chunk of rows is summed in
  // serial order, partials combine on a fixed tree.
  return ParallelReduce<double>(
      0, l.rows(), kTraceGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const double* lrow = l.RowPtr(i);
          const double* frow_i = f.RowPtr(i);
          for (std::size_t j = 0; j < l.cols(); ++j) {
            const double lij = lrow[j];
            if (lij == 0.0) continue;
            const double* frow_j = f.RowPtr(j);
            double dot = 0.0;
            for (std::size_t p = 0; p < f.cols(); ++p)
              dot += frow_i[p] * frow_j[p];
            s += lij * dot;
          }
        }
        return s;
      },
      AddDoubles);
}

double QuadraticTrace(const CsrMatrix& l, const Matrix& f) {
  UMVSC_CHECK(l.rows() == l.cols(), "QuadraticTrace requires square L");
  UMVSC_CHECK(l.cols() == f.rows(), "QuadraticTrace dimension mismatch");
  const auto& offsets = l.row_offsets();
  const auto& cols = l.col_indices();
  const auto& vals = l.values();
  return ParallelReduce<double>(
      0, l.rows(), kTraceGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const double* frow_i = f.RowPtr(i);
          for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const double* frow_j = f.RowPtr(cols[k]);
            double dot = 0.0;
            for (std::size_t p = 0; p < f.cols(); ++p)
              dot += frow_i[p] * frow_j[p];
            s += vals[k] * dot;
          }
        }
        return s;
      },
      AddDoubles);
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  UMVSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "Hadamard shape mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b, double alpha) {
  Matrix c = a;
  c.Add(b, alpha);
  return c;
}

Matrix HConcat(const std::vector<Matrix>& blocks) {
  UMVSC_CHECK(!blocks.empty(), "HConcat requires at least one block");
  const std::size_t rows = blocks.front().rows();
  std::size_t cols = 0;
  for (const Matrix& b : blocks) {
    UMVSC_CHECK(b.rows() == rows, "HConcat row-count mismatch");
    cols += b.cols();
  }
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* dst = out.RowPtr(i);
    for (const Matrix& b : blocks) {
      const double* src = b.RowPtr(i);
      std::copy(src, src + b.cols(), dst);
      dst += b.cols();
    }
  }
  return out;
}

double OrthonormalityError(const Matrix& q) {
  Matrix g = Gram(q);
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) -= 1.0;
  return g.MaxAbs();
}

}  // namespace umvsc::la
