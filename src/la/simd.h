#ifndef UMVSC_LA_SIMD_H_
#define UMVSC_LA_SIMD_H_

// Portable fixed-width vector abstraction for the dense kernels.
//
// Every backend exposes the SAME logical shape — a register of
// kSimdLanes = 4 doubles — so the accumulation grid of a kernel written
// against this header is a pure function of the problem shape, never of
// the instruction set:
//
//   * AVX2   : one 256-bit register            (4 lanes)
//   * SSE2   : two 128-bit registers           (2 + 2 lanes)
//   * NEON   : two 128-bit registers           (2 + 2 lanes)
//   * scalar : four plain doubles              (4 "lanes")
//
// The backend is selected at COMPILE time from the architecture macros
// (override with -DUMVSC_DISABLE_SIMD to force the scalar fallback); the
// runtime kill switch lives in gemm_kernel.h (`UMVSC_SIMD=off`), which
// dispatches kernels to ScalarVec4 instead of NativeVec4.
//
// Determinism: all backends perform the identical sequence of IEEE-754
// mul/add operations per lane — MulAdd is an UNFUSED multiply-then-add
// everywhere (no FMA intrinsics), and ReduceAdd combines lanes on one
// fixed tree: (l0 + l2) + (l1 + l3). SIMD and scalar dispatch therefore
// agree bitwise on x86 builds; on targets whose compiler contracts the
// scalar fallback's a*b + c into an FMA (e.g. aarch64 at the default
// -ffp-contract=fast), the two dispatches may differ by at most 1 ULP per
// accumulated term (see docs/THREADING.md, "SIMD accumulation grid").

#include <cstddef>

#if !defined(UMVSC_DISABLE_SIMD)
#if defined(__AVX2__)
#define UMVSC_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#define UMVSC_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define UMVSC_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !UMVSC_DISABLE_SIMD

namespace umvsc::la::simd {

/// Logical lane count of every backend. Kernels written against this
/// header accumulate on a fixed grid of kSimdLanes-wide blocks.
inline constexpr std::size_t kSimdLanes = 4;

/// Scalar emulation of the 4-lane register: always available, used by the
/// runtime `UMVSC_SIMD=off` dispatch and by builds with
/// -DUMVSC_DISABLE_SIMD. Lane-for-lane it performs the same arithmetic as
/// the hardware backends.
struct ScalarVec4 {
  static constexpr const char* kName = "scalar";
  struct Reg {
    double v[kSimdLanes];
  };
  static Reg Zero() { return Reg{{0.0, 0.0, 0.0, 0.0}}; }
  static Reg Broadcast(double x) { return Reg{{x, x, x, x}}; }
  static Reg Load(const double* p) { return Reg{{p[0], p[1], p[2], p[3]}}; }
  static void Store(double* p, Reg r) {
    p[0] = r.v[0];
    p[1] = r.v[1];
    p[2] = r.v[2];
    p[3] = r.v[3];
  }
  static Reg Add(Reg a, Reg b) {
    return Reg{{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
                a.v[3] + b.v[3]}};
  }
  static Reg Mul(Reg a, Reg b) {
    return Reg{{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
                a.v[3] * b.v[3]}};
  }
  /// acc + a·b with the product rounded before the add (unfused), matching
  /// the hardware backends' separate mul/add instructions.
  static Reg MulAdd(Reg a, Reg b, Reg acc) { return Add(acc, Mul(a, b)); }
  /// Fixed-tree horizontal sum: (l0 + l2) + (l1 + l3) — the natural order
  /// for the split-register backends, adopted by all of them.
  static double ReduceAdd(Reg r) {
    return (r.v[0] + r.v[2]) + (r.v[1] + r.v[3]);
  }
};

#if defined(UMVSC_SIMD_AVX2)

struct Avx2Vec4 {
  static constexpr const char* kName = "avx2";
  using Reg = __m256d;
  static Reg Zero() { return _mm256_setzero_pd(); }
  static Reg Broadcast(double x) { return _mm256_set1_pd(x); }
  static Reg Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, Reg r) { _mm256_storeu_pd(p, r); }
  static Reg Add(Reg a, Reg b) { return _mm256_add_pd(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm256_mul_pd(a, b); }
  // Deliberately NOT _mm256_fmadd_pd: fused rounding would diverge from
  // the scalar fallback and the SSE2/NEON backends.
  static Reg MulAdd(Reg a, Reg b, Reg acc) {
    return _mm256_add_pd(acc, _mm256_mul_pd(a, b));
  }
  static double ReduceAdd(Reg r) {
    const __m128d lo = _mm256_castpd256_pd128(r);       // [l0, l1]
    const __m128d hi = _mm256_extractf128_pd(r, 1);     // [l2, l3]
    const __m128d s = _mm_add_pd(lo, hi);               // [l0+l2, l1+l3]
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};
using NativeVec4 = Avx2Vec4;

#elif defined(UMVSC_SIMD_SSE2)

struct Sse2Vec4 {
  static constexpr const char* kName = "sse2";
  struct Reg {
    __m128d lo;  // lanes 0, 1
    __m128d hi;  // lanes 2, 3
  };
  static Reg Zero() { return Reg{_mm_setzero_pd(), _mm_setzero_pd()}; }
  static Reg Broadcast(double x) { return Reg{_mm_set1_pd(x), _mm_set1_pd(x)}; }
  static Reg Load(const double* p) {
    return Reg{_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  static void Store(double* p, Reg r) {
    _mm_storeu_pd(p, r.lo);
    _mm_storeu_pd(p + 2, r.hi);
  }
  static Reg Add(Reg a, Reg b) {
    return Reg{_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  static Reg Mul(Reg a, Reg b) {
    return Reg{_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  static Reg MulAdd(Reg a, Reg b, Reg acc) { return Add(acc, Mul(a, b)); }
  static double ReduceAdd(Reg r) {
    const __m128d s = _mm_add_pd(r.lo, r.hi);  // [l0+l2, l1+l3]
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};
using NativeVec4 = Sse2Vec4;

#elif defined(UMVSC_SIMD_NEON)

struct NeonVec4 {
  static constexpr const char* kName = "neon";
  struct Reg {
    float64x2_t lo;  // lanes 0, 1
    float64x2_t hi;  // lanes 2, 3
  };
  static Reg Zero() { return Reg{vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static Reg Broadcast(double x) { return Reg{vdupq_n_f64(x), vdupq_n_f64(x)}; }
  static Reg Load(const double* p) {
    return Reg{vld1q_f64(p), vld1q_f64(p + 2)};
  }
  static void Store(double* p, Reg r) {
    vst1q_f64(p, r.lo);
    vst1q_f64(p + 2, r.hi);
  }
  static Reg Add(Reg a, Reg b) {
    return Reg{vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static Reg Mul(Reg a, Reg b) {
    return Reg{vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  // vmulq + vaddq, not vfmaq: unfused to match the other backends.
  static Reg MulAdd(Reg a, Reg b, Reg acc) { return Add(acc, Mul(a, b)); }
  static double ReduceAdd(Reg r) {
    const float64x2_t s = vaddq_f64(r.lo, r.hi);  // [l0+l2, l1+l3]
    return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
  }
};
using NativeVec4 = NeonVec4;

#else

using NativeVec4 = ScalarVec4;

#endif

/// Name of the compile-time-selected backend.
inline const char* NativeBackendName() { return NativeVec4::kName; }

// ---------------------------------------------------------------------------
// Generic lane kernels. Each is a template over the backend V so the
// runtime dispatch (gemm_kernel.h) can instantiate both the native and the
// scalar-forced flavor of one accumulation grid.
// ---------------------------------------------------------------------------

/// x·y with the fixed lane grid: lane l accumulates elements l, l+4, l+8, …
/// of the 4-aligned prefix; the lanes combine on the fixed (l0+l2)+(l1+l3)
/// tree; the tail (n mod 4 elements) is then added serially. The value is a
/// pure function of n — identical for every backend modulo FMA contraction.
template <class V>
inline double DotLanes(const double* x, const double* y, std::size_t n) {
  typename V::Reg acc = V::Zero();
  std::size_t i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    acc = V::MulAdd(V::Load(x + i), V::Load(y + i), acc);
  }
  double s = V::ReduceAdd(acc);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

/// y[i] += alpha·x[i]. Per-element arithmetic is identical to the scalar
/// loop (one unfused mul/add per element), so vectorizing is value-neutral.
template <class V>
inline void AxpyLanes(double alpha, const double* x, double* y,
                      std::size_t n) {
  const typename V::Reg a = V::Broadcast(alpha);
  std::size_t i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    V::Store(y + i, V::MulAdd(a, V::Load(x + i), V::Load(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// c[i] = a[i]·b[i] (elementwise product; value-neutral vectorization).
template <class V>
inline void MulLanes(const double* a, const double* b, double* c,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    V::Store(c + i, V::Mul(V::Load(a + i), V::Load(b + i)));
  }
  for (; i < n; ++i) c[i] = a[i] * b[i];
}

}  // namespace umvsc::la::simd

#endif  // UMVSC_LA_SIMD_H_
