#ifndef UMVSC_LA_QR_H_
#define UMVSC_LA_QR_H_

#include "la/matrix.h"

namespace umvsc::la {

/// Thin QR factorization A = Q·R with Q ∈ R^{m×n} orthonormal columns and
/// R ∈ R^{n×n} upper triangular (requires m >= n).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Householder QR. Requires a.rows() >= a.cols(). Numerically stable for
/// rank-deficient inputs (R then has ~zero diagonal entries).
QrResult QrDecompose(const Matrix& a);

/// Orthonormal basis for the column space of `a`: the thin Q factor. For a
/// (numerically) rank-deficient input the trailing columns are completed to
/// an orthonormal set, so the result always has exactly a.cols() orthonormal
/// columns. Requires a.rows() >= a.cols().
Matrix Orthonormalize(const Matrix& a);

/// Solves the least-squares problem min ‖A·x − b‖₂ via QR. Requires
/// a.rows() >= a.cols() and full column rank.
Vector LeastSquares(const Matrix& a, const Vector& b);

}  // namespace umvsc::la

#endif  // UMVSC_LA_QR_H_
