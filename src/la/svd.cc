#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "la/ops.h"

namespace umvsc::la {

namespace {

// One-sided Jacobi on a tall (m >= n) matrix: rotates column pairs of `u`
// until all pairs are orthogonal, accumulating rotations into `v`.
// Afterwards the column norms of `u` are the singular values.
Status OneSidedJacobi(Matrix& u, Matrix& v, int max_sweeps) {
  const std::size_t m = u.rows(), n = u.cols();
  const double eps = 1e-15;
  bool converged = n < 2;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double up = u(i, p);
          const double uq = u(i, q);
          alpha += up * up;
          beta += uq * uq;
          gamma += up * uq;
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double up = u(i, p);
          const double uq = u(i, q);
          u(i, p) = c * up - s * uq;
          u(i, q) = s * up + c * uq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NumericalError("one-sided Jacobi SVD did not converge");
  }
  return Status::OK();
}

StatusOr<SvdResult> SvdTall(const Matrix& a, int max_sweeps) {
  const std::size_t m = a.rows(), n = a.cols();
  Matrix u = a;
  Matrix v = Matrix::Identity(n);
  Status s = OneSidedJacobi(u, v, max_sweeps);
  if (!s.ok()) return s;

  // Extract singular values as column norms; normalize U's columns.
  Vector sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += u(i, j) * u(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) /= norm;
    }
  }

  // Sort descending by singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return sigma[x] > sigma[y];
  });
  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.singular_values = Vector(n);
  for (std::size_t j = 0; j < n; ++j) {
    out.singular_values[j] = sigma[order[j]];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = u(i, order[j]);
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, order[j]);
  }

  // Zero singular values leave null columns in U: complete just those
  // columns to an orthonormal basis (leaving valid columns — and hence the
  // U·Σ·Vᵀ reconstruction — untouched) so U is always a valid Stiefel point.
  const double tol = out.singular_values.size() > 0
                         ? 1e-13 * std::max(1.0, out.singular_values[0])
                         : 0.0;
  Rng rng(0x5EEDF00D);
  for (std::size_t j = 0; j < n; ++j) {
    if (out.singular_values[j] > tol) continue;
    // Draw a random vector and orthogonalize it against every other column
    // (two Gram–Schmidt passes for numerical safety), retrying on the
    // vanishingly unlikely event of a near-zero residual.
    for (int attempt = 0; attempt < 8; ++attempt) {
      Vector w(m);
      for (std::size_t i = 0; i < m; ++i) w[i] = rng.Gaussian();
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t k = 0; k < n; ++k) {
          if (k == j) continue;
          double dot = 0.0;
          for (std::size_t i = 0; i < m; ++i) dot += w[i] * out.u(i, k);
          for (std::size_t i = 0; i < m; ++i) w[i] -= dot * out.u(i, k);
        }
      }
      const double norm = w.Norm2();
      if (norm > 1e-8) {
        for (std::size_t i = 0; i < m; ++i) out.u(i, j) = w[i] / norm;
        break;
      }
    }
  }
  return out;
}

}  // namespace

StatusOr<SvdResult> Svd(const Matrix& a, int max_sweeps) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  if (a.rows() >= a.cols()) return SvdTall(a, max_sweeps);
  StatusOr<SvdResult> t = SvdTall(Transpose(a), max_sweeps);
  if (!t.ok()) return t.status();
  SvdResult out;
  out.u = std::move(t->v);
  out.v = std::move(t->u);
  out.singular_values = std::move(t->singular_values);
  return out;
}

StatusOr<Matrix> ProcrustesRotation(const Matrix& m) {
  if (!m.IsSquare()) {
    return Status::InvalidArgument("ProcrustesRotation requires a square input");
  }
  StatusOr<SvdResult> svd = Svd(m);
  if (!svd.ok()) return svd.status();
  return MatMulT(svd->u, svd->v);
}

StatusOr<Matrix> StiefelProjection(const Matrix& m) {
  if (m.rows() < m.cols()) {
    return Status::InvalidArgument("StiefelProjection requires rows >= cols");
  }
  StatusOr<SvdResult> svd = Svd(m);
  if (!svd.ok()) return svd.status();
  return MatMulT(svd->u, svd->v);
}

}  // namespace umvsc::la
