#ifndef UMVSC_LA_SVD_H_
#define UMVSC_LA_SVD_H_

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::la {

/// Thin singular value decomposition A = U·diag(σ)·Vᵀ with
/// U ∈ R^{m×r}, V ∈ R^{n×r}, r = min(m, n), singular values descending.
struct SvdResult {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// One-sided Jacobi SVD. High relative accuracy for small singular values;
/// O(m·n²) per sweep, which is ideal for the tall-skinny (n×c, c small)
/// matrices this library manipulates. For wide inputs the transpose is
/// decomposed and factors swapped.
StatusOr<SvdResult> Svd(const Matrix& a, int max_sweeps = 64);

/// Solution of the orthogonal Procrustes problem
/// `max_R Tr(Rᵀ·M) s.t. RᵀR = RRᵀ = I`, namely R = U·Vᵀ from the SVD of M.
/// Requires a square M (the c×c case used by spectral rotation).
StatusOr<Matrix> ProcrustesRotation(const Matrix& m);

/// Projection onto the Stiefel manifold: the nearest matrix with orthonormal
/// columns in Frobenius norm, U·Vᵀ from the thin SVD. Requires rows >= cols.
StatusOr<Matrix> StiefelProjection(const Matrix& m);

}  // namespace umvsc::la

#endif  // UMVSC_LA_SVD_H_
