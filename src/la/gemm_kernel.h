#ifndef UMVSC_LA_GEMM_KERNEL_H_
#define UMVSC_LA_GEMM_KERNEL_H_

#include <cstddef>

#include "la/simd.h"

namespace umvsc::la::kernel {

/// Runtime SIMD switch. Resolution: a ScopedForceScalar override (tests,
/// benchmarks) → the UMVSC_SIMD environment variable, read once ("off"/"0"
/// disables) → on. In -DUMVSC_DISABLE_SIMD builds this may still return
/// true, but NativeVec4 is already the scalar emulation, so every dispatch
/// lands on scalar code either way.
bool SimdEnabled();

/// Name of the backend the current dispatch state resolves to:
/// "avx2" / "sse2" / "neon" when SimdEnabled(), else "scalar".
const char* ActiveBackendName();

/// Forces the scalar dispatch (or re-enables SIMD with force=false) for
/// the current scope. Not thread-safe against concurrently *running*
/// kernels — use from test/bench setup only, like ScopedNumThreads.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force = true);
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

/// A GEMM input: a row-major array read as-is (logical(i, j) =
/// data[i·stride + j]) or transposed (logical(i, j) = data[j·stride + i])
/// without materializing the transpose.
struct Operand {
  const double* data;
  std::size_t stride;
  bool transposed;

  double At(std::size_t i, std::size_t j) const {
    return transposed ? data[j * stride + i] : data[i * stride + j];
  }
};

/// C[i, 0..n) += Σ_p A(i, p)·B(p, j) for i in [row_begin, row_end) — the
/// register-blocked, packed-panel GEMM micro-kernel (mr×nr register tiles,
/// B-panel packing, kc/mc cache blocking; see gemm_kernel.cc).
///
/// Accumulation grid (the determinism contract): the p dimension is cut
/// into fixed kc-sized blocks, every C element accumulates its block
/// partial serially in ascending p and the partials add into C in
/// ascending block order. That grid is a pure function of k alone —
/// independent of the row range (thread partition), the register tile a
/// value lands in, edge handling, and the SIMD backend — so results are
/// bitwise identical across 1/2/8 threads and across AVX2/SSE2/NEON/
/// scalar dispatch (modulo FMA contraction of the scalar fallback on
/// non-x86 compilers; see docs/THREADING.md).
///
/// Callers parallelize by row range: any partition of [0, m) yields the
/// same bits. Dispatches to the native or scalar instantiation per
/// SimdEnabled().
void GemmAdd(std::size_t n, std::size_t k, const Operand& a, const Operand& b,
             double* c, std::size_t c_stride, std::size_t row_begin,
             std::size_t row_end);

/// Scalar-forced flavor of GemmAdd, always available (compiled with
/// auto-vectorization disabled so "scalar-forced" benchmarks measure
/// honest scalar code). Same accumulation grid, hence bitwise-comparable
/// output.
void GemmAddScalar(std::size_t n, std::size_t k, const Operand& a,
                   const Operand& b, double* c, std::size_t c_stride,
                   std::size_t row_begin, std::size_t row_end);

/// Dot product on the fixed lane grid (simd::DotLanes), runtime-dispatched.
double Dot(const double* x, const double* y, std::size_t n);

/// y += alpha·x, runtime-dispatched (value-neutral vs the scalar loop).
void Axpy(double alpha, const double* x, double* y, std::size_t n);

/// c = a∘b elementwise, runtime-dispatched (value-neutral).
void Hadamard(const double* a, const double* b, double* c, std::size_t n);

}  // namespace umvsc::la::kernel

#endif  // UMVSC_LA_GEMM_KERNEL_H_
