#include "la/lu.h"

#include <cmath>

#include "common/strings.h"

namespace umvsc::la {

StatusOr<LuDecomposition> LuDecomposition::Compute(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int parity = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return Status::NumericalError(
          StrFormat("singular matrix at elimination step %zu", k));
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      std::swap(perm[k], perm[pivot]);
      parity = -parity;
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv_pivot;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), parity);
}

Vector LuDecomposition::Solve(const Vector& b) const {
  const std::size_t n = dim();
  UMVSC_CHECK(b.size() == n, "LU solve dimension mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (std::size_t j = n; j > 0; --j) {
    const std::size_t i = j - 1;
    double s = y[i];
    for (std::size_t k = j; k < n; ++k) s -= lu_(i, k) * x[k];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::Solve(const Matrix& b) const {
  UMVSC_CHECK(b.rows() == dim(), "LU solve dimension mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.SetCol(j, Solve(b.Col(j)));
  return x;
}

double LuDecomposition::Determinant() const {
  double det = parity_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

Matrix LuDecomposition::Inverse() const {
  return Solve(Matrix::Identity(dim()));
}

StatusOr<Vector> LuSolve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LuSolve dimension mismatch");
  }
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(a);
  if (!lu.ok()) return lu.status();
  return lu->Solve(b);
}

StatusOr<Matrix> Inverse(const Matrix& a) {
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(a);
  if (!lu.ok()) return lu.status();
  return lu->Inverse();
}

}  // namespace umvsc::la
