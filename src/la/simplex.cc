#include "la/simplex.h"

#include <algorithm>
#include <vector>

namespace umvsc::la {

Vector ProjectToSimplex(const Vector& v, double radius) {
  UMVSC_CHECK(!v.empty(), "cannot project an empty vector");
  UMVSC_CHECK(radius > 0.0, "simplex radius must be positive");
  const std::size_t n = v.size();
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  // Largest rho with sorted[rho−1] − (prefix(rho) − radius)/rho > 0.
  double prefix = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix += sorted[i];
    const double candidate =
        (prefix - radius) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      rho = i + 1;
      theta = candidate;
    }
  }
  UMVSC_CHECK(rho > 0, "simplex projection failed to find a support");
  Vector out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::max(0.0, v[i] - theta);
  }
  return out;
}

}  // namespace umvsc::la
