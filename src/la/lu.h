#ifndef UMVSC_LA_LU_H_
#define UMVSC_LA_LU_H_

#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::la {

/// LU factorization with partial pivoting: P·A = L·U, stored packed in a
/// single matrix (unit lower triangle implicit).
class LuDecomposition {
 public:
  /// Factors `a`. Fails with NumericalError on (numerically) singular input.
  static StatusOr<LuDecomposition> Compute(const Matrix& a);

  /// Solves A·x = b.
  Vector Solve(const Vector& b) const;
  /// Solves A·X = B column-wise.
  Matrix Solve(const Matrix& b) const;
  /// det(A), including the pivot-parity sign.
  double Determinant() const;
  /// A⁻¹ (solve against the identity).
  Matrix Inverse() const;

  std::size_t dim() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<std::size_t> perm, int parity)
      : lu_(std::move(lu)), perm_(std::move(perm)), parity_(parity) {}

  Matrix lu_;
  std::vector<std::size_t> perm_;
  int parity_;
};

/// One-shot convenience: solve A·x = b by LU with partial pivoting.
StatusOr<Vector> LuSolve(const Matrix& a, const Vector& b);

/// One-shot convenience: A⁻¹.
StatusOr<Matrix> Inverse(const Matrix& a);

}  // namespace umvsc::la

#endif  // UMVSC_LA_LU_H_
