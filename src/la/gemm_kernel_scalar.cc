// Scalar-forced GEMM instantiation, kept in its own translation unit so the
// build can disable auto-vectorization here (see src/la/CMakeLists.txt):
// "scalar-forced" benchmark numbers must measure honest scalar code, not
// compiler-revectorized scalar code.

#include "la/gemm_kernel.h"
#include "la/gemm_kernel_impl.h"
#include "la/simd.h"

namespace umvsc::la::kernel {

void GemmAddScalar(std::size_t n, std::size_t k, const Operand& a,
                   const Operand& b, double* c, std::size_t c_stride,
                   std::size_t row_begin, std::size_t row_end) {
  detail::GemmAddImpl<simd::ScalarVec4>(n, k, a, b, c, c_stride, row_begin,
                                        row_end);
}

}  // namespace umvsc::la::kernel
