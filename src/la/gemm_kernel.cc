#include "la/gemm_kernel.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "la/gemm_kernel_impl.h"
#include "la/simd.h"

namespace umvsc::la::kernel {
namespace {

// UMVSC_SIMD environment switch, read once at first use.
bool EnvDisablesSimd() {
  static const bool disabled = [] {
    const char* raw = std::getenv("UMVSC_SIMD");
    if (raw == nullptr) return false;
    std::string v(raw);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    return v == "off" || v == "0" || v == "false" || v == "no" ||
           v == "scalar";
  }();
  return disabled;
}

std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{EnvDisablesSimd()};
  return flag;
}

}  // namespace

bool SimdEnabled() {
  return !ForceScalarFlag().load(std::memory_order_relaxed);
}

const char* ActiveBackendName() {
  return SimdEnabled() ? simd::NativeBackendName() : simd::ScalarVec4::kName;
}

ScopedForceScalar::ScopedForceScalar(bool force)
    : previous_(ForceScalarFlag().exchange(force, std::memory_order_relaxed)) {
}

ScopedForceScalar::~ScopedForceScalar() {
  ForceScalarFlag().store(previous_, std::memory_order_relaxed);
}

void GemmAdd(std::size_t n, std::size_t k, const Operand& a, const Operand& b,
             double* c, std::size_t c_stride, std::size_t row_begin,
             std::size_t row_end) {
  if (SimdEnabled()) {
    detail::GemmAddImpl<simd::NativeVec4>(n, k, a, b, c, c_stride, row_begin,
                                          row_end);
  } else {
    GemmAddScalar(n, k, a, b, c, c_stride, row_begin, row_end);
  }
}

double Dot(const double* x, const double* y, std::size_t n) {
  return SimdEnabled() ? simd::DotLanes<simd::NativeVec4>(x, y, n)
                       : simd::DotLanes<simd::ScalarVec4>(x, y, n);
}

void Axpy(double alpha, const double* x, double* y, std::size_t n) {
  if (SimdEnabled()) {
    simd::AxpyLanes<simd::NativeVec4>(alpha, x, y, n);
  } else {
    simd::AxpyLanes<simd::ScalarVec4>(alpha, x, y, n);
  }
}

void Hadamard(const double* a, const double* b, double* c, std::size_t n) {
  if (SimdEnabled()) {
    simd::MulLanes<simd::NativeVec4>(a, b, c, n);
  } else {
    simd::MulLanes<simd::ScalarVec4>(a, b, c, n);
  }
}

}  // namespace umvsc::la::kernel
