#include "la/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace umvsc::la {

StatusOr<SymEigenResult> JacobiEigen(const Matrix& a, double symmetry_tol,
                                     int max_sweeps) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("JacobiEigen requires a square matrix");
  }
  const double scale = std::max(1.0, a.MaxAbs());
  if (!a.IsSymmetric(symmetry_tol * scale)) {
    return Status::InvalidArgument("JacobiEigen requires a symmetric matrix");
  }
  const std::size_t n = a.rows();
  Matrix m = a;
  m.Symmetrize();
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  const double tol = 1e-14 * std::max(1.0, m.FrobeniusNorm());
  bool converged = n < 2;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= tol) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Rotation angle that zeroes m(p, q).
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply J(p, q, θ)ᵀ · M · J(p, q, θ).
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm() <= tol * static_cast<double>(n);
  }
  if (!converged) {
    return Status::NumericalError("Jacobi sweeps did not converge");
  }

  // Sort ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m(x, x) < m(y, y);
  });
  SymEigenResult out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = m(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

}  // namespace umvsc::la
