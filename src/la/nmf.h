#ifndef UMVSC_LA_NMF_H_
#define UMVSC_LA_NMF_H_

#include <cstdint>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::la {

/// Options for nonnegative matrix factorization.
struct NmfOptions {
  std::size_t rank = 2;
  std::size_t max_iterations = 200;
  /// Stop when the relative Frobenius-error improvement falls below this.
  double tolerance = 1e-5;
  std::uint64_t seed = 0;
};

/// Result of an NMF run: A ≈ W·H with W (n × r), H (r × d), both ≥ 0.
struct NmfResult {
  Matrix w;
  Matrix h;
  /// Final relative reconstruction error ‖A − WH‖_F / ‖A‖_F.
  double relative_error = 0.0;
  std::size_t iterations = 0;
};

/// Frobenius-loss NMF by the multiplicative updates of Lee & Seung:
///   H ← H ∘ (WᵀA) ⊘ (WᵀWH),  W ← W ∘ (AHᵀ) ⊘ (WHHᵀ),
/// with uniform-random nonnegative initialization and per-iteration column
/// normalization of W (the scale ambiguity is pushed into H). Monotone
/// non-increasing loss. Requires a nonnegative input and 1 <= rank <=
/// min(n, d).
StatusOr<NmfResult> Nmf(const Matrix& a, const NmfOptions& options);

}  // namespace umvsc::la

#endif  // UMVSC_LA_NMF_H_
