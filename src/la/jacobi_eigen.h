#ifndef UMVSC_LA_JACOBI_EIGEN_H_
#define UMVSC_LA_JACOBI_EIGEN_H_

#include "common/status.h"
#include "la/sym_eigen.h"

namespace umvsc::la {

/// Cyclic Jacobi eigensolver for symmetric matrices. Slower than the
/// tridiagonal pipeline (O(n³) with a larger constant) but exceptionally
/// accurate; kept as an independent implementation to cross-validate
/// SymmetricEigen in tests and for small, accuracy-critical problems.
/// Eigenvalues ascending, eigenvectors in matching columns.
StatusOr<SymEigenResult> JacobiEigen(const Matrix& a,
                                     double symmetry_tol = 1e-8,
                                     int max_sweeps = 64);

}  // namespace umvsc::la

#endif  // UMVSC_LA_JACOBI_EIGEN_H_
