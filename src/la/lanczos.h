#ifndef UMVSC_LA_LANCZOS_H_
#define UMVSC_LA_LANCZOS_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "la/sparse.h"
#include "la/sym_eigen.h"

namespace umvsc::la {

/// Abstract symmetric linear operator y += A·x used by the Lanczos solver,
/// so callers can pass sparse matrices, dense matrices, or matrix-free
/// products (e.g. shifted Laplacians) without materializing anything.
using SymmetricOperator =
    std::function<void(const Vector& x, Vector& y)>;

/// Options for the Lanczos eigensolver.
struct LanczosOptions {
  /// Maximum Krylov subspace dimension before declaring non-convergence.
  std::size_t max_subspace = 300;
  /// Residual tolerance on ‖A·v − λ·v‖ relative to the spectral scale.
  double tolerance = 1e-9;
  /// Seed for the random start vector.
  std::uint64_t seed = 19;
};

/// Computes the `k` algebraically largest eigenpairs of an n × n symmetric
/// operator with Lanczos + full reorthogonalization. Suitable for the large
/// sparse graph matrices in this library where only a few extreme eigenpairs
/// are needed. Eigenvalues are returned descending.
StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options = {});

/// The `k` smallest eigenpairs of a symmetric operator whose spectrum lies
/// in [0, spectral_bound] (e.g. a normalized Laplacian with bound 2): runs
/// Lanczos on the complement `spectral_bound·I − A`, whose largest pairs are
/// A's smallest. Eigenvalues are returned ascending.
StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

/// Convenience overloads for CSR matrices.
StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options = {});
StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

}  // namespace umvsc::la

#endif  // UMVSC_LA_LANCZOS_H_
