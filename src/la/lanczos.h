#ifndef UMVSC_LA_LANCZOS_H_
#define UMVSC_LA_LANCZOS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "la/sparse.h"
#include "la/sym_eigen.h"

namespace umvsc::la {

/// Abstract symmetric linear operator y += A·x used by the Lanczos solver,
/// so callers can pass sparse matrices, dense matrices, or matrix-free
/// products (e.g. shifted Laplacians) without materializing anything.
using SymmetricOperator =
    std::function<void(const Vector& x, Vector& y)>;

/// Panel form of the same abstraction: Y += A·X for an n × b panel X. One
/// application advances b Krylov directions at once, which is what lets the
/// block solver spend its time in level-3 kernels (CSR SpMM, MatTMul,
/// MatMul) instead of b separate memory-bound matvecs.
using SymmetricBlockOperator =
    std::function<void(const Matrix& x, Matrix& y)>;

/// Options for the Lanczos eigensolver.
struct LanczosOptions {
  /// Maximum Krylov subspace dimension before declaring non-convergence.
  std::size_t max_subspace = 300;
  /// Residual tolerance on ‖A·v − λ·v‖ relative to the spectral scale.
  double tolerance = 1e-9;
  /// Seed for the random start vector.
  std::uint64_t seed = 19;
  /// Optional warm start: an n × m matrix whose columns approximately span
  /// the wanted eigenspace (e.g. the previous outer iteration's spectral
  /// embedding). The first Lanczos vector becomes the normalized column sum,
  /// and on breakdown the individual columns are consumed before falling
  /// back to random directions — so a good warm start shrinks the Krylov
  /// subspace (and the matvec count) needed to converge. Ignored when null,
  /// when the row count does not match the operator, or when the column sum
  /// is numerically zero. The caller keeps ownership; the matrix must stay
  /// alive for the duration of the solve.
  const Matrix* warm_start = nullptr;
  /// When non-null, incremented once per operator application (for
  /// LanczosSmallest, once per application of the complement operator, which
  /// performs exactly one underlying matvec). The block solver increments by
  /// the panel width per panel application — one unit per Krylov direction
  /// advanced — so warm-start savings stay comparable across the single and
  /// block paths. Lets callers measure how much work warm starting saves.
  /// Not touched concurrently — the solver is single-threaded at this level.
  std::size_t* matvec_count = nullptr;
  /// Panel width of the block solver (BlockLanczosLargest/Smallest only;
  /// the single-vector entry points ignore it). 0 means "min(k, 10)": a
  /// panel as wide as the requested count k captures a c-fold eigenvalue
  /// multiplicity in one shot, but the per-iteration Rayleigh–Ritz solve
  /// grows as O(m³) while a width-b panel only advances the Krylov degree
  /// by 1 per b basis columns, so very wide panels make the dense
  /// eigensolves dominate. The cap keeps the width in the regime where the
  /// level-3 panel kernels win; multiplicities beyond the cap are still
  /// found because deficient panels are repaired with fresh random
  /// directions and residuals are exact. Clamped to [1, n].
  std::size_t block_size = 0;
};

/// Computes the `k` algebraically largest eigenpairs of an n × n symmetric
/// operator with Lanczos + full reorthogonalization. Suitable for the large
/// sparse graph matrices in this library where only a few extreme eigenpairs
/// are needed. Eigenvalues are returned descending.
StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options = {});

/// The `k` smallest eigenpairs of a symmetric operator whose spectrum lies
/// in [0, spectral_bound] (e.g. a normalized Laplacian with bound 2): runs
/// Lanczos on the complement `spectral_bound·I − A`, whose largest pairs are
/// A's smallest. Eigenvalues are returned ascending.
StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

/// Convenience overloads for CSR matrices.
StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options = {});
StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

/// Block-Lanczos eigensolver: builds the Krylov space in n × b panels
/// instead of single vectors. The basis Q and the operator images A·Q
/// occupy the left m columns of two preallocated n × m_max matrices, so
/// every basis-wide projection is ONE contiguous GemmAdd (level-3 work
/// where the single-vector solver does per-vector dot/axpy). Per iteration
/// it applies the operator to a whole panel (one SpMM for CSR inputs) and
/// reorthogonalizes with fused CGS2: the first classical block
/// Gram–Schmidt pass reuses the Qᵀ(A·panel) projections already computed
/// to extend H = QᵀAQ by one block column, the second recomputes them
/// fresh. Rayleigh–Ritz runs only once the basis can contain the answer
/// (m ≥ k plus a cushion); convergence then tests EXACT residuals
/// ‖A·x − θ·x‖ of the k wanted Ritz pairs (the stored A·Q panels make
/// them cheap), assembled only when a Ritz-value-stability pre-filter
/// says the subspace has plausibly settled — or when the basis is about
/// to run out. Repeated eigenvalues with multiplicity ≤ b are
/// captured inside a single panel — the failure mode that forces the
/// single-vector solver into breakdown restarts. `options.warm_start` seeds
/// the FIRST PANEL column-per-column (no column-sum collapse), so a
/// previous embedding enters the Krylov space whole; remaining warm columns
/// feed rank-deficiency repairs before random directions do.
/// `options.matvec_count` advances by the panel width per application.
/// Deterministic: every kernel underneath is bitwise identical across
/// thread counts, and the serial per-column orthonormalization is ordered
/// by column index. Eigenvalues are returned descending. The single-vector
/// solver is exactly the b = 1 specialization of this iteration.
StatusOr<SymEigenResult> BlockLanczosLargest(
    const SymmetricBlockOperator& op, std::size_t n, std::size_t k,
    const LanczosOptions& options = {});

/// The `k` smallest eigenpairs through the block path: runs
/// BlockLanczosLargest on the panel-fused complement `bound·I − A` (one
/// fused elementwise pass over the whole panel per application, not a
/// per-column lambda). Eigenvalues are returned ascending.
StatusOr<SymEigenResult> BlockLanczosSmallest(
    const SymmetricBlockOperator& op, std::size_t n, std::size_t k,
    double spectral_bound, const LanczosOptions& options = {});

/// Convenience overloads for CSR matrices; the panel application is the
/// row-parallel CsrMatrix SpMM (register-resident skinny kernel at panel
/// widths ≤ 12 — every paper shape — cache-blocked beyond; see sparse.h).
StatusOr<SymEigenResult> BlockLanczosLargest(
    const CsrMatrix& a, std::size_t k, const LanczosOptions& options = {});
StatusOr<SymEigenResult> BlockLanczosSmallest(
    const CsrMatrix& a, std::size_t k, double spectral_bound,
    const LanczosOptions& options = {});

/// Which Lanczos implementation an eigensolve should run through.
enum class EigensolveMode {
  /// Consult, in order: a live ScopedEigensolveMode override, the
  /// UMVSC_EIGENSOLVER environment variable ("block" / "single"; anything
  /// else falls through), and finally the measured EigensolvePolicy.
  kAuto,
  /// Always the panel (block) solver.
  kForceBlock,
  /// Always the single-vector solver.
  kForceSingle,
};

/// Measured block-vs-single auto-policy. Calibrated once per process, at
/// first use, from timed microprobes: both solvers run on small planted
/// c-cluster normalized Laplacians over the grid (n, c) ∈ {192, 768} ×
/// {4, 12}, and the log of the block/single time ratio at each corner is
/// kept. A query bilinearly interpolates that log-ratio in (log₂ n, c) —
/// clamped to the grid — and prefers the block path only when the
/// interpolated ratio beats 0.95 (ties go to the single-vector solver).
/// Two shape rules bypass the interpolation entirely: k == 1 is always
/// single-vector (a width-1 panel is the same iteration plus overhead),
/// and k ≥ 16 is always block (far outside the probe grid; wide panels
/// amortize the basis products and capture multiplicity, and every
/// measurement at such shapes favors block).
///
/// The decision is a pure function of the probe timings, so a process
/// always resolves a given shape the same way — but two *runs* on a
/// differently-loaded machine may disagree near the crossover. Both paths
/// converge to the same eigenpairs within solver tolerance, so only
/// wall time and floating-point bits may differ; pin the mode (options,
/// ScopedEigensolveMode, or UMVSC_EIGENSOLVER) for bit-stable cross-run
/// comparisons.
class EigensolvePolicy {
 public:
  /// One calibration measurement: both solvers timed on the same planted
  /// Laplacian (best of two runs each).
  struct Probe {
    std::size_t n = 0;
    std::size_t c = 0;
    double block_seconds = 0.0;
    double single_seconds = 0.0;
  };

  /// The process-wide policy, calibrated on first call (thread-safe).
  static const EigensolvePolicy& Get();

  /// True when the block path is predicted faster for k eigenpairs of an
  /// n × n operator.
  bool PreferBlock(std::size_t n, std::size_t k) const;

  /// The raw calibration measurements (for reporting — bench/micro_la
  /// prints these next to its per-shape policy decisions).
  const std::vector<Probe>& probes() const { return probes_; }

 private:
  EigensolvePolicy();

  std::vector<Probe> probes_;
  double log_ratio_[2][2] = {};  // [index in {192, 768}][index in {4, 12}]
};

/// RAII process-wide mode override — the strongest word in the resolution
/// order, above even an explicit per-call mode. For tests and benches that
/// must pin one path across library code they do not control. Not
/// scope-nestable across threads (it swaps a process-global, like
/// kernel::ScopedForceScalar).
class ScopedEigensolveMode {
 public:
  explicit ScopedEigensolveMode(EigensolveMode mode);
  ~ScopedEigensolveMode();
  ScopedEigensolveMode(const ScopedEigensolveMode&) = delete;
  ScopedEigensolveMode& operator=(const ScopedEigensolveMode&) = delete;

 private:
  EigensolveMode previous_;
};

/// Resolves `requested` to a concrete solver choice for a k-pair solve at
/// size n. Never returns kAuto. Resolution order: ScopedEigensolveMode
/// override → `requested` (when not kAuto) → UMVSC_EIGENSOLVER environment
/// variable ("block" / "single") → EigensolvePolicy::PreferBlock.
EigensolveMode ResolveEigensolveMode(EigensolveMode requested, std::size_t n,
                                     std::size_t k);

/// Auto-dispatching entry points: resolve the mode, then run the chosen
/// solver — same contract as the underlying pair either way. The operator
/// forms take only the panel operator; when the single-vector path is
/// chosen, each matvec runs the panel operator on an n × 1 panel (the
/// single path is memory-bound, so the wrapper is not what it waits on).
StatusOr<SymEigenResult> LanczosLargestAuto(
    const CsrMatrix& a, std::size_t k, const LanczosOptions& options = {},
    EigensolveMode mode = EigensolveMode::kAuto);
StatusOr<SymEigenResult> LanczosSmallestAuto(
    const CsrMatrix& a, std::size_t k, double spectral_bound,
    const LanczosOptions& options = {},
    EigensolveMode mode = EigensolveMode::kAuto);
StatusOr<SymEigenResult> LanczosLargestAuto(
    const SymmetricBlockOperator& op, std::size_t n, std::size_t k,
    const LanczosOptions& options = {},
    EigensolveMode mode = EigensolveMode::kAuto);
StatusOr<SymEigenResult> LanczosSmallestAuto(
    const SymmetricBlockOperator& op, std::size_t n, std::size_t k,
    double spectral_bound, const LanczosOptions& options = {},
    EigensolveMode mode = EigensolveMode::kAuto);

}  // namespace umvsc::la

#endif  // UMVSC_LA_LANCZOS_H_
