#ifndef UMVSC_LA_LANCZOS_H_
#define UMVSC_LA_LANCZOS_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "la/sparse.h"
#include "la/sym_eigen.h"

namespace umvsc::la {

/// Abstract symmetric linear operator y += A·x used by the Lanczos solver,
/// so callers can pass sparse matrices, dense matrices, or matrix-free
/// products (e.g. shifted Laplacians) without materializing anything.
using SymmetricOperator =
    std::function<void(const Vector& x, Vector& y)>;

/// Options for the Lanczos eigensolver.
struct LanczosOptions {
  /// Maximum Krylov subspace dimension before declaring non-convergence.
  std::size_t max_subspace = 300;
  /// Residual tolerance on ‖A·v − λ·v‖ relative to the spectral scale.
  double tolerance = 1e-9;
  /// Seed for the random start vector.
  std::uint64_t seed = 19;
  /// Optional warm start: an n × m matrix whose columns approximately span
  /// the wanted eigenspace (e.g. the previous outer iteration's spectral
  /// embedding). The first Lanczos vector becomes the normalized column sum,
  /// and on breakdown the individual columns are consumed before falling
  /// back to random directions — so a good warm start shrinks the Krylov
  /// subspace (and the matvec count) needed to converge. Ignored when null,
  /// when the row count does not match the operator, or when the column sum
  /// is numerically zero. The caller keeps ownership; the matrix must stay
  /// alive for the duration of the solve.
  const Matrix* warm_start = nullptr;
  /// When non-null, incremented once per operator application (for
  /// LanczosSmallest, once per application of the complement operator, which
  /// performs exactly one underlying matvec). Lets callers measure how much
  /// work warm starting saves. Not touched concurrently — the solver is
  /// single-threaded at this level.
  std::size_t* matvec_count = nullptr;
};

/// Computes the `k` algebraically largest eigenpairs of an n × n symmetric
/// operator with Lanczos + full reorthogonalization. Suitable for the large
/// sparse graph matrices in this library where only a few extreme eigenpairs
/// are needed. Eigenvalues are returned descending.
StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options = {});

/// The `k` smallest eigenpairs of a symmetric operator whose spectrum lies
/// in [0, spectral_bound] (e.g. a normalized Laplacian with bound 2): runs
/// Lanczos on the complement `spectral_bound·I − A`, whose largest pairs are
/// A's smallest. Eigenvalues are returned ascending.
StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

/// Convenience overloads for CSR matrices.
StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options = {});
StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

}  // namespace umvsc::la

#endif  // UMVSC_LA_LANCZOS_H_
