#ifndef UMVSC_LA_LANCZOS_H_
#define UMVSC_LA_LANCZOS_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "la/sparse.h"
#include "la/sym_eigen.h"

namespace umvsc::la {

/// Abstract symmetric linear operator y += A·x used by the Lanczos solver,
/// so callers can pass sparse matrices, dense matrices, or matrix-free
/// products (e.g. shifted Laplacians) without materializing anything.
using SymmetricOperator =
    std::function<void(const Vector& x, Vector& y)>;

/// Panel form of the same abstraction: Y += A·X for an n × b panel X. One
/// application advances b Krylov directions at once, which is what lets the
/// block solver spend its time in level-3 kernels (CSR SpMM, MatTMul,
/// MatMul) instead of b separate memory-bound matvecs.
using SymmetricBlockOperator =
    std::function<void(const Matrix& x, Matrix& y)>;

/// Options for the Lanczos eigensolver.
struct LanczosOptions {
  /// Maximum Krylov subspace dimension before declaring non-convergence.
  std::size_t max_subspace = 300;
  /// Residual tolerance on ‖A·v − λ·v‖ relative to the spectral scale.
  double tolerance = 1e-9;
  /// Seed for the random start vector.
  std::uint64_t seed = 19;
  /// Optional warm start: an n × m matrix whose columns approximately span
  /// the wanted eigenspace (e.g. the previous outer iteration's spectral
  /// embedding). The first Lanczos vector becomes the normalized column sum,
  /// and on breakdown the individual columns are consumed before falling
  /// back to random directions — so a good warm start shrinks the Krylov
  /// subspace (and the matvec count) needed to converge. Ignored when null,
  /// when the row count does not match the operator, or when the column sum
  /// is numerically zero. The caller keeps ownership; the matrix must stay
  /// alive for the duration of the solve.
  const Matrix* warm_start = nullptr;
  /// When non-null, incremented once per operator application (for
  /// LanczosSmallest, once per application of the complement operator, which
  /// performs exactly one underlying matvec). The block solver increments by
  /// the panel width per panel application — one unit per Krylov direction
  /// advanced — so warm-start savings stay comparable across the single and
  /// block paths. Lets callers measure how much work warm starting saves.
  /// Not touched concurrently — the solver is single-threaded at this level.
  std::size_t* matvec_count = nullptr;
  /// Panel width of the block solver (BlockLanczosLargest/Smallest only;
  /// the single-vector entry points ignore it). 0 means "min(k, 10)": a
  /// panel as wide as the requested count k captures a c-fold eigenvalue
  /// multiplicity in one shot, but the per-iteration Rayleigh–Ritz solve
  /// grows as O(m³) while a width-b panel only advances the Krylov degree
  /// by 1 per b basis columns, so very wide panels make the dense
  /// eigensolves dominate. The cap keeps the width in the regime where the
  /// level-3 panel kernels win; multiplicities beyond the cap are still
  /// found because deficient panels are repaired with fresh random
  /// directions and residuals are exact. Clamped to [1, n].
  std::size_t block_size = 0;
};

/// Computes the `k` algebraically largest eigenpairs of an n × n symmetric
/// operator with Lanczos + full reorthogonalization. Suitable for the large
/// sparse graph matrices in this library where only a few extreme eigenpairs
/// are needed. Eigenvalues are returned descending.
StatusOr<SymEigenResult> LanczosLargest(const SymmetricOperator& op,
                                        std::size_t n, std::size_t k,
                                        const LanczosOptions& options = {});

/// The `k` smallest eigenpairs of a symmetric operator whose spectrum lies
/// in [0, spectral_bound] (e.g. a normalized Laplacian with bound 2): runs
/// Lanczos on the complement `spectral_bound·I − A`, whose largest pairs are
/// A's smallest. Eigenvalues are returned ascending.
StatusOr<SymEigenResult> LanczosSmallest(const SymmetricOperator& op,
                                         std::size_t n, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

/// Convenience overloads for CSR matrices.
StatusOr<SymEigenResult> LanczosLargest(const CsrMatrix& a, std::size_t k,
                                        const LanczosOptions& options = {});
StatusOr<SymEigenResult> LanczosSmallest(const CsrMatrix& a, std::size_t k,
                                         double spectral_bound,
                                         const LanczosOptions& options = {});

/// Block-Lanczos eigensolver: builds the Krylov space in n × b panels
/// instead of single vectors. Per iteration it applies the operator to a
/// whole panel (one SpMM for CSR inputs), reorthogonalizes the panel
/// against the accumulated basis with two MatTMul + MatMul passes (level-3
/// work where the single-vector solver does per-vector dot/axpy), extends
/// the Rayleigh–Ritz projection H = QᵀAQ by one block column, and tests
/// EXACT residuals ‖A·x − θ·x‖ of the k wanted Ritz pairs (the stored A·Q
/// panels make them cheap). Repeated eigenvalues with multiplicity ≤ b are
/// captured inside a single panel — the failure mode that forces the
/// single-vector solver into breakdown restarts. `options.warm_start` seeds
/// the FIRST PANEL column-per-column (no column-sum collapse), so a
/// previous embedding enters the Krylov space whole; remaining warm columns
/// feed rank-deficiency repairs before random directions do.
/// `options.matvec_count` advances by the panel width per application.
/// Deterministic: every kernel underneath is bitwise identical across
/// thread counts, and the serial per-column orthonormalization is ordered
/// by column index. Eigenvalues are returned descending. The single-vector
/// solver is exactly the b = 1 specialization of this iteration.
StatusOr<SymEigenResult> BlockLanczosLargest(
    const SymmetricBlockOperator& op, std::size_t n, std::size_t k,
    const LanczosOptions& options = {});

/// The `k` smallest eigenpairs through the block path: runs
/// BlockLanczosLargest on the panel-fused complement `bound·I − A` (one
/// fused elementwise pass over the whole panel per application, not a
/// per-column lambda). Eigenvalues are returned ascending.
StatusOr<SymEigenResult> BlockLanczosSmallest(
    const SymmetricBlockOperator& op, std::size_t n, std::size_t k,
    double spectral_bound, const LanczosOptions& options = {});

/// Convenience overloads for CSR matrices; the panel application is the
/// row-parallel cache-blocked CsrMatrix SpMM.
StatusOr<SymEigenResult> BlockLanczosLargest(
    const CsrMatrix& a, std::size_t k, const LanczosOptions& options = {});
StatusOr<SymEigenResult> BlockLanczosSmallest(
    const CsrMatrix& a, std::size_t k, double spectral_bound,
    const LanczosOptions& options = {});

}  // namespace umvsc::la

#endif  // UMVSC_LA_LANCZOS_H_
