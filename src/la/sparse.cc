#include "la/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "la/gemm_kernel.h"

namespace umvsc::la {

namespace {
// Row grain of the parallel SpMV/SpMM kernels: rows are independent serial
// sums, so the grain affects only dispatch overhead, never the values.
// Sparse rows are light (~k nonzeros), so the grain is coarser than the
// dense kernels' to amortize the per-span dispatch.
constexpr std::size_t kSpRowGrain = 64;
// Panel-dimension block of the generic SpMM kernel: 64 doubles = 512 bytes
// of accumulator, resident in registers/L1 while a row's nonzeros stream by.
constexpr std::size_t kPanelBlock = 64;
// Widest panel the register-resident skinny kernels cover: 3 lane groups of
// 4. Krylov panels in this library are capped at 10 columns (see
// la/lanczos.cc), so every block-eigensolver SpMM takes the skinny path.
constexpr std::size_t kSkinnyMaxWidth = 12;

// Skinny-panel row kernel: the whole b-wide accumulator row lives in
// registers while a CSR row's nonzeros stream by — R4 4-lane register
// groups (la/simd.h) plus R1 scalar remainder columns, b = 4·R4 + R1.
// Fully unrolled at compile time, so the per-nonzero cost is one broadcast
// plus R4 MulAdds — no runtime-dispatched call, no accumulator-block setup.
//
// Determinism: column j's accumulator sees exactly one UNFUSED v·x add per
// nonzero in CSR order (V::MulAdd is unfused on every backend), and the
// epilogue performs the same `y[j] += alpha·acc[j]` unfused mul/add as the
// generic kernel — so the skinny path is bitwise identical to the generic
// cache-blocked kernel, to b independent per-column SpMVs, and across
// SIMD/scalar dispatch and every thread count.
template <class V, std::size_t R4, std::size_t R1>
void SpmmRowsSkinny(const std::size_t* row_offsets,
                    const std::size_t* col_indices, const double* values,
                    const double* x, std::size_t x_stride, double* y,
                    std::size_t y_stride, double alpha, std::size_t lo,
                    std::size_t hi) {
  for (std::size_t r = lo; r < hi; ++r) {
    typename V::Reg acc[R4 > 0 ? R4 : 1];
    double s[R1 > 0 ? R1 : 1];
    for (std::size_t g = 0; g < R4; ++g) acc[g] = V::Zero();
    for (std::size_t j = 0; j < R1; ++j) s[j] = 0.0;
    const std::size_t k1 = row_offsets[r + 1];
    for (std::size_t k = row_offsets[r]; k < k1; ++k) {
      const double v = values[k];
      const double* xr = x + col_indices[k] * x_stride;
      if constexpr (R4 > 0) {
        const typename V::Reg vb = V::Broadcast(v);
        for (std::size_t g = 0; g < R4; ++g) {
          acc[g] = V::MulAdd(vb, V::Load(xr + simd::kSimdLanes * g), acc[g]);
        }
      }
      for (std::size_t j = 0; j < R1; ++j) {
        s[j] += v * xr[simd::kSimdLanes * R4 + j];
      }
    }
    double* yr = y + r * y_stride;
    if constexpr (R4 > 0) {
      const typename V::Reg ab = V::Broadcast(alpha);
      for (std::size_t g = 0; g < R4; ++g) {
        double* yg = yr + simd::kSimdLanes * g;
        V::Store(yg, V::MulAdd(ab, acc[g], V::Load(yg)));
      }
    }
    for (std::size_t j = 0; j < R1; ++j) {
      yr[simd::kSimdLanes * R4 + j] += alpha * s[j];
    }
  }
}

using SkinnyRowFn = void (*)(const std::size_t*, const std::size_t*,
                             const double*, const double*, std::size_t,
                             double*, std::size_t, double, std::size_t,
                             std::size_t);

// One specialization per width b = 1..12; indexed by b − 1. The signature
// is backend-independent, so the SimdEnabled() dispatch just picks a table.
template <class V>
SkinnyRowFn SkinnyKernelFor(std::size_t b) {
  static constexpr SkinnyRowFn kTable[kSkinnyMaxWidth] = {
      SpmmRowsSkinny<V, 0, 1>, SpmmRowsSkinny<V, 0, 2>,
      SpmmRowsSkinny<V, 0, 3>, SpmmRowsSkinny<V, 1, 0>,
      SpmmRowsSkinny<V, 1, 1>, SpmmRowsSkinny<V, 1, 2>,
      SpmmRowsSkinny<V, 1, 3>, SpmmRowsSkinny<V, 2, 0>,
      SpmmRowsSkinny<V, 2, 1>, SpmmRowsSkinny<V, 2, 2>,
      SpmmRowsSkinny<V, 2, 3>, SpmmRowsSkinny<V, 3, 0>};
  return kTable[b - 1];
}
}  // namespace

CsrMatrix CsrMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    UMVSC_CHECK(t.row < rows && t.col < cols, "triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  m.col_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_offsets_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double v = triplets[i].value;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_indices_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_offsets_[rows] = m.values_.size();
  return m;
}

CsrMatrix CsrMatrix::FromParts(std::size_t rows, std::size_t cols,
                               std::vector<std::size_t> row_offsets,
                               std::vector<std::size_t> col_indices,
                               std::vector<double> values) {
  UMVSC_CHECK(row_offsets.size() == rows + 1,
              "FromParts: row_offsets must have length rows + 1");
  UMVSC_CHECK(row_offsets.front() == 0 &&
                  row_offsets.back() == col_indices.size() &&
                  col_indices.size() == values.size(),
              "FromParts: inconsistent array lengths");
  for (std::size_t r = 0; r < rows; ++r) {
    UMVSC_CHECK(row_offsets[r] <= row_offsets[r + 1],
                "FromParts: row_offsets must be nondecreasing");
    for (std::size_t k = row_offsets[r]; k < row_offsets[r + 1]; ++k) {
      UMVSC_CHECK(col_indices[k] < cols, "FromParts: column out of range");
      UMVSC_CHECK(k == row_offsets[r] || col_indices[k - 1] < col_indices[k],
                  "FromParts: columns must be strictly ascending per row");
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_ = std::move(row_offsets);
  m.col_indices_ = std::move(col_indices);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, double drop_tol) {
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::fabs(v) > drop_tol) triplets.push_back({i, j, v});
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(triplets));
}

CsrMatrix CsrMatrix::Identity(std::size_t n) {
  std::vector<Triplet> triplets;
  triplets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) triplets.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(triplets));
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  Vector y(rows_);
  MultiplyInto(x, y);
  return y;
}

void CsrMatrix::MultiplyInto(const Vector& x, Vector& y, double alpha) const {
  UMVSC_CHECK(x.size() == cols_, "spmv dimension mismatch (x)");
  UMVSC_CHECK(y.size() == rows_, "spmv dimension mismatch (y)");
  // Each row is an independent serial sum in CSR order, so the partition
  // cannot affect any output bit.
  ParallelFor(0, rows_, kSpRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double s = 0.0;
      for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        s += values_[k] * x[col_indices_[k]];
      }
      y[r] += alpha * s;
    }
  });
}

void CsrMatrix::MultiplyInto(const Matrix& x, Matrix& y, double alpha) const {
  UMVSC_CHECK(x.rows() == cols_, "spmm dimension mismatch (x)");
  UMVSC_CHECK(y.rows() == rows_ && y.cols() == x.cols(),
              "spmm dimension mismatch (y)");
  const std::size_t b = x.cols();
  if (b == 0) return;
  if (b <= kSkinnyMaxWidth) {
    // Register-resident skinny path — bitwise identical to the generic
    // kernel below (see SpmmRowsSkinny), just without the per-nonzero
    // dispatched Axpy call that dominates at small b.
    const SkinnyRowFn fn = kernel::SimdEnabled()
                               ? SkinnyKernelFor<simd::NativeVec4>(b)
                               : SkinnyKernelFor<simd::ScalarVec4>(b);
    ParallelFor(0, rows_, kSpRowGrain, [&](std::size_t lo, std::size_t hi) {
      fn(row_offsets_.data(), col_indices_.data(), values_.data(), x.data(),
         x.cols(), y.data(), y.cols(), alpha, lo, hi);
    });
    return;
  }
  internal::SpmmGeneric(*this, x, y, alpha);
}

namespace internal {

void SpmmGeneric(const CsrMatrix& a, const Matrix& x, Matrix& y,
                 double alpha) {
  UMVSC_CHECK(x.rows() == a.cols(), "spmm dimension mismatch (x)");
  UMVSC_CHECK(y.rows() == a.rows() && y.cols() == x.cols(),
              "spmm dimension mismatch (y)");
  const std::size_t b = x.cols();
  if (b == 0) return;
  const auto& row_offsets = a.row_offsets();
  const auto& col_indices = a.col_indices();
  const auto& values = a.values();
  ParallelFor(0, a.rows(), kSpRowGrain, [&](std::size_t lo, std::size_t hi) {
    double acc[kPanelBlock];
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t k0 = row_offsets[r];
      const std::size_t k1 = row_offsets[r + 1];
      double* yrow = y.RowPtr(r);
      for (std::size_t jj = 0; jj < b; jj += kPanelBlock) {
        const std::size_t jw = std::min(kPanelBlock, b - jj);
        for (std::size_t j = 0; j < jw; ++j) acc[j] = 0.0;
        for (std::size_t k = k0; k < k1; ++k) {
          // Vectorized but value-neutral: each acc[j] still sees one unfused
          // v·x add per nonzero in CSR order, so the SpMM stays bitwise
          // equal to per-column SpMVs (parallel_determinism_test relies on
          // this).
          kernel::Axpy(values[k], x.RowPtr(col_indices[k]) + jj, acc, jw);
        }
        for (std::size_t j = 0; j < jw; ++j) yrow[jj + j] += alpha * acc[j];
      }
    }
  });
}

}  // namespace internal

Matrix CsrMatrix::Multiply(const Matrix& b) const {
  UMVSC_CHECK(b.rows() == cols_, "sparse·dense dimension mismatch");
  Matrix c(rows_, b.cols());
  MultiplyInto(b, c);
  return c;
}

CsrMatrix CsrMatrix::Transposed() const {
  // Counting sort: nnz histogram per column, exclusive prefix sum, then a
  // single scatter pass in row order. Source rows are visited ascending, so
  // each output row receives its column indices already strictly ascending
  // and FromParts adopts the arrays with no re-sort.
  std::vector<std::size_t> offsets(cols_ + 1, 0);
  for (std::size_t c : col_indices_) ++offsets[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) offsets[c + 1] += offsets[c];
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<std::size_t> t_cols(values_.size());
  std::vector<double> t_values(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const std::size_t pos = cursor[col_indices_[k]]++;
      t_cols[pos] = r;
      t_values[pos] = values_[k];
    }
  }
  return FromParts(cols_, rows_, std::move(offsets), std::move(t_cols),
                   std::move(t_values));
}

Vector CsrMatrix::RowSums() const {
  Vector sums(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      s += values_[k];
    }
    sums[r] = s;
  }
  return sums;
}

double CsrMatrix::At(std::size_t row, std::size_t col) const {
  UMVSC_CHECK(row < rows_ && col < cols_, "CsrMatrix::At index out of range");
  const auto begin = col_indices_.begin() + row_offsets_[row];
  const auto end = col_indices_.begin() + row_offsets_[row + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

Matrix CsrMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      dense(r, col_indices_[k]) += values_[k];
    }
  }
  return dense;
}

void CsrMatrix::Scale(double alpha) {
  for (double& v : values_) v *= alpha;
}

bool CsrMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      if (std::fabs(values_[k] - At(col_indices_[k], r)) > tol) return false;
    }
  }
  return true;
}

CsrMatrix WeightedSum(const std::vector<CsrMatrix>& matrices,
                      const std::vector<double>& weights) {
  UMVSC_CHECK(!matrices.empty(), "WeightedSum requires at least one matrix");
  UMVSC_CHECK(matrices.size() == weights.size(),
              "WeightedSum weight count mismatch");
  const std::size_t rows = matrices.front().rows();
  const std::size_t cols = matrices.front().cols();
  std::vector<Triplet> triplets;
  std::size_t total_nnz = 0;
  for (const CsrMatrix& m : matrices) total_nnz += m.NumNonZeros();
  triplets.reserve(total_nnz);
  for (std::size_t v = 0; v < matrices.size(); ++v) {
    const CsrMatrix& m = matrices[v];
    UMVSC_CHECK(m.rows() == rows && m.cols() == cols,
                "WeightedSum shape mismatch");
    const double w = weights[v];
    if (w == 0.0) continue;
    const auto& offsets = m.row_offsets();
    const auto& idx = m.col_indices();
    const auto& vals = m.values();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        triplets.push_back({r, idx[k], w * vals[k]});
      }
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

CsrCombiner CsrCombiner::Plan(const std::vector<CsrMatrix>& matrices) {
  UMVSC_CHECK(!matrices.empty(), "CsrCombiner requires at least one matrix");
  const std::size_t rows = matrices.front().rows();
  const std::size_t cols = matrices.front().cols();
  for (const CsrMatrix& m : matrices) {
    UMVSC_CHECK(m.rows() == rows && m.cols() == cols,
                "CsrCombiner shape mismatch");
  }

  CsrCombiner plan;
  plan.rows_ = rows;
  plan.cols_ = cols;
  plan.row_offsets_.assign(rows + 1, 0);

  // Row-by-row union of the per-matrix column lists (each already sorted).
  std::vector<std::size_t> merged;
  for (std::size_t r = 0; r < rows; ++r) {
    merged.clear();
    for (const CsrMatrix& m : matrices) {
      const auto& offsets = m.row_offsets();
      const auto& idx = m.col_indices();
      merged.insert(merged.end(), idx.begin() + offsets[r],
                    idx.begin() + offsets[r + 1]);
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    plan.col_indices_.insert(plan.col_indices_.end(), merged.begin(),
                             merged.end());
    plan.row_offsets_[r + 1] = plan.col_indices_.size();
  }

  // Scatter maps: where each stored entry of each matrix lands in the union.
  plan.slots_.resize(matrices.size());
  for (std::size_t v = 0; v < matrices.size(); ++v) {
    const CsrMatrix& m = matrices[v];
    const auto& offsets = m.row_offsets();
    const auto& idx = m.col_indices();
    plan.slots_[v].resize(m.NumNonZeros());
    for (std::size_t r = 0; r < rows; ++r) {
      const auto ubegin = plan.col_indices_.begin() + plan.row_offsets_[r];
      const auto uend = plan.col_indices_.begin() + plan.row_offsets_[r + 1];
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        const auto it = std::lower_bound(ubegin, uend, idx[k]);
        plan.slots_[v][k] =
            static_cast<std::size_t>(it - plan.col_indices_.begin());
      }
    }
  }
  return plan;
}

CsrMatrix CsrCombiner::Combine(const std::vector<CsrMatrix>& matrices,
                               const std::vector<double>& weights) const {
  UMVSC_CHECK(matrices.size() == slots_.size(),
              "CsrCombiner: matrix count does not match the plan");
  UMVSC_CHECK(matrices.size() == weights.size(),
              "CsrCombiner weight count mismatch");
  std::vector<double> values(col_indices_.size(), 0.0);
  for (std::size_t v = 0; v < matrices.size(); ++v) {
    const CsrMatrix& m = matrices[v];
    UMVSC_CHECK(m.NumNonZeros() == slots_[v].size(),
                "CsrCombiner: matrix pattern changed since Plan");
    const double w = weights[v];
    if (w == 0.0) continue;
    const auto& vals = m.values();
    const std::vector<std::size_t>& slot = slots_[v];
    for (std::size_t k = 0; k < vals.size(); ++k) {
      values[slot[k]] += w * vals[k];
    }
  }
  return CsrMatrix::FromParts(rows_, cols_, row_offsets_, col_indices_,
                              std::move(values));
}

}  // namespace umvsc::la
