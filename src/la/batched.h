#ifndef UMVSC_LA_BATCHED_H_
#define UMVSC_LA_BATCHED_H_

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"
#include "la/sym_eigen.h"

namespace umvsc::la {

/// Team-per-problem batched small-problem linear algebra.
///
/// A multi-tenant workload is many SMALL independent problems — the c × c
/// Procrustes rotations and p × p reduced eigensolves inside each job's
/// alternation — not one large one. Solving them one-at-a-time wastes the
/// pool on sub-grain work; the batched kernels here take an array of
/// problems and fan one contiguous worker span per run of problems (the
/// Kokkos/Compadre "team-per-problem" shape: the problem index is the only
/// argument a team needs). Each slot is solved by EXACTLY the serial
/// kernel a lone caller would run (`ProcrustesRotation`, `SymmetricEigen`,
/// `MatMul`), so every output is bitwise identical to the per-problem
/// serial call regardless of batch composition, batch order, or thread
/// count — which is what lets the executor opportunistically gather
/// problems across jobs without touching the determinism contract.
///
/// Shapes may be ragged (problems of different sizes in one batch); the
/// grain-1 static partition simply hands each team a run of whole
/// problems. Inside a problem the serial kernel runs unchanged (nested
/// parallel regions degrade to serial on the team's thread).

/// One orthogonal-Procrustes problem: *output = ProcrustesRotation(*input).
struct ProcrustesProblem {
  const Matrix* input = nullptr;        ///< square c × c cross-product
  StatusOr<Matrix>* output = nullptr;   ///< caller-owned result slot
};

/// Solves every slot; outputs land in the caller's slots (write-disjoint,
/// deterministic). Null-input or null-output slots are skipped.
void BatchedProcrustes(ProcrustesProblem* problems, std::size_t count);

/// One dense symmetric eigendecomposition:
/// *output = SymmetricEigen(*input, symmetry_tol).
struct SymEigenProblem {
  const Matrix* input = nullptr;
  StatusOr<SymEigenResult>* output = nullptr;
  double symmetry_tol = 1e-8;
};

void BatchedSymmetricEigen(SymEigenProblem* problems, std::size_t count);

/// One small GEMM: *output = (*a) · (*b), optionally transposing a — the
/// c × c / p × c products that bracket the small solves (e.g. the FᵀŶ
/// cross-products feeding Procrustes).
struct GemmProblem {
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
  Matrix* output = nullptr;
  bool transpose_a = false;  ///< true: *output = aᵀ·b (MatTMul)
};

void BatchedGemm(GemmProblem* problems, std::size_t count);

/// Gathering service for the small solves INSIDE a running job. A solver
/// hands its c × c Procrustes (or dense eigensolve) to the batcher instead
/// of solving inline; an implementation may rendezvous concurrent
/// submissions from sibling jobs into one Batched* kernel call. Because the
/// batched kernels are slot-for-slot identical to the serial calls, any
/// implementation that returns the per-problem result preserves bitwise
/// determinism — batching composition is a pure scheduling decision.
/// Implementations must be safe for concurrent submission from many
/// threads; see exec::CrossJobBatcher for the executor's rendezvous
/// implementation. A null batcher everywhere means "solve inline".
class SmallSolveBatcher {
 public:
  virtual ~SmallSolveBatcher() = default;

  /// Equivalent to ProcrustesRotation(m); may block briefly to batch.
  virtual StatusOr<Matrix> Procrustes(const Matrix& m) = 0;

  /// Equivalent to SymmetricEigen(a, symmetry_tol).
  virtual StatusOr<SymEigenResult> SymEigen(const Matrix& a,
                                            double symmetry_tol = 1e-8) = 0;
};

}  // namespace umvsc::la

#endif  // UMVSC_LA_BATCHED_H_
