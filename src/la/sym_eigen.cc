#include "la/sym_eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace umvsc::la {

namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

// Householder reduction of symmetric `a` (overwritten) to tridiagonal form.
// On exit: d = diagonal, e = subdiagonal (e[0] unused, e[i] couples i−1,i in
// the NR convention; we shift to e[i] coupling i,i+1 before returning), and
// `a` holds the accumulated orthogonal transform Q with A = Q·T·Qᵀ.
void Tred2(Matrix& a, Vector& d, Vector& e) {
  const std::size_t n = a.rows();
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (i > 1) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal (d, e); accumulates the
// rotations into `z` (which enters holding the tridiagonalizing transform).
// e uses the NR layout: e[i] couples rows i−1 and i. Returns false if any
// eigenvalue needs more than `kMaxIter` sweeps.
bool Tqli(Vector& d, Vector& e, Matrix& z) {
  constexpr int kMaxIter = 50;
  const std::size_t n = d.size();
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 ||
            std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == kMaxIter) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow_break = false;
        for (std::size_t i = m; i > l; --i) {
          const std::size_t im1 = i - 1;
          double f = s * e[im1];
          const double b = c * e[im1];
          r = Hypot(f, g);
          e[i] = r;
          if (r == 0.0) {
            d[i] -= p;
            e[m] = 0.0;
            underflow_break = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i] - p;
          r = (d[im1] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i);
            z(k, i) = s * z(k, im1) + c * f;
            z(k, im1) = c * z(k, im1) - s * f;
          }
        }
        if (underflow_break) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

// Sorts eigenpairs ascending by eigenvalue (stable on ties).
SymEigenResult SortedResult(Vector d, Matrix z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  SymEigenResult out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(z.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < z.rows(); ++i) {
      out.eigenvectors(i, j) = z(i, order[j]);
    }
  }
  return out;
}

}  // namespace

StatusOr<SymEigenResult> SymmetricEigen(const Matrix& a, double symmetry_tol) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const double scale = std::max(1.0, a.MaxAbs());
  if (!a.IsSymmetric(symmetry_tol * scale)) {
    return Status::InvalidArgument("SymmetricEigen requires a symmetric matrix");
  }
  const std::size_t n = a.rows();
  if (n == 0) {
    return SymEigenResult{Vector(), Matrix()};
  }
  if (n == 1) {
    SymEigenResult out;
    out.eigenvalues = Vector(1);
    out.eigenvalues[0] = a(0, 0);
    out.eigenvectors = Matrix::Identity(1);
    return out;
  }
  Matrix z = a;
  z.Symmetrize();  // Remove tiny asymmetries before factorizing.
  Vector d(n);
  Vector e(n);
  Tred2(z, d, e);
  if (!Tqli(d, e, z)) {
    return Status::NumericalError("QL iteration failed to converge");
  }
  return SortedResult(std::move(d), std::move(z));
}

StatusOr<SymEigenResult> TridiagonalEigen(const Vector& d, const Vector& e) {
  const std::size_t n = d.size();
  if (n == 0) return SymEigenResult{Vector(), Matrix()};
  if (e.size() + 1 != n) {
    return Status::InvalidArgument(
        "TridiagonalEigen: subdiagonal must have length n-1");
  }
  Vector dd = d;
  // Shift into the NR layout where e[i] couples rows i−1 and i.
  Vector ee(n);
  for (std::size_t i = 1; i < n; ++i) ee[i] = e[i - 1];
  Matrix z = Matrix::Identity(n);
  if (!Tqli(dd, ee, z)) {
    return Status::NumericalError("QL iteration failed to converge");
  }
  return SortedResult(std::move(dd), std::move(z));
}

StatusOr<SymEigenResult> SmallestEigenpairs(const Matrix& a, std::size_t k,
                                            double symmetry_tol) {
  if (k > a.rows()) {
    return Status::InvalidArgument("requested more eigenpairs than dimension");
  }
  StatusOr<SymEigenResult> full = SymmetricEigen(a, symmetry_tol);
  if (!full.ok()) return full.status();
  SymEigenResult out;
  out.eigenvalues = Vector(k);
  out.eigenvectors = full->eigenvectors.LeftCols(k);
  for (std::size_t i = 0; i < k; ++i) out.eigenvalues[i] = full->eigenvalues[i];
  return out;
}

StatusOr<SymEigenResult> LargestEigenpairs(const Matrix& a, std::size_t k,
                                           double symmetry_tol) {
  if (k > a.rows()) {
    return Status::InvalidArgument("requested more eigenpairs than dimension");
  }
  StatusOr<SymEigenResult> full = SymmetricEigen(a, symmetry_tol);
  if (!full.ok()) return full.status();
  const std::size_t n = a.rows();
  SymEigenResult out;
  out.eigenvalues = Vector(k);
  out.eigenvectors = Matrix(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t src = n - 1 - j;
    out.eigenvalues[j] = full->eigenvalues[src];
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = full->eigenvectors(i, src);
    }
  }
  return out;
}

}  // namespace umvsc::la
