#include "la/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "la/gemm_kernel.h"

namespace umvsc::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    UMVSC_CHECK(row.size() == cols_, "ragged initializer list for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::RandomUniform(std::size_t rows, std::size_t cols, Rng& rng,
                             double lo, double hi) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomGaussian(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng.Gaussian();
  return m;
}

Vector Matrix::Row(std::size_t i) const {
  UMVSC_CHECK(i < rows_, "row index out of range");
  Vector v(cols_);
  const double* src = RowPtr(i);
  std::copy(src, src + cols_, v.data());
  return v;
}

Vector Matrix::Col(std::size_t j) const {
  UMVSC_CHECK(j < cols_, "column index out of range");
  Vector v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::SetRow(std::size_t i, const Vector& v) {
  UMVSC_CHECK(i < rows_, "row index out of range");
  UMVSC_CHECK(v.size() == cols_, "SetRow dimension mismatch");
  std::copy(v.data(), v.data() + cols_, RowPtr(i));
}

void Matrix::SetCol(std::size_t j, const Vector& v) {
  UMVSC_CHECK(j < cols_, "column index out of range");
  UMVSC_CHECK(v.size() == rows_, "SetCol dimension mismatch");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Vector Matrix::Diag() const {
  std::size_t n = std::min(rows_, cols_);
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = (*this)(i, i);
  return d;
}

Matrix Matrix::Block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  UMVSC_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_, "block out of range");
  Matrix out(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    const double* src = RowPtr(r0 + i) + c0;
    std::copy(src, src + nc, out.RowPtr(i));
  }
  return out;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

void Matrix::Add(const Matrix& other, double alpha) {
  UMVSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "Matrix::Add shape mismatch");
  // Flat vectorized axpy; per-element arithmetic is unchanged (one unfused
  // mul/add each), so the parallel spans are value-neutral.
  ParallelFor(0, data_.size(), 4096, [&](std::size_t lo, std::size_t hi) {
    kernel::Axpy(alpha, other.data_.data() + lo, data_.data() + lo, hi - lo);
  });
}

void Matrix::Symmetrize() {
  UMVSC_CHECK(IsSquare(), "Symmetrize requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
  }
}

double Matrix::FrobeniusNorm() const {
  double scale = 0.0;
  double ssq = 1.0;
  for (double x : data_) {
    if (x == 0.0) continue;
    double ax = std::fabs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::Trace() const {
  UMVSC_CHECK(IsSquare(), "Trace requires a square matrix");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

bool Matrix::IsSymmetric(double tol) const {
  if (!IsSquare()) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out = StrFormat("Matrix %zu x %zu\n", rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    out += "  [";
    for (std::size_t j = 0; j < cols_; ++j) {
      out += StrFormat("%s%.*f", j == 0 ? "" : ", ", precision, (*this)(i, j));
    }
    out += "]\n";
  }
  return out;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace umvsc::la
