#ifndef UMVSC_LA_CHOLESKY_H_
#define UMVSC_LA_CHOLESKY_H_

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::la {

/// Lower-triangular Cholesky factor L with A = L·Lᵀ. Fails with
/// NumericalError when `a` is not (numerically) positive definite.
/// Requires a symmetric square input.
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A·x = b for symmetric positive-definite A via Cholesky.
StatusOr<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Solves A·X = B column-wise for symmetric positive-definite A.
StatusOr<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b);

}  // namespace umvsc::la

#endif  // UMVSC_LA_CHOLESKY_H_
