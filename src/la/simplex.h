#ifndef UMVSC_LA_SIMPLEX_H_
#define UMVSC_LA_SIMPLEX_H_

#include "la/vector.h"

namespace umvsc::la {

/// Euclidean projection of `v` onto the probability simplex
/// {x : x ≥ 0, Σ x_i = radius} by the O(n log n) sort-and-threshold
/// algorithm (Held–Wolfe–Crowder / Duchi et al.). Requires radius > 0 and a
/// non-empty input. The building block of adaptive-neighbor graph learning.
Vector ProjectToSimplex(const Vector& v, double radius = 1.0);

}  // namespace umvsc::la

#endif  // UMVSC_LA_SIMPLEX_H_
