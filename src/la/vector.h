#ifndef UMVSC_LA_VECTOR_H_
#define UMVSC_LA_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace umvsc::la {

/// Dense double-precision vector. A thin wrapper over contiguous storage
/// with bounds-checked (debug) element access and the handful of BLAS-1
/// operations the library needs.
class Vector {
 public:
  Vector() = default;
  /// Zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  /// Constant vector of dimension n.
  Vector(std::size_t n, double value) : data_(n, value) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](std::size_t i) const {
    UMVSC_DCHECK(i < data_.size(), "vector index out of range");
    return data_[i];
  }
  double& operator[](std::size_t i) {
    UMVSC_DCHECK(i < data_.size(), "vector index out of range");
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const std::vector<double>& raw() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Euclidean norm.
  double Norm2() const;
  /// Sum of entries.
  double Sum() const;
  /// Largest absolute entry (0 for the empty vector).
  double MaxAbs() const;

  /// In-place scaling: this *= alpha.
  void Scale(double alpha);
  /// In-place axpy: this += alpha * x. Requires matching sizes.
  void Axpy(double alpha, const Vector& x);
  /// Normalizes to unit Euclidean length; returns the original norm.
  /// Requires a nonzero vector.
  double Normalize();

 private:
  std::vector<double> data_;
};

/// Dot product. Requires matching sizes.
double Dot(const Vector& a, const Vector& b);

/// Elementwise sum / difference. Require matching sizes.
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
/// Scalar multiple.
Vector operator*(double alpha, const Vector& v);

/// True when ‖a − b‖_∞ <= tol.
bool AlmostEqual(const Vector& a, const Vector& b, double tol);

}  // namespace umvsc::la

#endif  // UMVSC_LA_VECTOR_H_
