#include "la/vector.h"

#include <algorithm>
#include <cmath>

namespace umvsc::la {

void Vector::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Vector::Norm2() const {
  // Scaled accumulation to avoid overflow/underflow on extreme inputs.
  double scale = 0.0;
  double ssq = 1.0;
  for (double x : data_) {
    if (x == 0.0) continue;
    double ax = std::fabs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double Vector::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Vector::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

void Vector::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

void Vector::Axpy(double alpha, const Vector& x) {
  UMVSC_CHECK(size() == x.size(), "Axpy dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * x[i];
}

double Vector::Normalize() {
  double norm = Norm2();
  UMVSC_CHECK(norm > 0.0, "cannot normalize the zero vector");
  Scale(1.0 / norm);
  return norm;
}

double Dot(const Vector& a, const Vector& b) {
  UMVSC_CHECK(a.size() == b.size(), "Dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector operator+(const Vector& a, const Vector& b) {
  UMVSC_CHECK(a.size() == b.size(), "vector sum dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  UMVSC_CHECK(a.size() == b.size(), "vector difference dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector operator*(double alpha, const Vector& v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

bool AlmostEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace umvsc::la
