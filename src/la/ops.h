#ifndef UMVSC_LA_OPS_H_
#define UMVSC_LA_OPS_H_

#include "la/matrix.h"
#include "la/sparse.h"
#include "la/vector.h"

namespace umvsc::la {

/// C = A · B. Requires A.cols() == B.rows(). Routed through the packed
/// register-blocked SIMD kernel (la/gemm_kernel.h), row-block-parallel on
/// the global thread pool (see common/parallel.h); the accumulation grid
/// is a pure function of the shape, so the result is bitwise identical at
/// every thread count and across the SIMD/scalar dispatch paths.
/// Thread-safe for concurrent callers on distinct outputs.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = Aᵀ · B. Requires A.rows() == B.rows(). Avoids materializing Aᵀ.
/// Parallel over contiguous strips of C's rows; bitwise deterministic
/// across thread counts.
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ. Requires A.cols() == B.cols(). Avoids materializing Bᵀ.
/// Row-parallel; bitwise deterministic across thread counts.
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// C += A · B, accumulating straight into caller storage — the fused
/// flavor of MatMul for inner loops that would otherwise allocate a
/// temporary product and add it in a second pass (block-Lanczos panel
/// updates). Requires C pre-shaped to A.rows() × B.cols(). For an inner
/// dimension within one kc block of the GEMM grid (k ≤ 256, which covers
/// every Krylov panel width in this library) the result is bitwise equal
/// to `c.Add(MatMul(a, b), 1.0)`; beyond that the kc-block partials fold
/// into the existing C values in ascending block order instead of being
/// summed first, so the last bits may differ — deterministically, and
/// identically at every thread count.
void MatMulAddInto(const Matrix& a, const Matrix& b, Matrix& c);

/// C = Aᵀ · B into caller storage (overwritten) — the allocation-free
/// flavor of MatTMul for iteration loops that reuse a projection buffer.
/// Requires C pre-shaped to A.cols() × B.cols(). Bitwise equal to
/// MatTMul(a, b) at every thread count.
void MatTMulInto(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A · B into caller storage (overwritten) — MatMul without the
/// allocation, for per-iteration products that reuse a scratch buffer
/// (mvsc::SolveScratch). Requires C pre-shaped to A.rows() × B.cols().
/// Bitwise equal to MatMul(a, b) at every thread count.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A · Bᵀ into caller storage (overwritten) — MatMulT without the
/// allocation. Requires C pre-shaped to A.rows() × B.rows(). Bitwise equal
/// to MatMulT(a, b) at every thread count.
void MatMulTInto(const Matrix& a, const Matrix& b, Matrix& c);

/// y = A · x. Requires A.cols() == x.size(). Row-parallel with a
/// vectorized fixed-tree dot per row; bitwise deterministic across
/// thread counts.
Vector MatVec(const Matrix& a, const Vector& x);

/// y = Aᵀ · x. Requires A.rows() == x.size().
Vector MatTVec(const Matrix& a, const Vector& x);

/// Aᵀ as a new matrix. Cache-blocked tiles, parallel over row strips of A
/// (pure data movement — no arithmetic to reorder).
Matrix Transpose(const Matrix& a);

/// Gram matrix Aᵀ·A. Deterministic row-chunked ParallelReduce over the
/// packed GEMM kernel; the chunk grid depends only on A's row count, so
/// the result is bitwise identical at every thread count and bitwise
/// symmetric (both triangles come from identical arithmetic).
Matrix Gram(const Matrix& a);

/// Outer-product Gram A·Aᵀ. Row-parallel over the upper triangle (the hot
/// kernel under PairwiseSquaredDistances); bitwise deterministic across
/// thread counts.
Matrix OuterGram(const Matrix& a);

/// Tr(Aᵀ · B) = Σ_ij A_ij·B_ij. Requires matching shapes.
double TraceOfProduct(const Matrix& a, const Matrix& b);

/// Tr(Fᵀ · L · F) for symmetric L — the smoothness term of spectral
/// clustering objectives. Requires L square with L.cols() == F.rows().
/// Row-chunked deterministic ParallelReduce: the summation order is fixed
/// by the row count alone, so the value is bitwise identical at every
/// thread count (it may differ in the last bits from a straight serial
/// loop; see docs/THREADING.md).
double QuadraticTrace(const Matrix& l, const Matrix& f);

/// Sparse variant: Tr(Fᵀ·L·F) = Σ_{(i,j) ∈ nnz(L)} L_ij · (F_i·F_j),
/// O(nnz·k) — the fast path for kNN-graph Laplacians. Same deterministic
/// row-chunked reduction as the dense overload.
double QuadraticTrace(const CsrMatrix& l, const Matrix& f);

/// Elementwise (Hadamard) product. Requires matching shapes.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// A + alpha·B as a new matrix. Requires matching shapes.
Matrix Add(const Matrix& a, const Matrix& b, double alpha = 1.0);

/// Concatenates blocks left-to-right. All must share the row count.
Matrix HConcat(const std::vector<Matrix>& blocks);

/// Max-norm distance of Qᵀ·Q from the identity — 0 for a perfectly
/// orthonormal-column matrix. Handy for test assertions and invariants.
double OrthonormalityError(const Matrix& q);

}  // namespace umvsc::la

#endif  // UMVSC_LA_OPS_H_
