#ifndef UMVSC_LA_OPS_H_
#define UMVSC_LA_OPS_H_

#include "la/matrix.h"
#include "la/sparse.h"
#include "la/vector.h"

namespace umvsc::la {

/// C = A · B. Requires A.cols() == B.rows(). Cache-blocked i-k-j loop order.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = Aᵀ · B. Requires A.rows() == B.rows(). Avoids materializing Aᵀ.
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ. Requires A.cols() == B.cols(). Avoids materializing Bᵀ.
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// y = A · x. Requires A.cols() == x.size().
Vector MatVec(const Matrix& a, const Vector& x);

/// y = Aᵀ · x. Requires A.rows() == x.size().
Vector MatTVec(const Matrix& a, const Vector& x);

/// Aᵀ as a new matrix.
Matrix Transpose(const Matrix& a);

/// Gram matrix Aᵀ·A (symmetric, computed via the upper triangle).
Matrix Gram(const Matrix& a);

/// Outer-product Gram A·Aᵀ.
Matrix OuterGram(const Matrix& a);

/// Tr(Aᵀ · B) = Σ_ij A_ij·B_ij. Requires matching shapes.
double TraceOfProduct(const Matrix& a, const Matrix& b);

/// Tr(Fᵀ · L · F) for symmetric L — the smoothness term of spectral
/// clustering objectives. Requires L square with L.cols() == F.rows().
double QuadraticTrace(const Matrix& l, const Matrix& f);

/// Sparse variant: Tr(Fᵀ·L·F) = Σ_{(i,j) ∈ nnz(L)} L_ij · (F_i·F_j),
/// O(nnz·k) — the fast path for kNN-graph Laplacians.
double QuadraticTrace(const CsrMatrix& l, const Matrix& f);

/// Elementwise (Hadamard) product. Requires matching shapes.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// A + alpha·B as a new matrix. Requires matching shapes.
Matrix Add(const Matrix& a, const Matrix& b, double alpha = 1.0);

/// Concatenates blocks left-to-right. All must share the row count.
Matrix HConcat(const std::vector<Matrix>& blocks);

/// Max-norm distance of Qᵀ·Q from the identity — 0 for a perfectly
/// orthonormal-column matrix. Handy for test assertions and invariants.
double OrthonormalityError(const Matrix& q);

}  // namespace umvsc::la

#endif  // UMVSC_LA_OPS_H_
