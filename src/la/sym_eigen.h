#ifndef UMVSC_LA_SYM_EIGEN_H_
#define UMVSC_LA_SYM_EIGEN_H_

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::la {

/// Full eigendecomposition of a symmetric matrix: A = V·diag(λ)·Vᵀ with
/// eigenvalues sorted ascending and eigenvectors in the matching columns
/// of `eigenvectors`.
struct SymEigenResult {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Dense symmetric eigensolver: Householder tridiagonalization followed by
/// the implicit-shift QL iteration. O(n³), numerically robust — the standard
/// LAPACK-style pipeline. Fails with NumericalError if the QL iteration does
/// not converge (pathological inputs only). Requires a symmetric input
/// (validated up to `symmetry_tol`).
StatusOr<SymEigenResult> SymmetricEigen(const Matrix& a,
                                        double symmetry_tol = 1e-8);

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// `d` (length n) and subdiagonal `e` (length n−1), used directly by the
/// Lanczos solver. On success the returned eigenvectors are those of the
/// tridiagonal matrix itself.
StatusOr<SymEigenResult> TridiagonalEigen(const Vector& d, const Vector& e);

/// The `k` eigenpairs with the smallest eigenvalues (ascending) of a dense
/// symmetric matrix — the spectral-embedding primitive. Requires k <= n.
StatusOr<SymEigenResult> SmallestEigenpairs(const Matrix& a, std::size_t k,
                                            double symmetry_tol = 1e-8);

/// The `k` eigenpairs with the largest eigenvalues (descending).
StatusOr<SymEigenResult> LargestEigenpairs(const Matrix& a, std::size_t k,
                                           double symmetry_tol = 1e-8);

}  // namespace umvsc::la

#endif  // UMVSC_LA_SYM_EIGEN_H_
