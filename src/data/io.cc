#include "data/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace umvsc::data {

Status SaveMatrixCsv(const la::Matrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  out.precision(17);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j > 0) out << ',';
      out << m(i, j);
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

StatusOr<la::Matrix> LoadMatrixCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    std::vector<double> row;
    for (const std::string& field : Split(line, ',')) {
      double value = 0.0;
      if (!ParseDouble(field, &value)) {
        return Status::InvalidArgument(StrFormat(
            "%s:%zu: malformed number '%s'", path.c_str(), line_no,
            field.c_str()));
      }
      row.push_back(value);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument(StrFormat(
          "%s:%zu: expected %zu fields, found %zu", path.c_str(), line_no,
          rows.front().size(), row.size()));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument(StrFormat("'%s' is empty", path.c_str()));
  }
  la::Matrix m(rows.size(), rows.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[i].size(); ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Status SaveLabels(const std::vector<std::size_t>& labels,
                  const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  for (std::size_t label : labels) out << label << '\n';
  out.flush();
  if (!out) {
    return Status::IoError(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

StatusOr<std::vector<std::size_t>> LoadLabels(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::vector<std::size_t> labels;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    long long value = 0;
    if (!ParseInt(line, &value) || value < 0) {
      return Status::InvalidArgument(StrFormat(
          "%s:%zu: malformed label '%s'", path.c_str(), line_no, line.c_str()));
    }
    labels.push_back(static_cast<std::size_t>(value));
  }
  if (labels.empty()) {
    return Status::InvalidArgument(StrFormat("'%s' is empty", path.c_str()));
  }
  return labels;
}

Status SaveDataset(const MultiViewDataset& dataset, const std::string& dir) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  for (std::size_t v = 0; v < dataset.views.size(); ++v) {
    UMVSC_RETURN_IF_ERROR(SaveMatrixCsv(
        dataset.views[v], StrFormat("%s/view_%zu.csv", dir.c_str(), v)));
  }
  if (!dataset.labels.empty()) {
    UMVSC_RETURN_IF_ERROR(
        SaveLabels(dataset.labels, StrFormat("%s/labels.txt", dir.c_str())));
  }
  return Status::OK();
}

StatusOr<MultiViewDataset> LoadDataset(const std::string& dir,
                                       const std::string& name) {
  MultiViewDataset dataset;
  dataset.name = name;
  for (std::size_t v = 0;; ++v) {
    const std::string path = StrFormat("%s/view_%zu.csv", dir.c_str(), v);
    if (!std::filesystem::exists(path)) break;
    StatusOr<la::Matrix> view = LoadMatrixCsv(path);
    if (!view.ok()) return view.status();
    dataset.views.push_back(std::move(*view));
  }
  if (dataset.views.empty()) {
    return Status::NotFound(
        StrFormat("no view_0.csv under '%s'", dir.c_str()));
  }
  const std::string labels_path = StrFormat("%s/labels.txt", dir.c_str());
  if (std::filesystem::exists(labels_path)) {
    StatusOr<std::vector<std::size_t>> labels = LoadLabels(labels_path);
    if (!labels.ok()) return labels.status();
    dataset.labels = std::move(*labels);
  }
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace umvsc::data
