#ifndef UMVSC_DATA_STANDARDIZE_H_
#define UMVSC_DATA_STANDARDIZE_H_

#include <cstddef>

#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::data {

/// Per-feature (column) mean and inverse standard deviation of `m`, the one
/// z-scoring convention of the whole library: population variance (divide
/// by n, not n − 1), and inv_std = 1.0 for constant features so applying
/// the transform leaves them centered at zero instead of dividing by zero.
///
/// This is THE shared definition — MultiViewDataset::StandardizeViews, the
/// exact-path out-of-sample model, and the anchor solve all standardize
/// through it, so a point mapped at serve time with saved (means, inv_stds)
/// lands bitwise in the training feature space.
void ColumnStandardization(const la::Matrix& m, la::Vector* means,
                           la::Vector* inv_stds);

/// Returns a copy of `m` with every element mapped to
/// (x − means[j]) · inv_stds[j].
la::Matrix ApplyStandardization(const la::Matrix& m, const la::Vector& means,
                                const la::Vector& inv_stds);

/// In-place variant of ApplyStandardization (same per-element arithmetic).
void ApplyStandardizationInPlace(la::Matrix& m, const la::Vector& means,
                                 const la::Vector& inv_stds);

/// Standardizes one raw row of `d` features into `out` (the serve-time
/// per-point mapping; `raw` and `out` may alias).
void ApplyStandardizationRow(const double* raw, std::size_t d,
                             const la::Vector& means,
                             const la::Vector& inv_stds, double* out);

}  // namespace umvsc::data

#endif  // UMVSC_DATA_STANDARDIZE_H_
