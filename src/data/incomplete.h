#ifndef UMVSC_DATA_INCOMPLETE_H_
#define UMVSC_DATA_INCOMPLETE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace umvsc::data {

/// Per-view sample availability for the incomplete (partial) multi-view
/// setting: present[v][i] says whether sample i was observed in view v.
/// Feature rows of absent samples are meaningless placeholders.
struct ViewPresence {
  std::vector<std::vector<bool>> present;

  /// The missing fraction MakeIncomplete was asked for, and the fraction of
  /// (sample, view) pairs it actually removed. The rejection sampler can
  /// fall short of an aggressive target when the structural constraints
  /// (every sample in >= 1 view, min_present_per_view) leave too few legal
  /// removals — callers sweeping the missing axis must plot
  /// achieved_missing_fraction, never assume the target was met.
  double target_missing_fraction = 0.0;
  double achieved_missing_fraction = 0.0;

  std::size_t NumViews() const { return present.size(); }
  std::size_t NumSamples() const {
    return present.empty() ? 0 : present.front().size();
  }
  /// Number of observed samples in view v.
  std::size_t CountPresent(std::size_t view) const;

  /// True when the sampler stopped short of the requested target (it ran
  /// out of constraint-respecting removals before reaching it).
  bool Saturated() const;

  /// Structural consistency against a dataset: matching view/sample counts
  /// and every sample observed in at least one view.
  Status Validate(const MultiViewDataset& dataset) const;
};

/// Samples a presence pattern with roughly `missing_fraction` of the
/// (sample, view) pairs absent, uniformly at random, under the standard
/// partial-multi-view constraints: every sample stays present in at least
/// one view and every view keeps at least `min_present_per_view` samples.
/// Feature rows of absent samples are overwritten with noise scale-matched
/// to the PRESENT rows of that view (so repeated application — a stream
/// whose views keep dropping out — does not compound the fill variance),
/// making accidental use of them loud in experiments rather than silently
/// informative. When the constraints cap the removable pairs below the
/// target, the returned presence records the shortfall
/// (achieved_missing_fraction < target_missing_fraction, Saturated() true)
/// and a warning is printed — the call still succeeds with the achievable
/// pattern. Requires missing_fraction in [0, 1).
StatusOr<ViewPresence> MakeIncomplete(MultiViewDataset& dataset,
                                      double missing_fraction,
                                      std::uint64_t seed,
                                      std::size_t min_present_per_view = 10);

}  // namespace umvsc::data

#endif  // UMVSC_DATA_INCOMPLETE_H_
