#ifndef UMVSC_DATA_INCOMPLETE_H_
#define UMVSC_DATA_INCOMPLETE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace umvsc::data {

/// Per-view sample availability for the incomplete (partial) multi-view
/// setting: present[v][i] says whether sample i was observed in view v.
/// Feature rows of absent samples are meaningless placeholders.
struct ViewPresence {
  std::vector<std::vector<bool>> present;

  std::size_t NumViews() const { return present.size(); }
  std::size_t NumSamples() const {
    return present.empty() ? 0 : present.front().size();
  }
  /// Number of observed samples in view v.
  std::size_t CountPresent(std::size_t view) const;

  /// Structural consistency against a dataset: matching view/sample counts
  /// and every sample observed in at least one view.
  Status Validate(const MultiViewDataset& dataset) const;
};

/// Samples a presence pattern with roughly `missing_fraction` of the
/// (sample, view) pairs absent, uniformly at random, under the standard
/// partial-multi-view constraints: every sample stays present in at least
/// one view and every view keeps at least `min_present_per_view` samples.
/// Feature rows of absent samples are overwritten with scale-matched noise
/// so accidental use of them is loud in experiments rather than silently
/// informative. Requires missing_fraction in [0, 1).
StatusOr<ViewPresence> MakeIncomplete(MultiViewDataset& dataset,
                                      double missing_fraction,
                                      std::uint64_t seed,
                                      std::size_t min_present_per_view = 10);

}  // namespace umvsc::data

#endif  // UMVSC_DATA_INCOMPLETE_H_
