#ifndef UMVSC_DATA_DATASET_H_
#define UMVSC_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::data {

/// A multi-view dataset: V feature matrices over the same n objects, plus
/// optional ground-truth labels for evaluation. The core input type of the
/// whole library.
struct MultiViewDataset {
  std::string name;
  /// views[v] is the n × d_v feature matrix of view v.
  std::vector<la::Matrix> views;
  /// Ground-truth cluster ids (dense, starting at 0); empty when unknown.
  std::vector<std::size_t> labels;

  std::size_t NumViews() const { return views.size(); }
  std::size_t NumSamples() const {
    return views.empty() ? 0 : views.front().rows();
  }
  /// Number of distinct ground-truth clusters (0 when unlabeled).
  std::size_t NumClusters() const;

  /// Checks structural consistency: at least one view, all views share the
  /// row count, labels (when present) match and are dense in [0, c).
  Status Validate() const;

  /// Per-view z-score standardization (zero mean, unit variance per
  /// feature; constant features are left centered at zero). The usual
  /// preprocessing before building distance-based graphs.
  void StandardizeViews();
};

}  // namespace umvsc::data

#endif  // UMVSC_DATA_DATASET_H_
