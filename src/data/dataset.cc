#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.h"
#include "data/standardize.h"

namespace umvsc::data {

std::size_t MultiViewDataset::NumClusters() const {
  std::size_t max_label = 0;
  if (labels.empty()) return 0;
  for (std::size_t l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

Status MultiViewDataset::Validate() const {
  if (views.empty()) {
    return Status::InvalidArgument("dataset has no views");
  }
  const std::size_t n = views.front().rows();
  if (n == 0) {
    return Status::InvalidArgument("dataset has no samples");
  }
  for (std::size_t v = 0; v < views.size(); ++v) {
    if (views[v].rows() != n) {
      return Status::InvalidArgument(StrFormat(
          "view %zu has %zu rows, expected %zu", v, views[v].rows(), n));
    }
    if (views[v].cols() == 0) {
      return Status::InvalidArgument(StrFormat("view %zu has no features", v));
    }
    for (std::size_t i = 0; i < views[v].size(); ++i) {
      if (!std::isfinite(views[v].data()[i])) {
        return Status::InvalidArgument(
            StrFormat("view %zu contains a non-finite value", v));
      }
    }
  }
  if (!labels.empty()) {
    if (labels.size() != n) {
      return Status::InvalidArgument("label count does not match sample count");
    }
    // Dense label ids in [0, c).
    std::set<std::size_t> distinct(labels.begin(), labels.end());
    std::size_t expected = 0;
    for (std::size_t l : distinct) {
      if (l != expected) {
        return Status::InvalidArgument(
            StrFormat("labels must be dense ids starting at 0; missing %zu",
                      expected));
      }
      ++expected;
    }
  }
  return Status::OK();
}

void MultiViewDataset::StandardizeViews() {
  for (la::Matrix& view : views) {
    if (view.rows() == 0) continue;
    la::Vector means, inv_stds;
    ColumnStandardization(view, &means, &inv_stds);
    ApplyStandardizationInPlace(view, means, inv_stds);
  }
}

}  // namespace umvsc::data
