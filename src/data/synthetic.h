#ifndef UMVSC_DATA_SYNTHETIC_H_
#define UMVSC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace umvsc::data {

/// How informative a generated view is about the latent cluster structure.
/// Real multi-view benchmarks mix strong views (e.g. GIST on image sets)
/// with weak or near-noise views (e.g. tiny color-moment descriptors); the
/// generator reproduces exactly that axis, which is what multi-view
/// weighting schemes react to.
enum class ViewQuality {
  kInformative,  ///< full-strength projection of the latent clusters
  kWeak,         ///< attenuated signal (×0.35) under the same noise
  kNoisy,        ///< no signal at all — pure Gaussian noise
  kRedundant,    ///< re-uses the first informative view's projection
};

/// Specification of one generated view.
struct ViewSpec {
  std::size_t dim = 10;
  ViewQuality quality = ViewQuality::kInformative;
  /// Standard deviation of the additive Gaussian observation noise.
  double noise = 1.0;
  /// Signal multiplier on the projected latent. 0 selects the quality
  /// default (informative/redundant 1.0, weak 0.35, noisy 0.0); any
  /// positive value overrides it, giving a fine-grained difficulty dial.
  double strength = 0.0;
};

/// Configuration of the latent-cluster multi-view generator.
struct MultiViewConfig {
  std::string name = "synthetic";
  std::size_t num_samples = 300;
  std::size_t num_clusters = 3;
  std::vector<ViewSpec> views;
  /// Scale of the latent cluster centroids; larger = better separated.
  double cluster_separation = 4.0;
  /// Dimension of the shared latent space (0 → num_clusters + 2).
  std::size_t latent_dim = 0;
  /// 0 = perfectly balanced cluster sizes; 1 = strongly skewed (first
  /// cluster gets the lion's share, geometric decay).
  double imbalance = 0.0;
  std::uint64_t seed = 0;
};

/// Generates a multi-view dataset from a shared latent Gaussian-mixture:
/// z_i ~ N(μ_{c_i}, I) in the latent space, and view v observes
/// x_i^v = A_v·z_i·s_v + ε with a view-specific random projection A_v,
/// signal strength s_v and noise from its ViewSpec. All views see the SAME
/// latent clusters — the defining property of multi-view data.
StatusOr<MultiViewDataset> MakeGaussianMultiView(const MultiViewConfig& config);

/// A non-convex two-cluster problem: view 0 is the classic two-moons in 2D,
/// view 1 a nonlinearly warped (polar-like) re-embedding of the same points,
/// view 2 optional pure noise. K-means fails on it; spectral methods do not
/// — the motivating example for spectral over centroid clustering.
StatusOr<MultiViewDataset> MakeTwoMoonsMultiView(std::size_t num_samples,
                                                 double noise,
                                                 bool add_noise_view,
                                                 std::uint64_t seed);

/// Concentric rings (3 clusters) seen through two views: raw coordinates
/// and a radius-feature view that makes the problem linearly separable in
/// one view only.
StatusOr<MultiViewDataset> MakeRingsMultiView(std::size_t num_samples,
                                              double noise,
                                              std::uint64_t seed);

/// Configuration of the streaming drift/skew workload generator — the
/// production-shaped stress axis for the incremental (stream/) subsystem:
/// mini-batches drawn from the SAME latent multi-view mixture as
/// MakeGaussianMultiView, but with heavy-tailed cluster draw probabilities,
/// temporal mean-shift drift of the cluster centroids, and (optionally)
/// per-batch incomplete views noise-filled through data::MakeIncomplete.
struct DriftStreamConfig {
  std::string name = "drift-stream";
  std::size_t batch_size = 500;
  std::size_t num_clusters = 3;
  std::vector<ViewSpec> views;
  /// Scale of the latent cluster centroids at batch 0.
  double cluster_separation = 4.0;
  /// Dimension of the shared latent space (0 → num_clusters + 2).
  std::size_t latent_dim = 0;
  /// Heavy-tail dial on the per-point cluster draw: 0 = uniform draw
  /// probabilities; 1 = strongly skewed (geometric decay, the first cluster
  /// takes the lion's share — same decay law as MultiViewConfig::imbalance,
  /// but sampled per point so every batch's sizes fluctuate realistically).
  double heavy_tail = 0.0;
  /// Per-batch centroid mean shift: after batch t every cluster centroid
  /// has moved t·drift_rate·cluster_separation along its own fixed random
  /// unit direction in latent space. 0 = a static stream.
  double drift_rate = 0.0;
  /// Last stationary batch index: batches 0..drift_start_batch carry no
  /// shift (lets a detector calibrate), and batch b > drift_start_batch is
  /// shifted by (b − drift_start_batch)·drift_rate·cluster_separation. The
  /// default 0 reduces to the plain drift law above, with batch 0 as the
  /// undrifted reference.
  std::size_t drift_start_batch = 0;
  /// When positive, each batch is passed through MakeIncomplete with this
  /// missing fraction (needs >= 2 views): absent rows are noise-filled with
  /// present-row-matched scale, the "views can lag or go missing" axis.
  double missing_fraction = 0.0;
  std::uint64_t seed = 0;
};

/// Deterministic mini-batch generator over the drifting mixture. The latent
/// centroids, per-cluster drift directions, and per-view projections are
/// drawn once at Create; each NextBatch() advances one seeded child RNG, so
/// the b-th batch is a pure function of (config, b) — two generators with
/// the same config produce bitwise-identical streams regardless of thread
/// count, and a batch's ground-truth labels come back in
/// MultiViewDataset::labels.
class DriftStreamGenerator {
 public:
  static StatusOr<DriftStreamGenerator> Create(const DriftStreamConfig& config);

  /// The next `config.batch_size` points (dims and views per the config).
  StatusOr<MultiViewDataset> NextBatch();

  std::size_t batches_emitted() const { return next_batch_; }
  const DriftStreamConfig& config() const { return config_; }

 private:
  DriftStreamGenerator() = default;

  DriftStreamConfig config_;
  std::size_t latent_ = 0;
  la::Matrix centroids_;          // c × latent, batch-0 positions
  la::Matrix drift_directions_;   // c × latent, unit rows
  std::vector<la::Matrix> projections_;  // latent × d_v per view
  std::vector<double> cluster_weights_;  // unnormalized draw probabilities
  std::size_t next_batch_ = 0;
};

/// Named simulators mimicking the famous multi-view benchmarks' published
/// statistics (n, V, per-view dims, c). The underlying generator is
/// MakeGaussianMultiView with per-dataset view-quality profiles chosen to
/// mirror each benchmark's known character (see DESIGN.md, substitutions).
/// `scale` in (0, 1] shrinks n (and proportionally the biggest dims) for
/// quick runs; 1.0 reproduces the published statistics.
StatusOr<MultiViewDataset> SimulateBenchmark(const std::string& benchmark_name,
                                             std::uint64_t seed,
                                             double scale = 1.0);

/// The list of benchmark names SimulateBenchmark accepts, in canonical
/// table order: MSRC-v1, Caltech101-7, Handwritten, 3-Sources, BBCSport, ORL.
std::vector<std::string> BenchmarkNames();

}  // namespace umvsc::data

#endif  // UMVSC_DATA_SYNTHETIC_H_
