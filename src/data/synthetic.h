#ifndef UMVSC_DATA_SYNTHETIC_H_
#define UMVSC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace umvsc::data {

/// How informative a generated view is about the latent cluster structure.
/// Real multi-view benchmarks mix strong views (e.g. GIST on image sets)
/// with weak or near-noise views (e.g. tiny color-moment descriptors); the
/// generator reproduces exactly that axis, which is what multi-view
/// weighting schemes react to.
enum class ViewQuality {
  kInformative,  ///< full-strength projection of the latent clusters
  kWeak,         ///< attenuated signal (×0.35) under the same noise
  kNoisy,        ///< no signal at all — pure Gaussian noise
  kRedundant,    ///< re-uses the first informative view's projection
};

/// Specification of one generated view.
struct ViewSpec {
  std::size_t dim = 10;
  ViewQuality quality = ViewQuality::kInformative;
  /// Standard deviation of the additive Gaussian observation noise.
  double noise = 1.0;
  /// Signal multiplier on the projected latent. 0 selects the quality
  /// default (informative/redundant 1.0, weak 0.35, noisy 0.0); any
  /// positive value overrides it, giving a fine-grained difficulty dial.
  double strength = 0.0;
};

/// Configuration of the latent-cluster multi-view generator.
struct MultiViewConfig {
  std::string name = "synthetic";
  std::size_t num_samples = 300;
  std::size_t num_clusters = 3;
  std::vector<ViewSpec> views;
  /// Scale of the latent cluster centroids; larger = better separated.
  double cluster_separation = 4.0;
  /// Dimension of the shared latent space (0 → num_clusters + 2).
  std::size_t latent_dim = 0;
  /// 0 = perfectly balanced cluster sizes; 1 = strongly skewed (first
  /// cluster gets the lion's share, geometric decay).
  double imbalance = 0.0;
  std::uint64_t seed = 0;
};

/// Generates a multi-view dataset from a shared latent Gaussian-mixture:
/// z_i ~ N(μ_{c_i}, I) in the latent space, and view v observes
/// x_i^v = A_v·z_i·s_v + ε with a view-specific random projection A_v,
/// signal strength s_v and noise from its ViewSpec. All views see the SAME
/// latent clusters — the defining property of multi-view data.
StatusOr<MultiViewDataset> MakeGaussianMultiView(const MultiViewConfig& config);

/// A non-convex two-cluster problem: view 0 is the classic two-moons in 2D,
/// view 1 a nonlinearly warped (polar-like) re-embedding of the same points,
/// view 2 optional pure noise. K-means fails on it; spectral methods do not
/// — the motivating example for spectral over centroid clustering.
StatusOr<MultiViewDataset> MakeTwoMoonsMultiView(std::size_t num_samples,
                                                 double noise,
                                                 bool add_noise_view,
                                                 std::uint64_t seed);

/// Concentric rings (3 clusters) seen through two views: raw coordinates
/// and a radius-feature view that makes the problem linearly separable in
/// one view only.
StatusOr<MultiViewDataset> MakeRingsMultiView(std::size_t num_samples,
                                              double noise,
                                              std::uint64_t seed);

/// Named simulators mimicking the famous multi-view benchmarks' published
/// statistics (n, V, per-view dims, c). The underlying generator is
/// MakeGaussianMultiView with per-dataset view-quality profiles chosen to
/// mirror each benchmark's known character (see DESIGN.md, substitutions).
/// `scale` in (0, 1] shrinks n (and proportionally the biggest dims) for
/// quick runs; 1.0 reproduces the published statistics.
StatusOr<MultiViewDataset> SimulateBenchmark(const std::string& benchmark_name,
                                             std::uint64_t seed,
                                             double scale = 1.0);

/// The list of benchmark names SimulateBenchmark accepts, in canonical
/// table order: MSRC-v1, Caltech101-7, Handwritten, 3-Sources, BBCSport, ORL.
std::vector<std::string> BenchmarkNames();

}  // namespace umvsc::data

#endif  // UMVSC_DATA_SYNTHETIC_H_
