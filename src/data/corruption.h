#ifndef UMVSC_DATA_CORRUPTION_H_
#define UMVSC_DATA_CORRUPTION_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace umvsc::data {

/// Robustness-experiment corruptions. All act in place on one view and are
/// deterministic given the seed. They preserve Validate()-ability.

/// Adds i.i.d. N(0, σ²·s_v²) noise to every entry of view `view_index`,
/// where s_v is the view's empirical per-feature standard deviation (so
/// sigma is a relative noise level: 1.0 doubles the variance).
Status AddRelativeNoise(MultiViewDataset& dataset, std::size_t view_index,
                        double sigma, std::uint64_t seed);

/// Replaces a uniformly sampled `fraction` of the rows of view `view_index`
/// with pure Gaussian noise matched to the view's scale — simulating failed
/// feature extraction for those samples in that view.
Status CorruptSampleRows(MultiViewDataset& dataset, std::size_t view_index,
                         double fraction, std::uint64_t seed);

/// Replaces the whole view with scale-matched Gaussian noise — the
/// adversarial-view setting that stresses view-weight learning.
Status ReplaceViewWithNoise(MultiViewDataset& dataset, std::size_t view_index,
                            std::uint64_t seed);

}  // namespace umvsc::data

#endif  // UMVSC_DATA_CORRUPTION_H_
