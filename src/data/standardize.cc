#include "data/standardize.h"

#include <cmath>

#include "common/check.h"

namespace umvsc::data {

void ColumnStandardization(const la::Matrix& m, la::Vector* means,
                           la::Vector* inv_stds) {
  const std::size_t n = m.rows(), d = m.cols();
  *means = la::Vector(d);
  *inv_stds = la::Vector(d);
  for (std::size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += m(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double centered = m(i, j) - mean;
      var += centered * centered;
    }
    var /= static_cast<double>(n);
    (*means)[j] = mean;
    (*inv_stds)[j] = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  }
}

la::Matrix ApplyStandardization(const la::Matrix& m, const la::Vector& means,
                                const la::Vector& inv_stds) {
  la::Matrix out = m;
  ApplyStandardizationInPlace(out, means, inv_stds);
  return out;
}

void ApplyStandardizationInPlace(la::Matrix& m, const la::Vector& means,
                                 const la::Vector& inv_stds) {
  UMVSC_CHECK(means.size() == m.cols() && inv_stds.size() == m.cols(),
              "standardization parameter size must match feature count");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    ApplyStandardizationRow(m.RowPtr(i), m.cols(), means, inv_stds,
                            m.RowPtr(i));
  }
}

void ApplyStandardizationRow(const double* raw, std::size_t d,
                             const la::Vector& means,
                             const la::Vector& inv_stds, double* out) {
  for (std::size_t j = 0; j < d; ++j) {
    out[j] = (raw[j] - means[j]) * inv_stds[j];
  }
}

}  // namespace umvsc::data
