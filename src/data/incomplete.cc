#include "data/incomplete.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"

namespace umvsc::data {

std::size_t ViewPresence::CountPresent(std::size_t view) const {
  UMVSC_CHECK(view < present.size(), "view index out of range");
  std::size_t count = 0;
  for (bool p : present[view]) count += p;
  return count;
}

bool ViewPresence::Saturated() const {
  // One removal out of n·V is the sampler's resolution; anything short of
  // the target by more than half a removal is a genuine shortfall.
  const std::size_t n = NumSamples();
  const std::size_t v = NumViews();
  const double resolution =
      n * v > 0 ? 0.5 / static_cast<double>(n * v) : 0.0;
  return achieved_missing_fraction + resolution < target_missing_fraction;
}

Status ViewPresence::Validate(const MultiViewDataset& dataset) const {
  if (present.size() != dataset.NumViews()) {
    return Status::InvalidArgument("presence mask view count mismatch");
  }
  const std::size_t n = dataset.NumSamples();
  for (const auto& mask : present) {
    if (mask.size() != n) {
      return Status::InvalidArgument("presence mask sample count mismatch");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    bool anywhere = false;
    for (const auto& mask : present) anywhere |= mask[i];
    if (!anywhere) {
      return Status::InvalidArgument(
          StrFormat("sample %zu is absent from every view", i));
    }
  }
  return Status::OK();
}

StatusOr<ViewPresence> MakeIncomplete(MultiViewDataset& dataset,
                                      double missing_fraction,
                                      std::uint64_t seed,
                                      std::size_t min_present_per_view) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  if (missing_fraction < 0.0 || missing_fraction >= 1.0) {
    return Status::InvalidArgument("missing_fraction must be in [0, 1)");
  }
  const std::size_t n = dataset.NumSamples();
  const std::size_t num_views = dataset.NumViews();
  if (num_views < 2 && missing_fraction > 0.0) {
    return Status::InvalidArgument(
        "incomplete setting needs at least two views");
  }

  Rng rng(seed);
  ViewPresence presence;
  presence.present.assign(num_views, std::vector<bool>(n, true));
  presence.target_missing_fraction = missing_fraction;
  std::size_t removed = 0;
  if (missing_fraction > 0.0) {
    // Sample candidate (view, sample) removals uniformly; reject removals
    // that would violate the constraints.
    const std::size_t target = static_cast<std::size_t>(
        std::lround(missing_fraction * static_cast<double>(n * num_views)));
    std::vector<std::size_t> views_present(n, num_views);
    std::vector<std::size_t> samples_present(num_views, n);
    std::size_t attempts = 0;
    const std::size_t max_attempts = 20 * n * num_views;
    while (removed < target && attempts < max_attempts) {
      ++attempts;
      const std::size_t v = static_cast<std::size_t>(rng.UniformInt(num_views));
      const std::size_t i = static_cast<std::size_t>(rng.UniformInt(n));
      if (!presence.present[v][i]) continue;
      if (views_present[i] <= 1) continue;
      if (samples_present[v] <= min_present_per_view) continue;
      presence.present[v][i] = false;
      views_present[i]--;
      samples_present[v]--;
      ++removed;
    }
  }
  presence.achieved_missing_fraction =
      static_cast<double>(removed) / static_cast<double>(n * num_views);
  if (presence.Saturated()) {
    // The sampler ran out of constraint-respecting removals. Callers keep a
    // valid (smaller) pattern and can read the shortfall off the presence;
    // warn loudly so a sweep over missing_fraction cannot silently flatten.
    std::fprintf(
        stderr,
        "MakeIncomplete: constraints saturated at missing fraction %.4f of "
        "the requested %.4f (n=%zu, views=%zu, min_present_per_view=%zu)\n",
        presence.achieved_missing_fraction, missing_fraction, n, num_views,
        min_present_per_view);
  }

  // Overwrite absent rows with scale-matched noise so that any code path
  // that accidentally consumes them degrades loudly instead of benefiting
  // from the original (supposedly unobserved) features. The matching scale
  // is that of the PRESENT rows only: the rows being overwritten carry
  // whatever was there before (possibly noise from an earlier
  // MakeIncomplete pass — the streaming case), and folding them into the
  // statistics would compound the fill variance on every application.
  for (std::size_t v = 0; v < num_views; ++v) {
    la::Matrix& view = dataset.views[v];
    const std::size_t cols = view.cols();
    double mean = 0.0;
    std::size_t present_rows = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!presence.present[v][i]) continue;
      const double* row = view.RowPtr(i);
      for (std::size_t j = 0; j < cols; ++j) mean += row[j];
      ++present_rows;
    }
    const std::size_t present_entries = present_rows * cols;
    double scale = 1.0;
    if (present_entries > 0) {
      mean /= static_cast<double>(present_entries);
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!presence.present[v][i]) continue;
        const double* row = view.RowPtr(i);
        for (std::size_t j = 0; j < cols; ++j) {
          const double centered = row[j] - mean;
          var += centered * centered;
        }
      }
      var /= static_cast<double>(present_entries);
      scale = std::max(std::sqrt(var), 1e-6);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (presence.present[v][i]) continue;
      double* row = view.RowPtr(i);
      for (std::size_t j = 0; j < cols; ++j) {
        row[j] = rng.Gaussian(0.0, scale);
      }
    }
  }
  UMVSC_RETURN_IF_ERROR(presence.Validate(dataset));
  return presence;
}

}  // namespace umvsc::data
