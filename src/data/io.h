#ifndef UMVSC_DATA_IO_H_
#define UMVSC_DATA_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "la/matrix.h"

namespace umvsc::data {

/// Writes a matrix as plain CSV (no header), one row per line.
Status SaveMatrixCsv(const la::Matrix& m, const std::string& path);

/// Reads a plain numeric CSV (no header) into a matrix. All rows must have
/// the same number of fields.
StatusOr<la::Matrix> LoadMatrixCsv(const std::string& path);

/// Writes labels, one integer per line.
Status SaveLabels(const std::vector<std::size_t>& labels,
                  const std::string& path);

/// Reads labels (one nonnegative integer per line).
StatusOr<std::vector<std::size_t>> LoadLabels(const std::string& path);

/// Persists a dataset as `<dir>/view_<v>.csv` plus `<dir>/labels.txt`
/// (labels only when present). The directory must already exist.
Status SaveDataset(const MultiViewDataset& dataset, const std::string& dir);

/// Loads a dataset saved by SaveDataset: reads view_0.csv, view_1.csv, …
/// until the first missing file, then labels.txt if present. This is also
/// the interchange format for plugging real benchmark data into the
/// library: export each view's feature matrix to CSV and drop it in a
/// directory.
StatusOr<MultiViewDataset> LoadDataset(const std::string& dir,
                                       const std::string& name = "dataset");

}  // namespace umvsc::data

#endif  // UMVSC_DATA_IO_H_
