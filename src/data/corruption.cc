#include "data/corruption.h"

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace umvsc::data {

namespace {

Status CheckView(const MultiViewDataset& dataset, std::size_t view_index) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  if (view_index >= dataset.NumViews()) {
    return Status::OutOfRange(
        StrFormat("view %zu out of range (%zu views)", view_index,
                  dataset.NumViews()));
  }
  return Status::OK();
}

// Pooled per-entry standard deviation of a view (≥ a tiny floor so noise
// injection still does something on constant views).
double ViewScale(const la::Matrix& view) {
  double mean = 0.0;
  for (std::size_t i = 0; i < view.size(); ++i) mean += view.data()[i];
  mean /= static_cast<double>(view.size());
  double var = 0.0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    const double centered = view.data()[i] - mean;
    var += centered * centered;
  }
  var /= static_cast<double>(view.size());
  return std::max(std::sqrt(var), 1e-6);
}

}  // namespace

Status AddRelativeNoise(MultiViewDataset& dataset, std::size_t view_index,
                        double sigma, std::uint64_t seed) {
  UMVSC_RETURN_IF_ERROR(CheckView(dataset, view_index));
  if (sigma < 0.0) {
    return Status::InvalidArgument("noise level must be nonnegative");
  }
  la::Matrix& view = dataset.views[view_index];
  const double scale = sigma * ViewScale(view);
  Rng rng(seed);
  for (std::size_t i = 0; i < view.size(); ++i) {
    view.data()[i] += rng.Gaussian(0.0, scale);
  }
  return Status::OK();
}

Status CorruptSampleRows(MultiViewDataset& dataset, std::size_t view_index,
                         double fraction, std::uint64_t seed) {
  UMVSC_RETURN_IF_ERROR(CheckView(dataset, view_index));
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  la::Matrix& view = dataset.views[view_index];
  const double scale = ViewScale(view);
  Rng rng(seed);
  const std::size_t count = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(view.rows())));
  for (std::size_t row : rng.SampleWithoutReplacement(view.rows(), count)) {
    double* data = view.RowPtr(row);
    for (std::size_t j = 0; j < view.cols(); ++j) {
      data[j] = rng.Gaussian(0.0, scale);
    }
  }
  return Status::OK();
}

Status ReplaceViewWithNoise(MultiViewDataset& dataset, std::size_t view_index,
                            std::uint64_t seed) {
  UMVSC_RETURN_IF_ERROR(CheckView(dataset, view_index));
  la::Matrix& view = dataset.views[view_index];
  const double scale = ViewScale(view);
  Rng rng(seed);
  for (std::size_t i = 0; i < view.size(); ++i) {
    view.data()[i] = rng.Gaussian(0.0, scale);
  }
  return Status::OK();
}

}  // namespace umvsc::data
