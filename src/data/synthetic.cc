#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "data/incomplete.h"

namespace umvsc::data {

namespace {

// Cluster sizes for n points in c clusters with geometric-decay imbalance.
std::vector<std::size_t> ClusterSizes(std::size_t n, std::size_t c,
                                      double imbalance) {
  std::vector<double> weights(c);
  const double decay = 1.0 - 0.75 * std::clamp(imbalance, 0.0, 1.0);
  double w = 1.0, total = 0.0;
  for (std::size_t k = 0; k < c; ++k) {
    weights[k] = w;
    total += w;
    w *= decay;
  }
  std::vector<std::size_t> sizes(c);
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < c; ++k) {
    sizes[k] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(weights[k] / total *
                                               static_cast<double>(n))));
    assigned += sizes[k];
  }
  // Distribute the remainder (or remove the overshoot) round-robin.
  std::size_t k = 0;
  while (assigned < n) {
    sizes[k % c]++;
    ++assigned;
    ++k;
  }
  while (assigned > n) {
    if (sizes[k % c] > 1) {
      sizes[k % c]--;
      --assigned;
    }
    ++k;
  }
  return sizes;
}

}  // namespace

StatusOr<MultiViewDataset> MakeGaussianMultiView(const MultiViewConfig& config) {
  if (config.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (config.num_clusters < 1 || config.num_clusters > config.num_samples) {
    return Status::InvalidArgument("need 1 <= num_clusters <= num_samples");
  }
  if (config.views.empty()) {
    return Status::InvalidArgument("at least one view is required");
  }
  for (const ViewSpec& spec : config.views) {
    if (spec.dim == 0) {
      return Status::InvalidArgument("every view needs at least one feature");
    }
    if (spec.noise < 0.0) {
      return Status::InvalidArgument("view noise must be nonnegative");
    }
    if (spec.strength < 0.0) {
      return Status::InvalidArgument("view strength must be nonnegative");
    }
  }

  const std::size_t n = config.num_samples;
  const std::size_t c = config.num_clusters;
  const std::size_t latent =
      config.latent_dim > 0 ? config.latent_dim : c + 2;
  Rng rng(config.seed);

  // Latent centroids, scaled for separation.
  la::Matrix centroids = la::Matrix::RandomGaussian(c, latent, rng);
  centroids.Scale(config.cluster_separation / std::sqrt(2.0));

  // Labels and latent points.
  const std::vector<std::size_t> sizes = ClusterSizes(n, c, config.imbalance);
  MultiViewDataset dataset;
  dataset.name = config.name;
  dataset.labels.reserve(n);
  la::Matrix z(n, latent);
  {
    std::size_t row = 0;
    for (std::size_t k = 0; k < c; ++k) {
      for (std::size_t i = 0; i < sizes[k]; ++i, ++row) {
        dataset.labels.push_back(k);
        for (std::size_t j = 0; j < latent; ++j) {
          z(row, j) = centroids(k, j) + rng.Gaussian();
        }
      }
    }
  }
  // Shuffle rows so cluster blocks are not contiguous (some algorithms are
  // accidentally order-sensitive; the generator must not hide that).
  {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    rng.Shuffle(perm);
    la::Matrix z_shuffled(n, latent);
    std::vector<std::size_t> labels_shuffled(n);
    for (std::size_t i = 0; i < n; ++i) {
      z_shuffled.SetRow(i, z.Row(perm[i]));
      labels_shuffled[i] = dataset.labels[perm[i]];
    }
    z = std::move(z_shuffled);
    dataset.labels = std::move(labels_shuffled);
  }

  // The projection shared by redundant views: that of the first
  // informative view (or a fresh one if none exists).
  la::Matrix shared_projection;
  const double latent_scale = 1.0 / std::sqrt(static_cast<double>(latent));

  for (const ViewSpec& spec : config.views) {
    la::Matrix x(n, spec.dim);
    if (spec.quality == ViewQuality::kNoisy) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = rng.Gaussian(0.0, std::max(spec.noise, 1e-12));
      }
      dataset.views.push_back(std::move(x));
      continue;
    }

    la::Matrix projection;
    if (spec.quality == ViewQuality::kRedundant &&
        shared_projection.rows() == latent &&
        shared_projection.cols() >= spec.dim) {
      projection = shared_projection.Block(0, 0, latent, spec.dim);
    } else {
      projection = la::Matrix::RandomGaussian(latent, spec.dim, rng);
      projection.Scale(latent_scale);
      if (shared_projection.empty() &&
          spec.quality == ViewQuality::kInformative) {
        shared_projection = projection;
      }
    }
    const double strength =
        spec.strength > 0.0
            ? spec.strength
            : (spec.quality == ViewQuality::kWeak ? 0.35 : 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double* zrow = z.RowPtr(i);
      double* xrow = x.RowPtr(i);
      for (std::size_t j = 0; j < spec.dim; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < latent; ++p) {
          s += zrow[p] * projection(p, j);
        }
        xrow[j] = strength * s + rng.Gaussian(0.0, spec.noise);
      }
    }
    dataset.views.push_back(std::move(x));
  }

  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

StatusOr<MultiViewDataset> MakeTwoMoonsMultiView(std::size_t num_samples,
                                                 double noise,
                                                 bool add_noise_view,
                                                 std::uint64_t seed) {
  if (num_samples < 4) {
    return Status::InvalidArgument("two moons needs at least 4 samples");
  }
  if (noise < 0.0) {
    return Status::InvalidArgument("noise must be nonnegative");
  }
  Rng rng(seed);
  const std::size_t n = num_samples;
  MultiViewDataset dataset;
  dataset.name = "two-moons";
  la::Matrix coords(n, 2);
  la::Matrix warped(n, 3);
  dataset.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t moon = i % 2;
    dataset.labels[i] = moon;
    const double t = rng.Uniform() * M_PI;
    double x, y;
    if (moon == 0) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    x += rng.Gaussian(0.0, noise);
    y += rng.Gaussian(0.0, noise);
    coords(i, 0) = x;
    coords(i, 1) = y;
    // Second view: a smooth (locally injective) polynomial re-embedding of
    // the same sample. Neighborhoods are preserved, so the moon structure
    // survives in view 1 even though coordinates look nothing alike.
    const double cx = x - 0.5, cy = y - 0.25;
    warped(i, 0) = cx + 0.4 * cy * cy + rng.Gaussian(0.0, noise * 0.5);
    warped(i, 1) = cy - 0.4 * cx * cx + rng.Gaussian(0.0, noise * 0.5);
    warped(i, 2) = 0.5 * (cx * cx - cy * cy) + cx * cy +
                   rng.Gaussian(0.0, noise * 0.5);
  }
  dataset.views.push_back(std::move(coords));
  dataset.views.push_back(std::move(warped));
  if (add_noise_view) {
    la::Matrix junk(n, 5);
    for (std::size_t i = 0; i < junk.size(); ++i) junk.data()[i] = rng.Gaussian();
    dataset.views.push_back(std::move(junk));
  }
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

StatusOr<MultiViewDataset> MakeRingsMultiView(std::size_t num_samples,
                                              double noise,
                                              std::uint64_t seed) {
  if (num_samples < 6) {
    return Status::InvalidArgument("rings needs at least 6 samples");
  }
  if (noise < 0.0) {
    return Status::InvalidArgument("noise must be nonnegative");
  }
  Rng rng(seed);
  const std::size_t n = num_samples;
  const double radii[3] = {1.0, 2.2, 3.4};
  MultiViewDataset dataset;
  dataset.name = "rings";
  la::Matrix coords(n, 2);
  la::Matrix radial(n, 2);
  dataset.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ring = i % 3;
    dataset.labels[i] = ring;
    const double theta = rng.Uniform() * 2.0 * M_PI;
    const double r = radii[ring] + rng.Gaussian(0.0, noise);
    coords(i, 0) = r * std::cos(theta);
    coords(i, 1) = r * std::sin(theta);
    // The radius view is linearly separable; the second feature is noise.
    radial(i, 0) = r + rng.Gaussian(0.0, noise * 0.5);
    radial(i, 1) = rng.Gaussian();
  }
  dataset.views.push_back(std::move(coords));
  dataset.views.push_back(std::move(radial));
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

StatusOr<DriftStreamGenerator> DriftStreamGenerator::Create(
    const DriftStreamConfig& config) {
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (config.num_clusters < 1) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (config.views.empty()) {
    return Status::InvalidArgument("at least one view is required");
  }
  for (const ViewSpec& spec : config.views) {
    if (spec.dim == 0) {
      return Status::InvalidArgument("every view needs at least one feature");
    }
    if (spec.noise < 0.0 || spec.strength < 0.0) {
      return Status::InvalidArgument(
          "view noise and strength must be nonnegative");
    }
  }
  if (config.heavy_tail < 0.0 || config.heavy_tail > 1.0) {
    return Status::InvalidArgument("heavy_tail must be in [0, 1]");
  }
  if (config.drift_rate < 0.0) {
    return Status::InvalidArgument("drift_rate must be nonnegative");
  }
  if (config.missing_fraction < 0.0 || config.missing_fraction >= 1.0) {
    return Status::InvalidArgument("missing_fraction must be in [0, 1)");
  }
  if (config.missing_fraction > 0.0 && config.views.size() < 2) {
    return Status::InvalidArgument(
        "per-batch incompleteness needs at least two views");
  }

  DriftStreamGenerator gen;
  gen.config_ = config;
  gen.latent_ =
      config.latent_dim > 0 ? config.latent_dim : config.num_clusters + 2;
  const std::size_t c = config.num_clusters;

  // All structural draws happen here, once: the stream's geometry is fixed
  // at creation and NextBatch only samples points from it.
  Rng rng(config.seed);
  gen.centroids_ = la::Matrix::RandomGaussian(c, gen.latent_, rng);
  gen.centroids_.Scale(config.cluster_separation / std::sqrt(2.0));

  // One fixed unit drift direction per cluster: a mean shift, not a random
  // walk, so the drift magnitude at batch t is exactly prescribed.
  gen.drift_directions_ = la::Matrix(c, gen.latent_);
  for (std::size_t k = 0; k < c; ++k) {
    double norm2 = 0.0;
    double* row = gen.drift_directions_.RowPtr(k);
    for (std::size_t j = 0; j < gen.latent_; ++j) {
      row[j] = rng.Gaussian();
      norm2 += row[j] * row[j];
    }
    const double inv = norm2 > 0.0 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (std::size_t j = 0; j < gen.latent_; ++j) row[j] *= inv;
  }

  // Per-view projections, shared with redundant views exactly as in
  // MakeGaussianMultiView.
  const double latent_scale = 1.0 / std::sqrt(static_cast<double>(gen.latent_));
  la::Matrix shared_projection;
  for (const ViewSpec& spec : config.views) {
    if (spec.quality == ViewQuality::kNoisy) {
      gen.projections_.emplace_back();  // unused placeholder
      continue;
    }
    la::Matrix projection;
    if (spec.quality == ViewQuality::kRedundant &&
        shared_projection.rows() == gen.latent_ &&
        shared_projection.cols() >= spec.dim) {
      projection = shared_projection.Block(0, 0, gen.latent_, spec.dim);
    } else {
      projection = la::Matrix::RandomGaussian(gen.latent_, spec.dim, rng);
      projection.Scale(latent_scale);
      if (shared_projection.empty() &&
          spec.quality == ViewQuality::kInformative) {
        shared_projection = projection;
      }
    }
    gen.projections_.push_back(std::move(projection));
  }

  // Heavy-tailed draw probabilities: the geometric decay law of
  // ClusterSizes, applied per point instead of per partition so batch
  // compositions fluctuate the way production traffic does.
  const double decay = 1.0 - 0.75 * config.heavy_tail;
  double w = 1.0;
  for (std::size_t k = 0; k < c; ++k) {
    gen.cluster_weights_.push_back(w);
    w *= decay;
  }
  return gen;
}

StatusOr<MultiViewDataset> DriftStreamGenerator::NextBatch() {
  const std::size_t b = next_batch_;
  const std::size_t n = config_.batch_size;

  // One independent child stream per batch index: batch b is a pure
  // function of (config, b), never of how many points earlier batches drew.
  Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * (b + 1)));

  const std::size_t drift_steps =
      b > config_.drift_start_batch ? b - config_.drift_start_batch : 0;
  const double shift = config_.drift_rate * config_.cluster_separation *
                       static_cast<double>(drift_steps);

  MultiViewDataset batch;
  batch.name = config_.name;
  batch.labels.resize(n);
  la::Matrix z(n, latent_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = rng.SampleDiscrete(cluster_weights_);
    batch.labels[i] = k;
    const double* mu = centroids_.RowPtr(k);
    const double* dir = drift_directions_.RowPtr(k);
    double* zrow = z.RowPtr(i);
    for (std::size_t j = 0; j < latent_; ++j) {
      zrow[j] = mu[j] + shift * dir[j] + rng.Gaussian();
    }
  }

  for (std::size_t v = 0; v < config_.views.size(); ++v) {
    const ViewSpec& spec = config_.views[v];
    la::Matrix x(n, spec.dim);
    if (spec.quality == ViewQuality::kNoisy) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = rng.Gaussian(0.0, std::max(spec.noise, 1e-12));
      }
      batch.views.push_back(std::move(x));
      continue;
    }
    const la::Matrix& projection = projections_[v];
    const double strength =
        spec.strength > 0.0
            ? spec.strength
            : (spec.quality == ViewQuality::kWeak ? 0.35 : 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double* zrow = z.RowPtr(i);
      double* xrow = x.RowPtr(i);
      for (std::size_t j = 0; j < spec.dim; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < latent_; ++p) {
          s += zrow[p] * projection(p, j);
        }
        xrow[j] = strength * s + rng.Gaussian(0.0, spec.noise);
      }
    }
    batch.views.push_back(std::move(x));
  }

  if (config_.missing_fraction > 0.0) {
    // The lagging/missing-view axis: a seeded per-batch presence pattern,
    // absent rows noise-filled with present-row-matched scale. The label
    // ground truth is untouched. min_present_per_view scales to the batch
    // (tiny batches must not make every removal illegal).
    const std::size_t min_present = std::min<std::size_t>(10, (n + 1) / 2);
    StatusOr<ViewPresence> presence = MakeIncomplete(
        batch, config_.missing_fraction, config_.seed + 7919 * (b + 1),
        min_present);
    if (!presence.ok()) return presence.status();
  }

  UMVSC_RETURN_IF_ERROR(batch.Validate());
  ++next_batch_;
  return batch;
}

namespace {

// Published statistics of the famous benchmarks, with a view-quality
// profile reflecting each dataset's known character (e.g. tiny
// color-moment views are weak, text views of 3-Sources are all strong).
struct BenchmarkSpec {
  const char* name;
  std::size_t n;
  std::size_t c;
  std::vector<ViewSpec> views;
  double separation;
  double imbalance;
};

std::vector<BenchmarkSpec> AllBenchmarks() {
  // Noise levels are tuned so the simulated difficulty lands in the
  // published range of each benchmark (high-dimensional views need far more
  // per-feature noise to avoid distance concentration trivializing them).
  using Q = ViewQuality;
  return {
      {"MSRC-v1", 210, 7,
       {{24, Q::kWeak, 1.2, 0.45},          // color moments
        {576, Q::kNoisy, 1.0},              // HOG (corrupted capture)
        {512, Q::kInformative, 3.0, 0.7},   // GIST
        {256, Q::kInformative, 2.2, 0.6},   // LBP
        {254, Q::kRedundant, 3.0, 0.65}},   // CENTRIST (correlated with GIST)
       2.2, 0.0},
      {"Caltech101-7", 1474, 7,
       {{48, Q::kWeak, 1.6, 0.35},          // Gabor
        {40, Q::kWeak, 1.8, 0.35},          // wavelet moments
        {254, Q::kInformative, 2.4, 0.6},   // CENTRIST
        {512, Q::kInformative, 2.6, 0.65},  // GIST (HOG trimmed: see scale)
        {928, Q::kNoisy, 1.0},              // LBP (degraded)
        {256, Q::kRedundant, 2.8, 0.5}},    // secondary descriptor
       2.1, 0.5},
      {"Handwritten", 2000, 10,
       {{216, Q::kWeak, 2.5, 0.3},          // profile correlations
        {76, Q::kInformative, 2.2, 0.8},    // Fourier coefficients
        {64, Q::kInformative, 2.2, 0.75},   // Karhunen-Love
        {6, Q::kWeak, 1.2, 0.3},            // morphological
        {240, Q::kNoisy, 1.0},              // pixel averages (corrupted)
        {47, Q::kWeak, 2.0, 0.35}},         // Zernike moments
       2.1, 0.0},
      {"3-Sources", 169, 6,
       {{3560, Q::kInformative, 7.0},  // BBC
        {3631, Q::kWeak, 8.0, 0.25},   // Guardian (thin coverage)
        {3068, Q::kWeak, 7.0, 0.35}},  // Reuters
       2.6, 0.35},
      {"BBCSport", 544, 5,
       {{3183, Q::kInformative, 7.5},
        {3203, Q::kWeak, 8.0, 0.3}},
       2.5, 0.3},
      {"ORL", 400, 40,
       {{1024, Q::kInformative, 3.6, 0.7},  // intensity (4096 trimmed)
        {944, Q::kInformative, 4.0, 0.7},   // LBP
        {1350, Q::kNoisy, 1.0}},            // Gabor (degraded)
       2.6, 0.0},
  };
}

}  // namespace

std::vector<std::string> BenchmarkNames() {
  std::vector<std::string> names;
  for (const BenchmarkSpec& spec : AllBenchmarks()) names.push_back(spec.name);
  return names;
}

StatusOr<MultiViewDataset> SimulateBenchmark(const std::string& benchmark_name,
                                             std::uint64_t seed, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  for (const BenchmarkSpec& spec : AllBenchmarks()) {
    if (benchmark_name != spec.name) continue;
    MultiViewConfig config;
    config.name = spec.name;
    config.num_samples = std::max<std::size_t>(
        spec.c * 3,
        static_cast<std::size_t>(std::lround(scale * static_cast<double>(spec.n))));
    config.num_clusters = spec.c;
    config.views = spec.views;
    if (scale < 1.0) {
      // Trim very high-dimensional views proportionally (they only slow the
      // distance computation; cluster geometry is preserved).
      for (ViewSpec& view : config.views) {
        if (view.dim > 64) {
          view.dim = std::max<std::size_t>(
              64, static_cast<std::size_t>(
                      std::lround(scale * static_cast<double>(view.dim))));
        }
      }
    }
    config.cluster_separation = spec.separation;
    config.imbalance = spec.imbalance;
    config.latent_dim = spec.c + 4;
    config.seed = seed;
    return MakeGaussianMultiView(config);
  }
  return Status::NotFound(
      StrFormat("unknown benchmark '%s'", benchmark_name.c_str()));
}

}  // namespace umvsc::data
