#include "eval/internal_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/distance.h"

namespace umvsc::eval {

namespace {

Status ValidateInput(const la::Matrix& features,
                     const std::vector<std::size_t>& labels,
                     std::size_t* num_clusters) {
  if (features.rows() == 0 || features.cols() == 0) {
    return Status::InvalidArgument("features must be non-empty");
  }
  if (labels.size() != features.rows()) {
    return Status::InvalidArgument("label count must match feature rows");
  }
  std::size_t max_label = 0;
  for (std::size_t l : labels) max_label = std::max(max_label, l);
  *num_clusters = max_label + 1;
  // At least two non-empty clusters.
  std::vector<bool> seen(*num_clusters, false);
  for (std::size_t l : labels) seen[l] = true;
  std::size_t populated = 0;
  for (bool s : seen) populated += s;
  if (populated < 2) {
    return Status::InvalidArgument(
        "internal validation needs at least two non-empty clusters");
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> SilhouetteScore(const la::Matrix& features,
                                 const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  UMVSC_RETURN_IF_ERROR(ValidateInput(features, labels, &k));
  const std::size_t n = features.rows();
  la::Matrix dist = graph::PairwiseDistances(features);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t l : labels) counts[l]++;

  double total = 0.0;
  std::vector<double> mean_to_cluster(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[labels[i]] <= 1) continue;  // singleton scores 0
    std::fill(mean_to_cluster.begin(), mean_to_cluster.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      mean_to_cluster[labels[j]] += dist(i, j);
    }
    // Own cluster: exclude the point itself from the average.
    const std::size_t own = labels[i];
    const double a =
        mean_to_cluster[own] / static_cast<double>(counts[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_to_cluster[c] / static_cast<double>(counts[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

StatusOr<double> DaviesBouldinIndex(const la::Matrix& features,
                                    const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  UMVSC_RETURN_IF_ERROR(ValidateInput(features, labels, &k));
  const std::size_t n = features.rows();
  const std::size_t d = features.cols();

  // Centroids and within-cluster mean centroid distances.
  la::Matrix centroids(k, d);
  std::vector<double> counts(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      centroids(labels[i], j) += features(i, j);
    }
    counts[labels[i]] += 1.0;
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0.0) {
      for (std::size_t j = 0; j < d; ++j) centroids(c, j) /= counts[c];
    }
  }
  std::vector<double> scatter(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double dist2 = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = features(i, j) - centroids(labels[i], j);
      dist2 += diff * diff;
    }
    scatter[labels[i]] += std::sqrt(dist2);
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0.0) scatter[c] /= counts[c];
  }

  double total = 0.0;
  std::size_t populated = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (counts[i] == 0.0) continue;
    ++populated;
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i || counts[j] == 0.0) continue;
      double sep2 = 0.0;
      for (std::size_t p = 0; p < d; ++p) {
        const double diff = centroids(i, p) - centroids(j, p);
        sep2 += diff * diff;
      }
      const double sep = std::sqrt(sep2);
      if (sep > 0.0) {
        worst = std::max(worst, (scatter[i] + scatter[j]) / sep);
      } else {
        // Coincident centroids: maximally bad pair.
        worst = std::numeric_limits<double>::infinity();
      }
    }
    total += worst;
  }
  return total / static_cast<double>(populated);
}

StatusOr<ClusterCountSelection> SelectClusterCount(const la::Matrix& features,
                                                   std::size_t min_k,
                                                   std::size_t max_k,
                                                   const ClusterAtK& cluster) {
  if (min_k < 2 || min_k > max_k || max_k >= features.rows()) {
    return Status::InvalidArgument(
        "SelectClusterCount requires 2 <= min_k <= max_k < n");
  }
  ClusterCountSelection out;
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t k = min_k; k <= max_k; ++k) {
    StatusOr<std::vector<std::size_t>> labels = cluster(k);
    if (!labels.ok()) continue;  // caller opted out of this k
    StatusOr<double> score = SilhouetteScore(features, *labels);
    if (!score.ok()) continue;
    out.candidate_ks.push_back(k);
    out.silhouettes.push_back(*score);
    if (*score > best) {
      best = *score;
      out.best_k = k;
    }
  }
  if (out.candidate_ks.empty()) {
    return Status::NotFound("no candidate cluster count produced a score");
  }
  return out;
}

}  // namespace umvsc::eval
