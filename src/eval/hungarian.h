#ifndef UMVSC_EVAL_HUNGARIAN_H_
#define UMVSC_EVAL_HUNGARIAN_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::eval {

/// Solution of an assignment problem.
struct Assignment {
  /// row_to_col[i] = column assigned to row i.
  std::vector<std::size_t> row_to_col;
  /// Total cost (for MinCostAssignment) or profit (for MaxProfitAssignment).
  double total = 0.0;
};

/// Exact minimum-cost perfect assignment on a square cost matrix, solved by
/// the O(n³) shortest-augmenting-path Hungarian algorithm with potentials.
/// Finite costs required.
StatusOr<Assignment> MinCostAssignment(const la::Matrix& cost);

/// Exact maximum-profit assignment (negates and delegates).
StatusOr<Assignment> MaxProfitAssignment(const la::Matrix& profit);

}  // namespace umvsc::eval

#endif  // UMVSC_EVAL_HUNGARIAN_H_
