#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "eval/hungarian.h"

namespace umvsc::eval {

namespace {

Status ValidateLabelings(const std::vector<std::size_t>& predicted,
                         const std::vector<std::size_t>& truth) {
  if (predicted.empty()) {
    return Status::InvalidArgument("labelings must be non-empty");
  }
  if (predicted.size() != truth.size()) {
    return Status::InvalidArgument("labelings must have equal length");
  }
  return Status::OK();
}

double Entropy(const std::vector<double>& counts, double n) {
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      const double p = c / n;
      h -= p * std::log(p);
    }
  }
  return h;
}

double Choose2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

StatusOr<la::Matrix> ContingencyTable(const std::vector<std::size_t>& predicted,
                                      const std::vector<std::size_t>& truth) {
  UMVSC_RETURN_IF_ERROR(ValidateLabelings(predicted, truth));
  std::size_t rows = 0, cols = 0;
  for (std::size_t v : predicted) rows = std::max(rows, v + 1);
  for (std::size_t v : truth) cols = std::max(cols, v + 1);
  la::Matrix table(rows, cols);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    table(predicted[i], truth[i]) += 1.0;
  }
  return table;
}

StatusOr<double> ClusteringAccuracy(const std::vector<std::size_t>& predicted,
                                    const std::vector<std::size_t>& truth) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();
  // Pad to square so clusterings with different counts still match.
  const std::size_t dim = std::max(table->rows(), table->cols());
  la::Matrix profit(dim, dim);
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      profit(i, j) = (*table)(i, j);
    }
  }
  StatusOr<Assignment> best = MaxProfitAssignment(profit);
  if (!best.ok()) return best.status();
  return best->total / static_cast<double>(predicted.size());
}

StatusOr<double> NormalizedMutualInformation(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& truth, NmiNormalization normalization) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();
  const double n = static_cast<double>(predicted.size());

  std::vector<double> row_sums(table->rows(), 0.0);
  std::vector<double> col_sums(table->cols(), 0.0);
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      row_sums[i] += (*table)(i, j);
      col_sums[j] += (*table)(i, j);
    }
  }
  const double h_pred = Entropy(row_sums, n);
  const double h_true = Entropy(col_sums, n);

  double mi = 0.0;
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      const double nij = (*table)(i, j);
      if (nij > 0.0) {
        mi += (nij / n) * std::log(n * nij / (row_sums[i] * col_sums[j]));
      }
    }
  }
  mi = std::max(0.0, mi);  // clamp tiny negative rounding

  double denom = 0.0;
  switch (normalization) {
    case NmiNormalization::kSqrt:
      denom = std::sqrt(h_pred * h_true);
      break;
    case NmiNormalization::kMax:
      denom = std::max(h_pred, h_true);
      break;
    case NmiNormalization::kArithmetic:
      denom = 0.5 * (h_pred + h_true);
      break;
  }
  if (denom <= 0.0) {
    // Both labelings constant: identical iff both have a single cluster.
    return (h_pred == 0.0 && h_true == 0.0) ? 1.0 : 0.0;
  }
  return std::min(1.0, mi / denom);
}

StatusOr<double> AdjustedRandIndex(const std::vector<std::size_t>& predicted,
                                   const std::vector<std::size_t>& truth) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();
  const double n = static_cast<double>(predicted.size());

  double sum_ij = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  std::vector<double> row_sums(table->rows(), 0.0);
  std::vector<double> col_sums(table->cols(), 0.0);
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      const double nij = (*table)(i, j);
      sum_ij += Choose2(nij);
      row_sums[i] += nij;
      col_sums[j] += nij;
    }
  }
  for (double r : row_sums) sum_rows += Choose2(r);
  for (double c : col_sums) sum_cols += Choose2(c);

  const double total_pairs = Choose2(n);
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // degenerate: perfect by convention
  return (sum_ij - expected) / (max_index - expected);
}

StatusOr<double> RandIndex(const std::vector<std::size_t>& predicted,
                           const std::vector<std::size_t>& truth) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();
  const double n = static_cast<double>(predicted.size());
  double sum_ij = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  std::vector<double> row_sums(table->rows(), 0.0);
  std::vector<double> col_sums(table->cols(), 0.0);
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      sum_ij += Choose2((*table)(i, j));
      row_sums[i] += (*table)(i, j);
      col_sums[j] += (*table)(i, j);
    }
  }
  for (double r : row_sums) sum_rows += Choose2(r);
  for (double c : col_sums) sum_cols += Choose2(c);
  const double total = Choose2(n);
  if (total == 0.0) return 1.0;  // a single point: trivially consistent
  const double agree = total + 2.0 * sum_ij - sum_rows - sum_cols;
  return agree / total;
}

StatusOr<double> Purity(const std::vector<std::size_t>& predicted,
                        const std::vector<std::size_t>& truth) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();
  double correct = 0.0;
  for (std::size_t i = 0; i < table->rows(); ++i) {
    double best = 0.0;
    for (std::size_t j = 0; j < table->cols(); ++j) {
      best = std::max(best, (*table)(i, j));
    }
    correct += best;
  }
  return correct / static_cast<double>(predicted.size());
}

StatusOr<PairwiseScores> PairwiseFScore(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& truth) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();

  double tp = 0.0, pred_pairs = 0.0, true_pairs = 0.0;
  std::vector<double> row_sums(table->rows(), 0.0);
  std::vector<double> col_sums(table->cols(), 0.0);
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      tp += Choose2((*table)(i, j));
      row_sums[i] += (*table)(i, j);
      col_sums[j] += (*table)(i, j);
    }
  }
  for (double r : row_sums) pred_pairs += Choose2(r);
  for (double c : col_sums) true_pairs += Choose2(c);

  PairwiseScores s;
  s.precision = pred_pairs > 0.0 ? tp / pred_pairs : 1.0;
  s.recall = true_pairs > 0.0 ? tp / true_pairs : 1.0;
  s.f_score = (s.precision + s.recall) > 0.0
                  ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
                  : 0.0;
  return s;
}

StatusOr<double> FowlkesMallows(const std::vector<std::size_t>& predicted,
                                const std::vector<std::size_t>& truth) {
  StatusOr<PairwiseScores> s = PairwiseFScore(predicted, truth);
  if (!s.ok()) return s.status();
  return std::sqrt(s->precision * s->recall);
}

StatusOr<VMeasureScores> VMeasure(const std::vector<std::size_t>& predicted,
                                  const std::vector<std::size_t>& truth) {
  StatusOr<la::Matrix> table = ContingencyTable(predicted, truth);
  if (!table.ok()) return table.status();
  const double n = static_cast<double>(predicted.size());

  std::vector<double> row_sums(table->rows(), 0.0);
  std::vector<double> col_sums(table->cols(), 0.0);
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      row_sums[i] += (*table)(i, j);
      col_sums[j] += (*table)(i, j);
    }
  }
  const double h_pred = Entropy(row_sums, n);   // H(K): clusters
  const double h_true = Entropy(col_sums, n);   // H(C): classes

  // Conditional entropies H(C|K) and H(K|C) from the joint counts.
  double h_true_given_pred = 0.0;
  double h_pred_given_true = 0.0;
  for (std::size_t i = 0; i < table->rows(); ++i) {
    for (std::size_t j = 0; j < table->cols(); ++j) {
      const double nij = (*table)(i, j);
      if (nij <= 0.0) continue;
      h_true_given_pred -= (nij / n) * std::log(nij / row_sums[i]);
      h_pred_given_true -= (nij / n) * std::log(nij / col_sums[j]);
    }
  }

  VMeasureScores out;
  out.homogeneity = h_true > 0.0 ? 1.0 - h_true_given_pred / h_true : 1.0;
  out.completeness = h_pred > 0.0 ? 1.0 - h_pred_given_true / h_pred : 1.0;
  const double denom = out.homogeneity + out.completeness;
  out.v_measure =
      denom > 0.0 ? 2.0 * out.homogeneity * out.completeness / denom : 0.0;
  return out;
}

StatusOr<ClusteringScores> ScoreClustering(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& truth) {
  ClusteringScores out;
  StatusOr<double> acc = ClusteringAccuracy(predicted, truth);
  if (!acc.ok()) return acc.status();
  out.accuracy = *acc;
  StatusOr<double> nmi = NormalizedMutualInformation(predicted, truth);
  if (!nmi.ok()) return nmi.status();
  out.nmi = *nmi;
  StatusOr<double> purity = Purity(predicted, truth);
  if (!purity.ok()) return purity.status();
  out.purity = *purity;
  StatusOr<double> ari = AdjustedRandIndex(predicted, truth);
  if (!ari.ok()) return ari.status();
  out.ari = *ari;
  StatusOr<PairwiseScores> f = PairwiseFScore(predicted, truth);
  if (!f.ok()) return f.status();
  out.f_score = f->f_score;
  return out;
}

}  // namespace umvsc::eval
