#include "eval/hungarian.h"

#include <cmath>
#include <limits>

namespace umvsc::eval {

StatusOr<Assignment> MinCostAssignment(const la::Matrix& cost) {
  if (!cost.IsSquare() || cost.rows() == 0) {
    return Status::InvalidArgument(
        "assignment requires a non-empty square cost matrix");
  }
  for (std::size_t i = 0; i < cost.size(); ++i) {
    if (!std::isfinite(cost.data()[i])) {
      return Status::InvalidArgument("assignment costs must be finite");
    }
  }
  const std::size_t n = cost.rows();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Potentials u (rows), v (columns) and the column→row matching; index 0 is
  // a sentinel (1-based internally, as in the classic formulation).
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> match(n + 1, 0);  // match[col] = row
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment out;
  out.row_to_col.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) out.row_to_col[match[j] - 1] = j - 1;
  for (std::size_t i = 0; i < n; ++i) out.total += cost(i, out.row_to_col[i]);
  return out;
}

StatusOr<Assignment> MaxProfitAssignment(const la::Matrix& profit) {
  la::Matrix neg = profit;
  neg.Scale(-1.0);
  StatusOr<Assignment> res = MinCostAssignment(neg);
  if (!res.ok()) return res.status();
  res->total = -res->total;
  return res;
}

}  // namespace umvsc::eval
