#ifndef UMVSC_EVAL_INTERNAL_METRICS_H_
#define UMVSC_EVAL_INTERNAL_METRICS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::eval {

/// Internal (ground-truth-free) cluster validation metrics, used to select
/// the number of clusters when no labels exist.

/// Mean silhouette coefficient over all points, in [−1, 1] (higher is
/// better). For each point: (b − a) / max(a, b) with a = mean distance to
/// its own cluster and b = the smallest mean distance to another cluster.
/// Points in singleton clusters score 0 by convention. Requires at least
/// two non-empty clusters.
StatusOr<double> SilhouetteScore(const la::Matrix& features,
                                 const std::vector<std::size_t>& labels);

/// Davies–Bouldin index (lower is better): mean over clusters of the worst
/// ratio (s_i + s_j) / d(μ_i, μ_j), with s = mean centroid distance within
/// a cluster. Requires at least two non-empty clusters.
StatusOr<double> DaviesBouldinIndex(const la::Matrix& features,
                                    const std::vector<std::size_t>& labels);

/// Result of a cluster-count selection sweep.
struct ClusterCountSelection {
  std::size_t best_k = 0;
  /// silhouettes[i] is the score for candidate_ks[i].
  std::vector<std::size_t> candidate_ks;
  std::vector<double> silhouettes;
};

/// Selects the number of clusters by the silhouette criterion: runs the
/// caller-provided clustering callback for each k in [min_k, max_k] and
/// returns the k with the highest mean silhouette on `features` (typically
/// a spectral embedding or the concatenated standardized views). The
/// callback returns the label vector for a given k, or an error to skip
/// that k. Requires 2 <= min_k <= max_k < n.
using ClusterAtK =
    std::function<StatusOr<std::vector<std::size_t>>(std::size_t k)>;
StatusOr<ClusterCountSelection> SelectClusterCount(const la::Matrix& features,
                                                   std::size_t min_k,
                                                   std::size_t max_k,
                                                   const ClusterAtK& cluster);

}  // namespace umvsc::eval

#endif  // UMVSC_EVAL_INTERNAL_METRICS_H_
