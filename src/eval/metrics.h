#ifndef UMVSC_EVAL_METRICS_H_
#define UMVSC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::eval {

/// Cross-tabulation of two labelings: entry (i, j) counts points with
/// predicted label i and true label j. Labels must be dense ids starting at
/// 0; the table shape is (max_pred + 1) × (max_true + 1).
StatusOr<la::Matrix> ContingencyTable(const std::vector<std::size_t>& predicted,
                                      const std::vector<std::size_t>& truth);

/// Normalization used by NMI.
enum class NmiNormalization {
  kSqrt,       ///< I / sqrt(H_pred · H_true)   (the multi-view default)
  kMax,        ///< I / max(H_pred, H_true)
  kArithmetic, ///< 2·I / (H_pred + H_true)
};

/// Clustering accuracy: the best label permutation (optimal over the
/// Hungarian matching of the contingency table) divided by n. In [0, 1].
StatusOr<double> ClusteringAccuracy(const std::vector<std::size_t>& predicted,
                                    const std::vector<std::size_t>& truth);

/// Normalized mutual information, in [0, 1]. A single-cluster degenerate
/// labeling has zero entropy; NMI is defined as 0 then (unless both sides
/// are the same single cluster, which scores 1 by convention).
StatusOr<double> NormalizedMutualInformation(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& truth,
    NmiNormalization normalization = NmiNormalization::kSqrt);

/// Adjusted Rand index, chance-corrected, in [−1, 1].
StatusOr<double> AdjustedRandIndex(const std::vector<std::size_t>& predicted,
                                   const std::vector<std::size_t>& truth);

/// Unadjusted Rand index, in [0, 1].
StatusOr<double> RandIndex(const std::vector<std::size_t>& predicted,
                           const std::vector<std::size_t>& truth);

/// Purity: each predicted cluster votes its majority true class. In [0, 1].
StatusOr<double> Purity(const std::vector<std::size_t>& predicted,
                        const std::vector<std::size_t>& truth);

/// Pairwise precision/recall/F over same-cluster point pairs.
struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
};
StatusOr<PairwiseScores> PairwiseFScore(const std::vector<std::size_t>& predicted,
                                        const std::vector<std::size_t>& truth);

/// Fowlkes–Mallows index: geometric mean of pairwise precision and recall.
StatusOr<double> FowlkesMallows(const std::vector<std::size_t>& predicted,
                                const std::vector<std::size_t>& truth);

/// Homogeneity / completeness / V-measure (Rosenberg & Hirschberg '07):
/// conditional-entropy based; V is their harmonic mean.
struct VMeasureScores {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v_measure = 0.0;
};
StatusOr<VMeasureScores> VMeasure(const std::vector<std::size_t>& predicted,
                                  const std::vector<std::size_t>& truth);

/// All the metrics the benchmark tables report, in one call.
struct ClusteringScores {
  double accuracy = 0.0;
  double nmi = 0.0;
  double purity = 0.0;
  double ari = 0.0;
  double f_score = 0.0;
};
StatusOr<ClusteringScores> ScoreClustering(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::size_t>& truth);

}  // namespace umvsc::eval

#endif  // UMVSC_EVAL_METRICS_H_
