#include "stream/streaming_unified.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/anchor_embedding.h"
#include "common/strings.h"
#include "data/standardize.h"
#include "exec/executor.h"
#include "graph/anchors.h"
#include "la/ops.h"
#include "la/sparse.h"
#include "mvsc/anchor_assign.h"
#include "mvsc/reduced_solve.h"

namespace umvsc::stream {

namespace {

// Absolute floor on a per-view smoothness baseline: a view whose h_v was
// essentially zero at the last full solve must not fire the detector on
// numerical noise. h_v = Tr(GᵀH_vG) lives in [0, c], so the floor scales
// with the cluster count.
double SmoothnessFloor(std::size_t num_clusters) {
  return 0.02 * static_cast<double>(num_clusters);
}

}  // namespace

StatusOr<StreamingUnifiedMVSC> StreamingUnifiedMVSC::Create(
    const StreamingOptions& options) {
  if (options.window_capacity < 2) {
    return Status::InvalidArgument("window_capacity must be at least 2");
  }
  if (options.unified.num_clusters < 2) {
    return Status::InvalidArgument("streaming requires num_clusters >= 2");
  }
  if (options.update_max_iterations < 1) {
    return Status::InvalidArgument("update_max_iterations must be positive");
  }
  if (options.objective_drift_tolerance < 0.0 ||
      options.smoothness_drift_tolerance < 0.0) {
    return Status::InvalidArgument("drift tolerances must be nonnegative");
  }
  StreamingUnifiedMVSC s;
  s.options_ = options;
  return s;
}

std::size_t StreamingUnifiedMVSC::view_basis_dims(std::size_t view) const {
  UMVSC_CHECK(view < views_.size(), "view index out of range");
  return views_[view].anchor_map.cols();
}

Status StreamingUnifiedMVSC::CheckBatch(
    const data::MultiViewDataset& batch) const {
  if (batch.NumSamples() == 0) {
    return Status::InvalidArgument("empty batch");
  }
  if (views_.empty()) return Status::OK();  // first batch fixes the schema
  if (batch.NumViews() != views_.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu views, the stream %zu", batch.NumViews(),
                  views_.size()));
  }
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (batch.views[v].cols() != views_[v].dim) {
      return Status::InvalidArgument(
          StrFormat("view %zu has %zu features, the stream %zu", v,
                    batch.views[v].cols(), views_[v].dim));
    }
  }
  return Status::OK();
}

void StreamingUnifiedMVSC::AppendRaw(const data::MultiViewDataset& batch) {
  if (views_.empty()) {
    views_.resize(batch.NumViews());
    for (std::size_t v = 0; v < views_.size(); ++v) {
      views_[v].dim = batch.views[v].cols();
    }
  }
  const std::size_t b = batch.NumSamples();
  for (std::size_t v = 0; v < views_.size(); ++v) {
    const la::Matrix& x = batch.views[v];
    views_[v].raw.insert(views_[v].raw.end(), x.data(),
                         x.data() + b * views_[v].dim);
  }
  rows_ += b;
}

void StreamingUnifiedMVSC::ExtendRows(std::size_t first_row) {
  const std::size_t s = options_.unified.anchors.anchor_neighbors;
  for (ViewState& view : views_) {
    const std::size_t d = view.dim;
    const std::size_t m = view.anchors.rows();
    const std::size_t k = view.anchor_map.cols();
    std::vector<double> x(d), d2(m), zw(s);
    std::vector<std::size_t> zc(s);
    for (std::size_t i = first_row; i < rows_; ++i) {
      // Serving row rule (mvsc/anchor_assign.h): standardize → blocked
      // distances → s-sparse self-tuning row → u = z·anchor_map in
      // ascending anchor order. Bitwise equal to the batched training path.
      data::ApplyStandardizationRow(view.raw.data() + (head_ + i) * d, d,
                                    view.feature_means, view.feature_inv_stds,
                                    x.data());
      const double nx = mvsc::assign::RowSquaredNorm(x.data(), d);
      for (std::size_t j = 0; j < m; ++j) {
        const double dot =
            mvsc::assign::BlockedDot(x.data(), view.anchors.RowPtr(j), d);
        d2[j] = mvsc::assign::SquaredFromDot(nx, view.anchor_norms[j], dot);
      }
      mvsc::assign::SelectAnchorRow(d2.data(), m, s, zc.data(), zw.data());
      view.z_cols.insert(view.z_cols.end(), zc.begin(), zc.end());
      view.z_vals.insert(view.z_vals.end(), zw.begin(), zw.end());
      const std::size_t u_at = view.u.size();
      view.u.resize(u_at + k, 0.0);
      double* u_row = view.u.data() + u_at;
      for (std::size_t t = 0; t < s; ++t) {
        const double* map_row = view.anchor_map.RowPtr(zc[t]);
        for (std::size_t j = 0; j < k; ++j) u_row[j] += zw[t] * map_row[j];
      }
    }
  }
}

void StreamingUnifiedMVSC::Evict(std::size_t count) {
  head_ += count;
  rows_ -= count;
  if (head_ == 0 || head_ < rows_) return;
  // Dead space reached the live window: compact every flat array by its own
  // stride (amortized O(1) per ingested row).
  CompactWindow();
}

void StreamingUnifiedMVSC::CompactWindow() {
  if (head_ == 0) return;
  for (ViewState& view : views_) {
    auto drop = [&](auto& vec, std::size_t stride) {
      const std::size_t len = std::min(head_ * stride, vec.size());
      vec.erase(vec.begin(), vec.begin() + static_cast<std::ptrdiff_t>(len));
    };
    drop(view.raw, view.dim);
    drop(view.z_cols, options_.unified.anchors.anchor_neighbors);
    drop(view.z_vals, options_.unified.anchors.anchor_neighbors);
    drop(view.u, view.anchor_map.cols());
  }
  head_ = 0;
}

std::size_t StreamingUnifiedMVSC::CoveredModelRows() const {
  if (views_.empty()) return 0;
  // All model arrays append in lockstep (ExtendRows), so any one of them —
  // z_cols, with its window-invariant stride s — is the coverage truth.
  return views_[0].z_cols.size() / options_.unified.anchors.anchor_neighbors;
}

Status StreamingUnifiedMVSC::SolveWindow(
    const mvsc::UnifiedOptions& solve_options, bool warm, bool polish,
    StreamingUpdateResult* out) {
  const std::size_t c = solve_options.num_clusters;
  const std::size_t s = options_.unified.anchors.anchor_neighbors;
  const std::size_t num_views = views_.size();

  // Joint basis over the window from the flat per-view embedding rows.
  std::size_t p_full = 0;
  for (const ViewState& view : views_) p_full += view.anchor_map.cols();
  la::Matrix concat(rows_, p_full);
  std::size_t col0 = 0;
  for (const ViewState& view : views_) {
    const std::size_t k = view.anchor_map.cols();
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* src = view.u.data() + (head_ + i) * k;
      std::copy(src, src + k, concat.RowPtr(i) + col0);
    }
    col0 += k;
  }
  la::Matrix mix;
  StatusOr<la::Matrix> basis_or =
      mvsc::JointOrthonormalBasis(concat, c, &mix);
  if (!basis_or.ok()) return basis_or.status();
  const la::Matrix basis = std::move(*basis_or);

  // Reduced Laplacians H_v = BᵀB − E_vᵀE_v over the window's Ẑ rows —
  // exactly the batch path's compression, built from the flat row storage
  // instead of a freshly assembled CSR. The degree normalization Λ is the
  // CURRENT window's column masses (recomputed in O(n·s) each update):
  // frozen solve-time masses would let ‖ẐẐᵀ‖ exceed 1 as the window grows
  // or shifts, driving H_v indefinite and the alternation into runaway
  // negative directions.
  const la::Matrix btb = la::Gram(basis);
  std::vector<la::CsrMatrix> reduced(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    const ViewState& view = views_[v];
    const std::size_t m = view.anchors.rows();
    std::vector<double> inv_sqrt_mass(m, 0.0);
    for (std::size_t e = head_ * s; e < (head_ + rows_) * s; ++e) {
      inv_sqrt_mass[view.z_cols[e]] += view.z_vals[e];
    }
    for (std::size_t j = 0; j < m; ++j) {
      inv_sqrt_mass[j] =
          inv_sqrt_mass[j] > 0.0 ? 1.0 / std::sqrt(inv_sqrt_mass[j]) : 0.0;
    }
    std::vector<std::size_t> offsets(rows_ + 1);
    for (std::size_t i = 0; i <= rows_; ++i) offsets[i] = i * s;
    std::vector<std::size_t> cols(view.z_cols.begin() + head_ * s,
                                  view.z_cols.begin() + (head_ + rows_) * s);
    std::vector<double> vals(rows_ * s);
    for (std::size_t e = 0; e < rows_ * s; ++e) {
      vals[e] = view.z_vals[head_ * s + e] * inv_sqrt_mass[cols[e]];
    }
    const la::CsrMatrix zhat =
        la::CsrMatrix::FromParts(rows_, view.anchors.rows(), std::move(offsets),
                                 std::move(cols), std::move(vals));
    const la::Matrix e = zhat.Transposed().Multiply(basis);
    la::Matrix h = la::Add(btb, la::Gram(e), -1.0);
    h.Symmetrize();
    reduced[v] = la::CsrMatrix::FromDense(h);
  }

  // Warm payload: carried F rows are concat·extend_ for EVERY window row
  // (survivors by construction — B·G = concat·mix·G — and fresh rows by the
  // same formula, which is exactly the out-of-sample extension of the
  // previous solve), projected into the new basis as the Lanczos seed.
  mvsc::ReducedWarmStart warm_state;
  mvsc::ReducedSolveControls controls;
  controls.polish = polish;
  if (warm && extend_.rows() == p_full && extend_.cols() == c) {
    const la::Matrix f_warm = la::MatMul(concat, extend_);
    warm_state.g = la::MatTMul(basis, f_warm);
    warm_state.rotation = rotation_;
    warm_state.weight_coefficients = weight_coefficients_;
    controls.warm = &warm_state;
  }

  mvsc::UnifiedResult ures;
  StatusOr<mvsc::ReducedSolveState> state = mvsc::SolveReducedAlternation(
      reduced, basis, solve_options, controls, &ures);
  if (!state.ok()) return state.status();

  extend_ = la::MatMul(mix, state->g);
  rotation_ = state->rotation;
  weight_coefficients_ = state->weight_coefficients;
  labels_ = std::move(ures.labels);

  out->labels = labels_;
  out->window_size = rows_;
  out->objective = state->objective;
  out->view_smoothness = state->smoothness;
  out->view_weights = ures.view_weights;
  out->lanczos_matvecs += ures.lanczos_matvecs;
  return Status::OK();
}

Status StreamingUnifiedMVSC::FullResolve(const std::string& reason,
                                         StreamingUpdateResult* out) {
  exec::JobExecutor* executor = options_.executor;
  if (executor == nullptr || executor->OnWorkerThread()) {
    // No substrate (or already on it): solve on the calling thread with
    // the plain serial hooks.
    return FullResolveNow(reason, out, mvsc::SolveHooks());
  }
  // Submit as a background job: tenant fits queued as foreground keep
  // priority, and the solve picks up the worker's scratch plus the
  // cross-job batcher. Ingest's caller blocks on the handle, so `this`,
  // `reason`, and `out` safely outlive the job.
  exec::JobSpec spec;
  spec.name = "stream-full-resolve";
  spec.background = true;
  spec.thread_budget = options_.resolve_thread_budget;
  spec.work = [this, &reason, out](exec::JobContext& context) -> Status {
    return FullResolveNow(reason, out, context.hooks());
  };
  return executor->Submit(std::move(spec)).Await();
}

Status StreamingUnifiedMVSC::FullResolveNow(const std::string& reason,
                                            StreamingUpdateResult* out,
                                            const mvsc::SolveHooks& hooks) {
  // Compact so the flat arrays and the matrices built from them share row 0.
  CompactWindow();

  const mvsc::UnifiedOptions& uopts = options_.unified;
  const std::size_t c = uopts.num_clusters;
  const std::size_t m = uopts.anchors.num_anchors;
  const std::size_t s = uopts.anchors.anchor_neighbors;
  // basis_per_view=0 resolves against the CURRENT cluster count, here and
  // nowhere else — a cluster-count change flows into the next full solve
  // instead of serving a stale cached dimension.
  const std::size_t per_view = uopts.anchors.basis_per_view > 0
                                   ? uopts.anchors.basis_per_view
                                   : c + 2;
  const std::size_t k_view = std::min(per_view, m);
  const bool reselect = options_.reselect_anchors_on_resolve || !model_ready_;

  // Ingest's full path appends raw rows WITHOUT extending the frozen model
  // (ExtendRows is skipped — a re-selecting re-solve would throw the rows
  // away). A frozen-anchor re-solve reads the flat z rows back, so bring
  // the model arrays up to the window first.
  if (!reselect && CoveredModelRows() < rows_) {
    ExtendRows(CoveredModelRows());
  }

  for (std::size_t v = 0; v < views_.size(); ++v) {
    ViewState& view = views_[v];
    la::Matrix x(rows_, view.dim);
    std::copy(view.raw.begin(), view.raw.begin() + rows_ * view.dim,
              x.data());

    la::CsrMatrix z;
    if (reselect) {
      data::ColumnStandardization(x, &view.feature_means,
                                  &view.feature_inv_stds);
      data::ApplyStandardizationInPlace(x, view.feature_means,
                                        view.feature_inv_stds);
      graph::AnchorOptions aopts;
      aopts.num_anchors = m;
      aopts.selection = uopts.anchors.selection;
      aopts.seed = uopts.seed + 211 * (v + 1) + 10007 * full_resolves_;
      StatusOr<la::Matrix> anchors = graph::SelectAnchors(x, aopts);
      if (!anchors.ok()) return anchors.status();
      view.anchors = std::move(*anchors);

      graph::AnchorGraphOptions gopts;
      gopts.anchor_neighbors = s;
      gopts.tile_rows = uopts.anchors.tile_rows;
      StatusOr<la::CsrMatrix> z_or =
          graph::BuildAnchorAffinity(x, view.anchors, gopts);
      if (!z_or.ok()) return z_or.status();
      z = std::move(*z_or);
      for (std::size_t i = 0; i < rows_; ++i) {
        if (z.row_offsets()[i + 1] - z.row_offsets()[i] != s) {
          return Status::Internal(
              "anchor affinity row is not uniformly s-sparse");
        }
      }
      view.z_cols.assign(z.col_indices().begin(), z.col_indices().end());
      view.z_vals.assign(z.values().begin(), z.values().end());
    } else {
      // Keep the frozen anchors/standardization: rebuild the window CSR
      // from the stored rows and refresh only the spectral model.
      std::vector<std::size_t> offsets(rows_ + 1);
      for (std::size_t i = 0; i <= rows_; ++i) offsets[i] = i * s;
      z = la::CsrMatrix::FromParts(
          rows_, m, std::move(offsets),
          std::vector<std::size_t>(view.z_cols.begin(),
                                   view.z_cols.begin() + rows_ * s),
          std::vector<double>(view.z_vals.begin(),
                              view.z_vals.begin() + rows_ * s));
    }

    view.anchor_norms = la::Vector(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      view.anchor_norms[j] =
          mvsc::assign::RowSquaredNorm(view.anchors.RowPtr(j), view.dim);
    }

    cluster::AnchorEmbeddingOptions eopts;
    eopts.dims = k_view;
    eopts.mode = uopts.block_lanczos;
    eopts.seed = uopts.seed + 17;
    eopts.matvec_count = &out->lanczos_matvecs;
    StatusOr<cluster::AnchorEmbeddingResult> emb =
        cluster::AnchorSpectralEmbedding(z, eopts);
    if (!emb.ok()) return emb.status();
    view.anchor_map = std::move(emb->anchor_map);
    // Stride off the artifact (a truncated eigensolve can return fewer
    // than k_view directions; anchor_map.cols() is always the truth).
    view.u.assign(
        emb->embedding.data(),
        emb->embedding.data() + rows_ * emb->embedding.cols());
  }

  mvsc::UnifiedOptions solve_opts = uopts;
  solve_opts.hooks = hooks;
  UMVSC_RETURN_IF_ERROR(
      SolveWindow(solve_opts, /*warm=*/false, /*polish=*/true, out));
  baseline_objective_ = out->objective;
  baseline_smoothness_ = out->view_smoothness;
  model_ready_ = true;
  pending_full_resolve_ = false;
  pending_reason_.clear();
  ++full_resolves_;
  out->full_resolve = true;
  out->resolve_reason = reason;
  return Status::OK();
}

Status StreamingUnifiedMVSC::IncrementalUpdate(StreamingUpdateResult* out) {
  mvsc::UnifiedOptions upd = options_.unified;
  bool warm = false;
  bool polish = true;
  if (options_.warm_updates) {
    upd.init_alternations = options_.update_init_alternations;
    upd.max_iterations = options_.update_max_iterations;
    warm = true;
    polish = false;
  }
  UMVSC_RETURN_IF_ERROR(SolveWindow(upd, warm, polish, out));
  ++incremental_updates_;

  // Drift detection against the last full solve's baselines: relative
  // growth of the global objective, or of any per-view smoothness, past
  // its tolerance re-solves from scratch (optionally re-selecting anchors).
  std::string reason;
  const double floor = SmoothnessFloor(options_.unified.num_clusters);
  const double obj_base = std::max(std::fabs(baseline_objective_), floor);
  if (out->objective - baseline_objective_ >
      options_.objective_drift_tolerance * obj_base) {
    reason = "drift:objective";
  } else {
    for (std::size_t v = 0; v < out->view_smoothness.size(); ++v) {
      const double base =
          v < baseline_smoothness_.size() ? baseline_smoothness_[v] : 0.0;
      if (out->view_smoothness[v] - base >
          options_.smoothness_drift_tolerance * std::max(base, floor)) {
        reason = "drift:view-smoothness";
        break;
      }
    }
  }
  if (!reason.empty()) {
    return FullResolve(reason, out);
  }
  return Status::OK();
}

StatusOr<StreamingUpdateResult> StreamingUnifiedMVSC::Ingest(
    const data::MultiViewDataset& batch) {
  UMVSC_RETURN_IF_ERROR(batch.Validate());
  UMVSC_RETURN_IF_ERROR(CheckBatch(batch));
  const std::size_t b = batch.NumSamples();
  AppendRaw(batch);

  StreamingUpdateResult out;
  const bool full = !model_ready_ || options_.always_full_resolve ||
                    pending_full_resolve_;
  if (!full) ExtendRows(rows_ - b);
  const std::size_t evict =
      rows_ > options_.window_capacity ? rows_ - options_.window_capacity : 0;
  Evict(evict);
  out.evicted = evict;

  if (full) {
    std::string reason = "first-batch";
    if (model_ready_) {
      reason = pending_full_resolve_ ? pending_reason_ : "oracle";
    }
    UMVSC_RETURN_IF_ERROR(FullResolve(reason, &out));
  } else {
    UMVSC_RETURN_IF_ERROR(IncrementalUpdate(&out));
  }
  return out;
}

Status StreamingUnifiedMVSC::SetNumClusters(std::size_t num_clusters) {
  if (num_clusters < 2) {
    return Status::InvalidArgument("num_clusters must be at least 2");
  }
  if (num_clusters == options_.unified.num_clusters) return Status::OK();
  options_.unified.num_clusters = num_clusters;
  // The carried state is dimensioned for the old count; drop it and force
  // the next Ingest through a full re-solve, where every derived dimension
  // (including the basis_per_view=0 default) is re-resolved.
  extend_ = la::Matrix();
  rotation_ = la::Matrix();
  weight_coefficients_.clear();
  pending_full_resolve_ = true;
  pending_reason_ = "cluster-count-change";
  return Status::OK();
}

}  // namespace umvsc::stream
