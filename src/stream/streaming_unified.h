#ifndef UMVSC_STREAM_STREAMING_UNIFIED_H_
#define UMVSC_STREAM_STREAMING_UNIFIED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "mvsc/unified.h"

namespace umvsc::exec {
class JobExecutor;  // exec/executor.h — optional re-solve substrate
}  // namespace umvsc::exec

namespace umvsc::stream {

/// Options of the streaming unified solver. `unified` carries the model
/// hyperparameters (clusters, β/γ/weighting, anchor counts) exactly as the
/// batch anchor path reads them; `unified.anchors.enabled` is ignored —
/// streaming IS the anchor path.
struct StreamingOptions {
  mvsc::UnifiedOptions unified;

  /// Sliding-window length in points. Once full, every ingested point
  /// evicts the oldest one — the model always describes the most recent
  /// `window_capacity` points.
  std::size_t window_capacity = 5000;

  /// Incremental updates enter the reduced alternation warm (carried
  /// G/R/α seed, `update_*` budgets below, no polish). When false the same
  /// frozen-model incremental pipeline runs but every update enters COLD
  /// with the full batch budgets — the A/B baseline the warm-vs-cold
  /// parity test measures against.
  bool warm_updates = true;
  /// Init eigensolve↔weight alternations per warm update (the cold batch
  /// count comes from unified.init_alternations).
  std::size_t update_init_alternations = 1;
  /// Outer G/R/Y/α iterations per warm update.
  std::size_t update_max_iterations = 8;

  /// Drift triggers, checked after every incremental update against the
  /// baselines recorded at the last full solve. Relative growth of the
  /// unified objective beyond this tolerance forces a full re-solve (the
  /// baseline carries a small absolute floor scaled by the cluster count,
  /// so a near-zero objective — excellent clustering — cannot fire the
  /// detector on noise-width fluctuations).
  double objective_drift_tolerance = 0.25;
  /// Same, per view: growth of any smoothness h_v = Tr(GᵀH_vG) beyond this
  /// relative tolerance (with a small absolute floor on the baseline, so a
  /// view that was near-perfectly smooth cannot fire on noise) re-solves.
  double smoothness_drift_tolerance = 0.60;

  /// Full re-solves re-select anchors (and re-fit the standardization)
  /// from the raw features retained in the window. When false they keep
  /// the frozen anchors/standardization and only re-run the spectral
  /// embedding + cold alternation over the current window.
  bool reselect_anchors_on_resolve = true;

  /// Oracle mode: every Ingest runs a full cold re-solve (no incremental
  /// path at all). This is the reference the drift bench compares
  /// cumulative ARI and latency against.
  bool always_full_resolve = false;

  /// When set, full re-solves are submitted to this executor as BACKGROUND
  /// jobs (foreground tenant work keeps priority) instead of running on
  /// the Ingest thread directly: the solve inherits the executor substrate
  /// — per-worker scratch, the cross-job small-solve batcher, and the
  /// declared thread budget below — and Ingest blocks on the job handle,
  /// so semantics and results are unchanged (bitwise; the hooks contract).
  /// Calls that already run ON an executor worker solve inline to avoid
  /// submit-and-wait deadlock. Non-owning; must outlive this object.
  exec::JobExecutor* executor = nullptr;
  /// Thread budget the submitted re-solve job declares (0 = process
  /// default) — level 2 of the executor's two-level schedule.
  std::size_t resolve_thread_budget = 0;
};

/// What one Ingest did and what came out of it.
struct StreamingUpdateResult {
  /// Labels of every point currently in the window, oldest first.
  std::vector<std::size_t> labels;
  std::size_t window_size = 0;
  /// Points evicted from the front of the window by this batch.
  std::size_t evicted = 0;
  /// True when this Ingest ran a full re-solve (first batch, oracle mode,
  /// a pending cluster-count change, or a drift trigger — see reason).
  bool full_resolve = false;
  /// "", "first-batch", "oracle", "cluster-count-change",
  /// "drift:objective", or "drift:view-smoothness".
  std::string resolve_reason;
  /// Unified objective and per-view smoothness of the final state — the
  /// same quantities the drift detector monitors.
  double objective = 0.0;
  std::vector<double> view_smoothness;
  std::vector<double> view_weights;
  /// Lanczos operator applications spent by this Ingest (warm update plus
  /// the full re-solve when one triggered).
  std::size_t lanczos_matvecs = 0;
};

/// Streaming multi-view spectral clustering over a sliding window, built on
/// the SAME reduced-space machinery as the batch anchor path
/// (mvsc/reduced_solve.h):
///
///   full solve    select anchors + fit standardization from the window's
///                 raw features, embed (Z_v, anchor_map_v, masses), then the
///                 cold alternation — identical semantics to
///                 SolveUnifiedAnchors on the window.
///   incremental   the per-view model (anchors, standardization,
///                 anchor_map) stays FROZEN — the degree normalization is
///                 recomputed from the live window; each new point extends
///                 in O(s·k) per view through the serving row rule
///                 (mvsc/anchor_assign.h), window rows append/evict in
///                 O(1) amortized on flat uniform-stride arrays (no CSR
///                 rebuild), the joint basis and reduced Laplacians are
///                 recomputed over the window (linear in window size), and
///                 the alternation re-enters WARM from the carried
///                 (G, R, α) with small iteration budgets.
///   drift         the unified objective and per-view smoothness h_v are
///                 compared to their values at the last full solve; growth
///                 past the tolerances triggers a full re-solve (with
///                 anchor re-selection from the retained raw features).
///
/// Determinism: every kernel underneath is bitwise deterministic across
/// thread counts, the per-point extension follows the serving determinism
/// contract (docs/SERVING.md), and batch composition is caller-controlled —
/// so labels, objectives, and drift triggers are bitwise identical at every
/// UMVSC_NUM_THREADS setting.
class StreamingUnifiedMVSC {
 public:
  static StatusOr<StreamingUnifiedMVSC> Create(const StreamingOptions& options);

  /// Ingests one mini-batch (same views/dims on every call). Appends the
  /// batch to the window, evicts overflow, and re-solves — incrementally,
  /// or fully when this is the first batch / oracle mode / a trigger fired.
  StatusOr<StreamingUpdateResult> Ingest(const data::MultiViewDataset& batch);

  /// Changes the cluster count for all subsequent batches. Forces a full
  /// re-solve on the next Ingest; every derived dimension — including the
  /// basis_per_view=0 default resolution (num_clusters + 2) — is re-derived
  /// there from the new count, never served from a stale cache.
  Status SetNumClusters(std::size_t num_clusters);

  std::size_t window_size() const { return rows_; }
  std::size_t full_resolves() const { return full_resolves_; }
  std::size_t incremental_updates() const { return incremental_updates_; }
  const std::vector<std::size_t>& window_labels() const { return labels_; }
  /// Reduced dims of view v in the CURRENT frozen model — read off the
  /// anchor_map artifact itself (its column count), so it can never go
  /// stale relative to what the solver actually uses.
  std::size_t view_basis_dims(std::size_t view) const;
  const StreamingOptions& options() const { return options_; }

 private:
  StreamingUnifiedMVSC() = default;

  /// Frozen per-view model plus that view's slice of the window, stored as
  /// flat arrays with one uniform stride per array so eviction is a head
  /// advance and appending is a push_back — never a CSR rebuild.
  struct ViewState {
    std::size_t dim = 0;             ///< raw feature count (fixed at batch 1)
    la::Vector feature_means;        ///< frozen z-scoring map
    la::Vector feature_inv_stds;
    la::Matrix anchors;              ///< m × dim, standardized space
    la::Vector anchor_norms;         ///< ‖a_j‖² per anchor (serving order)
    la::Matrix anchor_map;           ///< m × k_v out-of-sample extension
    std::vector<double> raw;         ///< stride dim — RAW rows (for re-solve)
    std::vector<std::size_t> z_cols; ///< stride s — anchor row indices
    std::vector<double> z_vals;      ///< stride s — anchor row weights
    std::vector<double> u;           ///< stride k_v — embedding rows
  };

  Status CheckBatch(const data::MultiViewDataset& batch) const;
  void AppendRaw(const data::MultiViewDataset& batch);
  /// Extends the frozen model to rows [first_row, rows_) of the window:
  /// standardize → serving z row → u = z·anchor_map, appended flat.
  void ExtendRows(std::size_t first_row);
  void Evict(std::size_t count);
  /// Erases the dead head_ rows from every flat array and resets head_ to 0.
  /// Each erase is clamped to the array's actual length: on Ingest's full
  /// path the model arrays (z_cols/z_vals/u) lag `raw` by the just-appended
  /// batch (ExtendRows is skipped there), so head_ rows may exceed what a
  /// lagging array holds.
  void CompactWindow();
  /// Rows of the window currently covered by the flat model arrays
  /// (z_cols/z_vals/u), measured from the front of the storage including
  /// head_. Equals head_ + rows_ except between a full-path Ingest append
  /// and the FullResolve that refreshes the model.
  std::size_t CoveredModelRows() const;
  /// Basis + reduced Laplacians over the current window from the flat
  /// storage; then one reduced alternation. `warm` enters from the carried
  /// (G, R, α); `polish` runs the final (Y, R) re-search.
  Status SolveWindow(const mvsc::UnifiedOptions& solve_options, bool warm,
                     bool polish, StreamingUpdateResult* out);
  /// Dispatch wrapper: runs FullResolveNow inline, or as a background
  /// executor job (options_.executor) whose handle is awaited — identical
  /// results either way.
  Status FullResolve(const std::string& reason, StreamingUpdateResult* out);
  Status FullResolveNow(const std::string& reason, StreamingUpdateResult* out,
                        const mvsc::SolveHooks& hooks);
  Status IncrementalUpdate(StreamingUpdateResult* out);

  StreamingOptions options_;
  std::vector<ViewState> views_;
  std::size_t head_ = 0;  ///< front offset (rows) shared by all flat arrays
  std::size_t rows_ = 0;  ///< live rows in the window
  bool model_ready_ = false;
  bool pending_full_resolve_ = false;
  std::string pending_reason_;
  std::size_t full_resolves_ = 0;
  std::size_t incremental_updates_ = 0;

  // Carried state of the last solve (the warm-start payload) and the drift
  // baselines of the last FULL solve.
  la::Matrix extend_;    ///< p_full × c: F row = concat row · extend_
  la::Matrix rotation_;  ///< c × c
  std::vector<double> weight_coefficients_;
  std::vector<std::size_t> labels_;
  double baseline_objective_ = 0.0;
  std::vector<double> baseline_smoothness_;
};

}  // namespace umvsc::stream

#endif  // UMVSC_STREAM_STREAMING_UNIFIED_H_
