#ifndef UMVSC_COMMON_STRINGS_H_
#define UMVSC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace umvsc {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a double; returns false on malformed or trailing input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed integer; returns false on malformed or trailing input.
bool ParseInt(std::string_view text, long long* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace umvsc

#endif  // UMVSC_COMMON_STRINGS_H_
