#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace umvsc {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  const char* ws = " \t\r\n\v\f";
  std::size_t begin = text.find_first_not_of(ws);
  if (begin == std::string_view::npos) return {};
  std::size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt(std::string_view text, long long* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace umvsc
