#ifndef UMVSC_COMMON_PARALLEL_H_
#define UMVSC_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace umvsc {

/// Deterministic shared-memory parallelism for the hot kernels.
///
/// Design contract (see docs/THREADING.md for the full statement):
///  * Work is split by STATIC CONTIGUOUS PARTITIONING only: a range
///    [begin, end) is cut into fixed-size chunks of `grain` iterations, and
///    each participating thread executes a contiguous run of whole chunks.
///    No work stealing, no dynamic load balancing.
///  * The chunk grid depends only on (end − begin, grain) — NEVER on the
///    thread count — so every floating-point reduction is combined in an
///    order that is bitwise identical whether the code runs on 1, 2, or 64
///    threads.
///  * The pool is lazily created on first use and sized by the
///    UMVSC_NUM_THREADS environment variable (default: hardware
///    concurrency); SetDefaultNumThreads overrides it at runtime and every
///    entry point also accepts a per-call override.
///  * Nested parallel regions execute serially on the calling thread, so
///    composed kernels (e.g. per-view fan-out around row-parallel GEMMs)
///    never deadlock and never oversubscribe.

/// Hardware concurrency as reported by the OS, floored at 1.
std::size_t HardwareThreads();

/// The number of threads parallel regions use when no per-call override is
/// given. Resolution order: SetDefaultNumThreads value (if nonzero) →
/// UMVSC_NUM_THREADS environment variable (read once, on first use) →
/// HardwareThreads(). Always ≥ 1.
std::size_t DefaultNumThreads();

/// Overrides DefaultNumThreads() for the whole process; pass 0 to reset to
/// the environment/hardware default. Values are clamped to [1, 256].
/// Thread-safe, but do not call concurrently with running parallel regions
/// if you need the new value to apply to them.
void SetDefaultNumThreads(std::size_t num_threads);

/// Restores the previous default thread count on destruction. Handy for
/// tests and benchmarks that sweep thread counts.
///
/// NOTE: this mutates PROCESS-GLOBAL state — every thread without a
/// ParallelContext sees the new default. Code that runs concurrent
/// independent solves (the exec/ job executor) must NOT use it to give one
/// solve a thread budget: the budget would leak into every other tenant's
/// solve. Install a per-thread ScopedParallelContext instead.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(std::size_t num_threads);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  std::size_t previous_;
};

/// Per-thread parallelism budget — the non-leaking alternative to
/// SetDefaultNumThreads for multi-tenant execution. A thread that installs a
/// ParallelContext (via ScopedParallelContext) caps every parallel region it
/// enters at `num_threads` participating threads WITHOUT touching process
/// state: two jobs running on two executor workers each see only their own
/// budget. Resolution order inside ParallelFor/ParallelReduce:
///   explicit per-call num_threads → current thread's ParallelContext →
///   SetDefaultNumThreads / UMVSC_NUM_THREADS / hardware default.
struct ParallelContext {
  /// Maximum threads parallel regions on this thread may use (the calling
  /// thread plus pool workers). 0 falls through to the process default;
  /// 1 makes every region run serially on the calling thread.
  std::size_t num_threads = 1;
};

/// The context governing parallel regions on the calling thread, or nullptr
/// when none is installed (process defaults apply).
const ParallelContext* CurrentParallelContext();

/// RAII installer of a per-thread ParallelContext. The two-level scheduling
/// primitive of the job executor: the executor installs a job's thread
/// budget on the worker running it, so a nested ParallelFor inside the job
/// partitions only that budget instead of grabbing the whole pool (or
/// degrading to serial). Pass nullptr to SUSPEND any installed context for
/// the scope — used by once-per-process calibration (la::EigensolvePolicy)
/// so a job's budget cannot skew measurements that outlive the job.
/// Contexts nest per thread; each scope restores its predecessor.
class ScopedParallelContext {
 public:
  explicit ScopedParallelContext(const ParallelContext& context);
  explicit ScopedParallelContext(std::nullptr_t);
  ~ScopedParallelContext();
  ScopedParallelContext(const ScopedParallelContext&) = delete;
  ScopedParallelContext& operator=(const ScopedParallelContext&) = delete;

 private:
  ParallelContext value_;
  const ParallelContext* previous_;
  bool installed_;
};

/// Runs `fn(chunk_begin, chunk_end)` over a static partition of
/// [begin, end). The range is cut into ⌈(end−begin)/grain⌉ chunks of `grain`
/// iterations (the last chunk may be short) and each participating thread
/// receives one contiguous run of chunks, so chunk boundaries are always
/// multiples of `grain` from `begin`. `fn` must write only to locations
/// derived from its own index range; under that condition the result is
/// bitwise identical for every thread count.
///
/// `grain` = 0 is treated as 1. If the range is empty, `fn` is never
/// called. If the effective thread count is 1, there is a single chunk, or
/// the call is nested inside another parallel region, `fn(begin, end)` runs
/// on the calling thread with no synchronization.
///
/// `num_threads` = 0 uses the calling thread's ParallelContext budget when
/// one is installed, else DefaultNumThreads(). Exceptions thrown by `fn`
/// are caught, the first one is rethrown on the calling thread after all
/// chunks finish; the library itself never throws from `fn` (it uses
/// Status/UMVSC_CHECK), so this matters only for user callbacks.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t num_threads = 0);

/// Deterministic parallel reduction. The range is cut into the same
/// grain-defined chunk grid as ParallelFor; `map_fn(chunk_begin, chunk_end)`
/// produces one partial value per chunk (computed in ascending iteration
/// order within the chunk), and the partials are then combined on the
/// calling thread by a FIXED binary tree over the chunk indices
/// (stride-doubling pairwise combination). Because both the chunk grid and
/// the tree shape depend only on (end − begin, grain), the result — down to
/// floating-point rounding — is identical for every thread count, including
/// a plain serial run of the same call.
///
/// Note the determinism contract is "identical across thread counts for the
/// same grain", not "identical to a straight-line serial loop": the tree
/// association differs from left-to-right accumulation, so switching a
/// kernel from a raw loop to ParallelReduce may change its last few bits
/// once — after which the value is stable everywhere.
///
/// Returns `identity` for an empty range. `combine` must be associative up
/// to the reordering you are willing to accept; it is applied only on the
/// calling thread.
template <typename T>
T ParallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
                 T identity,
                 const std::function<T(std::size_t, std::size_t)>& map_fn,
                 const std::function<T(const T&, const T&)>& combine,
                 std::size_t num_threads = 0) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  const std::size_t num_chunks = (range + grain - 1) / grain;
  std::vector<T> partials(num_chunks, identity);
  ParallelFor(
      begin, end, grain,
      [&](std::size_t lo, std::size_t hi) {
        // The span is a whole number of chunks; evaluate each one
        // independently so the partials are chunk-exact regardless of how
        // many chunks this thread received.
        for (std::size_t c0 = lo; c0 < hi; c0 += grain) {
          const std::size_t c1 = std::min(c0 + grain, hi);
          partials[(c0 - begin) / grain] = map_fn(c0, c1);
        }
      },
      num_threads);
  // Fixed stride-doubling tree: pairs (0,1), (2,3), … then (0,2), (4,6), …
  // The shape depends only on num_chunks.
  for (std::size_t stride = 1; stride < num_chunks; stride *= 2) {
    for (std::size_t i = 0; i + stride < num_chunks; i += 2 * stride) {
      partials[i] = combine(partials[i], partials[i + stride]);
    }
  }
  return partials[0];
}

/// True while the calling thread is executing inside a parallel region
/// (worker or participating caller). Nested ParallelFor/ParallelReduce
/// calls detect this and degrade to serial execution.
bool InParallelRegion();

}  // namespace umvsc

#endif  // UMVSC_COMMON_PARALLEL_H_
