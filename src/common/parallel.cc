#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace umvsc {

namespace {

// Upper bound on the pool size: generous enough for any machine this
// library targets while keeping a typo in UMVSC_NUM_THREADS from spawning
// millions of threads.
constexpr std::size_t kMaxThreads = 256;

std::size_t ClampThreads(std::size_t n) {
  if (n < 1) return 1;
  return std::min(n, kMaxThreads);
}

// Nonzero while a SetDefaultNumThreads override is active.
std::atomic<std::size_t> g_thread_override{0};

// Marks threads currently executing chunks of a parallel region.
thread_local bool tl_in_parallel = false;

// The calling thread's installed ParallelContext (null = process defaults).
thread_local const ParallelContext* tl_parallel_context = nullptr;

// A single shared pool of blocked workers. Jobs are broadcast: every worker
// wakes on a generation bump, claims spans from an atomic cursor until none
// remain, and the last one out signals completion. Workers are created
// lazily and only ever added, never destroyed before process exit.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers may
    return *pool;                                // outlive static dtors
  }

  // Executes fn(span) for span in [0, num_spans) across the caller plus up
  // to num_spans - 1 workers. Rethrows the first exception thrown by fn.
  void Run(std::size_t num_spans,
           const std::function<void(std::size_t)>& fn) {
    // One job at a time: a second user thread entering a parallel region
    // queues here and reuses the same workers once the first job drains.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    EnsureWorkers(num_spans - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_fn_ = &fn;
      job_spans_ = num_spans;
      next_span_.store(0, std::memory_order_relaxed);
      active_workers_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    ExecuteSpans(fn, num_spans);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_fn_ = nullptr;
    if (first_error_) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(std::size_t wanted) {
    wanted = std::min(wanted, kMaxThreads - 1);
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < wanted) {
      const std::uint64_t birth_generation = generation_;
      workers_.emplace_back(
          [this, birth_generation] { WorkerLoop(birth_generation); });
    }
  }

  void WorkerLoop(std::uint64_t seen_generation) {
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t spans = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return generation_ != seen_generation; });
        seen_generation = generation_;
        fn = job_fn_;
        spans = job_spans_;
      }
      if (fn != nullptr) ExecuteSpans(*fn, spans);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--active_workers_ == 0) done_cv_.notify_one();
      }
    }
  }

  void ExecuteSpans(const std::function<void(std::size_t)>& fn,
                    std::size_t num_spans) {
    tl_in_parallel = true;
    for (;;) {
      const std::size_t span =
          next_span_.fetch_add(1, std::memory_order_relaxed);
      if (span >= num_spans) break;
      try {
        fn(span);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    tl_in_parallel = false;
  }

  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_spans_ = 0;
  std::atomic<std::size_t> next_span_{0};
  std::size_t active_workers_ = 0;
  std::exception_ptr first_error_;
};

std::size_t EnvNumThreads() {
  static const std::size_t value = [] {
    const char* env = std::getenv("UMVSC_NUM_THREADS");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        return ClampThreads(static_cast<std::size_t>(parsed));
      }
    }
    return HardwareThreads();
  }();
  return value;
}

}  // namespace

std::size_t HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : ClampThreads(hc);
}

std::size_t DefaultNumThreads() {
  const std::size_t override_value =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_value != 0) return override_value;
  return EnvNumThreads();
}

void SetDefaultNumThreads(std::size_t num_threads) {
  g_thread_override.store(num_threads == 0 ? 0 : ClampThreads(num_threads),
                          std::memory_order_relaxed);
}

ScopedNumThreads::ScopedNumThreads(std::size_t num_threads)
    : previous_(g_thread_override.load(std::memory_order_relaxed)) {
  SetDefaultNumThreads(num_threads);
}

ScopedNumThreads::~ScopedNumThreads() {
  g_thread_override.store(previous_, std::memory_order_relaxed);
}

const ParallelContext* CurrentParallelContext() { return tl_parallel_context; }

ScopedParallelContext::ScopedParallelContext(const ParallelContext& context)
    : value_(context), previous_(tl_parallel_context), installed_(true) {
  tl_parallel_context = &value_;
}

ScopedParallelContext::ScopedParallelContext(std::nullptr_t)
    : value_(), previous_(tl_parallel_context), installed_(false) {
  tl_parallel_context = nullptr;
}

ScopedParallelContext::~ScopedParallelContext() {
  tl_parallel_context = previous_;
}

bool InParallelRegion() { return tl_in_parallel; }

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t num_threads) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  const std::size_t num_chunks = (range + grain - 1) / grain;
  std::size_t threads;
  if (num_threads != 0) {
    threads = ClampThreads(num_threads);
  } else if (tl_parallel_context != nullptr &&
             tl_parallel_context->num_threads != 0) {
    threads = ClampThreads(tl_parallel_context->num_threads);
  } else {
    threads = DefaultNumThreads();
  }
  threads = std::min(threads, num_chunks);
  if (threads <= 1 || tl_in_parallel) {
    fn(begin, end);
    return;
  }
  // Static contiguous partition: thread t gets chunks
  // [t·⌈chunks/threads⌉, …) — whole chunks only, so every span boundary is
  // begin + multiple·grain and kernels can rely on grain-aligned blocks.
  const std::size_t chunks_per_span = (num_chunks + threads - 1) / threads;
  const std::size_t num_spans = (num_chunks + chunks_per_span - 1) / chunks_per_span;
  ThreadPool::Global().Run(num_spans, [&](std::size_t span) {
    const std::size_t chunk_lo = span * chunks_per_span;
    const std::size_t chunk_hi = std::min(chunk_lo + chunks_per_span, num_chunks);
    const std::size_t lo = begin + chunk_lo * grain;
    const std::size_t hi = std::min(begin + chunk_hi * grain, end);
    if (lo < hi) fn(lo, hi);
  });
}

}  // namespace umvsc
