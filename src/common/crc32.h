#ifndef UMVSC_COMMON_CRC32_H_
#define UMVSC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace umvsc {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum of
/// zlib/gzip/PNG, used by the model serialization format to detect
/// corrupted or truncated sections. Table-driven, one byte per step.
///
/// `Crc32(data, len)` is the standard one-shot checksum ("123456789" →
/// 0xCBF43926). For streaming, thread the return value back in as `seed`:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(ab, na + nb).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace umvsc

#endif  // UMVSC_COMMON_CRC32_H_
