#ifndef UMVSC_COMMON_STATUS_H_
#define UMVSC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace umvsc {

/// Error categories used across the library. Modeled after the RocksDB /
/// absl::Status convention: operations whose failure depends on input data
/// report through Status instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed malformed or inconsistent input
  kFailedPrecondition,///< object state does not permit the operation
  kNotFound,          ///< a named resource (file, column, view) is missing
  kOutOfRange,        ///< index or parameter outside its valid range
  kNumericalError,    ///< an iterative numerical routine failed to converge
  kIoError,           ///< filesystem read/write failure
  kInternal,          ///< invariant violation that is a library bug
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
///
/// Usage:
/// ```
///   Status s = dataset.Validate();
///   if (!s.ok()) return s;
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. The value is accessible only
/// when `ok()`; accessing it otherwise aborts (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : payload_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : payload_(std::move(status)) {
    UMVSC_CHECK(!std::get<Status>(payload_).ok(),
                "StatusOr may not hold an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    UMVSC_CHECK(ok(), "StatusOr::value() called on error status");
    return std::get<T>(payload_);
  }
  T& value() & {
    UMVSC_CHECK(ok(), "StatusOr::value() called on error status");
    return std::get<T>(payload_);
  }
  T&& value() && {
    UMVSC_CHECK(ok(), "StatusOr::value() called on error status");
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define UMVSC_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::umvsc::Status _umvsc_status = (expr);      \
    if (!_umvsc_status.ok()) return _umvsc_status; \
  } while (false)

}  // namespace umvsc

#endif  // UMVSC_COMMON_STATUS_H_
