#include "common/crc32.h"

#include <array>

namespace umvsc {

namespace {

// 256-entry table for the reflected IEEE polynomial, built once at load.
std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const std::array<std::uint32_t, 256>& table = Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace umvsc
