#ifndef UMVSC_COMMON_RNG_H_
#define UMVSC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace umvsc {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the library takes an explicit
/// seed so that all experiments are bit-reproducible across runs.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can also be
/// plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` using SplitMix64, which
  /// guarantees a well-mixed non-zero state for any seed, including 0.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64 random bits.
  std::uint64_t operator()() { return Next(); }
  std::uint64_t Next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// bounded-rejection method.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation (sd >= 0).
  double Gaussian(double mean, double stddev);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Samples an index from the (unnormalized, nonnegative) weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t SampleDiscrete(const std::vector<double>& weights);

  /// Derives an independent child generator; used to hand one stream per
  /// restart/worker without correlating their sequences.
  Rng Split();

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace umvsc

#endif  // UMVSC_COMMON_RNG_H_
