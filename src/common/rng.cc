#include "common/rng.h"

#include <cmath>

namespace umvsc {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  UMVSC_CHECK(lo <= hi, "Uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  UMVSC_CHECK(n > 0, "UniformInt requires n > 0");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * scale;
  has_spare_gaussian_ = true;
  return u * scale;
}

double Rng::Gaussian(double mean, double stddev) {
  UMVSC_CHECK(stddev >= 0.0, "Gaussian stddev must be nonnegative");
  return mean + stddev * Gaussian();
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  UMVSC_CHECK(k <= n, "cannot sample more elements than the population size");
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    UMVSC_CHECK(w >= 0.0, "discrete sampling weights must be nonnegative");
    total += w;
  }
  UMVSC_CHECK(total > 0.0, "discrete sampling requires a positive weight");
  double r = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point underflow of the running sum: return the last positive.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace umvsc
