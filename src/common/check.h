#ifndef UMVSC_COMMON_CHECK_H_
#define UMVSC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace umvsc::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "UMVSC_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace umvsc::internal_check

/// Aborts with a diagnostic when `cond` is false. Use for programming errors
/// (precondition violations, broken invariants); data-dependent failures go
/// through umvsc::Status instead. Always on, including release builds — this
/// library favors loud failure over silent numerical garbage.
#define UMVSC_CHECK(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::umvsc::internal_check::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                      \
  } while (false)

/// Debug-only variant for hot inner loops (indexing checks etc.).
#ifdef NDEBUG
#define UMVSC_DCHECK(cond, msg) \
  do {                          \
  } while (false)
#else
#define UMVSC_DCHECK(cond, msg) UMVSC_CHECK(cond, msg)
#endif

#endif  // UMVSC_COMMON_CHECK_H_
