#ifndef UMVSC_CLUSTER_ROTATION_H_
#define UMVSC_CLUSTER_ROTATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::cluster {

/// Options for Yu–Shi spectral rotation / discretization.
struct RotationOptions {
  std::size_t max_iterations = 100;
  /// Stop when the discretization objective ‖Ŷ − F·R‖²_F improves by less
  /// than this (relative).
  double tolerance = 1e-9;
  /// Column-normalize the indicator to Ŷ = Y·(YᵀY)^{−1/2} before the
  /// Procrustes step (the scaled-indicator convention of Yu & Shi).
  bool scale_indicator = true;
  /// Random restarts over the initial rotation; best objective wins.
  std::size_t restarts = 5;
  std::uint64_t seed = 0;
};

/// Result of discretizing a continuous spectral embedding.
struct RotationResult {
  /// Hard labels, one per row of F.
  std::vector<std::size_t> labels;
  /// The binary indicator matrix (n × c, exactly one 1 per row).
  la::Matrix indicator;
  /// The learned orthogonal rotation (c × c).
  la::Matrix rotation;
  /// Final value of ‖Ŷ − F·R‖²_F.
  double objective = 0.0;
  std::size_t iterations = 0;
};

/// Converts a binary indicator matrix to per-row labels.
std::vector<std::size_t> IndicatorToLabels(const la::Matrix& y);

/// Builds the n × c binary indicator of a label vector.
la::Matrix LabelsToIndicator(const std::vector<std::size_t>& labels,
                             std::size_t num_clusters);

/// Column-normalized indicator Ŷ = Y·(YᵀY)^{−1/2} (columns of unit norm;
/// empty columns stay zero).
la::Matrix ScaledIndicator(const la::Matrix& y);

/// Yu–Shi discretization: alternately solve
///   Y ← argmin ‖Ŷ − F·R‖²  (row-wise argmax of F·R)
///   R ← argmin ‖Ŷ − F·R‖²  (orthogonal Procrustes on FᵀŶ)
/// until the objective stalls. F must have orthonormal (or at least
/// well-conditioned) columns; requires F.cols() >= 1.
StatusOr<RotationResult> DiscretizeEmbedding(const la::Matrix& f,
                                             const RotationOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_ROTATION_H_
