#ifndef UMVSC_CLUSTER_NYSTROM_H_
#define UMVSC_CLUSTER_NYSTROM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::cluster {

/// Options for Nyström-approximated spectral clustering.
struct NystromOptions {
  std::size_t num_clusters = 2;
  /// Landmark count m (uniform sample without replacement). Accuracy and
  /// cost both grow with m; m ≈ 5–20 × clusters is typical.
  std::size_t landmarks = 100;
  /// Gaussian bandwidth; 0 selects the deterministic landmark-pairs median:
  /// the LOWER median (index (count − 1)/2 after a full sort) of all
  /// m·(m−1)/2 pairwise landmark distances, zeros included, computed
  /// serially — the bandwidth is a pure function of the landmark set,
  /// identical at every thread count. When the median is zero (mostly
  /// coincident landmarks) the smallest positive distance substitutes.
  double sigma = 0.0;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of a Nyström spectral clustering run.
struct NystromResult {
  std::vector<std::size_t> labels;
  /// Approximate spectral embedding (n × k, orthonormal columns up to the
  /// Nyström approximation error).
  la::Matrix embedding;
  /// Approximate top eigenvalues of the normalized affinity (descending).
  la::Vector eigenvalues;
};

/// One-shot orthogonalized Nyström spectral clustering (Fowlkes, Belongie,
/// Chung & Malik, PAMI 2004): approximates the top eigenvectors of the
/// degree-normalized Gaussian affinity from an n × m slice instead of the
/// full n × n matrix — O(n·m² + m³) instead of O(n³), making spectral
/// clustering practical far beyond dense-eigensolver sizes.
///
/// Pipeline: sample m landmarks → C = kernel(all, landmarks), W =
/// kernel(landmarks, landmarks) → estimate degrees d̂ = C·W⁺·(Cᵀ·1) →
/// normalize → orthogonalize through S = W'^{−1/2}·C'ᵀC'·W'^{−1/2} →
/// embedding V = C'·W'^{−1/2}·U_S·Λ_S^{−1/2} → row-normalize → K-means.
/// Requires clusters <= landmarks < n.
StatusOr<NystromResult> NystromSpectralClustering(const la::Matrix& features,
                                                  const NystromOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_NYSTROM_H_
