#include "cluster/gpi.h"

#include <cmath>
#include <functional>
#include <limits>

#include "la/ops.h"
#include "la/svd.h"

namespace umvsc::cluster {

double GershgorinUpperBound(const la::Matrix& a) {
  UMVSC_CHECK(a.IsSquare(), "Gershgorin bound requires a square matrix");
  double bound = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double radius = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j != i) radius += std::fabs(a(i, j));
    }
    bound = std::max(bound, a(i, i) + radius);
  }
  return bound;
}

double GershgorinUpperBound(const la::CsrMatrix& a) {
  UMVSC_CHECK(a.rows() == a.cols(), "Gershgorin bound requires a square matrix");
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  double bound = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double diag = 0.0, radius = 0.0;
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      if (cols[k] == i) {
        diag += vals[k];
      } else {
        radius += std::fabs(vals[k]);
      }
    }
    bound = std::max(bound, diag + radius);
  }
  return bound;
}

namespace {

// Shared GPI loop over an abstract multiplication F ↦ A·F and quadratic
// trace F ↦ Tr(FᵀAF).
StatusOr<GpiResult> RunGpi(
    const std::function<la::Matrix(const la::Matrix&)>& multiply,
    const std::function<double(const la::Matrix&)>& quad_trace, double lambda,
    const la::Matrix& b, const la::Matrix& f0, const GpiOptions& options) {
  auto objective = [&](const la::Matrix& f) {
    return quad_trace(f) - 2.0 * la::TraceOfProduct(f, b);
  };

  GpiResult out;
  out.f = f0;
  double prev = objective(out.f);
  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // M = 2(λI − A)F + 2B.
    la::Matrix m = multiply(out.f);
    m.Scale(-1.0);
    m.Add(out.f, lambda);
    m.Add(b, 1.0);
    m.Scale(2.0);
    StatusOr<la::Matrix> next = la::StiefelProjection(m);
    if (!next.ok()) return next.status();
    out.f = std::move(*next);
    const double obj = objective(out.f);
    if (prev - obj <= options.tolerance * std::max(std::fabs(prev), 1.0)) {
      prev = std::min(prev, obj);
      ++iter;
      break;
    }
    prev = obj;
  }
  out.objective = prev;
  out.iterations = iter;
  return out;
}

Status ValidateGpiInputs(std::size_t n_a, const la::Matrix& b,
                         const la::Matrix& f0) {
  if (b.rows() != n_a || f0.rows() != n_a || f0.cols() != b.cols()) {
    return Status::InvalidArgument("GPI shape mismatch between A, B, F0");
  }
  if (la::OrthonormalityError(f0) > 1e-6) {
    return Status::InvalidArgument(
        "GPI warm start must have orthonormal columns");
  }
  return Status::OK();
}

}  // namespace

StatusOr<GpiResult> GeneralizedPowerIteration(const la::Matrix& a,
                                              const la::Matrix& b,
                                              const la::Matrix& f0,
                                              const GpiOptions& options) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("GPI requires a square A");
  }
  UMVSC_RETURN_IF_ERROR(ValidateGpiInputs(a.rows(), b, f0));
  // λ slightly above the Gershgorin bound keeps (λI − A) strictly PSD, which
  // the monotone-descent proof of GPI requires.
  const double lambda =
      GershgorinUpperBound(a) + 1e-6 * std::max(1.0, a.MaxAbs());
  return RunGpi([&a](const la::Matrix& f) { return la::MatMul(a, f); },
                [&a](const la::Matrix& f) { return la::QuadraticTrace(a, f); },
                lambda, b, f0, options);
}

StatusOr<GpiResult> GeneralizedPowerIteration(const la::CsrMatrix& a,
                                              const la::Matrix& b,
                                              const la::Matrix& f0,
                                              const GpiOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("GPI requires a square A");
  }
  UMVSC_RETURN_IF_ERROR(ValidateGpiInputs(a.rows(), b, f0));
  const double lambda = GershgorinUpperBound(a) + 1e-6;
  // a.Multiply(f) is the row-parallel cache-blocked SpMM — the GPI F-step
  // already runs panel-at-a-time, the same kernel the block eigensolver uses.
  return RunGpi([&a](const la::Matrix& f) { return a.Multiply(f); },
                [&a](const la::Matrix& f) { return la::QuadraticTrace(a, f); },
                lambda, b, f0, options);
}

}  // namespace umvsc::cluster
