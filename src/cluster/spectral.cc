#include "cluster/spectral.h"

#include <cmath>

#include "cluster/kmeans.h"
#include "la/lanczos.h"
#include "la/sym_eigen.h"

namespace umvsc::cluster {

StatusOr<la::Matrix> SpectralEmbedding(const la::Matrix& affinity,
                                       std::size_t k,
                                       graph::LaplacianKind kind,
                                       bool normalize_rows) {
  const std::size_t n = affinity.rows();
  if (k < 1 || k >= n) {
    return Status::InvalidArgument("SpectralEmbedding requires 1 <= k < n");
  }
  StatusOr<la::Matrix> lap = graph::Laplacian(affinity, kind);
  if (!lap.ok()) return lap.status();
  if (kind == graph::LaplacianKind::kRandomWalk) {
    // The random-walk Laplacian is not symmetric; use the similar symmetric
    // problem D^{1/2}·L_rw·D^{−1/2} = L_sym and de-normalize its vectors,
    // which yields the L_rw eigenvectors exactly.
    StatusOr<la::Matrix> lsym =
        graph::Laplacian(affinity, graph::LaplacianKind::kSymmetric);
    if (!lsym.ok()) return lsym.status();
    StatusOr<la::SymEigenResult> eig = la::SmallestEigenpairs(*lsym, k);
    if (!eig.ok()) return eig.status();
    la::Vector deg = graph::Degrees(affinity);
    la::Matrix f = eig->eigenvectors;
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 1.0;
      for (std::size_t j = 0; j < k; ++j) f(i, j) *= scale;
    }
    if (normalize_rows) {
      for (std::size_t i = 0; i < n; ++i) {
        double norm = 0.0;
        for (std::size_t j = 0; j < k; ++j) norm += f(i, j) * f(i, j);
        norm = std::sqrt(norm);
        if (norm > 0.0) {
          for (std::size_t j = 0; j < k; ++j) f(i, j) /= norm;
        }
      }
    }
    return f;
  }

  StatusOr<la::SymEigenResult> eig = la::SmallestEigenpairs(*lap, k);
  if (!eig.ok()) return eig.status();
  la::Matrix f = std::move(eig->eigenvectors);
  if (normalize_rows) {
    for (std::size_t i = 0; i < n; ++i) {
      double norm = 0.0;
      for (std::size_t j = 0; j < k; ++j) norm += f(i, j) * f(i, j);
      norm = std::sqrt(norm);
      if (norm > 0.0) {
        for (std::size_t j = 0; j < k; ++j) f(i, j) /= norm;
      }
    }
  }
  return f;
}

StatusOr<la::Matrix> SpectralEmbeddingSparse(const la::CsrMatrix& affinity,
                                             std::size_t k,
                                             bool normalize_rows,
                                             std::uint64_t seed) {
  const std::size_t n = affinity.rows();
  if (k < 1 || k >= n) {
    return Status::InvalidArgument(
        "SpectralEmbeddingSparse requires 1 <= k < n");
  }
  StatusOr<la::CsrMatrix> lap =
      graph::Laplacian(affinity, graph::LaplacianKind::kSymmetric);
  if (!lap.ok()) return lap.status();
  // The normalized Laplacian spectrum lies in [0, 2]; 2 + ε is a valid
  // complement bound for the smallest-eigenpair transform. The solver path
  // is picked per shape by the measured la::EigensolvePolicy: the block
  // solver iterates on n × k panels (one SpMM per application, in-panel
  // multiplicity capture) and wins at wide k, while the single-vector
  // solver's tridiagonal Rayleigh–Ritz wins at small k.
  la::LanczosOptions options;
  options.seed = seed;
  options.max_subspace = std::min(n, std::max<std::size_t>(12 * k + 100, 250));
  options.tolerance = 3e-6;
  StatusOr<la::SymEigenResult> eig =
      la::LanczosSmallestAuto(*lap, k, 2.0 + 1e-9, options);
  if (!eig.ok()) return eig.status();
  la::Matrix f = std::move(eig->eigenvectors);
  if (normalize_rows) {
    for (std::size_t i = 0; i < n; ++i) {
      double norm = 0.0;
      for (std::size_t j = 0; j < k; ++j) norm += f(i, j) * f(i, j);
      norm = std::sqrt(norm);
      if (norm > 0.0) {
        for (std::size_t j = 0; j < k; ++j) f(i, j) /= norm;
      }
    }
  }
  return f;
}

StatusOr<SpectralResult> SpectralClustering(const la::Matrix& affinity,
                                            const SpectralOptions& options) {
  StatusOr<la::Matrix> embedding =
      SpectralEmbedding(affinity, options.num_clusters, options.laplacian,
                        options.normalize_rows);
  if (!embedding.ok()) return embedding.status();

  KMeansOptions km;
  km.num_clusters = options.num_clusters;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  StatusOr<KMeansResult> clustered = KMeans(*embedding, km);
  if (!clustered.ok()) return clustered.status();

  SpectralResult out;
  out.labels = std::move(clustered->labels);
  out.embedding = std::move(*embedding);
  return out;
}

}  // namespace umvsc::cluster
