#ifndef UMVSC_CLUSTER_KMEANS_H_
#define UMVSC_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::cluster {

/// Options for Lloyd's K-means.
struct KMeansOptions {
  std::size_t num_clusters = 2;
  /// Lloyd iterations per restart.
  std::size_t max_iterations = 100;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-7;
  /// Independent k-means++ restarts; the best inertia wins.
  std::size_t restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of a K-means run.
struct KMeansResult {
  /// Cluster id in [0, k) per row of the input.
  std::vector<std::size_t> labels;
  /// k × d centroid matrix.
  la::Matrix centroids;
  /// Sum of squared distances to assigned centroids (the k-means objective).
  double inertia = 0.0;
  /// Lloyd iterations used by the winning restart.
  std::size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding, multiple restarts, and empty-
/// cluster repair (an emptied cluster is re-seeded at the point farthest
/// from its centroid). Requires 1 <= k <= n and at least one data row.
StatusOr<KMeansResult> KMeans(const la::Matrix& data,
                              const KMeansOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_KMEANS_H_
