#ifndef UMVSC_CLUSTER_GPI_H_
#define UMVSC_CLUSTER_GPI_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace umvsc::cluster {

/// Options for the Generalized Power Iteration Stiefel solver.
struct GpiOptions {
  std::size_t max_iterations = 200;
  /// Stop when the objective improves by less than this (relative).
  double tolerance = 1e-10;
};

/// Result of a GPI solve.
struct GpiResult {
  la::Matrix f;             ///< the optimizer, orthonormal columns
  double objective = 0.0;   ///< final Tr(FᵀAF) − 2·Tr(FᵀB)
  std::size_t iterations = 0;
};

/// Generalized Power Iteration (Nie, Zhang & Li, 2017) for the quadratic
/// problem on the Stiefel manifold:
///
///   min_F  Tr(Fᵀ·A·F) − 2·Tr(Fᵀ·B)   s.t.  FᵀF = I,
///
/// with symmetric A (n × n) and B (n × k). Each iteration sets
/// M = 2(λI − A)·F + 2B for λ >= λ_max(A) (a Gershgorin bound is used) and
/// projects M onto the Stiefel manifold via SVD; the objective decreases
/// monotonically. `f0` is the warm start (must be n × k with orthonormal
/// columns; pass e.g. a spectral embedding).
StatusOr<GpiResult> GeneralizedPowerIteration(const la::Matrix& a,
                                              const la::Matrix& b,
                                              const la::Matrix& f0,
                                              const GpiOptions& options = {});

/// Sparse variant: identical math, A·F computed through the CSR kernel —
/// O(nnz·k) per iteration instead of O(n²·k).
StatusOr<GpiResult> GeneralizedPowerIteration(const la::CsrMatrix& a,
                                              const la::Matrix& b,
                                              const la::Matrix& f0,
                                              const GpiOptions& options = {});

/// Upper bound on λ_max(A) by the Gershgorin circle theorem.
double GershgorinUpperBound(const la::Matrix& a);
double GershgorinUpperBound(const la::CsrMatrix& a);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_GPI_H_
