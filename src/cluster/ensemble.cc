#include "cluster/ensemble.h"

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "la/lanczos.h"

namespace umvsc::cluster {

StatusOr<la::Matrix> CoAssociationMatrix(
    const std::vector<std::vector<std::size_t>>& labelings) {
  if (labelings.empty()) {
    return Status::InvalidArgument("ensemble needs at least one labeling");
  }
  const std::size_t n = labelings.front().size();
  if (n == 0) {
    return Status::InvalidArgument("labelings must be non-empty");
  }
  for (const auto& labels : labelings) {
    if (labels.size() != n) {
      return Status::InvalidArgument("all labelings must have equal length");
    }
  }
  la::Matrix co(n, n);
  const double unit = 1.0 / static_cast<double>(labelings.size());
  for (const auto& labels : labelings) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (labels[i] == labels[j]) {
          co(i, j) += unit;
          co(j, i) += unit;
        }
      }
    }
  }
  // Self-similarity is 1 by definition.
  for (std::size_t i = 0; i < n; ++i) co(i, i) = 1.0;
  return co;
}

StatusOr<std::vector<std::size_t>> ConsensusClustering(
    const std::vector<std::vector<std::size_t>>& labelings,
    const ConsensusOptions& options) {
  if (labelings.empty() || labelings.front().empty()) {
    return Status::InvalidArgument("ensemble needs non-empty labelings");
  }
  const std::size_t n = labelings.front().size();
  const std::size_t c = options.num_clusters;
  if (c < 1 || c >= n) {
    return Status::InvalidArgument("ConsensusClustering requires 1 <= c < n");
  }
  for (const auto& labels : labelings) {
    if (labels.size() != n) {
      return Status::InvalidArgument("all labelings must have equal length");
    }
  }

  // The co-association matrix (diagonal zeroed) never needs materializing:
  // for each member labeling, C_m·x decomposes into per-cluster sums, so
  // C·x costs O(n·M) instead of O(n²). The consensus embedding is then the
  // bottom eigenspace of the symmetric normalized Laplacian of C, obtained
  // matrix-free with Lanczos.
  const double unit = 1.0 / static_cast<double>(labelings.size());
  std::vector<std::vector<std::size_t>> cluster_count(labelings.size());
  std::size_t max_cluster = 0;
  for (std::size_t m = 0; m < labelings.size(); ++m) {
    for (std::size_t l : labelings[m]) max_cluster = std::max(max_cluster, l);
  }
  for (std::size_t m = 0; m < labelings.size(); ++m) {
    cluster_count[m].assign(max_cluster + 1, 0);
    for (std::size_t l : labelings[m]) cluster_count[m][l]++;
  }

  // Degrees d_i = Σ_j C_ij = (1/M)·Σ_m (|cluster_m(i)| − 1).
  la::Vector inv_sqrt_degree(n);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t m = 0; m < labelings.size(); ++m) {
      degree += unit * static_cast<double>(
                           cluster_count[m][labelings[m][i]] - 1);
    }
    inv_sqrt_degree[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }

  // y += L_sym·x = x − D^{−1/2}·C·D^{−1/2}·x (isolated points contribute
  // identity rows). Spectrum lies in [0, 2].
  la::SymmetricOperator lap = [&](const la::Vector& x, la::Vector& y) {
    la::Vector scaled(n);
    for (std::size_t i = 0; i < n; ++i) scaled[i] = x[i] * inv_sqrt_degree[i];
    la::Vector cx(n);
    std::vector<double> sums(max_cluster + 1, 0.0);
    for (std::size_t m = 0; m < labelings.size(); ++m) {
      std::fill(sums.begin(), sums.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) sums[labelings[m][i]] += scaled[i];
      for (std::size_t i = 0; i < n; ++i) {
        cx[i] += unit * (sums[labelings[m][i]] - scaled[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += x[i] - inv_sqrt_degree[i] * cx[i];
    }
  };

  la::LanczosOptions lanczos;
  lanczos.seed = options.seed + 7;
  lanczos.max_subspace = std::min(n, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;
  StatusOr<la::SymEigenResult> eig =
      la::LanczosSmallest(lap, n, c, 2.0 + 1e-9, lanczos);
  if (!eig.ok()) return eig.status();

  la::Matrix embedding = std::move(eig->eigenvectors);
  for (std::size_t i = 0; i < n; ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < c; ++j) norm += embedding(i, j) * embedding(i, j);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (std::size_t j = 0; j < c; ++j) embedding(i, j) /= norm;
    }
  }
  KMeansOptions km;
  km.num_clusters = c;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  StatusOr<KMeansResult> clustered = KMeans(embedding, km);
  if (!clustered.ok()) return clustered.status();
  return std::move(clustered->labels);
}

}  // namespace umvsc::cluster
