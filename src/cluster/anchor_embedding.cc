#include "cluster/anchor_embedding.h"

#include <algorithm>
#include <cmath>

#include "la/ops.h"
#include "la/sym_eigen.h"

namespace umvsc::cluster {

namespace {

// Cushion under which the Krylov route cannot beat the dense direct solver:
// a Lanczos basis of k + cushion columns already costs as much as the full
// m × m decomposition when k is within a few columns of m.
constexpr std::size_t kDenseCushion = 2;

// Below this anchor count the dense direct solver runs unconditionally.
// The reduced spectrum is degenerate BY CONSTRUCTION whenever the anchor
// graph splits into components (ẐẐᵀ is doubly stochastic per component, so
// λ = 1 appears once per component — the well-separated-cluster regime this
// embedding exists for), and a single Krylov sequence sees one copy per
// eigenspace: it can return an interior eigenvalue in place of a missed
// copy and silently break the embedding. The direct solve is exact on
// repeated eigenvalues and its O(m³) is dwarfed by the O(n·s²) Gram
// accumulation at any realistic n/m ratio.
constexpr std::size_t kDenseDirectCeiling = 512;

}  // namespace

StatusOr<AnchorEmbeddingResult> AnchorSpectralEmbedding(
    const la::CsrMatrix& z, const AnchorEmbeddingOptions& options) {
  const std::size_t n = z.rows();
  const std::size_t m = z.cols();
  const std::size_t k = options.dims;
  if (n == 0 || m == 0) {
    return Status::InvalidArgument(
        "AnchorSpectralEmbedding requires a non-empty bipartite graph");
  }
  if (k < 1 || k > m) {
    return Status::InvalidArgument(
        "AnchorSpectralEmbedding requires 1 <= dims <= anchors");
  }
  if (m > n) {
    return Status::InvalidArgument(
        "AnchorSpectralEmbedding requires anchors <= points");
  }

  const std::vector<std::size_t>& offsets = z.row_offsets();
  const std::vector<std::size_t>& cols = z.col_indices();
  const std::vector<double>& vals = z.values();

  // Column masses λ_j = Σ_i z_ij, accumulated serially in storage order.
  la::Vector mass(m, 0.0);
  for (std::size_t e = 0; e < vals.size(); ++e) {
    if (vals[e] < 0.0) {
      return Status::InvalidArgument(
          "AnchorSpectralEmbedding requires nonnegative affinities");
    }
    mass[cols[e]] += vals[e];
  }
  la::Vector inv_sqrt_mass(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    inv_sqrt_mass[j] = mass[j] > 0.0 ? 1.0 / std::sqrt(mass[j]) : 0.0;
  }

  // M = ẐᵀẐ accumulated row by row: each s-sparse row contributes the outer
  // product of its normalized entries, O(n·s²) total. Serial row order keeps
  // the sums bitwise identical at every thread count.
  la::Matrix gram(m, m);
  std::vector<double> zhat_row;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = offsets[i], hi = offsets[i + 1];
    zhat_row.resize(hi - lo);
    for (std::size_t e = lo; e < hi; ++e) {
      zhat_row[e - lo] = vals[e] * inv_sqrt_mass[cols[e]];
    }
    for (std::size_t a = lo; a < hi; ++a) {
      const double za = zhat_row[a - lo];
      double* grow = gram.RowPtr(cols[a]);
      for (std::size_t b = lo; b < hi; ++b) {
        grow[cols[b]] += za * zhat_row[b - lo];
      }
    }
  }

  // Top-k eigenpairs of the m × m reduced problem. Dense direct solve up to
  // the ceiling (exact on the degenerate spectra disconnected components
  // produce — see kDenseDirectCeiling); above it the policy dispatcher with
  // kAuto pinned to the PANEL solver, whose width-k blocks capture a k-fold
  // eigenvalue multiplicity per iteration where a single Krylov sequence
  // sees one copy (kForceSingle still honored for A/B measurements).
  la::SymEigenResult eig;
  bool solved = false;
  if (k + kDenseCushion < m && m > kDenseDirectCeiling) {
    la::LanczosOptions lopts;
    lopts.seed = options.seed;
    lopts.max_subspace =
        std::min(m, std::max<std::size_t>(12 * k + 100, 250));
    lopts.matvec_count = options.matvec_count;
    const la::EigensolveMode mode = options.mode == la::EigensolveMode::kAuto
                                        ? la::EigensolveMode::kForceBlock
                                        : options.mode;
    StatusOr<la::SymEigenResult> krylov = la::LanczosLargestAuto(
        [&](const la::Matrix& x, la::Matrix& y) {
          la::MatMulAddInto(gram, x, y);
        },
        m, k, lopts, mode);
    if (krylov.ok()) {
      eig = std::move(*krylov);
      solved = true;
    }
  }
  if (!solved) {
    StatusOr<la::SymEigenResult> dense = la::LargestEigenpairs(gram, k);
    if (!dense.ok()) return dense.status();
    eig = std::move(*dense);
  }

  // anchor_map = Λ^{−1/2}·V·Σ^{−1}; directions with eigenvalue ≈ 0 (rank
  // deficiency) are truncated to zero columns instead of blowing up.
  double max_eig = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    max_eig = std::max(max_eig, eig.eigenvalues[t]);
  }
  const double tol = 1e-12 * std::max(max_eig, 1.0);
  la::Matrix anchor_map(m, k);
  for (std::size_t t = 0; t < k; ++t) {
    const double lambda = eig.eigenvalues[t];
    const double inv_sigma = lambda > tol ? 1.0 / std::sqrt(lambda) : 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      anchor_map(j, t) = inv_sqrt_mass[j] * eig.eigenvectors(j, t) * inv_sigma;
    }
  }

  AnchorEmbeddingResult out;
  out.embedding = la::Matrix(n, k);
  z.MultiplyInto(anchor_map, out.embedding);
  out.eigenvalues = std::move(eig.eigenvalues);
  out.anchor_map = std::move(anchor_map);
  out.anchor_mass = std::move(mass);
  return out;
}

}  // namespace umvsc::cluster
