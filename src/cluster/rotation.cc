#include "cluster/rotation.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "la/ops.h"
#include "la/qr.h"
#include "la/svd.h"

namespace umvsc::cluster {

std::vector<std::size_t> IndicatorToLabels(const la::Matrix& y) {
  std::vector<std::size_t> labels(y.rows(), 0);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < y.cols(); ++j) {
      if (y(i, j) > best) {
        best = y(i, j);
        labels[i] = j;
      }
    }
  }
  return labels;
}

la::Matrix LabelsToIndicator(const std::vector<std::size_t>& labels,
                             std::size_t num_clusters) {
  la::Matrix y(labels.size(), num_clusters);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    UMVSC_CHECK(labels[i] < num_clusters, "label exceeds cluster count");
    y(i, labels[i]) = 1.0;
  }
  return y;
}

la::Matrix ScaledIndicator(const la::Matrix& y) {
  la::Matrix scaled = y;
  for (std::size_t j = 0; j < y.cols(); ++j) {
    double count = 0.0;
    for (std::size_t i = 0; i < y.rows(); ++i) count += y(i, j) * y(i, j);
    if (count > 0.0) {
      const double inv = 1.0 / std::sqrt(count);
      for (std::size_t i = 0; i < y.rows(); ++i) scaled(i, j) *= inv;
    }
  }
  return scaled;
}

namespace {

// The initialization of Yu & Shi's discretization code: build R's columns
// from c rows of F chosen to be maximally mutually orthogonal (first row
// arbitrary, then repeatedly the row least explained by the picks so far),
// then orthonormalize. Rows of a good spectral embedding concentrate near c
// distinct directions, so this lands extremely close to the optimum.
la::Matrix YuShiInitialRotation(const la::Matrix& f, Rng& rng) {
  const std::size_t n = f.rows(), c = f.cols();
  la::Matrix r(c, c);
  std::size_t pick = static_cast<std::size_t>(rng.UniformInt(n));
  r.SetCol(0, f.Row(pick));
  la::Vector accum(n);
  for (std::size_t j = 1; j < c; ++j) {
    // accum_i += |F_i · r_{j−1}| measures how well row i is already covered.
    for (std::size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (std::size_t p = 0; p < c; ++p) dot += f(i, p) * r(p, j - 1);
      accum[i] += std::fabs(dot);
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (accum[i] < accum[best]) best = i;
    }
    r.SetCol(j, f.Row(best));
  }
  return la::Orthonormalize(r);
}

struct SingleRunResult {
  RotationResult result;
  Status status = Status::OK();
};

SingleRunResult RunOnce(const la::Matrix& f, const RotationOptions& options,
                        la::Matrix r) {
  const std::size_t c = f.cols();
  SingleRunResult out;
  double prev_obj = std::numeric_limits<double>::infinity();
  la::Matrix y;

  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Y-step: each row of F·R independently picks its largest coordinate.
    la::Matrix fr = la::MatMul(f, r);
    std::vector<std::size_t> labels = IndicatorToLabels(fr);
    y = LabelsToIndicator(labels, c);
    la::Matrix y_hat = options.scale_indicator ? ScaledIndicator(y) : y;

    // Objective ‖Ŷ − F·R‖²_F.
    const double obj = la::Add(y_hat, fr, -1.0).FrobeniusNorm();
    const double obj2 = obj * obj;

    // R-step: orthogonal Procrustes, R = U·Vᵀ of FᵀŶ.
    StatusOr<la::Matrix> next_r = la::ProcrustesRotation(la::MatTMul(f, y_hat));
    if (!next_r.ok()) {
      out.status = next_r.status();
      return out;
    }
    r = std::move(*next_r);

    if (iter > 0 &&
        prev_obj - obj2 <= options.tolerance * std::max(prev_obj, 1e-300)) {
      prev_obj = std::min(prev_obj, obj2);
      ++iter;
      break;
    }
    prev_obj = obj2;
  }

  out.result.labels = IndicatorToLabels(y);
  out.result.indicator = std::move(y);
  out.result.rotation = std::move(r);
  out.result.objective = prev_obj;
  out.result.iterations = iter;
  return out;
}

}  // namespace

StatusOr<RotationResult> DiscretizeEmbedding(const la::Matrix& f,
                                             const RotationOptions& options) {
  const std::size_t c = f.cols();
  if (c < 1 || f.rows() < c) {
    return Status::InvalidArgument(
        "DiscretizeEmbedding requires an n × c embedding with n >= c >= 1");
  }
  if (options.restarts < 1) {
    return Status::InvalidArgument("restarts must be >= 1");
  }

  Rng root(options.seed);
  RotationResult best;
  best.objective = std::numeric_limits<double>::infinity();
  Status last_error = Status::OK();
  bool any_ok = false;
  for (std::size_t attempt = 0; attempt < options.restarts; ++attempt) {
    Rng rng = root.Split();
    // The first attempts use the Yu–Shi most-orthogonal-rows seeding (with
    // different random first rows); later attempts fall back to fully
    // random rotations for diversity.
    la::Matrix r0 = (attempt < (options.restarts + 1) / 2)
                        ? YuShiInitialRotation(f, rng)
                        : la::Orthonormalize(la::Matrix::RandomGaussian(c, c, rng));
    SingleRunResult run = RunOnce(f, options, std::move(r0));
    if (!run.status.ok()) {
      last_error = run.status;
      continue;
    }
    any_ok = true;
    if (run.result.objective < best.objective) best = std::move(run.result);
  }
  if (!any_ok) return last_error;
  return best;
}

}  // namespace umvsc::cluster
