#include "cluster/nystrom.h"

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "la/ops.h"
#include "la/sym_eigen.h"

namespace umvsc::cluster {

namespace {

// Gaussian kernel between the rows of `a` and the rows of `b`.
la::Matrix CrossKernel(const la::Matrix& a, const la::Matrix& b,
                       double sigma) {
  const double inv = 1.0 / (2.0 * sigma * sigma);
  la::Matrix k(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ra = a.RowPtr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* rb = b.RowPtr(j);
      double d2 = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) {
        const double diff = ra[p] - rb[p];
        d2 += diff * diff;
      }
      k(i, j) = std::exp(-d2 * inv);
    }
  }
  return k;
}

// Deterministic landmark-pairs median bandwidth for sigma = 0: all
// m·(m−1)/2 pairwise distances, accumulated serially in ascending (i, j)
// order and fully sorted. Tie-break convention (pinned by
// cluster_nystrom_test): the LOWER median — index (count − 1)/2 of the
// sorted distances — so an even pair count never averages two values, and
// exact duplicates are resolved by the sort's total order (distances are
// finite and nonnegative, so it is unambiguous). Zeros from coincident
// landmarks are INCLUDED in the population — the median is a pure function
// of the landmark set, not of how degenerate it happens to be; when the
// median itself is zero (more than half the pairs coincide) the smallest
// strictly positive distance substitutes, and when every pair coincides the
// bandwidth is undefined and an error returns. Serial by design: no thread
// pool anywhere, so the value is trivially identical at every thread count.
StatusOr<double> LandmarkPairsMedianSigma(const la::Matrix& landmarks) {
  const std::size_t m = landmarks.rows();
  const std::size_t d = landmarks.cols();
  if (m < 2) {
    return Status::InvalidArgument(
        "median bandwidth requires at least two landmarks");
  }
  std::vector<double> dists;
  dists.reserve(m * (m - 1) / 2);
  for (std::size_t i = 0; i < m; ++i) {
    const double* ri = landmarks.RowPtr(i);
    for (std::size_t j = i + 1; j < m; ++j) {
      const double* rj = landmarks.RowPtr(j);
      double d2 = 0.0;
      for (std::size_t p = 0; p < d; ++p) {
        const double diff = ri[p] - rj[p];
        d2 += diff * diff;
      }
      dists.push_back(std::sqrt(d2));
    }
  }
  std::sort(dists.begin(), dists.end());
  double sigma = dists[(dists.size() - 1) / 2];
  if (sigma <= 0.0) {
    for (double v : dists) {
      if (v > 0.0) {
        sigma = v;
        break;
      }
    }
  }
  if (sigma <= 0.0) {
    return Status::InvalidArgument("all landmark pair distances are zero");
  }
  return sigma;
}

// Symmetric pseudo-inverse square root via the eigendecomposition,
// truncating eigenvalues below a relative tolerance.
StatusOr<la::Matrix> PseudoInverseSqrt(const la::Matrix& a) {
  StatusOr<la::SymEigenResult> eig = la::SymmetricEigen(a);
  if (!eig.ok()) return eig.status();
  const std::size_t m = a.rows();
  double max_eig = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    max_eig = std::max(max_eig, eig->eigenvalues[i]);
  }
  const double tol = 1e-12 * std::max(max_eig, 1.0);
  la::Matrix scaled = eig->eigenvectors;  // V · Λ^{−1/2} columnwise
  for (std::size_t j = 0; j < m; ++j) {
    const double lambda = eig->eigenvalues[j];
    const double inv_sqrt = lambda > tol ? 1.0 / std::sqrt(lambda) : 0.0;
    for (std::size_t i = 0; i < m; ++i) scaled(i, j) *= inv_sqrt;
  }
  return la::MatMulT(scaled, eig->eigenvectors);
}

}  // namespace

StatusOr<NystromResult> NystromSpectralClustering(
    const la::Matrix& features, const NystromOptions& options) {
  const std::size_t n = features.rows();
  const std::size_t m = options.landmarks;
  const std::size_t c = options.num_clusters;
  if (n == 0 || features.cols() == 0) {
    return Status::InvalidArgument("Nyström requires non-empty features");
  }
  if (c < 2 || c > m || m >= n) {
    return Status::InvalidArgument(
        "Nyström requires 2 <= clusters <= landmarks < n");
  }

  // Landmarks: uniform sample without replacement.
  Rng rng(options.seed);
  const std::vector<std::size_t> landmark_ids =
      rng.SampleWithoutReplacement(n, m);
  la::Matrix landmarks(m, features.cols());
  for (std::size_t i = 0; i < m; ++i) {
    landmarks.SetRow(i, features.Row(landmark_ids[i]));
  }

  double sigma = options.sigma;
  if (sigma <= 0.0) {
    StatusOr<double> median = LandmarkPairsMedianSigma(landmarks);
    if (!median.ok()) return median.status();
    sigma = *median;
  }

  // C: all-vs-landmarks kernel (n × m); W: its landmark block (m × m).
  la::Matrix kernel_c = CrossKernel(features, landmarks, sigma);
  la::Matrix kernel_w(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      kernel_w(i, j) = kernel_c(landmark_ids[i], j);
    }
  }
  kernel_w.Symmetrize();

  // Degree estimates of the implicit full affinity A ≈ C·W⁺·Cᵀ:
  // d̂ = C·(W⁺·(Cᵀ·1)).
  StatusOr<la::Matrix> w_pinv_sqrt = PseudoInverseSqrt(kernel_w);
  if (!w_pinv_sqrt.ok()) return w_pinv_sqrt.status();
  la::Matrix w_pinv = la::MatMul(*w_pinv_sqrt, *w_pinv_sqrt);
  la::Vector col_sums = la::MatTVec(kernel_c, la::Vector(n, 1.0));
  la::Vector degrees = la::MatVec(kernel_c, la::MatVec(w_pinv, col_sums));
  for (std::size_t i = 0; i < n; ++i) {
    if (!(degrees[i] > 0.0)) {
      // Nearly-isolated point under the approximation; fall back to its own
      // kernel mass so the normalization stays finite.
      double row_mass = 0.0;
      for (std::size_t j = 0; j < m; ++j) row_mass += kernel_c(i, j);
      degrees[i] = std::max(row_mass, 1e-12);
    }
  }

  // Normalized slice C' = D^{−1/2}·C·D_L^{−1/2} (landmark degrees are the
  // corresponding entries of d̂).
  la::Matrix c_norm = kernel_c;
  for (std::size_t i = 0; i < n; ++i) {
    const double di = 1.0 / std::sqrt(degrees[i]);
    for (std::size_t j = 0; j < m; ++j) {
      c_norm(i, j) *= di / std::sqrt(degrees[landmark_ids[j]]);
    }
  }
  la::Matrix w_norm(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      w_norm(i, j) = c_norm(landmark_ids[i], j);
    }
  }
  w_norm.Symmetrize();

  // One-shot orthogonalization: S = W'^{−1/2}·C'ᵀC'·W'^{−1/2}.
  StatusOr<la::Matrix> wn_pinv_sqrt = PseudoInverseSqrt(w_norm);
  if (!wn_pinv_sqrt.ok()) return wn_pinv_sqrt.status();
  la::Matrix s =
      la::MatMul(*wn_pinv_sqrt, la::MatMul(la::Gram(c_norm), *wn_pinv_sqrt));
  s.Symmetrize();
  StatusOr<la::SymEigenResult> eig = la::LargestEigenpairs(s, c);
  if (!eig.ok()) return eig.status();

  // Approximate eigenvectors V = C'·W'^{−1/2}·U·Λ^{−1/2}.
  la::Matrix u_scaled = eig->eigenvectors;  // m × c
  for (std::size_t j = 0; j < c; ++j) {
    const double lambda = eig->eigenvalues[j];
    const double inv_sqrt = lambda > 1e-12 ? 1.0 / std::sqrt(lambda) : 0.0;
    for (std::size_t i = 0; i < m; ++i) u_scaled(i, j) *= inv_sqrt;
  }
  la::Matrix embedding =
      la::MatMul(c_norm, la::MatMul(*wn_pinv_sqrt, u_scaled));

  // Row-normalize and cluster.
  la::Matrix normalized = embedding;
  for (std::size_t i = 0; i < n; ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < c; ++j) norm += normalized(i, j) * normalized(i, j);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (std::size_t j = 0; j < c; ++j) normalized(i, j) /= norm;
    }
  }
  KMeansOptions km;
  km.num_clusters = c;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  StatusOr<KMeansResult> clustered = KMeans(normalized, km);
  if (!clustered.ok()) return clustered.status();

  NystromResult out;
  out.labels = std::move(clustered->labels);
  out.embedding = std::move(embedding);
  out.eigenvalues = std::move(eig->eigenvalues);
  return out;
}

}  // namespace umvsc::cluster
