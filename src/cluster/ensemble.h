#ifndef UMVSC_CLUSTER_ENSEMBLE_H_
#define UMVSC_CLUSTER_ENSEMBLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::cluster {

/// Co-association matrix of an ensemble of labelings: entry (i, j) is the
/// fraction of labelings that place i and j in the same cluster — itself a
/// similarity matrix in [0, 1] (evidence accumulation, Fred & Jain '05).
/// Requires at least one labeling; all must have equal length.
StatusOr<la::Matrix> CoAssociationMatrix(
    const std::vector<std::vector<std::size_t>>& labelings);

/// Options for consensus clustering.
struct ConsensusOptions {
  std::size_t num_clusters = 2;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Consensus clustering by evidence accumulation: spectral clustering on
/// the co-association matrix of the ensemble. The classic way to fuse
/// per-view clusterings without touching features.
StatusOr<std::vector<std::size_t>> ConsensusClustering(
    const std::vector<std::vector<std::size_t>>& labelings,
    const ConsensusOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_ENSEMBLE_H_
