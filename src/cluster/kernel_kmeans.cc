#include "cluster/kernel_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace umvsc::cluster {

namespace {

struct SingleRun {
  std::vector<std::size_t> labels;
  double objective;
  std::size_t iterations;
};

// One Lloyd pass in kernel space from a random initial assignment.
SingleRun RunOnce(const la::Matrix& gram, std::size_t k,
                  std::size_t max_iterations, Rng& rng) {
  const std::size_t n = gram.rows();
  std::vector<std::size_t> labels(n);
  std::vector<std::size_t> counts(k, 0);
  // Random balanced-ish init: first k points seed distinct clusters so no
  // cluster starts empty, the rest are uniform.
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i < k ? i : static_cast<std::size_t>(rng.UniformInt(k));
    counts[labels[i]]++;
  }

  std::vector<double> cluster_self(k, 0.0);  // 1/|c|²·Σ_{j,l∈c} K_jl
  std::vector<double> point_to_cluster(k, 0.0);
  double objective = std::numeric_limits<double>::infinity();
  std::size_t iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Per-cluster constant term: S_c = Σ_{j,l∈c} K_jl / |c|².
    std::vector<double> sums(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) sums[c] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double* row = gram.RowPtr(j);
      for (std::size_t l = 0; l < n; ++l) {
        if (labels[j] == labels[l]) sums[labels[j]] += row[l];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      const double size = static_cast<double>(counts[c]);
      cluster_self[c] = size > 0.0 ? sums[c] / (size * size) : 0.0;
    }

    // Assignment step: argmin_c K_ii − 2·m_i(c) + S_c, with
    // m_i(c) = Σ_{j∈c} K_ij / |c|.
    bool changed = false;
    double new_objective = 0.0;
    std::vector<std::size_t> new_labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = gram.RowPtr(i);
      std::fill(point_to_cluster.begin(), point_to_cluster.end(), 0.0);
      for (std::size_t j = 0; j < n; ++j) point_to_cluster[labels[j]] += row[j];
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;
        const double m = point_to_cluster[c] / static_cast<double>(counts[c]);
        const double dist = gram(i, i) - 2.0 * m + cluster_self[c];
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      new_labels[i] = best_c;
      changed |= (best_c != labels[i]);
      new_objective += std::max(0.0, best);
    }

    // Empty-cluster repair: the point with the largest distance to its own
    // centroid re-seeds each empty cluster.
    std::vector<std::size_t> new_counts(k, 0);
    for (std::size_t l : new_labels) new_counts[l]++;
    for (std::size_t c = 0; c < k; ++c) {
      if (new_counts[c] != 0) continue;
      double worst = -1.0;
      std::size_t worst_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (new_counts[new_labels[i]] <= 1) continue;
        const double* row = gram.RowPtr(i);
        double m = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (new_labels[j] == new_labels[i]) m += row[j];
        }
        m /= static_cast<double>(new_counts[new_labels[i]]);
        const double dist = gram(i, i) - 2.0 * m;
        if (dist > worst) {
          worst = dist;
          worst_i = i;
        }
      }
      new_counts[new_labels[worst_i]]--;
      new_labels[worst_i] = c;
      new_counts[c] = 1;
      changed = true;
    }

    labels = std::move(new_labels);
    counts = std::move(new_counts);
    objective = new_objective;
    if (!changed) {
      ++iter;
      break;
    }
  }
  return {std::move(labels), objective, iter};
}

}  // namespace

StatusOr<KernelKMeansResult> KernelKMeans(const la::Matrix& gram,
                                          const KernelKMeansOptions& options) {
  if (!gram.IsSquare() || gram.rows() == 0) {
    return Status::InvalidArgument(
        "KernelKMeans requires a non-empty square Gram matrix");
  }
  if (!gram.IsSymmetric(1e-8 * std::max(1.0, gram.MaxAbs()))) {
    return Status::InvalidArgument("KernelKMeans requires a symmetric Gram");
  }
  const std::size_t n = gram.rows();
  const std::size_t k = options.num_clusters;
  if (k < 1 || k > n) {
    return Status::InvalidArgument("KernelKMeans requires 1 <= k <= n");
  }
  if (options.restarts < 1) {
    return Status::InvalidArgument("KernelKMeans requires >= 1 restart");
  }

  Rng root(options.seed);
  KernelKMeansResult best;
  best.objective = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    Rng rng = root.Split();
    SingleRun run = RunOnce(gram, k, options.max_iterations, rng);
    if (run.objective < best.objective) {
      best.labels = std::move(run.labels);
      best.objective = run.objective;
      best.iterations = run.iterations;
    }
  }
  return best;
}

}  // namespace umvsc::cluster
