#ifndef UMVSC_CLUSTER_SPECTRAL_H_
#define UMVSC_CLUSTER_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/laplacian.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace umvsc::cluster {

/// Options for single-view spectral clustering.
struct SpectralOptions {
  std::size_t num_clusters = 2;
  graph::LaplacianKind laplacian = graph::LaplacianKind::kSymmetric;
  /// Row-normalize the embedding to the unit sphere (the NJW step).
  bool normalize_rows = true;
  /// Seed for the K-means stage.
  std::uint64_t seed = 0;
  /// K-means restarts.
  std::size_t kmeans_restarts = 10;
};

/// Spectral embedding: the k eigenvectors of the graph Laplacian with the
/// smallest eigenvalues, as an n × k matrix (optionally row-normalized).
/// Input is a symmetric nonnegative affinity. Requires 1 <= k < n.
StatusOr<la::Matrix> SpectralEmbedding(const la::Matrix& affinity,
                                       std::size_t k,
                                       graph::LaplacianKind kind,
                                       bool normalize_rows);

/// Sparse spectral embedding: Lanczos on the CSR symmetric-normalized
/// Laplacian (whose spectrum lies in [0, 2], giving an exact complement
/// bound). O(nnz·m) instead of O(n³) — the path used for the larger
/// benchmark graphs. Only LaplacianKind::kSymmetric is supported here.
StatusOr<la::Matrix> SpectralEmbeddingSparse(const la::CsrMatrix& affinity,
                                             std::size_t k,
                                             bool normalize_rows,
                                             std::uint64_t seed = 19);

/// Result of spectral clustering.
struct SpectralResult {
  std::vector<std::size_t> labels;
  la::Matrix embedding;  ///< the continuous n × k spectral embedding
};

/// Classic two-stage spectral clustering (Ng–Jordan–Weiss): embedding from
/// the normalized Laplacian, then K-means on the (row-normalized) rows.
StatusOr<SpectralResult> SpectralClustering(const la::Matrix& affinity,
                                            const SpectralOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_SPECTRAL_H_
