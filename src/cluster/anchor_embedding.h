#ifndef UMVSC_CLUSTER_ANCHOR_EMBEDDING_H_
#define UMVSC_CLUSTER_ANCHOR_EMBEDDING_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "la/lanczos.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "la/vector.h"

namespace umvsc::cluster {

/// Options for the anchor-graph spectral embedding.
struct AnchorEmbeddingOptions {
  /// Embedding dimension k (number of top singular directions kept).
  std::size_t dims = 2;
  /// Eigensolver routing for the m × m reduced problem when it exceeds the
  /// dense-direct ceiling (small m always solves directly — exact on the
  /// degenerate spectra disconnected anchor graphs produce). kAuto routes
  /// large m to the PANEL solver, whose width-k blocks capture a k-fold
  /// eigenvalue multiplicity that a single Krylov sequence provably misses;
  /// kForceSingle remains available for A/B measurements.
  la::EigensolveMode mode = la::EigensolveMode::kAuto;
  std::uint64_t seed = 19;
  /// When non-null, accumulates Lanczos operator applications (in Krylov
  /// directions, matching la::LanczosOptions::matvec_count).
  std::size_t* matvec_count = nullptr;
};

/// Result of an anchor-graph spectral embedding.
struct AnchorEmbeddingResult {
  /// n × k top singular directions of the normalized bipartite graph —
  /// approximate eigenvectors of the implicit n × n affinity Ẑ·Ẑᵀ.
  /// Orthonormal columns up to the eigensolve tolerance.
  la::Matrix embedding;
  /// Eigenvalues of Ẑᵀ·Ẑ (= squared singular values of Ẑ), descending, in
  /// [0, 1] when Z is row-stochastic. The graph-Laplacian smoothness of
  /// direction t is 1 − eigenvalues[t].
  la::Vector eigenvalues;
  /// m × k out-of-sample extension map: embedding == Z · anchor_map, and a
  /// NEW point extends to its embedding row by building its own s-sparse
  /// anchor row z (graph::BuildAnchorAffinity's row rule) and taking
  /// z · anchor_map — O(s·k) per point, no training data needed.
  la::Matrix anchor_map;
  /// Column masses λ_j = Σ_i z_ij of the bipartite graph (the anchor
  /// "degrees" absorbed into the normalization) — diagnostics: a zero entry
  /// means anchor j attracted no weight and its direction was truncated.
  la::Vector anchor_mass;
};

/// Spectral embedding from a bipartite anchor graph Z (n × m, row-stochastic,
/// s-sparse rows — the output of graph::BuildAnchorAffinity) via the m × m
/// reduced eigenproblem. This is the SVD-of-normalized-Z route of anchor-graph
/// / Nyström spectral clustering generalized from the single-view
/// nystrom.{h,cc} seed:
///
///   Ẑ = Z·Λ^{−1/2},  Λ = diag(colsum Z)   (degree normalization)
///   M = ẐᵀẐ  (m × m)  →  top-k eigenpairs (V, Σ²)
///   embedding U = Ẑ·V·Σ^{−1}  (the left singular vectors of Ẑ)
///
/// U's columns are the top eigenvectors of the implicit affinity ẐẐᵀ — the
/// spectral embedding of an n-point graph — obtained in O(n·s² + n·s·k)
/// plus one m × m eigensolve, never touching an n × n matrix. The
/// eigensolve is dense-direct up to a ceiling (~512 anchors) because the
/// reduced spectrum is degenerate by construction when the anchor graph
/// splits into components (λ = 1 once per component) and the direct solve
/// is exact on repeated eigenvalues; beyond the ceiling it routes through
/// la::LanczosLargestAuto on a dense operator with the panel (block) path,
/// whose width-k blocks capture that multiplicity. Eigenvalues within
/// 1e-12·λ_max of
/// zero are truncated (their anchor_map columns are zeroed) — rank-deficient
/// anchor sets degrade gracefully instead of dividing by ~0.
///
/// Deterministic: the accumulation of M runs serially in row order, the
/// eigensolve is seeded, and the final SpMM is the row-parallel
/// deterministic kernel — bitwise identical at every thread count.
/// Requires 1 <= dims <= m <= n and nonnegative Z entries.
StatusOr<AnchorEmbeddingResult> AnchorSpectralEmbedding(
    const la::CsrMatrix& z, const AnchorEmbeddingOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_ANCHOR_EMBEDDING_H_
